"""E9 — the batch simulation core: vectorised trials vs scalar decoders.

Runs the same Table-1-style workload — uniform algebraic gossip, EXCHANGE,
synchronous rounds, ``k`` messages spread over a complete graph on ``n``
nodes — through the three trial runners:

* sequential: one :class:`~repro.gossip.engine.GossipEngine` per trial with
  per-node scalar :class:`~repro.rlnc.decoder.RlncDecoder` elimination,
* batched: all trials in one :class:`~repro.gossip.batch.BatchGossipEngine`
  backed by the vectorised :class:`~repro.rlnc.batch.BatchDecoder`,
* parallel: the batched runner sharded over worker processes.

The reproduced table reports wall-clock seconds and the speedup over the
sequential path.  The assertions are the contract of the fast path: the
batched and parallel runners must be **bit-identical** to the sequential one
(same seeds → same stopping times, message counts and completion rounds) and
the batched runner must be at least 5x faster at ``n = 128``.

Scale knobs (for smoke runs): ``REPRO_BENCH_BATCH_N``,
``REPRO_BENCH_BATCH_TRIALS`` and ``REPRO_BENCH_BATCH_MIN_SPEEDUP`` shrink
the workload / floor without changing the equivalence checks.
"""

from __future__ import annotations

import os
import time

from _utils import PEDANTIC, record_trials, report, report_json, trial_signature
from repro.analysis.stopping_time import measure_protocol
from repro.experiments.parallel import (
    default_jobs,
    measure_protocol_batched,
    measure_protocol_parallel,
)
from repro.scenarios import ScenarioSpec, default_scenario_config

N = int(os.environ.get("REPRO_BENCH_BATCH_N", "128"))
K = 16
TRIALS = int(os.environ.get("REPRO_BENCH_BATCH_TRIALS", "64"))
SEED = 909
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_BATCH_MIN_SPEEDUP", "5.0"))
SCALED_DOWN = (N, TRIALS, MIN_SPEEDUP) != (128, 64, 5.0)

#: The whole workload as one declarative scenario: the spec's trial/seed plan
#: is what both runners execute, so "same spec → same numbers" is literal.
SPEC = ScenarioSpec(
    topology="complete",
    n=N,
    k=K,
    config=default_scenario_config(max_rounds=50_000),
    trials=TRIALS,
    seed=SEED,
)


def _run():
    scenario = SPEC.materialize()
    timings = {}

    start = time.perf_counter()
    sequential = measure_protocol(
        scenario.graph, scenario.protocol_factory, scenario.config,
        trials=TRIALS, seed=SEED,
    )
    timings["sequential (scalar decoders)"] = time.perf_counter() - start

    start = time.perf_counter()
    batched = measure_protocol_batched(scenario)
    timings["batched (BatchDecoder)"] = time.perf_counter() - start

    jobs = min(default_jobs(), 8)
    start = time.perf_counter()
    parallel = measure_protocol_parallel(scenario, jobs=jobs)
    timings[f"parallel (batched, jobs={jobs})"] = time.perf_counter() - start

    assert trial_signature(batched) == trial_signature(sequential), (
        "batched runner diverged from the sequential runner"
    )
    assert trial_signature(parallel) == trial_signature(sequential), (
        "parallel runner diverged from the sequential runner"
    )

    # The perf benchmark must *time* cold runs (a store read would measure
    # JSON parsing, not the engines), but the computed trials still join the
    # shared archive so other consumers of this workload reuse them.
    record_trials(SPEC, batched)

    base = timings["sequential (scalar decoders)"]
    rounds = [r.rounds for r in sequential]
    rows = [
        {
            "runner": runner,
            "seconds": round(seconds, 2),
            "speedup": round(base / seconds, 2),
            "mean_rounds": round(sum(rounds) / len(rounds), 2),
        }
        for runner, seconds in timings.items()
    ]
    return rows


def test_batch_core_speedup(benchmark):
    rows = benchmark.pedantic(_run, **PEDANTIC)
    report(
        "E9-batch-core",
        f"Batch simulation core — uniform AG on complete(n={N}), k={K}, "
        f"{TRIALS} trials, synchronous EXCHANGE",
        rows,
        notes=[
            "All three runners are bit-identical (asserted): same seeds give "
            "the same per-trial stopping times, message counts and "
            "completion rounds.",
            f"The batched runner must be at least {MIN_SPEEDUP:.0f}x faster "
            "than the sequential scalar-decoder path.",
        ],
    )
    batched_row = next(row for row in rows if row["runner"].startswith("batched"))
    report_json(
        "E9-batch-core",
        timings={row["runner"]: row["seconds"] for row in rows},
        speedup=batched_row["speedup"],
        n=N,
        trials=TRIALS,
        scaled_down=SCALED_DOWN,
        k=K,
        seed=SEED,
        min_speedup=MIN_SPEEDUP,
        protocol="uniform-ag",
        topology="complete",
    )
    assert batched_row["speedup"] >= MIN_SPEEDUP
