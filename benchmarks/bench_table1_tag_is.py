"""E5 — Table 1, rows "TAG + IS" (Theorems 7 and 8).

On graphs with large weak conductance (the barbell and the clique chain) the
IS spanning-tree protocol completes in polylogarithmically many rounds, so for
``k = Ω(polylog n)`` TAG + IS is ``Θ(k)``.  The reproduced series:

* the stopping time of the IS tree construction alone (must stay ≈ polylog n),
* the end-to-end TAG + IS stopping time versus ``k`` (must grow linearly in k
  with a small additive term), for both time models.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from _utils import BENCH_JOBS, PEDANTIC, cached_measure, cached_sweep, report
from repro.analysis import fit_linear, scaling_table
from repro.core import SimulationConfig, TimeModel
from repro.experiments import default_config, tag_case
from repro.graphs import weak_conductance
from repro.scenarios import ScenarioSpec

TRIALS = 3
N = 24


def _is_tree_rounds():
    """Stopping time of the IS spanning-tree construction on clique-based graphs."""
    rows = []
    for name, topology, topology_params in [
        ("barbell", "barbell", {}),
        ("clique_chain(c=3)", "clique_chain", {"cliques": 3}),
    ]:
        scenario = ScenarioSpec(
            topology=topology,
            n=N,
            protocol="spanning_tree",
            spanning_tree="is",
            topology_params=topology_params,
            config=SimulationConfig(max_rounds=10_000),
            trials=TRIALS,
        ).materialize()
        rounds = [r.rounds for r in cached_measure(scenario)]
        rows.append(
            {
                "graph": name,
                "n": scenario.n,
                "weak_conductance(c=3)": round(weak_conductance(scenario.graph, 3), 3),
                "mean_rounds": round(float(np.mean(rounds)), 2),
                "max_rounds": round(float(np.max(rounds)), 2),
                "polylog_reference(4·ln n)": round(4 * math.log(scenario.n), 2),
            }
        )
    return rows


def _tag_is_k_sweep(time_model: TimeModel):
    config = default_config(time_model=time_model, max_rounds=500_000)
    ks = [6, 12, 18, 24]
    cases = [
        tag_case("barbell", N, k, spanning_tree="is", config=config,
                 label=f"k={k}", value=k)
        for k in ks
    ]
    points = cached_sweep(cases, trials=TRIALS, seed=505, jobs=BENCH_JOBS)
    rows = scaling_table(points, bound_names=("lower",), value_header="k")
    fit = fit_linear([p.value for p in points], [p.mean for p in points])
    return rows, fit


def test_is_tree_construction_is_polylog(benchmark):
    rows = benchmark.pedantic(_is_tree_rounds, **PEDANTIC)
    report(
        "E5-is-tree-construction",
        "Section 6 — IS spanning-tree construction time on large-weak-conductance graphs",
        rows,
        notes=[
            "The IS bound is O(c(log n + log δ⁻¹)/Φ_c + c²); on these graphs "
            "Φ_c = Θ(1) so a small multiple of log n rounds suffices.",
        ],
    )
    for row in rows:
        assert row["mean_rounds"] <= 4 * row["polylog_reference(4·ln n)"]


@pytest.mark.parametrize("time_model", [TimeModel.SYNCHRONOUS, TimeModel.ASYNCHRONOUS])
def test_table1_tag_is_linear_in_k(benchmark, time_model):
    rows, fit = benchmark.pedantic(_tag_is_k_sweep, args=(time_model,), **PEDANTIC)
    report(
        f"E5-tag-is-{time_model.value}",
        f"Table 1 / Theorems 7–8 — TAG + IS on the barbell (n={N}), k sweep, "
        f"{time_model.value}",
        rows,
        notes=[
            f"linear fit of mean rounds vs k: slope {fit.slope:.2f}, "
            f"intercept {fit.intercept:.1f} (Θ(k) predicts a modest constant slope "
            f"with a polylog-sized intercept).",
        ],
    )
    assert fit.slope <= 6.0
    # The additive term must stay far below the Θ(n²) uniform-gossip regime.
    assert fit.intercept <= 8 * math.log(N) ** 2
