"""E12 — the event-driven engine vs the lockstep batch engine at large ``n``.

The asymptotic claims of the paper (``Θ(n log n)`` stopping time for uniform
algebraic gossip, Theorem 1) only become visible at node counts far beyond
what the dense engines can sweep: the lockstep
:class:`~repro.gossip.batch.BatchEngineCore` pays ``O(n)`` vectorised work
per timeslot *per trial slab*, while the event-driven
:class:`~repro.gossip.event.EventGossipEngine` pays O(1) bookkeeping plus two
O(k) packed encode/eliminate steps per event and never materialises anything
``n × n``.

This benchmark runs the registry's large-``n`` workload — uniform AG over
``GF(2)`` on connected ``G(n, 2·log n/n)``, asynchronous EXCHANGE, ``k = 8``,
gf2bit backend — through both engines at ``n ∈ {256, 1024, 4096}`` and
asserts:

* both engines are **bit-identical** — same seeds give the same per-trial
  stopping times, message/helpful counts and completion rounds (the same
  contract ``tests/test_event_engine.py`` enforces axis-by-axis);
* at the largest size the event engine beats the batch engine's per-trial
  wall-clock by at least the recorded floor (the crossover the engine exists
  for).

Scale knobs (for smoke runs): ``REPRO_BENCH_EVENT_MAX_N``,
``REPRO_BENCH_EVENT_TRIALS`` and ``REPRO_BENCH_EVENT_MIN_SPEEDUP`` shrink the
workload / floor without changing the equivalence checks.
"""

from __future__ import annotations

import os
import time

from _utils import PEDANTIC, record_trials, report, report_json, trial_signature
from repro.scenarios import get_scenario

MAX_N = int(os.environ.get("REPRO_BENCH_EVENT_MAX_N", "4096"))
TRIALS = int(os.environ.get("REPRO_BENCH_EVENT_TRIALS", "4"))
SEED = 1208
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_EVENT_MIN_SPEEDUP", "1.5"))
SCALED_DOWN = (MAX_N, TRIALS, MIN_SPEEDUP) != (4096, 4, 1.5)

#: Node counts swept; the floor is asserted at the largest one.
SIZES = tuple(n for n in (256, 1024) if n < MAX_N) + (MAX_N,)

#: The registered large-n scenario is the single source of truth for the
#: workload (topology, k, field, backend); the bench only varies n, the
#: engine and the trial plan.
BASE = get_scenario("event/er-logn").replace(trials=TRIALS, seed=SEED)


def _run():
    rows = []
    speedups = {}
    timings = {}
    for n in SIZES:
        spec = BASE.replace(n=n)
        per_trial = {}
        results = {}
        for engine in ("batch", "event"):
            materialized = spec.replace(engine=engine).materialize()
            start = time.perf_counter()
            results[engine] = list(materialized.measure())
            per_trial[engine] = (time.perf_counter() - start) / TRIALS
        assert trial_signature(results["event"]) == trial_signature(
            results["batch"]
        ), f"event engine diverged from the batch engine at n={n}"
        record_trials(spec, results["event"])
        speedups[n] = per_trial["batch"] / per_trial["event"]
        timings[f"batch-n{n}"] = per_trial["batch"] * TRIALS
        timings[f"event-n{n}"] = per_trial["event"] * TRIALS
        mean_rounds = sum(r.rounds for r in results["event"]) / TRIALS
        rows.append(
            {
                "n": n,
                "batch s/trial": round(per_trial["batch"], 3),
                "event s/trial": round(per_trial["event"], 3),
                "speedup": round(speedups[n], 2),
                "mean_rounds": round(mean_rounds, 1),
            }
        )
    return rows, speedups, timings


def test_event_engine_crossover(benchmark):
    rows, speedups, timings = benchmark.pedantic(_run, **PEDANTIC)
    report(
        "E12-event-engine",
        f"Event-driven vs lockstep batch engine — uniform AG over GF(2) on "
        f"G(n, 2·log n/n), k=8, asynchronous EXCHANGE, gf2bit backend, "
        f"{TRIALS} trials",
        rows,
        notes=[
            "Both engines are bit-identical (asserted): same seeds give the "
            "same per-trial stopping times, message counts and completion "
            "rounds, so either engine serves the same result-store records.",
            f"The event engine must beat the batch engine's per-trial "
            f"wall-clock by at least {MIN_SPEEDUP:.1f}x at n={MAX_N}.",
        ],
    )
    report_json(
        "E12-event-engine",
        timings=timings,
        speedup=speedups[MAX_N],
        n=MAX_N,
        trials=TRIALS,
        scaled_down=SCALED_DOWN,
        k=8,
        seed=SEED,
        min_speedup=MIN_SPEEDUP,
        speedups={str(n): round(s, 3) for n, s in speedups.items()},
        protocol="uniform-ag",
        topology="erdos_renyi_logn",
        field_size=2,
        backend="gf2bit",
        engine="event-vs-batch",
    )
    assert speedups[MAX_N] >= MIN_SPEEDUP, (
        f"event engine speedup {speedups[MAX_N]:.2f}x at n={MAX_N} "
        f"is below the {MIN_SPEEDUP:.1f}x floor"
    )
