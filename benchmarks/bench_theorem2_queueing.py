"""E7 — Figure 1 / Theorem 2: the queueing reduction.

Reproduces the chain of systems in Figure 1 and the appendix (Figures 3–4):

* the stochastic-dominance chain  t(Q^tree) ⪯ t(Q^line) ⪯ t(Q̂^line),
* the closed-form bound (4k + 4·l_max + 16 ln n)/μ of Lemma 7 sitting above
  all of them, and
* the end-to-end reduction: the queueing prediction upper-bounds the measured
  stopping time of real uniform algebraic gossip on the same graph.
"""

from __future__ import annotations

import numpy as np

from _utils import PEDANTIC, bench_store, report
from repro.core import SimulationConfig, TimeModel
from repro.graphs import bfs_spanning_tree, grid_graph
from repro.queueing import (
    QueueingReduction,
    TreeQueueNetwork,
    lemma7_stopping_time_bound,
    line_tree,
    open_line_stopping_time,
)
from repro.scenarios import ScenarioSpec

QUEUE_TRIALS = 400
GOSSIP_TRIALS = 3


def _dominance_chain():
    """Figure 1 (c)-(e): tree ⪯ line ⪯ all-at-the-end line ⪯ Lemma 7 bound."""
    rng = np.random.default_rng(707)
    graph = grid_graph(25)
    tree = bfs_spanning_tree(graph, 0)
    n = graph.number_of_nodes()
    k = n - 1
    mu = 1.0
    customers = {node: 1 for node in tree.parent}

    tree_samples = TreeQueueNetwork(tree, mu, customers).simulate_many(QUEUE_TRIALS, rng)
    depth = tree.depth
    line = line_tree(depth + 1)
    per_level: dict[int, int] = {}
    for node in tree.parent:
        per_level[tree.depth_of(node)] = per_level.get(tree.depth_of(node), 0) + 1
    line_samples = TreeQueueNetwork(line, mu, per_level).simulate_many(QUEUE_TRIALS, rng)
    far_samples = TreeQueueNetwork(line, mu, {depth: k}).simulate_many(QUEUE_TRIALS, rng)
    open_samples = np.array(
        [open_line_stopping_time(k, depth + 1, mu, rng) for _ in range(QUEUE_TRIALS)]
    )
    bound = lemma7_stopping_time_bound(k, depth + 1, n, mu)
    rows = []
    for name, samples in [
        ("Q_tree (Fig. 1c)", tree_samples),
        ("Q_line (Fig. 1d)", line_samples),
        ("Q_line, all customers at far end", far_samples),
        ("open Jackson line, λ=μ/2 (Fig. 1e)", open_samples),
    ]:
        rows.append(
            {
                "system": name,
                "mean": round(float(np.mean(samples)), 2),
                "p95": round(float(np.quantile(samples, 0.95)), 2),
                "lemma7_bound": round(bound, 2),
            }
        )
    return rows


def _reduction_vs_gossip():
    """Theorem 1 end to end: queueing prediction vs measured gossip rounds."""
    rows = []
    for name, topology in [("ring(16)", "ring"), ("grid(16)", "grid")]:
        scenario = ScenarioSpec(
            topology=topology,
            n=16,
            config=SimulationConfig(
                field_size=2, payload_length=2,
                time_model=TimeModel.SYNCHRONOUS, max_rounds=500_000,
            ),
            trials=GOSSIP_TRIALS,
            seed=708,
        ).materialize()
        # The gossip side of the reduction is rank-only, so the batched
        # runner applies; the measured rounds match the sequential path and
        # are read through the shared result store on re-runs.
        stats = scenario.run(store=bench_store())
        reduction = QueueingReduction(
            scenario.graph, k=scenario.n, q=2, time_model=TimeModel.SYNCHRONOUS
        )
        prediction = reduction.predict_for_root(0, np.random.default_rng(709), trials=200)
        rows.append(
            {
                "graph": name,
                "measured_mean_rounds": round(stats.mean, 1),
                "measured_p95_rounds": round(stats.whp, 1),
                "queueing_simulation_p95": round(prediction.simulated_whp, 1),
                "theorem2_analytic_bound": round(reduction.predicted_rounds_upper_bound(), 1),
            }
        )
    return rows


def test_theorem2_dominance_chain(benchmark):
    rows = benchmark.pedantic(_dominance_chain, **PEDANTIC)
    report(
        "E7-queueing-dominance",
        "Figure 1 / Theorem 2 — stochastic-dominance chain of queueing systems "
        f"(BFS tree of grid(25), μ=1, {QUEUE_TRIALS} realisations each)",
        rows,
        notes=[
            "Each transformation of the proof can only increase the stopping time; "
            "the means must therefore be non-decreasing down the table, and every "
            "p95 must stay below the explicit Lemma 7 bound.",
        ],
    )
    means = [row["mean"] for row in rows]
    assert all(earlier <= later * 1.1 for earlier, later in zip(means, means[1:]))
    assert all(row["p95"] <= row["lemma7_bound"] for row in rows)


def test_theorem1_reduction_upper_bounds_gossip(benchmark):
    rows = benchmark.pedantic(_reduction_vs_gossip, **PEDANTIC)
    report(
        "E7-reduction-vs-gossip",
        "Theorem 1 — queueing-reduction prediction vs measured uniform AG "
        "(synchronous, q=2, k=n)",
        rows,
        notes=[
            "The reduction is a worst-case over-approximation, so its analytic "
            "bound and its simulated queueing p95 must both sit above the "
            "measured gossip stopping time.",
        ],
    )
    for row in rows:
        assert row["measured_p95_rounds"] <= row["theorem2_analytic_bound"]
