"""Ablations of the design choices called out in DESIGN.md.

Not a table in the paper, but each ablation isolates one modelling decision:

* **action** — EXCHANGE (analysed in the paper) vs PUSH vs PULL for uniform AG;
* **field size q** — the helpfulness probability is ≥ 1 − 1/q, so the stopping
  time should be essentially flat in q beyond q = 2;
* **spanning-tree protocol inside TAG** — BFS oracle vs uniform broadcast vs
  round-robin broadcast vs IS on the barbell;
* **phase interleaving in TAG** — faithful odd/even interleaving vs switching
  every wakeup to phase 2 once the tree is complete (a constant-factor change).

Every ablation sweeps one axis of a :class:`~repro.scenarios.ScenarioSpec`
and runs through the scenario layer — no hand-rolled factories.
"""

from __future__ import annotations

from _utils import PEDANTIC, bench_store, cached_run, report
from repro.core import GossipAction
from repro.experiments import default_config, tag_case
from repro.experiments.parallel import run_trials_batched
from repro.scenarios import ScenarioSpec

TRIALS = 3
N = 16

_RING_CONFIG = default_config(max_rounds=500_000)


def _action_ablation():
    rows = []
    for action in (GossipAction.EXCHANGE, GossipAction.PUSH, GossipAction.PULL):
        spec = ScenarioSpec(
            topology="ring", n=N, config=_RING_CONFIG.replace(action=action),
            trials=TRIALS, seed=909,
        )
        stats = cached_run(spec)
        rows.append({"action": action.value, "mean_rounds": round(stats.mean, 1),
                     "p95_rounds": round(stats.whp, 1)})
    return rows


def _field_size_ablation():
    rows = []
    for q in (2, 4, 16, 256):
        spec = ScenarioSpec(
            topology="ring", n=N, config=_RING_CONFIG.replace(field_size=q),
            trials=TRIALS, seed=910,
        )
        stats = cached_run(spec)
        rows.append({"q": q, "mean_rounds": round(stats.mean, 1),
                     "p95_rounds": round(stats.whp, 1)})
    return rows


def _tree_protocol_ablation():
    rows = []
    for stp in ("bfs_oracle", "uniform_broadcast", "brr", "is"):
        case = tag_case("barbell", N, N, spanning_tree=stp,
                        config=default_config(max_rounds=500_000))
        # A materialised case keeps its spec, which is the content address the
        # store needs alongside the explicit (graph, factory, config) triple.
        stats = run_trials_batched(case.graph, case.protocol_factory, case.config,
                                   trials=TRIALS, seed=911,
                                   store=bench_store(), spec=case.spec)
        rows.append({"spanning_tree": stp, "mean_rounds": round(stats.mean, 1),
                     "p95_rounds": round(stats.whp, 1)})
    return rows


def _interleaving_ablation():
    rows = []
    for keep_phase1, label in ((True, "faithful odd/even interleave"),
                               (False, "phase 2 only after tree completes")):
        spec = ScenarioSpec(
            topology="barbell", n=N, protocol="tag", spanning_tree="brr",
            keep_phase1_after_tree=keep_phase1,
            config=default_config(max_rounds=500_000),
            trials=TRIALS, seed=912,
        )
        stats = cached_run(spec)
        rows.append({"variant": label, "mean_rounds": round(stats.mean, 1)})
    return rows


def test_ablation_action(benchmark):
    rows = benchmark.pedantic(_action_ablation, **PEDANTIC)
    report("ablation-action", f"Ablation — gossip action, uniform AG on ring({N}), k=n", rows)
    means = {row["action"]: row["mean_rounds"] for row in rows}
    assert means["exchange"] <= means["push"]
    assert means["exchange"] <= means["pull"]


def test_ablation_field_size(benchmark):
    rows = benchmark.pedantic(_field_size_ablation, **PEDANTIC)
    report("ablation-field-size", f"Ablation — RLNC field size q, uniform AG on ring({N})", rows,
           notes=["The theory predicts only a (1 - 1/q) effect: q=2 may be slightly "
                  "slower, larger q essentially flat."])
    means = [row["mean_rounds"] for row in rows]
    assert max(means) <= 2.0 * min(means)


def test_ablation_tree_protocol(benchmark):
    rows = benchmark.pedantic(_tree_protocol_ablation, **PEDANTIC)
    report("ablation-tree-protocol", f"Ablation — spanning-tree protocol inside TAG, barbell({N})", rows)
    assert all(row["mean_rounds"] > 0 for row in rows)


def test_ablation_phase_interleaving(benchmark):
    rows = benchmark.pedantic(_interleaving_ablation, **PEDANTIC)
    report("ablation-interleaving", f"Ablation — TAG phase interleaving, barbell({N}), k=n", rows,
           notes=["Dropping phase-1 steps after the tree completes can only help, "
                  "and only by a constant factor."])
    faithful, eager = rows[0]["mean_rounds"], rows[1]["mean_rounds"]
    assert eager <= faithful * 1.2
