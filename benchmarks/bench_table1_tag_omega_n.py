"""E4 — Table 1, row "TAG, k = Ω(n), any graph" (Section 5): Θ(n) total time.

Sweeps ``n`` with ``k = n`` on the barbell (the worst case for uniform gossip)
and on the grid, running TAG with the round-robin broadcast ``B_RR``.  The
paper's claim is that the stopping time is ``Θ(n)`` on *any* graph; the
reproduced series is the measured mean/p95 versus ``n`` together with the
fitted growth exponent (should be ≈ 1) and the ratio against the explicit
``k + ln n + 3n`` expression.
"""

from __future__ import annotations

import pytest

from _utils import BENCH_JOBS, PEDANTIC, cached_sweep, report
from repro.analysis import fit_power_law, scaling_table
from repro.experiments import default_config, tag_case

TRIALS = 3
SIZES = [8, 16, 24, 32]


@pytest.mark.parametrize("topology", ["barbell", "grid"])
def test_table1_tag_brr_is_linear(benchmark, topology):
    def _run():
        config = default_config(max_rounds=500_000)
        cases = [
            tag_case(topology, n, n, spanning_tree="brr", config=config,
                     label=f"n={n}", value=n)
            for n in SIZES
        ]
        points = cached_sweep(cases, trials=TRIALS, seed=404, jobs=BENCH_JOBS)
        rows = scaling_table(points, bound_names=("tag_brr", "lower"), value_header="n")
        fit = fit_power_law([p.value for p in points], [p.mean for p in points])
        return rows, fit

    rows, fit = benchmark.pedantic(_run, **PEDANTIC)
    report(
        f"E4-tag-omega-n-{topology}",
        f"Table 1 / Section 5 — TAG + B_RR, k = n, {topology} (Θ(n) claim)",
        rows,
        notes=[
            f"fitted growth exponent of mean rounds vs n: {fit.exponent:.2f} "
            f"(Θ(n) predicts ≈ 1; R²={fit.r_squared:.3f})",
            "tag_brr = k + ln n + 3n (explicit-constant upper bound).",
        ],
    )
    assert all(row["ratio(tag_brr)"] <= 1.5 for row in rows)
    assert 0.5 <= fit.exponent <= 1.5
