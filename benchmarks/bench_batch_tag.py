"""E10 — the TAG batch fast path: lockstep two-phase trials vs scalar engine.

Runs the paper's headline protocol — TAG with the round-robin broadcast tree
``B_RR`` of Theorem 5, ``k`` messages on a complete graph of ``n`` nodes,
synchronous EXCHANGE — through both trial runners:

* sequential: one :class:`~repro.gossip.engine.GossipEngine` per trial with
  the scalar :class:`~repro.protocols.tag.TagProtocol` (per-packet Python
  Gaussian elimination, per-delivery ``O(n)`` tree-completeness scans),
* batched: all trials in one :class:`~repro.gossip.batch_tag.BatchTagEngine`
  (phase-1 tree state as trials x nodes arrays, phase-2 parent EXCHANGEs
  through the vectorised :class:`~repro.rlnc.batch.BatchDecoder` grid).

The assertions are the contract of the fast path: the batched runner must be
**bit-identical** to the sequential one (same seeds → same per-trial stopping
times, message counts, completion rounds and tree shapes) and at least
``MIN_SPEEDUP``x faster at ``n = 128``.

Scale knobs (for smoke runs): ``REPRO_BENCH_TAG_N``,
``REPRO_BENCH_TAG_TRIALS`` and ``REPRO_BENCH_TAG_MIN_SPEEDUP`` shrink the
workload / floor without changing the equivalence checks.
"""

from __future__ import annotations

import os
import time

from _utils import PEDANTIC, record_trials, report, report_json, trial_signature
from repro.analysis.stopping_time import measure_protocol
from repro.experiments.parallel import measure_protocol_batched
from repro.scenarios import ScenarioSpec, default_scenario_config

N = int(os.environ.get("REPRO_BENCH_TAG_N", "128"))
K = 16
TRIALS = int(os.environ.get("REPRO_BENCH_TAG_TRIALS", "16"))
SEED = 1107
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_TAG_MIN_SPEEDUP", "5.0"))
TOPOLOGY = "complete"
SPANNING_TREE = "brr"
SCALED_DOWN = (N, TRIALS, MIN_SPEEDUP) != (128, 16, 5.0)

#: The whole workload as one declarative scenario (see bench_batch_core).
SPEC = ScenarioSpec(
    topology=TOPOLOGY,
    n=N,
    k=K,
    protocol="tag",
    spanning_tree=SPANNING_TREE,
    config=default_scenario_config(max_rounds=50_000),
    trials=TRIALS,
    seed=SEED,
)


def _run():
    scenario = SPEC.materialize()
    timings = {}

    start = time.perf_counter()
    sequential = measure_protocol(
        scenario.graph, scenario.protocol_factory, scenario.config,
        trials=TRIALS, seed=SEED,
    )
    timings["sequential (scalar TagProtocol)"] = time.perf_counter() - start

    start = time.perf_counter()
    batched = measure_protocol_batched(scenario)
    timings["batched (BatchTagEngine)"] = time.perf_counter() - start

    assert trial_signature(batched) == trial_signature(sequential), (
        "batched TAG runner diverged from the sequential runner"
    )

    # The perf benchmark must *time* cold runs (a store read would measure
    # JSON parsing, not the engines), but the computed trials still join the
    # shared archive so other consumers of this workload reuse them.
    record_trials(SPEC, batched)

    base = timings["sequential (scalar TagProtocol)"]
    rounds = [r.rounds for r in sequential]
    rows = [
        {
            "runner": runner,
            "seconds": round(seconds, 2),
            "speedup": round(base / seconds, 2),
            "mean_rounds": round(sum(rounds) / len(rounds), 2),
        }
        for runner, seconds in timings.items()
    ]
    return rows


def test_batch_tag_speedup(benchmark):
    rows = benchmark.pedantic(_run, **PEDANTIC)
    report(
        "E10-batch-tag",
        f"TAG batch fast path — TAG+B_RR on {TOPOLOGY}(n={N}), k={K}, "
        f"{TRIALS} trials, synchronous EXCHANGE",
        rows,
        notes=[
            "Both runners are bit-identical (asserted): same seeds give the "
            "same per-trial stopping times, message counts, completion "
            "rounds and tree metadata.",
            f"The batched runner must be at least {MIN_SPEEDUP:.1f}x faster "
            "than the sequential scalar path.",
        ],
    )
    batched_row = next(row for row in rows if row["runner"].startswith("batched"))
    report_json(
        "E10-batch-tag",
        timings={row["runner"]: row["seconds"] for row in rows},
        speedup=batched_row["speedup"],
        n=N,
        trials=TRIALS,
        scaled_down=SCALED_DOWN,
        k=K,
        seed=SEED,
        min_speedup=MIN_SPEEDUP,
        protocol="tag",
        spanning_tree=SPANNING_TREE,
        topology=TOPOLOGY,
    )
    assert batched_row["speedup"] >= MIN_SPEEDUP
