"""E8 — the barbell worst case (Section 1.1): uniform AG vs TAG.

The barbell graph is the paper's canonical example of a topology with a severe
bottleneck: uniform algebraic gossip needs Ω(n²) rounds for all-to-all, while
TAG + B_RR needs only Θ(n), so the speed-up ratio grows like n.  The
reproduced series sweeps ``n`` with ``k = n`` and reports both protocols'
stopping times, their ratio, and the fitted growth exponents.
"""

from __future__ import annotations

from _utils import PEDANTIC, cached_sweep, report
from repro.analysis import fit_power_law
from repro.experiments import default_config, tag_case, uniform_ag_case

TRIALS = 2
SIZES = [8, 12, 16, 24, 32]


def _run():
    config = default_config(max_rounds=1_000_000)
    uniform_points = cached_sweep(
        [
            uniform_ag_case("barbell", n, n, config=config, label=f"uniform n={n}", value=n)
            for n in SIZES
        ],
        trials=TRIALS,
        seed=808,
    )
    tag_points = cached_sweep(
        [
            tag_case("barbell", n, n, spanning_tree="brr", config=config,
                     label=f"tag n={n}", value=n)
            for n in SIZES
        ],
        trials=TRIALS,
        seed=809,
    )
    rows = []
    for uniform, tag in zip(uniform_points, tag_points):
        rows.append(
            {
                "n": int(uniform.value),
                "uniform_ag_mean": round(uniform.mean, 1),
                "tag_brr_mean": round(tag.mean, 1),
                "speedup": round(uniform.mean / tag.mean, 2),
            }
        )
    uniform_fit = fit_power_law(SIZES, [p.mean for p in uniform_points])
    tag_fit = fit_power_law(SIZES, [p.mean for p in tag_points])
    return rows, uniform_fit, tag_fit


def test_barbell_speedup(benchmark):
    rows, uniform_fit, tag_fit = benchmark.pedantic(_run, **PEDANTIC)
    report(
        "E8-barbell",
        f"Barbell worst case — uniform AG vs TAG + B_RR, k = n ({TRIALS} trials)",
        rows,
        notes=[
            f"uniform AG growth exponent: {uniform_fit.exponent:.2f} "
            f"(the Ω(n²) regime predicts → 2 as n grows)",
            f"TAG + B_RR growth exponent: {tag_fit.exponent:.2f} (Θ(n) predicts ≈ 1)",
            "speedup = uniform / TAG; the paper predicts it grows like n.",
        ],
    )
    # Qualitative shape: uniform AG grows strictly faster than TAG and the
    # speed-up at the largest size clearly exceeds the speed-up at the smallest.
    assert uniform_fit.exponent > tag_fit.exponent
    assert rows[-1]["speedup"] > rows[0]["speedup"]
    assert rows[-1]["speedup"] > 1.0
