"""E14 — the asymptotic stopping-time campaign through streaming summaries.

The ``asymptotics`` campaign walks ``n`` over decades on two families —
connected ``G(n, 2·log n/n)`` expanders (Theorem 2's ``O(n)`` regime) and
rings of log-sized cliques, the latter one decade lower to equalise
per-decade event cost — through the event-driven CSR pipeline, then fits
``T(n) = c·n^a`` by least squares on the log-log means with bootstrap
confidence intervals.  This benchmark runs the campaign at its committed
decade scale and asserts the two properties the campaign's design rests on:

* **summary records pay for themselves** — at the largest decade, archiving
  the stopping-time projection (:func:`repro.store.summarize_result`)
  instead of the full :class:`~repro.core.results.RunResult` (per-node
  completion rounds included) shrinks the serialized trial record by the
  recorded ``speedup`` factor, floor-gated by ``check_regression.py``;
  and the summary-backed aggregate is **bit-identical** to aggregating
  the re-simulated full results;
* **the fit is tight** — the ring-of-cliques family's log-log fit reaches
  the ``fit_r_squared`` floor (its stopping time grows cleanly across
  decades; the expander family's near-flat curve is reported, not gated).

Scale knobs (for smoke runs): ``REPRO_BENCH_ASY_MIN_N``,
``REPRO_BENCH_ASY_MAX_N``, ``REPRO_BENCH_ASY_TRIALS``,
``REPRO_BENCH_ASY_MIN_BYTES_RATIO`` and ``REPRO_BENCH_ASY_MIN_R2`` shrink
the decades / floors without changing the bit-identity check.  The record
bytes ratio scales with ``n`` (full records carry ``n`` completion-round
entries), so smoke lanes at small ``n`` must lower the bytes floor.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from _utils import PEDANTIC, bench_store, peak_rss_mib, report, report_json

from repro.campaigns import asymptotics_campaign, run_campaign
from repro.core import aggregate_results
from repro.store import ResultStore, summarize_result

MIN_N = int(os.environ.get("REPRO_BENCH_ASY_MIN_N", "1000"))
MAX_N = int(os.environ.get("REPRO_BENCH_ASY_MAX_N", "10000"))
TRIALS = int(os.environ.get("REPRO_BENCH_ASY_TRIALS", "5"))
MIN_BYTES_RATIO = float(os.environ.get("REPRO_BENCH_ASY_MIN_BYTES_RATIO", "50.0"))
MIN_R2 = float(os.environ.get("REPRO_BENCH_ASY_MIN_R2", "0.9"))
SCALED_DOWN = (MIN_N, MAX_N, TRIALS, MIN_BYTES_RATIO, MIN_R2) != (
    1000,
    10000,
    5,
    50.0,
    0.9,
)


def _record_bytes(payload) -> int:
    """Serialized size of one trial record, store-shard style (compact JSON)."""
    return len(json.dumps(payload, separators=(",", ":"), sort_keys=True))


def _run():
    campaign = asymptotics_campaign(min_n=MIN_N, max_n=MAX_N, trials=TRIALS)
    store = bench_store()
    scratch = None
    if store is None:  # caching disabled: run against a throwaway store
        scratch = tempfile.TemporaryDirectory(prefix="bench-asymptotics-")
        store = ResultStore(scratch.name)
    try:
        start = time.perf_counter()
        result = run_campaign(campaign, store=store)
        campaign_seconds = time.perf_counter() - start

        # The largest expander decade carries the record-size claim: its full
        # RunResult holds n completion-round entries, its summary five keys.
        largest = max(
            (o for o in result.outcomes if o.unit.group == "er-logn"),
            key=lambda outcome: outcome.spec.n,
        )
        start = time.perf_counter()
        scenario = largest.spec.materialize_preferred()
        full_results = scenario.measure(batch=True)
        resimulate_seconds = time.perf_counter() - start
        assert store.aggregate(largest.spec) == aggregate_results(full_results), (
            "the summary-backed aggregate diverged from re-simulated full "
            f"records at n={largest.spec.n}"
        )
        full_bytes = sum(_record_bytes(r.to_dict()) for r in full_results)
        summary_bytes = sum(_record_bytes(summarize_result(r)) for r in full_results)
        bytes_ratio = full_bytes / summary_bytes
    finally:
        if scratch is not None:
            scratch.cleanup()

    fit_artifact = next(
        a for a in result.artifacts if a.artifact.kind == "asymptotic-fit"
    )
    fits = {row["family"]: dict(row) for row in fit_artifact.rows}
    ring = fits["ring-of-cliques"]
    assert ring["note"] == "", (
        f"ring-of-cliques exponent fit degenerated: {ring['note']}"
    )
    return (
        list(fit_artifact.rows),
        fits,
        bytes_ratio,
        (full_bytes, summary_bytes),
        {"campaign": campaign_seconds, "resimulate_full": resimulate_seconds},
    )


def test_asymptotics_campaign(benchmark):
    rows, fits, bytes_ratio, (full_bytes, summary_bytes), timings = (
        benchmark.pedantic(_run, **PEDANTIC)
    )
    ring_r2 = float(fits["ring-of-cliques"]["r_squared"])
    report(
        "E14-asymptotics",
        f"Asymptotic stopping-time exponents — uniform AG over GF(2), event "
        f"engine + CSR pipeline, expander decades n={MIN_N}..{MAX_N} (ring "
        f"family one decade lower), {TRIALS} trials per decade, streaming "
        f"summary records",
        rows,
        notes=[
            f"At n={MAX_N} a full trial record serializes to "
            f"{full_bytes // TRIALS} B vs {summary_bytes // TRIALS} B for its "
            f"stopping-time summary — {bytes_ratio:.0f}x smaller on disk "
            f"(floor {MIN_BYTES_RATIO:.0f}x), bit-identical aggregates "
            "(asserted).",
            f"The ring-of-cliques log-log fit must reach r² ≥ {MIN_R2:.2f} "
            f"(measured {ring_r2:.4f}); the near-flat expander fit is "
            "reported unfloored.",
        ],
    )
    report_json(
        "E14-asymptotics",
        timings=timings,
        speedup=bytes_ratio,
        n=MAX_N,
        trials=TRIALS,
        scaled_down=SCALED_DOWN,
        min_speedup=MIN_BYTES_RATIO,
        floors={"fit_r_squared": MIN_R2},
        fit_r_squared=ring_r2,
        exponents={
            family: row["exponent"] for family, row in sorted(fits.items())
        },
        record_bytes={"full": full_bytes, "summary": summary_bytes},
        min_n=MIN_N,
        k=8,
        protocol="uniform-ag",
        families=sorted(fits),
        field_size=2,
        backend="gf2bit",
        engine="event",
        peak_rss_mib_run=peak_rss_mib(),
    )
    assert bytes_ratio >= MIN_BYTES_RATIO, (
        f"summary records are only {bytes_ratio:.1f}x smaller than full "
        f"records at n={MAX_N}, below the {MIN_BYTES_RATIO:.0f}x floor"
    )
    assert ring_r2 >= MIN_R2, (
        f"ring-of-cliques fit r²={ring_r2:.4f} at n={MIN_N}..{MAX_N} is "
        f"below the {MIN_R2:.2f} floor"
    )
