"""E2 — Table 1, row "Uniform AG, constant maximum degree" (Theorem 3).

Two sweeps on constant-degree graphs:

* a ``k`` sweep at fixed ``n`` (the stopping time must grow like ``Θ(k)``
  once ``k`` dominates ``D``), and
* an ``n`` sweep at ``k = n`` (the stopping time must grow linearly, i.e.
  ``Θ(k + D) = Θ(n)`` on the ring).

Both the measured/bound ratio and the fitted growth exponent are reported.
"""

from __future__ import annotations

import pytest

from _utils import BENCH_JOBS, PEDANTIC, cached_sweep, report
from repro.analysis import fit_power_law, scaling_table
from repro.experiments import default_config, uniform_ag_case

TRIALS = 3


def _k_sweep():
    config = default_config(max_rounds=500_000)
    ks = [4, 8, 16, 32]
    cases = [
        uniform_ag_case("ring", 32, k, config=config, label=f"k={k}", value=k) for k in ks
    ]
    points = cached_sweep(cases, trials=TRIALS, seed=202, jobs=BENCH_JOBS)
    rows = scaling_table(points, bound_names=("theorem3", "lower"), value_header="k")
    fit = fit_power_law([p.value for p in points], [p.mean for p in points])
    return rows, fit


def _n_sweep():
    config = default_config(max_rounds=500_000)
    ns = [8, 16, 24, 32]
    cases = [
        uniform_ag_case("ring", n, n, config=config, label=f"n={n}", value=n) for n in ns
    ]
    points = cached_sweep(cases, trials=TRIALS, seed=203, jobs=BENCH_JOBS)
    rows = scaling_table(points, bound_names=("theorem3", "lower"), value_header="n")
    fit = fit_power_law([p.value for p in points], [p.mean for p in points])
    return rows, fit


def test_table1_constant_degree_k_scaling(benchmark):
    rows, fit = benchmark.pedantic(_k_sweep, **PEDANTIC)
    report(
        "E2-constant-degree-k-sweep",
        "Table 1 / Theorem 3 — uniform AG on the ring (n=32), k sweep",
        rows,
        notes=[
            f"fitted growth exponent of mean rounds vs k: {fit.exponent:.2f} "
            f"(R²={fit.r_squared:.3f})",
            "With k ≤ n and messages spread around the ring the D = n/2 term of "
            "Θ(k + D) dominates, so the measured curve is nearly flat in k — "
            "exactly what the bound predicts.  The n sweep below (k = n) shows "
            "the linear regime where k and D grow together.",
        ],
    )
    assert all(row["ratio(theorem3)"] <= 4.0 for row in rows)
    # Θ(k + D) with D fixed allows at most linear growth in k.
    assert fit.exponent <= 1.4
    means = [row["mean_rounds"] for row in rows]
    assert all(earlier <= later * 1.25 for earlier, later in zip(means, means[1:]))


def test_table1_constant_degree_n_scaling(benchmark):
    rows, fit = benchmark.pedantic(_n_sweep, **PEDANTIC)
    report(
        "E2-constant-degree-n-sweep",
        "Table 1 / Theorem 3 — uniform AG on the ring, all-to-all (k = n), n sweep",
        rows,
        notes=[
            f"fitted growth exponent of mean rounds vs n: {fit.exponent:.2f} "
            f"(Θ(k + D) = Θ(n) predicts ≈ 1; R²={fit.r_squared:.3f})",
        ],
    )
    assert all(row["ratio(theorem3)"] <= 4.0 for row in rows)
    assert 0.6 <= fit.exponent <= 1.5
