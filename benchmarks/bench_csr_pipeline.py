"""E13 — the direct-CSR topology pipeline vs the networkx pipeline at large ``n``.

The event-driven engine (E12) removed the per-event cost of large-``n``
uniform algebraic gossip; what remained was the *materialisation* cost: the
networkx pipeline builds a dict-of-dicts ``nx.Graph`` (hundreds of bytes per
edge, plus ``n`` scalar decoders per trial) only to flatten it into the CSR
arrays the engine actually walks.  The direct-CSR pipeline
(:meth:`~repro.scenarios.ScenarioSpec.materialize_csr`) builds those arrays
straight from the generator's edge stream — byte-identical ``(indptr,
indices)`` per seed, by the tested builder contract — and feeds the engine a
decoder-less rank-only process.

This benchmark runs the registry's large-``n`` workload — uniform AG over
``GF(2)`` on connected ``G(n, 2·log n/n)``, asynchronous EXCHANGE, ``k = 8``,
gf2bit backend, event engine — through **both pipelines in separate
subprocesses** (``ru_maxrss`` is a process-lifetime high-water mark, so a
per-pipeline peak needs a per-pipeline process) and asserts:

* both pipelines are **bit-identical** — the per-trial result signatures
  (stopping times, message/helpful counts, completion rounds, metadata)
  hash identically;
* the direct pipeline materialises at least ``5×`` faster and the run's
  peak RSS is at least ``2×`` smaller (the committed ``BENCH_E13`` record is
  gated on both by ``check_regression.py``).

Scale knobs (for smoke runs): ``REPRO_BENCH_CSR_N``,
``REPRO_BENCH_CSR_TRIALS``, ``REPRO_BENCH_CSR_MIN_SPEEDUP`` and
``REPRO_BENCH_CSR_MIN_RSS_REDUCTION`` shrink the workload / floors without
changing the equivalence check.  (At small ``n`` the RSS ratio tends to 1 —
the interpreter baseline dominates — so smoke lanes lower the RSS floor.)
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import time
from pathlib import Path

from _utils import PEDANTIC, report, report_json

N = int(os.environ.get("REPRO_BENCH_CSR_N", "100000"))
TRIALS = int(os.environ.get("REPRO_BENCH_CSR_TRIALS", "2"))
SEED = 1311
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_CSR_MIN_SPEEDUP", "5.0"))
MIN_RSS_REDUCTION = float(
    os.environ.get("REPRO_BENCH_CSR_MIN_RSS_REDUCTION", "2.0")
)
SCALED_DOWN = (N, TRIALS, MIN_SPEEDUP, MIN_RSS_REDUCTION) != (100000, 2, 5.0, 2.0)

_REPO = Path(__file__).resolve().parent.parent


def _child(pipeline: str, n: int, trials: int, seed: int) -> None:
    """Run one pipeline's materialise + simulate phases; print a JSON record."""
    from _utils import peak_rss_mib, trial_signature
    from repro.scenarios import get_scenario

    spec = get_scenario("event/er-logn").replace(n=n, trials=trials, seed=seed)
    start = time.perf_counter()
    scenario = spec.materialize_csr() if pipeline == "csr" else spec.materialize()
    materialize_seconds = time.perf_counter() - start
    start = time.perf_counter()
    results = scenario.measure(batch=False)
    simulate_seconds = time.perf_counter() - start
    signature = hashlib.sha256(
        repr(trial_signature(results)).encode("utf-8")
    ).hexdigest()
    print(
        json.dumps(
            {
                "pipeline": scenario.pipeline,
                "n": scenario.n,
                "materialize_seconds": materialize_seconds,
                "simulate_seconds": simulate_seconds,
                "peak_rss_mib": peak_rss_mib(),
                "signature": signature,
                "mean_rounds": sum(r.rounds for r in results) / len(results),
            }
        )
    )


def _run_pipeline(pipeline: str) -> dict:
    env = dict(os.environ)
    src = str(_REPO / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    proc = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--child",
            pipeline,
            str(N),
            str(TRIALS),
            str(SEED),
        ],
        capture_output=True,
        text=True,
        cwd=_REPO,
        env=env,
    )
    if proc.returncode != 0:
        raise AssertionError(
            f"{pipeline} pipeline child failed "
            f"(exit {proc.returncode}):\n{proc.stderr[-2000:]}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _run():
    measured = {pipeline: _run_pipeline(pipeline) for pipeline in ("networkx", "csr")}
    nx_rec, csr_rec = measured["networkx"], measured["csr"]
    assert nx_rec["signature"] == csr_rec["signature"], (
        "the CSR pipeline diverged from the networkx pipeline at "
        f"n={N}: per-trial result signatures differ"
    )
    speedup = nx_rec["materialize_seconds"] / csr_rec["materialize_seconds"]
    rss_reduction = nx_rec["peak_rss_mib"] / csr_rec["peak_rss_mib"]
    rows = [
        {
            "pipeline": record["pipeline"],
            "materialize s": round(record["materialize_seconds"], 3),
            "simulate s": round(record["simulate_seconds"], 3),
            "peak RSS MiB": round(record["peak_rss_mib"], 1),
            "mean_rounds": round(record["mean_rounds"], 1),
        }
        for record in (nx_rec, csr_rec)
    ]
    return rows, measured, speedup, rss_reduction


def test_csr_pipeline_crossover(benchmark):
    rows, measured, speedup, rss_reduction = benchmark.pedantic(_run, **PEDANTIC)
    nx_rec, csr_rec = measured["networkx"], measured["csr"]
    report(
        "E13-csr-pipeline",
        f"Direct-CSR vs networkx topology pipeline — uniform AG over GF(2) on "
        f"G(n, 2·log n/n), n={N}, k=8, asynchronous EXCHANGE, gf2bit backend, "
        f"event engine, {TRIALS} trials (one subprocess per pipeline)",
        rows,
        notes=[
            "Both pipelines are bit-identical (asserted): the per-trial "
            "result signatures hash identically, so either pipeline serves "
            "the same result-store records.",
            f"The direct pipeline must materialise ≥{MIN_SPEEDUP:.1f}x faster "
            f"(measured {speedup:.1f}x) and peak at ≤1/{MIN_RSS_REDUCTION:.1f} "
            f"of the RSS (measured 1/{rss_reduction:.1f}).",
        ],
    )
    report_json(
        "E13-csr-pipeline",
        timings={
            "networkx": nx_rec["materialize_seconds"] + nx_rec["simulate_seconds"],
            "csr": csr_rec["materialize_seconds"] + csr_rec["simulate_seconds"],
        },
        speedup=speedup,
        n=N,
        trials=TRIALS,
        scaled_down=SCALED_DOWN,
        materialize_seconds={
            "networkx": nx_rec["materialize_seconds"],
            "csr": csr_rec["materialize_seconds"],
        },
        simulate_seconds={
            "networkx": nx_rec["simulate_seconds"],
            "csr": csr_rec["simulate_seconds"],
        },
        peak_rss_mib_per_pipeline={
            "networkx": round(nx_rec["peak_rss_mib"], 1),
            "csr": round(csr_rec["peak_rss_mib"], 1),
        },
        rss_reduction=round(rss_reduction, 3),
        floors={"rss_reduction": MIN_RSS_REDUCTION},
        k=8,
        seed=SEED,
        min_speedup=MIN_SPEEDUP,
        protocol="uniform-ag",
        topology="erdos_renyi_logn",
        field_size=2,
        backend="gf2bit",
        engine="event",
    )
    assert speedup >= MIN_SPEEDUP, (
        f"CSR materialize speedup {speedup:.2f}x at n={N} is below the "
        f"{MIN_SPEEDUP:.1f}x floor"
    )
    assert rss_reduction >= MIN_RSS_REDUCTION, (
        f"CSR peak-RSS reduction {rss_reduction:.2f}x at n={N} is below the "
        f"{MIN_RSS_REDUCTION:.1f}x floor"
    )


if __name__ == "__main__":
    if len(sys.argv) == 6 and sys.argv[1] == "--child":
        _child(sys.argv[2], int(sys.argv[3]), int(sys.argv[4]), int(sys.argv[5]))
    else:  # pragma: no cover - convenience entry point
        sys.exit("usage: bench_csr_pipeline.py --child {networkx|csr} N TRIALS SEED")
