"""E3 — Table 1, row "TAG, any graph" (Theorem 4).

Runs TAG with three different spanning-tree protocols (round-robin broadcast,
uniform broadcast, BFS oracle) on bottlenecked and regular topologies and
compares the measured stopping time against the
``O(k + log n + d(S) + t(S))`` bound.
"""

from __future__ import annotations

from _utils import BENCH_JOBS, PEDANTIC, cached_sweep, report
from repro.analysis import scaling_table
from repro.core import TimeModel
from repro.experiments import default_config, tag_case

TRIALS = 3
N = 24


def _run():
    config = default_config(max_rounds=500_000)
    async_config = default_config(time_model=TimeModel.ASYNCHRONOUS, max_rounds=500_000)
    cases = [
        tag_case("barbell", N, N, spanning_tree="brr", config=config,
                 label="barbell / BRR / sync"),
        tag_case("barbell", N, N, spanning_tree="uniform_broadcast", config=config,
                 label="barbell / uniform B / sync"),
        tag_case("barbell", N, N, spanning_tree="bfs_oracle", config=config,
                 label="barbell / BFS oracle / sync"),
        tag_case("grid", N, N, spanning_tree="brr", config=config,
                 label="grid / BRR / sync"),
        tag_case("line", N, N, spanning_tree="brr", config=config,
                 label="line / BRR / sync"),
        tag_case("barbell", N, N, spanning_tree="brr", config=async_config,
                 label="barbell / BRR / async"),
    ]
    points = cached_sweep(cases, trials=TRIALS, seed=303, jobs=BENCH_JOBS)
    return scaling_table(points, bound_names=("theorem4", "lower"), value_header="n")


def test_table1_tag_general_bound(benchmark):
    rows = benchmark.pedantic(_run, **PEDANTIC)
    report(
        "E3-tag-general",
        f"Table 1 / Theorem 4 — TAG with several spanning-tree protocols "
        f"(n=k={N}, {TRIALS} trials)",
        rows,
        notes=[
            "theorem4 = k + ln n + d(S) + t(S) with d(S) ≤ 2D and t(S) ≤ 3n "
            "(the B_RR bound); the claim holds when ratio(theorem4) stays below "
            "a constant across rows.",
        ],
    )
    assert all(row["ratio(theorem4)"] <= 1.5 for row in rows)
