"""E9 — structural facts used by the proofs: Claim 1 and Lemma 2.

Not a table in the paper, but both facts gate the main theorems, so the
benchmark sweeps the topology families and records the measured diameter /
path-degree-sum against the claimed bounds.

Everything here is a deterministic graph measurement — no Monte Carlo trials
— so, like ``bench_field_ops``, this benchmark has nothing to read through
the shared persistent result store (``_utils.bench_store``).
"""

from __future__ import annotations

from _utils import PEDANTIC, report
from repro.analysis import claim1_min_diameter, lemma2_path_degree_bound
from repro.graphs import (
    build_topology,
    diameter,
    max_degree,
    max_shortest_path_degree_sum,
)

FAMILIES = ["line", "ring", "grid", "binary_tree", "barbell", "complete", "random_regular"]
SIZES = [16, 32, 64]


def _run():
    rows = []
    for family in FAMILIES:
        for n in SIZES:
            graph = build_topology(family, n)
            actual_n = graph.number_of_nodes()
            delta = max_degree(graph)
            rows.append(
                {
                    "graph": family,
                    "n": actual_n,
                    "max_degree": delta,
                    "diameter": diameter(graph),
                    "claim1_min_diameter": round(claim1_min_diameter(actual_n, delta), 2),
                    "path_degree_sum": max_shortest_path_degree_sum(graph, source=0),
                    "lemma2_bound_3n": lemma2_path_degree_bound(actual_n),
                }
            )
    return rows


def test_structural_claims(benchmark):
    rows = benchmark.pedantic(_run, **PEDANTIC)
    report(
        "E9-structural",
        "Claim 1 (D ≥ log_Δ n − 2) and Lemma 2 (Σ degrees on a shortest path ≤ 3n)",
        rows,
    )
    for row in rows:
        assert row["diameter"] >= row["claim1_min_diameter"]
        assert row["path_degree_sum"] <= row["lemma2_bound_3n"]
