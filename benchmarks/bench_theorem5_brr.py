"""E4b — Theorem 5: the round-robin broadcast ``B_RR`` finishes in O(n) rounds.

Sweeps ``n`` on several topologies and reports the broadcast completion time
(and the depth of the resulting spanning tree) against the explicit ``3n``
bound for the synchronous model and a constant·n bound for the asynchronous
model.  Also checks Lemma 2 structurally: the degree sum along any shortest
path from the root is at most ``3n``.
"""

from __future__ import annotations

import numpy as np
import pytest

from _utils import PEDANTIC, report
from repro.analysis import brr_broadcast_upper_bound
from repro.core import SimulationConfig, TimeModel
from repro.gossip import run_spanning_tree_batch
from repro.graphs import (
    barbell_graph,
    build_topology,
    max_shortest_path_degree_sum,
)
from repro.protocols import RoundRobinBroadcastTree

TRIALS = 3
TOPOLOGIES = ["line", "grid", "barbell", "complete", "binary_tree"]
N = 32


def _broadcast_rows(time_model: TimeModel):
    rows = []
    for topology in TOPOLOGIES:
        graph = build_topology(topology, N)
        n = graph.number_of_nodes()
        config = SimulationConfig(time_model=time_model, max_rounds=100 * n)
        # All trials in one lockstep batch engine — bit-identical to running
        # GossipEngine per trial with the same generators, just faster.
        rngs = [np.random.default_rng(seed) for seed in range(TRIALS)]
        protocols = [RoundRobinBroadcastTree(graph, root=0, rng=rng) for rng in rngs]
        results = run_spanning_tree_batch(graph, protocols, config, rngs)
        rounds = [result.rounds for result in results]
        depths = [protocol.current_tree().depth for protocol in protocols]
        rows.append(
            {
                "graph": topology,
                "n": n,
                "mean_rounds": round(float(np.mean(rounds)), 1),
                "max_rounds": int(np.max(rounds)),
                "tree_depth": int(np.max(depths)),
                "bound_3n": int(brr_broadcast_upper_bound(n)),
                "lemma2_path_degree_sum": max_shortest_path_degree_sum(graph, source=0),
            }
        )
    return rows


@pytest.mark.parametrize("time_model", [TimeModel.SYNCHRONOUS, TimeModel.ASYNCHRONOUS])
def test_theorem5_brr_broadcast_linear(benchmark, time_model):
    rows = benchmark.pedantic(_broadcast_rows, args=(time_model,), **PEDANTIC)
    report(
        f"E4b-brr-broadcast-{time_model.value}",
        f"Theorem 5 — round-robin broadcast B_RR stopping time, {time_model.value} (n≈{N})",
        rows,
        notes=[
            "Synchronous: at most 3n rounds deterministically; asynchronous: O(n) "
            "rounds with exponentially high probability (we allow a 4x constant).",
            "lemma2_path_degree_sum ≤ 3n certifies the structural lemma the proof uses.",
        ],
    )
    for row in rows:
        limit = row["bound_3n"] if time_model is TimeModel.SYNCHRONOUS else 4 * row["bound_3n"]
        assert row["max_rounds"] <= limit
        assert row["lemma2_path_degree_sum"] <= 3 * row["n"]


def test_theorem5_brr_scaling_with_n(benchmark):
    def _run():
        rows = []
        for n in (16, 32, 48, 64):
            graph = barbell_graph(n)
            config = SimulationConfig(max_rounds=100 * n)
            rngs = [np.random.default_rng(seed) for seed in range(TRIALS)]
            protocols = [RoundRobinBroadcastTree(graph, root=0, rng=rng) for rng in rngs]
            rounds = [r.rounds for r in run_spanning_tree_batch(graph, protocols, config, rngs)]
            rows.append(
                {
                    "n": graph.number_of_nodes(),
                    "mean_rounds": round(float(np.mean(rounds)), 1),
                    "bound_3n": int(brr_broadcast_upper_bound(graph.number_of_nodes())),
                    "ratio": round(float(np.mean(rounds)) / (3 * graph.number_of_nodes()), 3),
                }
            )
        return rows

    rows = benchmark.pedantic(_run, **PEDANTIC)
    report(
        "E4b-brr-scaling",
        "Theorem 5 — B_RR broadcast on the barbell, n sweep (synchronous)",
        rows,
        notes=["The ratio to 3n must stay bounded (the O(n) claim)."],
    )
    assert all(row["ratio"] <= 1.0 for row in rows)
