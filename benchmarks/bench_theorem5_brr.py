"""E4b — Theorem 5: the round-robin broadcast ``B_RR`` finishes in O(n) rounds.

Sweeps ``n`` on several topologies and reports the broadcast completion time
(and the depth of the resulting spanning tree) against the explicit ``3n``
bound for the synchronous model and a constant·n bound for the asynchronous
model.  Also checks Lemma 2 structurally: the degree sum along any shortest
path from the root is at most ``3n``.

Standalone tree construction is a first-class scenario protocol
(``protocol="spanning_tree"``); the per-topology broadcast sweep is a thin
invocation of the ``theorem5`` campaign (:mod:`repro.campaigns.registry`),
whose units this benchmark shares — and whose store records it reuses — with
``python -m repro campaign run theorem5``.  The tree depth comes out of each
trial's result metadata.
"""

from __future__ import annotations

import numpy as np
import pytest

from _utils import PEDANTIC, cached_measure, campaign_unit_specs, report
from repro.analysis import brr_broadcast_upper_bound
from repro.core import TimeModel
from repro.graphs import max_shortest_path_degree_sum

TRIALS = 3
TOPOLOGIES = ["line", "grid", "barbell", "complete", "binary_tree"]
N = 32


def _brr_spec(topology: str, n: int, time_model: TimeModel):
    """One broadcast workload — the theorem5 campaign's unit, resized to n."""
    (spec,) = campaign_unit_specs(
        "theorem5", units=[f"brr-{topology}-{time_model.value}"]
    )
    if n == spec.n:
        return spec
    return spec.replace(n=n, config=spec.config.replace(max_rounds=100 * n))


def _broadcast_rows(time_model: TimeModel):
    specs = campaign_unit_specs("theorem5", group=time_model.value)
    assert [spec.topology for spec in specs] == TOPOLOGIES
    assert all(spec.n == N and spec.trials == TRIALS for spec in specs)
    rows = []
    for spec in specs:
        scenario = spec.materialize()
        # All trials in one lockstep batch engine — bit-identical to running
        # GossipEngine per trial with the same generators, just faster — and
        # read through the shared result store on re-runs.
        results = cached_measure(scenario)
        rounds = [result.rounds for result in results]
        depths = [result.metadata["tree_depth"] for result in results]
        rows.append(
            {
                "graph": spec.topology,
                "n": scenario.n,
                "mean_rounds": round(float(np.mean(rounds)), 1),
                "max_rounds": int(np.max(rounds)),
                "tree_depth": int(np.max(depths)),
                "bound_3n": int(brr_broadcast_upper_bound(scenario.n)),
                "lemma2_path_degree_sum": max_shortest_path_degree_sum(
                    scenario.graph, source=scenario.root
                ),
            }
        )
    return rows


@pytest.mark.parametrize("time_model", [TimeModel.SYNCHRONOUS, TimeModel.ASYNCHRONOUS])
def test_theorem5_brr_broadcast_linear(benchmark, time_model):
    rows = benchmark.pedantic(_broadcast_rows, args=(time_model,), **PEDANTIC)
    report(
        f"E4b-brr-broadcast-{time_model.value}",
        f"Theorem 5 — round-robin broadcast B_RR stopping time, {time_model.value} (n≈{N})",
        rows,
        notes=[
            "Synchronous: at most 3n rounds deterministically; asynchronous: O(n) "
            "rounds with exponentially high probability (we allow a 4x constant).",
            "lemma2_path_degree_sum ≤ 3n certifies the structural lemma the proof uses.",
        ],
    )
    for row in rows:
        limit = row["bound_3n"] if time_model is TimeModel.SYNCHRONOUS else 4 * row["bound_3n"]
        assert row["max_rounds"] <= limit
        assert row["lemma2_path_degree_sum"] <= 3 * row["n"]


def test_theorem5_brr_scaling_with_n(benchmark):
    def _run():
        rows = []
        for n in (16, 32, 48, 64):
            scenario = _brr_spec("barbell", n, TimeModel.SYNCHRONOUS).materialize()
            rounds = [r.rounds for r in cached_measure(scenario)]
            rows.append(
                {
                    "n": scenario.n,
                    "mean_rounds": round(float(np.mean(rounds)), 1),
                    "bound_3n": int(brr_broadcast_upper_bound(scenario.n)),
                    "ratio": round(float(np.mean(rounds)) / (3 * scenario.n), 3),
                }
            )
        return rows

    rows = benchmark.pedantic(_run, **PEDANTIC)
    report(
        "E4b-brr-scaling",
        "Theorem 5 — B_RR broadcast on the barbell, n sweep (synchronous)",
        rows,
        notes=["The ratio to 3n must stay bounded (the O(n) claim)."],
    )
    assert all(row["ratio"] <= 1.0 for row in rows)
