"""E6 — Table 2: comparison of this paper's bound with Haeupler's.

Reproduces the three rows of Table 2 (line, grid, binary tree): both bound
expressions are evaluated on real constructed graphs (measuring ``γ`` and
``λ`` from the graph), the improvement factor is reported, and — going beyond
the paper's purely analytic table — the *measured* uniform-AG stopping time is
put next to both bounds to show which one tracks reality more closely.

The measured column runs through the scenario layer: one
:class:`~repro.scenarios.ScenarioSpec` per topology family, batched runner.
"""

from __future__ import annotations

from _utils import PEDANTIC, report
from repro.analysis import table2_rows
from repro.scenarios import ScenarioSpec, default_scenario_config

N = 32
TRIALS = 3


def _measure(topology: str) -> float:
    spec = ScenarioSpec(
        topology=topology,
        n=N,
        config=default_scenario_config(max_rounds=500_000),
        trials=TRIALS,
        seed=606,
    )
    # The batched runner is bit-identical to the sequential path (same trial
    # streams) but sweeps all trials through the vectorised decoder grid.
    return spec.materialize().run().mean


def _run():
    rows = table2_rows(N, N)
    for row in rows:
        row["measured_rounds"] = round(_measure(row["graph"]), 1)
    return rows


def test_table2_comparison(benchmark):
    rows = benchmark.pedantic(_run, **PEDANTIC)
    report(
        "E6-table2",
        f"Table 2 — O((k + log n + D)Δ) [this paper] vs O(k/γ + log²n/λ) [Haeupler], "
        f"k = n = {N} (γ, λ measured on the constructed graphs)",
        rows,
        notes=[
            "improvement_factor = haeupler_bound / our_bound; the paper predicts "
            "log²n for line and grid and Ω(n log n / k) for the binary tree.",
            "measured_rounds is the mean uniform-AG stopping time over "
            f"{TRIALS} trials — both bounds must sit above it.",
        ],
    )
    for row in rows:
        assert row["improvement_factor"] >= 1.0
        assert row["measured_rounds"] <= row["our_bound"]
        assert row["measured_rounds"] <= row["haeupler_bound"]
