"""E6 — Table 2: comparison of this paper's bound with Haeupler's.

Reproduces the three rows of Table 2 (line, grid, binary tree): both bound
expressions are evaluated on real constructed graphs (measuring ``γ`` and
``λ`` from the graph), the improvement factor is reported, and — going beyond
the paper's purely analytic table — the *measured* uniform-AG stopping time is
put next to both bounds to show which one tracks reality more closely.
"""

from __future__ import annotations

from _utils import PEDANTIC, report
from repro.analysis import table2_rows
from repro.experiments.parallel import run_trials_batched
from repro.core import SimulationConfig
from repro.gf import GF
from repro.graphs import binary_tree_graph, grid_graph, line_graph
from repro.protocols import AlgebraicGossip
from repro.rlnc import Generation
from repro.experiments import all_to_all_placement

N = 32
TRIALS = 3
_BUILDERS = {"line": line_graph, "grid": grid_graph, "binary_tree": binary_tree_graph}


def _measure(builder):
    graph = builder(N)
    n = graph.number_of_nodes()
    config = SimulationConfig(max_rounds=500_000)

    def factory(g, rng):
        generation = Generation.random(GF(16), n, 2, rng)
        return AlgebraicGossip(g, generation, all_to_all_placement(g), config, rng)

    # The batched runner is bit-identical to run_trials (same trial streams)
    # but sweeps all trials through the vectorised decoder grid at once.
    return run_trials_batched(graph, factory, config, trials=TRIALS, seed=606).mean


def _run():
    rows = table2_rows(N, N)
    for row in rows:
        row["measured_rounds"] = round(_measure(_BUILDERS[row["graph"]]), 1)
    return rows


def test_table2_comparison(benchmark):
    rows = benchmark.pedantic(_run, **PEDANTIC)
    report(
        "E6-table2",
        f"Table 2 — O((k + log n + D)Δ) [this paper] vs O(k/γ + log²n/λ) [Haeupler], "
        f"k = n = {N} (γ, λ measured on the constructed graphs)",
        rows,
        notes=[
            "improvement_factor = haeupler_bound / our_bound; the paper predicts "
            "log²n for line and grid and Ω(n log n / k) for the binary tree.",
            "measured_rounds is the mean uniform-AG stopping time over "
            f"{TRIALS} trials — both bounds must sit above it.",
        ],
    )
    for row in rows:
        assert row["improvement_factor"] >= 1.0
        assert row["measured_rounds"] <= row["our_bound"]
        assert row["measured_rounds"] <= row["haeupler_bound"]
