"""E6 — Table 2: comparison of this paper's bound with Haeupler's.

Reproduces the three rows of Table 2 (line, grid, binary tree): both bound
expressions are evaluated on real constructed graphs (measuring ``γ`` and
``λ`` from the graph), the improvement factor is reported, and — going beyond
the paper's purely analytic table — the *measured* uniform-AG stopping time is
put next to both bounds to show which one tracks reality more closely.

The measured column is a thin invocation of the ``table2`` campaign
(:mod:`repro.campaigns.registry`): the specs are the campaign's units, so
this benchmark, ``python -m repro campaign run table2`` and the full-paper
campaign all run — and cache — the same seeded trials.
"""

from __future__ import annotations

from _utils import PEDANTIC, bench_store, campaign_unit_specs, report
from repro.analysis import measured_rows, table2_rows

N = 32
TRIALS = 3


def _run():
    rows = table2_rows(N, N)
    # The workloads come from the table2 campaign's measured units (same
    # topology order as the analytic rows; asserted below).
    specs = campaign_unit_specs("table2", group="measured")
    assert [spec.topology for spec in specs] == [row["graph"] for row in rows]
    assert all(spec.trials == TRIALS and spec.n == N for spec in specs)
    # The measured column reads through the persistent result store: adding a
    # topology to the table reuses every previously archived trial (and the
    # batched runner is bit-identical to the sequential path either way).
    measured = measured_rows(specs, store=bench_store())
    for row, measurement in zip(rows, measured):
        # Already rounded once by measured_rows; re-rounding would double-round.
        row["measured_rounds"] = measurement["mean_rounds"]
    return rows


def test_table2_comparison(benchmark):
    rows = benchmark.pedantic(_run, **PEDANTIC)
    report(
        "E6-table2",
        f"Table 2 — O((k + log n + D)Δ) [this paper] vs O(k/γ + log²n/λ) [Haeupler], "
        f"k = n = {N} (γ, λ measured on the constructed graphs)",
        rows,
        notes=[
            "improvement_factor = haeupler_bound / our_bound; the paper predicts "
            "log²n for line and grid and Ω(n log n / k) for the binary tree.",
            "measured_rounds is the mean uniform-AG stopping time over "
            f"{TRIALS} trials — both bounds must sit above it.",
        ],
    )
    for row in rows:
        assert row["improvement_factor"] >= 1.0
        assert row["measured_rounds"] <= row["our_bound"]
        assert row["measured_rounds"] <= row["haeupler_bound"]
