#!/usr/bin/env python
"""Fail if the latest committed batch speedups drop below their floors.

Reads every machine-readable perf record ``benchmarks/output/BENCH_*.json``
(written by full-size ``make bench-json`` runs and committed to the
repository) and checks the recorded ``speedup`` against the record's own
asserted floor (``min_speedup``, default 5.0).  Run it standalone or via
``make bench-check``::

    python benchmarks/check_regression.py

Exit code 0 when every record holds, 1 on any regression or when no records
exist (an empty perf trajectory is itself a regression).

With ``--store`` the script instead reads a persistent result store — an
export file written by ``python -m repro store export``, or a store
directory — and prints the stopping-time aggregate of every archived
workload, so a CI artifact or a colleague's exported snapshot can be
inspected without re-running any simulation::

    python benchmarks/check_regression.py --store snapshot.jsonl
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

OUTPUT_DIR = Path(__file__).resolve().parent / "output"
DEFAULT_FLOOR = 5.0


def store_aggregates(path: Path) -> int:
    """Print per-workload stopping-time aggregates from a store/export."""
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))
    from repro.errors import ReproError, StoreError
    from repro.scenarios import ScenarioSpec
    from repro.store import load_snapshot

    try:
        snapshot = load_snapshot(path)
    except StoreError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if not snapshot.results:
        print(f"error: no result records in {path}", file=sys.stderr)
        return 1
    for fingerprint in sorted(snapshot.results):
        bucket = snapshot.results[fingerprint]
        # Rebuild the spec so defaulted (omitted) fields print their real
        # values; headers from an incompatible schema get a placeholder.
        try:
            spec = ScenarioSpec.from_dict(snapshot.specs[fingerprint])
            label = spec.name or f"{spec.protocol} on {spec.topology}(n={spec.n})"
        except (KeyError, ReproError):
            label = "(unknown workload)"
        # Tolerate schema-divergent payloads (e.g. exports from another
        # version): records without the expected fields count as incomplete
        # rather than crashing the report.
        rounds = [
            record["rounds"]
            for record in bucket.values()
            if record.get("completed") and isinstance(record.get("rounds"), (int, float))
        ]
        incomplete = len(bucket) - len(rounds)
        summary = (
            f"mean={statistics.fmean(rounds):.1f}, max={max(rounds)}"
            if rounds
            else "no completed trials"
        )
        print(
            f"{fingerprint[:12]}  {label}: {len(bucket)} trial record(s), {summary}"
            + (f" ({incomplete} incomplete)" if incomplete else "")
        )
    print(f"{snapshot.trial_count} trial record(s) across {len(snapshot.results)} workload(s)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--store", type=Path, default=None, metavar="PATH",
        help=(
            "read aggregates from a result-store export file (or store "
            "directory) instead of checking perf records"
        ),
    )
    args = parser.parse_args()
    if args.store is not None:
        return store_aggregates(args.store)
    records = sorted(OUTPUT_DIR.glob("BENCH_*.json"))
    if not records:
        print(f"error: no BENCH_*.json records under {OUTPUT_DIR}", file=sys.stderr)
        return 1
    failures = 0
    for path in records:
        # A broken record is itself a failure to report, not a crash: keep
        # checking the remaining records so the output isolates the bad file.
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
            speedup = float(record["speedup"])
            floor = float(record.get("min_speedup", DEFAULT_FLOOR))
            # Optional per-metric floors: {"metric": min_value, ...} checked
            # against the record's own top-level fields.
            extra_floors = {
                str(metric): float(minimum)
                for metric, minimum in dict(record.get("floors", {})).items()
            }
            extra_values = {
                metric: float(record[metric]) for metric in extra_floors
            }
        except Exception as error:  # noqa: BLE001
            print(f"{path.name}: unreadable record ({type(error).__name__}: {error}) FAIL")
            failures += 1
            continue
        ok = speedup >= floor
        status = "ok" if ok else "REGRESSION"
        print(
            f"{path.name}: speedup {speedup:.2f}x (floor {floor:.1f}x, "
            f"n={record.get('n')}, trials={record.get('trials')}, "
            f"rev={str(record.get('git_rev'))[:12]}) {status}"
        )
        failures += not ok
        for metric, minimum in sorted(extra_floors.items()):
            value = extra_values[metric]
            metric_ok = value >= minimum
            print(
                f"{path.name}: {metric} {value:.2f} (floor {minimum:.1f}) "
                f"{'ok' if metric_ok else 'REGRESSION'}"
            )
            failures += not metric_ok
    if failures:
        print(f"error: {failures} perf record(s) below their floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
