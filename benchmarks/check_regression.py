#!/usr/bin/env python
"""Fail if the latest committed batch speedups drop below their floors.

Reads every machine-readable perf record ``benchmarks/output/BENCH_*.json``
(written by full-size ``make bench-json`` runs and committed to the
repository) and checks the recorded ``speedup`` against the record's own
asserted floor (``min_speedup``, default 5.0).  Run it standalone or via
``make bench-check``::

    python benchmarks/check_regression.py

Exit code 0 when every record holds, 1 on any regression or when no records
exist (an empty perf trajectory is itself a regression).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

OUTPUT_DIR = Path(__file__).resolve().parent / "output"
DEFAULT_FLOOR = 5.0


def main() -> int:
    records = sorted(OUTPUT_DIR.glob("BENCH_*.json"))
    if not records:
        print(f"error: no BENCH_*.json records under {OUTPUT_DIR}", file=sys.stderr)
        return 1
    failures = 0
    for path in records:
        # A broken record is itself a failure to report, not a crash: keep
        # checking the remaining records so the output isolates the bad file.
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
            speedup = float(record["speedup"])
            floor = float(record.get("min_speedup", DEFAULT_FLOOR))
        except Exception as error:  # noqa: BLE001
            print(f"{path.name}: unreadable record ({type(error).__name__}: {error}) FAIL")
            failures += 1
            continue
        ok = speedup >= floor
        status = "ok" if ok else "REGRESSION"
        print(
            f"{path.name}: speedup {speedup:.2f}x (floor {floor:.1f}x, "
            f"n={record.get('n')}, trials={record.get('trials')}, "
            f"rev={str(record.get('git_rev'))[:12]}) {status}"
        )
        failures += not ok
    if failures:
        print(f"error: {failures} perf record(s) below their floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
