"""Extension experiment — robustness of algebraic gossip under packet loss.

Not a table in the paper (which assumes reliable links), but a natural
extension the library supports: independent per-packet loss.  RLNC's
resilience argument is that losing a coded packet never loses *specific*
information, only generic rank, so the stopping time should degrade smoothly —
roughly by a ``1/(1 − loss)`` factor — rather than fall off a cliff.
"""

from __future__ import annotations

import numpy as np

from _utils import PEDANTIC, report
from repro.analysis import run_trials
from repro.core import SimulationConfig
from repro.gf import GF
from repro.graphs import grid_graph
from repro.protocols import AlgebraicGossip
from repro.rlnc import Generation
from repro.experiments import all_to_all_placement

TRIALS = 3
LOSS_LEVELS = [0.0, 0.1, 0.25, 0.5]


def _run():
    graph = grid_graph(16)
    n = graph.number_of_nodes()
    rows = []
    baseline = None
    for loss in LOSS_LEVELS:
        config = SimulationConfig(max_rounds=500_000, loss_probability=loss)

        def factory(g, rng):
            generation = Generation.random(GF(16), n, 2, rng)
            return AlgebraicGossip(g, generation, all_to_all_placement(g), config, rng)

        stats = run_trials(graph, factory, config, trials=TRIALS, seed=1111)
        if baseline is None:
            baseline = stats.mean
        rows.append(
            {
                "loss_probability": loss,
                "mean_rounds": round(stats.mean, 1),
                "p95_rounds": round(stats.whp, 1),
                "slowdown_vs_lossless": round(stats.mean / baseline, 2),
                "smooth_reference_1/(1-loss)": round(1.0 / (1.0 - loss), 2),
            }
        )
    return rows


def test_robustness_under_packet_loss(benchmark):
    rows = benchmark.pedantic(_run, **PEDANTIC)
    report(
        "extension-packet-loss",
        "Extension — uniform AG on grid(16), k = n, under independent packet loss",
        rows,
        notes=[
            "Coded gossip degrades smoothly: the slowdown should track 1/(1-loss) "
            "up to a modest constant, with no completion failures.",
        ],
    )
    for row in rows:
        assert row["slowdown_vs_lossless"] <= 3.0 * row["smooth_reference_1/(1-loss)"]
    slowdowns = [row["slowdown_vs_lossless"] for row in rows]
    assert all(a <= b * 1.2 for a, b in zip(slowdowns, slowdowns[1:]))
