"""Extension experiment — robustness of algebraic gossip under packet loss.

Not a table in the paper (which assumes reliable links), but a natural
extension the library supports: independent per-packet loss.  RLNC's
resilience argument is that losing a coded packet never loses *specific*
information, only generic rank, so the stopping time should degrade smoothly —
roughly by a ``1/(1 − loss)`` factor — rather than fall off a cliff.

The workload is the registered ``robustness/lossy-grid`` scenario with the
loss probability swept through :meth:`ScenarioSpec.with_config`.
"""

from __future__ import annotations

from _utils import PEDANTIC, cached_run, report
from repro.scenarios import get_scenario

TRIALS = 3
LOSS_LEVELS = [0.0, 0.1, 0.25, 0.5]


def _run():
    base = get_scenario("robustness/lossy-grid").replace(trials=TRIALS, seed=1111)
    rows = []
    baseline = None
    for loss in LOSS_LEVELS:
        stats = cached_run(base.with_config(loss_probability=loss))
        if baseline is None:
            baseline = stats.mean
        rows.append(
            {
                "loss_probability": loss,
                "mean_rounds": round(stats.mean, 1),
                "p95_rounds": round(stats.whp, 1),
                "slowdown_vs_lossless": round(stats.mean / baseline, 2),
                "smooth_reference_1/(1-loss)": round(1.0 / (1.0 - loss), 2),
            }
        )
    return rows


def test_robustness_under_packet_loss(benchmark):
    rows = benchmark.pedantic(_run, **PEDANTIC)
    report(
        "extension-packet-loss",
        "Extension — uniform AG on grid(16), k = n, under independent packet loss",
        rows,
        notes=[
            "Coded gossip degrades smoothly: the slowdown should track 1/(1-loss) "
            "up to a modest constant, with no completion failures.",
        ],
    )
    for row in rows:
        assert row["slowdown_vs_lossless"] <= 3.0 * row["smooth_reference_1/(1-loss)"]
    slowdowns = [row["slowdown_vs_lossless"] for row in rows]
    assert all(a <= b * 1.2 for a, b in zip(slowdowns, slowdowns[1:]))
