"""E1 — Table 1, row "Uniform AG, any graph" (Theorem 1).

Measures the stopping time of uniform algebraic gossip on four topologies in
both time models and reports the ratio against the ``O((k + log n + D) Δ)``
bound.  The reproduced series is the per-topology (measured, bound, ratio)
table; the paper's claim holds if every ratio stays below a small constant.
"""

from __future__ import annotations

import pytest

from _utils import BENCH_JOBS, PEDANTIC, cached_sweep, report
from repro.analysis import scaling_table
from repro.core import TimeModel
from repro.experiments import default_config, uniform_ag_case

TOPOLOGIES = ["line", "grid", "complete", "binary_tree", "barbell"]
N = 24
K = 12
TRIALS = 3


def _run(time_model: TimeModel):
    config = default_config(time_model=time_model, max_rounds=500_000)
    cases = [
        uniform_ag_case(topology, N, K, config=config, label=f"{topology}", value=N)
        for topology in TOPOLOGIES
    ]
    points = cached_sweep(cases, trials=TRIALS, seed=101, jobs=BENCH_JOBS)
    rows = scaling_table(points, bound_names=("theorem1", "lower"), value_header="n")
    for row, topology in zip(rows, TOPOLOGIES):
        row["graph"] = topology
    return rows


@pytest.mark.parametrize("time_model", [TimeModel.SYNCHRONOUS, TimeModel.ASYNCHRONOUS])
def test_table1_uniform_ag(benchmark, time_model):
    rows = benchmark.pedantic(_run, args=(time_model,), **PEDANTIC)
    report(
        f"E1-uniform-ag-{time_model.value}",
        f"Table 1 / Theorem 1 — uniform algebraic gossip, {time_model.value} "
        f"(n={N}, k={K}, {TRIALS} trials)",
        rows,
        notes=[
            "ratio(theorem1) = measured p95 rounds / (k + ln n + D)·Δ; the bound "
            "holds when the ratio stays below a constant across topologies.",
            "lower = the Ω(k (+D)) lower bound of Theorem 3.",
        ],
    )
    assert all(row["ratio(theorem1)"] <= 1.5 for row in rows)
