"""E10 — RLNC substrate micro-benchmarks.

These are the only benchmarks where the *wall-clock* of our implementation is
the measured quantity (everything else measures simulated rounds).  They
document how expensive the finite-field and decoder operations are in pure
Python/numpy — the practical constraint that caps the simulation sizes used in
the other benchmarks (the "field ops slow at scale" caveat of the repro notes).

These kernels produce no per-trial :class:`~repro.core.RunResult`, so they
are the one benchmark family with nothing to read through the shared
persistent result store (``_utils.bench_store``) — caching wall-clock
measurements would defeat their purpose.
"""

from __future__ import annotations

import numpy as np
import pytest

from _utils import report
from repro.gf import GF
from repro.rlnc import Generation, RlncDecoder, encode_from_decoder


@pytest.mark.parametrize("order", [2, 16, 256])
def test_field_vector_ops_throughput(benchmark, order):
    field = GF(order)
    rng = np.random.default_rng(0)
    a = field.random_elements(rng, 4096)
    b = field.random_elements(rng, 4096)

    def kernel():
        return field.add(field.mul(a, b), a)

    benchmark(kernel)


@pytest.mark.parametrize("order,k", [(2, 32), (16, 32), (256, 32), (16, 128)])
def test_decoder_fill_throughput(benchmark, order, k):
    """Time to bring one decoder from rank 0 to rank k with random packets."""
    field = GF(order)
    rng = np.random.default_rng(1)
    generation = Generation.random(field, k, 4, rng)
    source = RlncDecoder(field, k, 4)
    for index in range(k):
        source.add_source_message(index, generation.payload_matrix[index])
    packets = []
    while len(packets) < 3 * k:
        packets.append(encode_from_decoder(source, rng))

    def kernel():
        sink = RlncDecoder(field, k, 4)
        for packet in packets:
            sink.receive(packet)
            if sink.is_complete:
                break
        return sink.rank

    rank = benchmark(kernel)
    assert rank == k


def test_decode_full_generation(benchmark):
    """Time of the final solve step (decode) at k = 64 over GF(16)."""
    field = GF(16)
    rng = np.random.default_rng(2)
    k = 64
    generation = Generation.random(field, k, 8, rng)
    decoder = RlncDecoder(field, k, 8)
    for index in range(k):
        decoder.add_source_message(index, generation.payload_matrix[index])

    result = benchmark(decoder.decode)
    assert result.shape == (k, 8)
    report(
        "E10-field-ops",
        "RLNC substrate micro-benchmarks (see pytest-benchmark table for timings)",
        [
            {
                "kernel": "decoder fill / field ops / decode",
                "note": "timings reported by pytest-benchmark; no simulated quantity",
            }
        ],
    )
