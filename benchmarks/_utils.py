"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper (see the
per-experiment index in DESIGN.md).  Besides the pytest-benchmark timing, each
benchmark prints the reproduced table to stdout **and** appends it to
``benchmarks/output/<experiment>.txt`` so that EXPERIMENTS.md can quote the
numbers from a file that any reader can regenerate with
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path
from typing import Any, Mapping, Sequence

# Make the package importable when it is not pip-installed.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - import side effect
    sys.path.insert(0, str(_SRC))

from repro.analysis.tables import format_table  # noqa: E402

OUTPUT_DIR = Path(__file__).resolve().parent / "output"

#: Benchmarks run each scenario exactly once: the quantity of interest is the
#: *simulated stopping time* (rounds), not the wall-clock of the simulator, so
#: repeated timing iterations would only burn time.
PEDANTIC = dict(rounds=1, iterations=1, warmup_rounds=0)

#: Worker processes for sweep trials (``REPRO_BENCH_JOBS=4 pytest ...``).
#: ``None`` runs trials in-process through the vectorised batch engine, which
#: is already the fast path; the results are bit-identical for any value.
#: Empty, non-numeric or non-positive values mean "in-process" rather than
#: breaking benchmark collection at import time.
try:
    _jobs = int(os.environ.get("REPRO_BENCH_JOBS", "0"))
except ValueError:
    _jobs = 0
BENCH_JOBS = _jobs if _jobs > 0 else None


def report(experiment_id: str, title: str, rows: Sequence[Mapping[str, Any]],
           notes: Sequence[str] = ()) -> str:
    """Print the reproduced table and persist it under ``benchmarks/output``."""
    text = format_table(list(rows), title=title)
    if notes:
        text += "\n" + "\n".join(f"* {note}" for note in notes)
    print("\n" + text + "\n")
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{experiment_id}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return text
