"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper (see the
per-experiment index in DESIGN.md).  Besides the pytest-benchmark timing, each
benchmark prints the reproduced table to stdout **and** appends it to
``benchmarks/output/<experiment>.txt`` so that EXPERIMENTS.md can quote the
numbers from a file that any reader can regenerate with
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Mapping, Sequence

# Make the package importable when it is not pip-installed.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - import side effect
    sys.path.insert(0, str(_SRC))

from repro.analysis.tables import format_table  # noqa: E402

OUTPUT_DIR = Path(__file__).resolve().parent / "output"

#: Benchmarks run each scenario exactly once: the quantity of interest is the
#: *simulated stopping time* (rounds), not the wall-clock of the simulator, so
#: repeated timing iterations would only burn time.
PEDANTIC = dict(rounds=1, iterations=1, warmup_rounds=0)

#: Worker processes for sweep trials (``REPRO_BENCH_JOBS=4 pytest ...``).
#: ``None`` runs trials in-process through the vectorised batch engine, which
#: is already the fast path; the results are bit-identical for any value.
#: Empty, non-numeric or non-positive values mean "in-process" rather than
#: breaking benchmark collection at import time.
try:
    _jobs = int(os.environ.get("REPRO_BENCH_JOBS", "0"))
except ValueError:
    _jobs = 0
BENCH_JOBS = _jobs if _jobs > 0 else None


def report(experiment_id: str, title: str, rows: Sequence[Mapping[str, Any]],
           notes: Sequence[str] = ()) -> str:
    """Print the reproduced table and persist it under ``benchmarks/output``."""
    text = format_table(list(rows), title=title)
    if notes:
        text += "\n" + "\n".join(f"* {note}" for note in notes)
    print("\n" + text + "\n")
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{experiment_id}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return text


def trial_signature(results) -> list[tuple]:
    """Everything that must coincide per trial across bit-identical runners.

    The canonical equivalence signature used by the batch-vs-scalar
    benchmarks (``bench_batch_core``, ``bench_batch_tag``): any divergence in
    stopping time, timeslots, completion, message/helpful counts, per-node
    completion rounds or metadata fails the assertion.
    """
    return [
        (r.rounds, r.timeslots, r.completed, r.messages_sent, r.helpful_messages,
         dict(r.completion_rounds), dict(r.metadata))
        for r in results
    ]


def _git_revision() -> str | None:
    """The current git revision, or ``None`` outside a checkout."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except Exception:
        return None


def report_json(
    experiment_id: str,
    *,
    timings: Mapping[str, float],
    speedup: float,
    n: int,
    trials: int,
    scaled_down: bool = False,
    **extra: Any,
) -> Path | None:
    """Persist machine-readable perf results as ``BENCH_<experiment_id>.json``.

    Every perf benchmark (``bench_batch_core``, ``bench_batch_tag``) writes
    one of these next to its human-readable table, so the speedup trajectory
    can be tracked across revisions by diffing small JSON files instead of
    scraping text reports.  The payload records the workload size, wall-clock
    timings per runner, the headline speedup, the git revision the numbers
    were produced at, and any benchmark-specific extras.

    ``scaled_down=True`` (a smoke run: the effective workload/floor values
    deviate from the full-size defaults) skips the write and returns ``None``
    — the tracked records must only ever hold full-size numbers, not whatever
    the last ``make bench-smoke`` happened to use.
    """
    if scaled_down:
        print(f"[{experiment_id}] scaled-down run; BENCH json not written")
        return None
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"BENCH_{experiment_id}.json"
    payload: dict[str, Any] = {
        "experiment": experiment_id,
        "git_rev": _git_revision(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "n": int(n),
        "trials": int(trials),
        "timings_seconds": {name: round(float(secs), 4) for name, secs in timings.items()},
        "speedup": round(float(speedup), 3),
    }
    payload.update(extra)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
