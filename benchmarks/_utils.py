"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper (see the
per-experiment index in DESIGN.md).  Besides the pytest-benchmark timing, each
benchmark prints the reproduced table to stdout **and** appends it to
``benchmarks/output/<experiment>.txt`` so that EXPERIMENTS.md can quote the
numbers from a file that any reader can regenerate with
``pytest benchmarks/ --benchmark-only``.

Simulated trials additionally flow through the shared persistent result store
(:func:`bench_store` / :func:`cached_sweep` / :func:`cached_run`): re-running
any table benchmark reuses every previously archived trial bit-identically
and only simulates what the archive does not yet hold.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Mapping, Sequence

# Make the package importable when it is not pip-installed.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - import side effect
    sys.path.insert(0, str(_SRC))

from repro.analysis.tables import format_table  # noqa: E402
from repro.store import ResultStore  # noqa: E402

OUTPUT_DIR = Path(__file__).resolve().parent / "output"

#: Benchmarks run each scenario exactly once: the quantity of interest is the
#: *simulated stopping time* (rounds), not the wall-clock of the simulator, so
#: repeated timing iterations would only burn time.
PEDANTIC = dict(rounds=1, iterations=1, warmup_rounds=0)

#: Worker processes for sweep trials (``REPRO_BENCH_JOBS=4 pytest ...``).
#: ``None`` runs trials in-process through the vectorised batch engine, which
#: is already the fast path; the results are bit-identical for any value.
#: Empty, non-numeric or non-positive values mean "in-process" rather than
#: breaking benchmark collection at import time.
try:
    _jobs = int(os.environ.get("REPRO_BENCH_JOBS", "0"))
except ValueError:
    _jobs = 0
BENCH_JOBS = _jobs if _jobs > 0 else None

#: The benchmarks' shared persistent result store (``benchmarks/output/store``,
#: gitignored).  Every table benchmark reads its trials *through* the store:
#: the first run simulates and archives them, re-runs (and sibling benchmarks
#: sharing a workload) reuse the cached records bit-identically, so extending
#: a table with one new topology only simulates the new rows.  Set
#: ``REPRO_BENCH_STORE`` to relocate the archive, or to ``0``/``off``/``none``
#: to disable caching entirely.  The perf benchmarks (``bench_batch_core``,
#: ``bench_batch_tag``, ``bench_field_ops``) never *read* through the store —
#: their measured quantity is the cold wall-clock — but archive their computed
#: trials afterwards via :func:`record_trials`.
_STORE_SETTING = os.environ.get("REPRO_BENCH_STORE", str(OUTPUT_DIR / "store"))
_BENCH_STORE: "ResultStore | None" = None


def bench_store() -> "ResultStore | None":
    """The shared benchmark result store, or ``None`` when disabled."""
    global _BENCH_STORE
    if _STORE_SETTING.strip().lower() in ("", "0", "off", "none"):
        return None
    if _BENCH_STORE is None:
        _BENCH_STORE = ResultStore(_STORE_SETTING)
    return _BENCH_STORE


def cached_sweep(cases, *, trials, seed, jobs=None, batch=True):
    """:func:`repro.analysis.run_sweep` reading through the benchmark store."""
    from repro.analysis import run_sweep

    return run_sweep(
        cases, trials=trials, seed=seed, jobs=jobs, batch=batch, store=bench_store()
    )


def cached_measure(workload, *, trials=None, seed=None):
    """Per-trial results of a scenario, read through the benchmark store."""
    from repro.experiments.parallel import measure_protocol_batched

    return measure_protocol_batched(workload, trials=trials, seed=seed, store=bench_store())


def cached_run(workload, *, trials=None, seed=None):
    """Aggregated stats of a scenario's plan, read through the benchmark store."""
    from repro.core import aggregate_results

    return aggregate_results(cached_measure(workload, trials=trials, seed=seed))


def campaign_unit_specs(name, *, group=None, units=None):
    """Resolved scenario specs of a campaign's units, in execution order.

    The table benchmarks that reproduce a campaign's evidence pull their
    workloads from the campaign registry instead of re-declaring them, so a
    benchmark run, a ``python -m repro campaign run`` and a CLI scenario run
    of the same unit are the same seeded trials — and share store records.
    ``group`` filters by unit group; ``units`` selects explicit unit names.
    """
    from repro.campaigns import get_campaign

    campaign = get_campaign(name)
    selected = campaign.execution_order()
    if group is not None:
        selected = [unit for unit in selected if unit.group == group]
    if units is not None:
        wanted = set(units)
        selected = [unit for unit in selected if unit.name in wanted]
    return [unit.resolve() for unit in selected]


def record_trials(spec, results, *, seed=None) -> int:
    """Archive already-computed trial results (index order) in the store.

    Used by the perf benchmarks, which must *time* cold uncached runs but can
    still contribute their per-trial results to the shared archive afterwards.
    Returns the number of newly stored records (0 when the store is disabled).
    """
    store = bench_store()
    if store is None:
        return 0
    return store.put_many(spec, dict(enumerate(results)), seed=seed)


def report(experiment_id: str, title: str, rows: Sequence[Mapping[str, Any]],
           notes: Sequence[str] = ()) -> str:
    """Print the reproduced table and persist it under ``benchmarks/output``."""
    text = format_table(list(rows), title=title)
    if notes:
        text += "\n" + "\n".join(f"* {note}" for note in notes)
    print("\n" + text + "\n")
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{experiment_id}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return text


def trial_signature(results) -> list[tuple]:
    """Everything that must coincide per trial across bit-identical runners.

    The canonical equivalence signature used by the batch-vs-scalar
    benchmarks (``bench_batch_core``, ``bench_batch_tag``): any divergence in
    stopping time, timeslots, completion, message/helpful counts, per-node
    completion rounds or metadata fails the assertion.
    """
    return [
        (r.rounds, r.timeslots, r.completed, r.messages_sent, r.helpful_messages,
         dict(r.completion_rounds), dict(r.metadata))
        for r in results
    ]


def _git_revision() -> str | None:
    """The current git revision, or ``None`` outside a checkout."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except Exception:
        return None


def peak_rss_mib() -> float | None:
    """This process's lifetime peak RSS in MiB, or ``None`` where unavailable.

    ``resource.getrusage`` reports the high-water mark in KiB on Linux (bytes
    on macOS); the value only ever grows, so memory benchmarks that need a
    *per-phase* peak must run each phase in its own subprocess (see
    ``bench_csr_pipeline``).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is bytes there
        return peak / (1024 * 1024)
    return peak / 1024


def report_json(
    experiment_id: str,
    *,
    timings: Mapping[str, float],
    speedup: float,
    n: int,
    trials: int,
    scaled_down: bool = False,
    materialize_seconds: "Mapping[str, float] | None" = None,
    simulate_seconds: "Mapping[str, float] | None" = None,
    **extra: Any,
) -> Path | None:
    """Persist machine-readable perf results as ``BENCH_<experiment_id>.json``.

    Every perf benchmark (``bench_batch_core``, ``bench_batch_tag``) writes
    one of these next to its human-readable table, so the speedup trajectory
    can be tracked across revisions by diffing small JSON files instead of
    scraping text reports.  The payload records the workload size, wall-clock
    timings per runner, the headline speedup, the benchmark process's peak
    RSS, the git revision the numbers were produced at, and any
    benchmark-specific extras.

    ``materialize_seconds`` / ``simulate_seconds`` split each runner's
    wall-clock into graph-construction and simulation time, so a record shows
    *where* a speedup lives.  Records may also carry a ``floors`` mapping
    (metric name → minimum value) that ``check_regression.py`` enforces
    alongside the headline ``min_speedup``.

    ``scaled_down=True`` (a smoke run: the effective workload/floor values
    deviate from the full-size defaults) skips the write and returns ``None``
    — the tracked records must only ever hold full-size numbers, not whatever
    the last ``make bench-smoke`` happened to use.
    """
    if scaled_down:
        print(f"[{experiment_id}] scaled-down run; BENCH json not written")
        return None
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"BENCH_{experiment_id}.json"
    payload: dict[str, Any] = {
        "experiment": experiment_id,
        "git_rev": _git_revision(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "n": int(n),
        "trials": int(trials),
        "timings_seconds": {name: round(float(secs), 4) for name, secs in timings.items()},
        "speedup": round(float(speedup), 3),
    }
    rss = peak_rss_mib()
    if rss is not None:
        payload["peak_rss_mib"] = round(rss, 1)
    if materialize_seconds is not None:
        payload["materialize_seconds"] = {
            name: round(float(secs), 4) for name, secs in materialize_seconds.items()
        }
    if simulate_seconds is not None:
        payload["simulate_seconds"] = {
            name: round(float(secs), 4) for name, secs in simulate_seconds.items()
        }
    payload.update(extra)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
