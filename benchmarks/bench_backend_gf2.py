"""E11 — the gf2bit compute backend: word-packed XOR vs dense numpy GF(2).

The paper's base protocol is algebraic gossip over ``GF(2)`` (Theorem 1 is
stated for ``q >= 2``), and all-to-all dissemination on the complete graph is
its canonical workload.  This benchmark runs exactly that — ``k = n``
messages, synchronous EXCHANGE, ``n = 128`` — through the vectorised batch
engine twice: once on the dense ``numpy`` backend and once on the
bit-packed ``gf2bit`` backend (rows packed into uint64 words, word-parallel
XOR elimination; see ``repro/backends/gf2bit.py``).

The assertions are the backend contract end-to-end:

* both runs are **bit-identical** — same seeds give the same per-trial
  stopping times, message/helpful counts and completion rounds (the same
  contract ``tests/test_backend_conformance.py`` enforces kernel-by-kernel);
* the packed backend is at least **5x faster** at ``n = 128`` in GF(2) mode,
  where elimination and encoding dominate the round loop.

Scale knobs (for smoke runs): ``REPRO_BENCH_GF2_N``,
``REPRO_BENCH_GF2_TRIALS`` and ``REPRO_BENCH_GF2_MIN_SPEEDUP`` shrink the
workload / floor without changing the equivalence checks.
"""

from __future__ import annotations

import os
import time

from _utils import PEDANTIC, record_trials, report, report_json, trial_signature
from repro.experiments.parallel import measure_protocol_batched
from repro.scenarios import ScenarioSpec, default_scenario_config

N = int(os.environ.get("REPRO_BENCH_GF2_N", "128"))
TRIALS = int(os.environ.get("REPRO_BENCH_GF2_TRIALS", "8"))
SEED = 1109
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_GF2_MIN_SPEEDUP", "5.0"))
SCALED_DOWN = (N, TRIALS, MIN_SPEEDUP) != (128, 8, 5.0)

#: All-to-all algebraic gossip over GF(2): k = n source messages on the
#: complete graph.  ``backend`` is deliberately left to the per-run replace()
#: below — the fingerprint (and therefore the archived trials) is the same
#: for both runs, which is the store-invariance half of the backend contract.
SPEC = ScenarioSpec(
    topology="complete",
    n=N,
    k=N,
    config=default_scenario_config(max_rounds=50_000, field_size=2),
    trials=TRIALS,
    seed=SEED,
)


def _run():
    timings = {}
    results = {}
    for backend in ("numpy", "gf2bit"):
        spec = SPEC.replace(backend=backend)
        start = time.perf_counter()
        results[backend] = measure_protocol_batched(spec)
        timings[backend] = time.perf_counter() - start

    assert trial_signature(results["gf2bit"]) == trial_signature(
        results["numpy"]
    ), "gf2bit backend diverged from the numpy reference"

    record_trials(SPEC, results["gf2bit"])

    base = timings["numpy"]
    rounds = [r.rounds for r in results["numpy"]]
    return [
        {
            "backend": backend,
            "seconds": round(seconds, 2),
            "speedup": round(base / seconds, 2),
            "mean_rounds": round(sum(rounds) / len(rounds), 2),
        }
        for backend, seconds in timings.items()
    ]


def test_gf2_backend_speedup(benchmark):
    rows = benchmark.pedantic(_run, **PEDANTIC)
    report(
        "E11-gf2-backend",
        f"GF(2) compute backends — uniform AG on complete(n={N}), k={N}, "
        f"{TRIALS} trials, synchronous EXCHANGE, batch engine",
        rows,
        notes=[
            "Both backends are bit-identical (asserted): same seeds give the "
            "same per-trial stopping times, message counts and completion "
            "rounds, so the result-store cache is backend-invariant.",
            f"The gf2bit backend must be at least {MIN_SPEEDUP:.0f}x faster "
            "than the dense numpy reference on this workload.",
        ],
    )
    packed_row = next(row for row in rows if row["backend"] == "gf2bit")
    report_json(
        "E11-gf2-backend",
        timings={row["backend"]: row["seconds"] for row in rows},
        speedup=packed_row["speedup"],
        n=N,
        trials=TRIALS,
        scaled_down=SCALED_DOWN,
        k=N,
        seed=SEED,
        min_speedup=MIN_SPEEDUP,
        protocol="uniform-ag",
        topology="complete",
        field_size=2,
    )
    assert packed_row["speedup"] >= MIN_SPEEDUP
