"""Tests for the declarative scenario layer (repro.scenarios)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.sweep import SweepCase, run_sweep
from repro.cli import main
from repro.core import SimulationConfig, TimeModel
from repro.errors import ConfigurationError
from repro.experiments import tag_case, uniform_ag_case
from repro.experiments.parallel import run_trials_batched, run_trials_parallel
from repro.scenarios import (
    SCENARIOS,
    MaterializedScenario,
    ScenarioSpec,
    default_scenario_config,
    get_scenario,
    register_scenario,
    scenario_case,
    scenario_names,
)

_FAST = default_scenario_config()


class TestJsonRoundTrip:
    """spec → dict → JSON → spec must be the identity, for every axis."""

    SPECS = {
        "defaults": ScenarioSpec(),
        "uniform": ScenarioSpec(topology="grid", n=20, k=5, seed=3, trials=7),
        "tag": ScenarioSpec(
            topology="clique_chain",
            n=16,
            protocol="tag",
            spanning_tree="is",
            topology_params={"cliques": 4},
            keep_phase1_after_tree=False,
            config=_FAST,
        ),
        "tree": ScenarioSpec(
            topology="barbell", n=12, protocol="spanning_tree", spanning_tree="brr"
        ),
        "placement": ScenarioSpec(
            topology="ring", n=10, k=3, placement="single_source",
            placement_params={"source": 4},
        ),
        "churn": ScenarioSpec(
            topology="ring",
            n=12,
            config=_FAST.replace(churn=((2, 3, 8), (5, 1, 4))),
        ),
        "churn-reset": ScenarioSpec(
            topology="ring",
            n=12,
            config=_FAST.replace(churn=((2, 3, 8),), churn_reset=True),
        ),
        "hetero": ScenarioSpec(
            topology="ring",
            n=12,
            activation={"kind": "two_speed", "ratio": 4.0, "fast_fraction": 0.25},
            config=default_scenario_config(time_model=TimeModel.ASYNCHRONOUS),
        ),
        "named": ScenarioSpec(name="t/x", description="a test scenario"),
    }

    @pytest.mark.parametrize("key", sorted(SPECS))
    def test_round_trip(self, key):
        spec = self.SPECS[key]
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_json_is_plain_data(self):
        document = self.SPECS["churn"].to_json()
        assert isinstance(json.loads(document), dict)

    def test_defaults_serialise_empty(self):
        assert ScenarioSpec().to_dict() == {}

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict({"mystery": 1})

    def test_config_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig.from_dict({"mystery": 1})

    def test_extra_tuple_values_survive_json(self):
        config = SimulationConfig(extra=(("levels", (1, 2)),))
        rebuilt = SimulationConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        )
        assert rebuilt == config
        hash(rebuilt)  # must stay hashable after a JSON round trip

    def test_extra_order_normalised_at_construction(self):
        # Construction order of extra pairs must not break equality or the
        # round trip: __post_init__ key-sorts exactly like from_dict does.
        config = SimulationConfig(extra=(("b", 1), ("a", 2)))
        assert config.extra == (("a", 2), ("b", 1))
        assert SimulationConfig.from_dict(config.to_dict()) == config
        spec = ScenarioSpec(config=SimulationConfig(extra=(("z", 0), ("a", 1))))
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_config_round_trip(self):
        config = _FAST.replace(
            churn=((1, 2, 3),),
            time_model=TimeModel.ASYNCHRONOUS,
            activation_rates=(1.0, 2.0),
            loss_probability=0.1,
        ).with_options(tree="brr")
        assert SimulationConfig.from_dict(config.to_dict()) == config

    def test_non_object_json_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_json("[1, 2]")


class TestValidation:
    def test_unknown_topology(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(topology="mystery")

    def test_unknown_protocol(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(protocol="mystery")

    def test_unknown_spanning_tree(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(protocol="tag", spanning_tree="mystery")

    def test_unknown_placement(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(placement="mystery")

    def test_unknown_activation_kind(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(activation={"kind": "mystery"})

    def test_activation_params_without_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                activation={"ratio": 4.0, "fast_fraction": 0.5},  # forgot "kind"
                config=default_scenario_config(time_model=TimeModel.ASYNCHRONOUS),
            )

    def test_activation_requires_asynchronous(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(activation={"kind": "degree"})  # default config is sync

    def test_explicit_rates_length_checked_at_materialize(self):
        spec = ScenarioSpec(
            topology="ring",
            n=8,
            activation={"kind": "explicit", "rates": (1.0, 2.0)},
            config=default_scenario_config(time_model=TimeModel.ASYNCHRONOUS),
        )
        with pytest.raises(ConfigurationError):
            spec.materialize()

    def test_bad_trials(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(trials=0)


class TestMaterialize:
    def test_uniform_defaults(self):
        scenario = ScenarioSpec(topology="grid", n=16, k=4, config=_FAST).materialize()
        assert isinstance(scenario, MaterializedScenario)
        assert scenario.n == 16
        assert scenario.k == 4
        # k < n resolves the "auto" placement to spread: 4 distinct holders.
        assert len(scenario.placement) == 4
        assert "theorem1" in scenario.bounds and "theorem3" in scenario.bounds

    def test_all_to_all_when_k_omitted(self):
        scenario = ScenarioSpec(topology="ring", n=10, config=_FAST).materialize()
        assert scenario.k == 10
        assert all(len(v) == 1 for v in scenario.placement.values())

    def test_single_source_placement(self):
        scenario = ScenarioSpec(
            topology="ring", n=8, k=3, placement="single_source",
            placement_params={"source": 5}, config=_FAST,
        ).materialize()
        assert scenario.placement == {5: [0, 1, 2]}

    def test_multi_message_placements_keep_k_above_n(self):
        # single_source / random / adversarial_far hold several messages per
        # node, so k > n must survive materialisation un-clamped.
        scenario = ScenarioSpec(
            topology="ring", n=8, k=20, placement="single_source", config=_FAST
        ).materialize()
        assert scenario.k == 20
        assert scenario.placement == {0: list(range(20))}
        stats = scenario.run(trials=1)
        assert stats.trials == 1

    def test_spread_placements_still_clamp_k(self):
        assert ScenarioSpec(topology="ring", n=8, k=20, config=_FAST).materialize().k == 8

    def test_explicit_one_per_node_placements_reject_mismatched_k(self):
        # Explicit all_to_all demands k == n in either direction; explicit
        # spread rejects k > n.  Only "auto" keeps the historical clamp.
        for k in (5, 20):
            with pytest.raises(ConfigurationError):
                ScenarioSpec(
                    topology="ring", n=8, k=k, placement="all_to_all", config=_FAST
                ).materialize()
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                topology="ring", n=8, k=20, placement="spread", config=_FAST
            ).materialize()
        assert (
            ScenarioSpec(
                topology="ring", n=8, k=8, placement="all_to_all", config=_FAST
            ).materialize().k
            == 8
        )

    def test_unknown_placement_params_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                topology="ring", n=8, k=3, placement="random",
                placement_params={"target": 3}, config=_FAST,
            ).materialize()
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                topology="ring", n=8, k=3, placement="single_source",
                placement_params={"mystery": 1}, config=_FAST,
            ).materialize()

    def test_random_placement_is_seed_deterministic(self):
        spec = ScenarioSpec(topology="ring", n=8, k=3, placement="random", config=_FAST)
        assert spec.materialize().placement == spec.materialize().placement
        other = spec.replace(seed=99).materialize().placement
        # Different seed, (almost surely) different placement; equality would
        # mean the placement ignored the seed, which is the actual bug guarded.
        assert other == spec.replace(seed=99).materialize().placement

    def test_two_speed_rates_resolved(self):
        scenario = ScenarioSpec(
            topology="ring",
            n=8,
            activation={"kind": "two_speed", "ratio": 4.0, "fast_fraction": 0.5},
            config=default_scenario_config(time_model=TimeModel.ASYNCHRONOUS),
        ).materialize()
        assert scenario.config.activation_rates == (4.0,) * 4 + (1.0,) * 4

    def test_degree_rates_resolved(self):
        scenario = ScenarioSpec(
            topology="star",
            n=5,
            activation={"kind": "degree"},
            config=default_scenario_config(time_model=TimeModel.ASYNCHRONOUS),
        ).materialize()
        assert scenario.config.activation_rates == (4.0, 1.0, 1.0, 1.0, 1.0)

    @pytest.mark.parametrize(
        "spec",
        [
            ScenarioSpec(topology="ring", n=8, config=_FAST),
            *(
                ScenarioSpec(
                    topology="barbell", n=8, protocol="tag", spanning_tree=tree,
                    config=_FAST,
                )
                for tree in ("brr", "uniform_broadcast", "bfs_oracle", "is")
            ),
            ScenarioSpec(topology="barbell", n=8, protocol="spanning_tree"),
        ],
        ids=lambda spec: f"{spec.protocol}-{spec.spanning_tree}",
    )
    def test_batch_strategy_matches_process_declaration(self, spec):
        # scenario_batch_strategy dispatches on the factory type for speed;
        # this pins it to the authoritative per-process declaration so the
        # two can never drift.
        from repro.core.rng import derive_rng

        scenario = spec.materialize()
        probe = scenario.build_process(derive_rng(0, "probe"))
        assert scenario.batch_strategy() is probe.batch_strategy()

    def test_batch_strategy_exposed_and_gated(self):
        batched = ScenarioSpec(topology="ring", n=8, config=_FAST).materialize()
        assert batched.batch_strategy() is not None
        reset = ScenarioSpec(
            topology="ring", n=8,
            config=_FAST.replace(churn=((2, 3, 5),), churn_reset=True),
        ).materialize()
        assert reset.batch_strategy() is None


class TestRegistry:
    def test_names_are_sorted_and_nonempty(self):
        names = scenario_names()
        assert names == sorted(names)
        assert len(names) >= 20

    def test_register_requires_name_and_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            register_scenario(ScenarioSpec())
        first = next(iter(scenario_names()))
        with pytest.raises(ConfigurationError):
            register_scenario(SCENARIOS[first])

    def test_unknown_scenario(self):
        with pytest.raises(ConfigurationError):
            get_scenario("mystery/none")

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_registered_scenario_materializes_and_runs(self, name):
        spec = get_scenario(name)
        assert spec.name == name
        assert spec.description
        # "CI-sized" means seconds per trial.  For the dense engines that
        # caps n at a few dozen; the event-driven engine's per-event cost
        # lets its large-n showcase entries carry thousands of nodes and
        # still run in about a second.
        ci_cap = 2048 if spec.engine == "event" else 32
        assert spec.n <= ci_cap, "registered scenarios must stay CI-sized"
        stats = spec.materialize().run(trials=1)
        assert stats.trials == 1
        assert stats.mean > 0


class TestSingleSpecDrivesEveryConsumer:
    """One spec → CLI, run_sweep, batched/parallel runners: identical numbers."""

    SPEC = ScenarioSpec(
        topology="barbell",
        n=12,
        protocol="tag",
        spanning_tree="brr",
        config=_FAST,
        trials=3,
        seed=41,
    )

    def test_runners_agree(self):
        direct = self.SPEC.materialize().run()
        batched = run_trials_batched(self.SPEC)
        parallel = run_trials_parallel(self.SPEC, jobs=2)
        swept = run_sweep([self.SPEC], trials=3, seed=41)[0]
        assert direct == batched == parallel == swept.stats

    def test_cli_matches_library(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        path.write_text(self.SPEC.to_json(), encoding="utf-8")
        assert main(["scenario", "run", "--file", str(path)]) == 0
        out = capsys.readouterr().out
        assert self.SPEC.materialize().run().summary() in out

    def test_no_batch_gives_same_numbers(self):
        scenario = self.SPEC.materialize()
        assert scenario.run(batch=True) == scenario.run(batch=False)

    def test_scenario_with_explicit_factory_or_config_rejected(self):
        from repro.errors import AnalysisError

        scenario = self.SPEC.materialize()
        with pytest.raises(AnalysisError):
            run_trials_batched(self.SPEC, scenario.protocol_factory)
        with pytest.raises(AnalysisError):
            run_trials_batched(scenario, None, scenario.config)


class TestSweepCaseRebase:
    def test_case_builders_attach_specs(self):
        case = uniform_ag_case("ring", 12, 6, config=_FAST)
        assert isinstance(case, SweepCase)
        assert isinstance(case.spec, ScenarioSpec)
        assert case.spec.topology == "ring" and case.spec.protocol == "uniform"
        tag = tag_case("barbell", 12, 12, spanning_tree="is", config=_FAST)
        assert tag.spec.protocol == "tag" and tag.spec.spanning_tree == "is"

    def test_case_builder_equals_spec_route(self):
        case = uniform_ag_case("ring", 12, 6, config=_FAST)
        spec_route = scenario_case(
            ScenarioSpec(topology="ring", n=12, k=6, config=_FAST)
        )
        assert run_sweep([case], trials=2, seed=9)[0].stats == (
            run_sweep([spec_route], trials=2, seed=9)[0].stats
        )

    def test_scenario_case_by_name_with_overrides(self):
        case = scenario_case("tag/brr-barbell", n=20, value=20, label="x")
        assert case.label == "x"
        assert case.value == 20.0
        assert case.spec.n == 20

    def test_bare_spec_sweep_labels_use_materialized_sizes(self):
        # grid rounds 20 down to 16 nodes: the sweep label must name the
        # graph actually measured.
        point = run_sweep(
            [ScenarioSpec(topology="grid", n=20, config=_FAST)], trials=1, seed=3
        )[0]
        assert point.label == "grid(n=16, k=16)"
        assert point.value == 16.0

    def test_run_sweep_accepts_mixed_cases_and_specs(self):
        points = run_sweep(
            [uniform_ag_case("ring", 10, 5, config=_FAST),
             ScenarioSpec(topology="ring", n=10, k=5, config=_FAST)],
            trials=1,
            seed=4,
        )
        assert len(points) == 2


class TestScenarioCli:
    def test_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "churn/ring-crash-restart" in out

    def test_show_json_round_trips(self, capsys):
        assert main(["scenario", "show", "hetero/two-speed-ring", "--json"]) == 0
        out = capsys.readouterr().out
        assert ScenarioSpec.from_json(out) == get_scenario("hetero/two-speed-ring")

    def test_show_resolves_names_dynamically(self, capsys):
        # Unknown names get the friendly registry error (exit 2), and
        # user-registered scenarios are showable just like built-ins.
        assert main(["scenario", "show", "mystery/none"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
        mine = register_scenario(
            ScenarioSpec(name="test/showable", description="user scenario")
        )
        try:
            assert main(["scenario", "show", "test/showable", "--json"]) == 0
            assert ScenarioSpec.from_json(capsys.readouterr().out) == mine
        finally:
            SCENARIOS.pop(mine.name)

    def test_show_default_is_a_summary_not_json(self, capsys):
        assert main(["scenario", "show", "churn/ring-reset"]) == 0
        out = capsys.readouterr().out
        assert "churn:" in out and "reset mode" in out and "workload:" in out
        with pytest.raises(Exception):
            ScenarioSpec.from_json(out)

    def test_run_by_name(self, capsys):
        assert main(["scenario", "run", "uniform/ring", "--trials", "2"]) == 0
        assert "over 2 trials" in capsys.readouterr().out

    def test_run_single_trial_prints_metadata(self, capsys):
        assert main(["scenario", "run", "uniform/ring", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "completed after" in out and "protocol:" in out

    def test_run_requires_exactly_one_source(self, capsys):
        assert main(["scenario", "run"]) == 2
        assert main(["scenario", "run", "uniform/ring", "--file", "x.json"]) == 2

    def test_run_file_errors_are_friendly(self, tmp_path, capsys):
        assert main(["scenario", "run", "--file", str(tmp_path / "nope.json")]) == 2
        assert "error: cannot read" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert main(["scenario", "run", "--file", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_run_show_spec_from_run_flags(self, capsys):
        assert main(["run", "--topology", "ring", "--n", "8", "--show-spec"]) == 0
        spec = ScenarioSpec.from_json(capsys.readouterr().out)
        assert spec.topology == "ring" and spec.n == 8

    def test_run_title_reports_materialized_sizes(self, capsys):
        # grid rounds 18 down to 16 nodes and clamps k: the title must name
        # the workload actually simulated, not the requested flags.
        assert main(["run", "--topology", "grid", "--n", "18", "--k", "50"]) == 0
        assert "uniform on grid(n=16, k=16)" in capsys.readouterr().out

    def test_seed_override_rederives_random_placement(self, tmp_path, capsys):
        spec = ScenarioSpec(
            topology="ring", n=12, k=6, placement="random", config=_FAST, trials=1
        )
        path = tmp_path / "random.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        placements = set()
        for seed in ("1", "2"):
            assert main(["scenario", "run", "--file", str(path), "--seed", seed]) == 0
            placements.add(
                str(spec.replace(seed=int(seed)).materialize().placement)
            )
        assert len(placements) == 2  # --seed reached the placement draw

    def test_check_reports_broken_scenario_instead_of_dying(self, capsys):
        broken = register_scenario(
            ScenarioSpec(name="test/broken", description="always fails").replace(
                # Unknown churn node: engine construction raises at run time.
                config=_FAST.replace(churn=((99, 1, 5),))
            ),
            overwrite=True,
        )
        try:
            assert main(["scenario", "check", "--trials", "1"]) == 1
            out = capsys.readouterr().out
            assert "test/broken" in out and "FAIL" in out
            assert "uniform/ring" in out  # the rest of the registry still ran
        finally:
            SCENARIOS.pop(broken.name)
