"""Tests for stopping-time measurement, fits and ratio checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    fit_linear,
    fit_power_law,
    measure_protocol,
    ratio_is_bounded,
    run_trials,
)
from repro.core import SimulationConfig
from repro.errors import AnalysisError
from repro.gf import GF
from repro.graphs import ring_graph
from repro.protocols import AlgebraicGossip
from repro.rlnc import Generation
from repro.experiments import all_to_all_placement


def ag_factory(k=None):
    def factory(graph, rng):
        n = graph.number_of_nodes()
        kk = n if k is None else k
        generation = Generation.random(GF(16), kk, 2, rng)
        config = SimulationConfig(max_rounds=50_000)
        return AlgebraicGossip(graph, generation, all_to_all_placement(graph), config, rng)

    return factory


class TestMeasurement:
    def test_measure_protocol_returns_independent_trials(self):
        graph = ring_graph(8)
        config = SimulationConfig(max_rounds=50_000)
        results = measure_protocol(graph, ag_factory(), config, trials=4, seed=1)
        assert len(results) == 4
        assert all(result.completed for result in results)
        assert len({result.rounds for result in results}) >= 1

    def test_run_trials_aggregates(self):
        graph = ring_graph(8)
        config = SimulationConfig(max_rounds=50_000)
        stats = run_trials(graph, ag_factory(), config, trials=4, seed=1)
        assert stats.trials == 4
        assert stats.mean > 0

    def test_measurement_is_reproducible(self):
        graph = ring_graph(8)
        config = SimulationConfig(max_rounds=50_000)
        a = run_trials(graph, ag_factory(), config, trials=3, seed=7)
        b = run_trials(graph, ag_factory(), config, trials=3, seed=7)
        assert a.samples == b.samples

    def test_invalid_trial_count(self):
        graph = ring_graph(8)
        config = SimulationConfig()
        with pytest.raises(AnalysisError):
            measure_protocol(graph, ag_factory(), config, trials=0)


class TestFits:
    def test_power_law_recovers_exponent(self):
        xs = np.array([8, 16, 32, 64, 128])
        ys = 3.0 * xs**2.0
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(2.0, abs=0.01)
        assert fit.coefficient == pytest.approx(3.0, rel=0.05)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-6)
        assert fit.predict(256) == pytest.approx(3.0 * 256**2, rel=0.05)

    def test_power_law_with_noise_still_close(self, rng):
        xs = np.array([8, 16, 32, 64, 128, 256])
        ys = 5.0 * xs**1.5 * rng.uniform(0.9, 1.1, size=xs.size)
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.5, abs=0.15)

    def test_linear_fit(self):
        xs = np.array([1, 2, 3, 4])
        ys = 2.0 * xs + 1.0
        fit = fit_linear(xs, ys)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.predict(10) == pytest.approx(21.0)

    def test_fit_validation(self):
        with pytest.raises(AnalysisError):
            fit_power_law([1], [1])
        with pytest.raises(AnalysisError):
            fit_power_law([1, 2], [0, 1])
        with pytest.raises(AnalysisError):
            fit_linear([1], [2])
        with pytest.raises(AnalysisError):
            fit_linear([1, 2], [2])


class TestRatioCheck:
    def test_bounded_ratio(self):
        measured = [10, 20, 30]
        bounds = [15, 25, 40]
        assert ratio_is_bounded(measured, bounds, max_ratio=1.0)
        assert not ratio_is_bounded([100, 20, 30], bounds, max_ratio=1.0)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            ratio_is_bounded([1, 2], [1], max_ratio=1.0)
        with pytest.raises(AnalysisError):
            ratio_is_bounded([1], [0], max_ratio=1.0)
