"""Unit tests for finite-field arithmetic (prime and extension fields)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FieldError
from repro.gf import GF, ExtensionField, PrimeField


class TestFactory:
    def test_prime_orders_build_prime_fields(self):
        assert isinstance(GF(2), PrimeField)
        assert isinstance(GF(13), PrimeField)

    def test_prime_power_orders_build_extension_fields(self):
        assert isinstance(GF(4), ExtensionField)
        assert isinstance(GF(256), ExtensionField)
        assert isinstance(GF(9), ExtensionField)

    def test_factory_caches_instances(self):
        assert GF(16) is GF(16)

    def test_invalid_order_rejected(self):
        with pytest.raises(FieldError):
            GF(6)

    def test_equality_is_by_order(self):
        assert GF(16) == GF(16)
        assert GF(16) != GF(17)


class TestBasicArithmetic:
    def test_gf2_is_xor_and_and(self, gf2):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        assert list(gf2.add(a, b)) == [0, 1, 1, 0]
        assert list(gf2.mul(a, b)) == [0, 0, 0, 1]

    def test_gf256_known_aes_product(self):
        gf = GF(256)
        # A classic AES MixColumns fact: 0x53 * 0xCA = 0x01 in GF(256).
        assert int(gf.mul(0x53, 0xCA)) == 0x01

    def test_prime_field_matches_modular_arithmetic(self):
        gf = GF(7)
        for a in range(7):
            for b in range(7):
                assert int(gf.add(a, b)) == (a + b) % 7
                assert int(gf.mul(a, b)) == (a * b) % 7

    def test_add_neg_cancels(self, any_field):
        values = np.arange(min(any_field.order, 64)) % any_field.order
        assert np.all(any_field.add(values, any_field.neg(values)) == 0)

    def test_mul_inv_gives_one(self, any_field):
        values = (np.arange(1, min(any_field.order, 64))) % any_field.order
        values = values[values != 0]
        assert np.all(any_field.mul(values, any_field.inv(values)) == 1)

    def test_sub_is_add_of_negative(self, any_field):
        rng = np.random.default_rng(0)
        a = any_field.random_elements(rng, 32)
        b = any_field.random_elements(rng, 32)
        assert np.array_equal(any_field.sub(a, b), any_field.add(a, any_field.neg(b)))

    def test_div_by_zero_raises(self, any_field):
        with pytest.raises(FieldError):
            any_field.div(1, 0)

    def test_invert_zero_raises(self, any_field):
        with pytest.raises(FieldError):
            any_field.inv(np.array([1, 0, 3]) % any_field.order)

    def test_out_of_range_elements_rejected(self, gf16):
        with pytest.raises(FieldError):
            gf16.validate(np.array([0, 16]))
        with pytest.raises(FieldError):
            gf16.validate(np.array([-1]))

    def test_non_integer_elements_rejected(self, gf16):
        with pytest.raises(FieldError):
            gf16.validate(np.array([0.5, 1.0]))

    def test_boolean_arrays_rejected_explicitly(self, gf16):
        # Regression: dtype kind 'b' must hit the dedicated boolean branch,
        # not be silently promoted to 0/1 nor fall through the integer check.
        with pytest.raises(FieldError, match="boolean"):
            gf16.validate(np.array([True, False]))
        with pytest.raises(FieldError, match="boolean"):
            gf16.validate(True)
        with pytest.raises(FieldError, match="boolean"):
            gf16.add(np.array([1, 2]) != 0, 3)

    def test_float_integers_accepted(self, gf16):
        validated = gf16.validate(np.array([1.0, 5.0]))
        assert list(validated) == [1, 5]


class TestDerivedOperations:
    def test_power_matches_repeated_multiplication(self, any_field):
        base = 1 if any_field.order == 2 else 2
        expected = 1
        for exponent in range(6):
            assert int(any_field.power(base, exponent)) == expected
            expected = int(any_field.mul(expected, base))

    def test_power_negative_exponent(self, gf16):
        value = 7
        inv = int(gf16.inv(value))
        assert int(gf16.power(value, -1)) == inv

    def test_fermat_little_theorem_multiplicative_order(self, any_field):
        # a^(q-1) == 1 for every non-zero a.
        q = any_field.order
        sample = range(1, min(q, 32))
        for a in sample:
            assert int(any_field.power(a, q - 1)) == 1

    def test_dot_linear_combination(self, gf16):
        coefficients = np.array([1, 2, 0])
        vectors = np.array([[1, 2], [3, 4], [5, 6]])
        expected = gf16.add(vectors[0], gf16.scalar_mul(2, vectors[1]))
        assert np.array_equal(gf16.dot(coefficients, vectors), expected)

    def test_dot_shape_mismatch_raises(self, gf16):
        with pytest.raises(FieldError):
            gf16.dot(np.array([1, 2]), np.array([[1, 2, 3]]))

    def test_scalar_mul_zero_annihilates(self, any_field):
        vector = any_field.random_elements(np.random.default_rng(3), 10)
        assert np.all(any_field.scalar_mul(0, vector) == 0)

    def test_random_elements_nonzero(self, any_field):
        rng = np.random.default_rng(5)
        values = any_field.random_elements(rng, 200, nonzero=True)
        assert np.all(values != 0)
        assert np.all(values < any_field.order)

    def test_zeros_and_ones(self, gf16):
        assert np.all(gf16.zeros((2, 3)) == 0)
        assert np.all(gf16.ones(4) == 1)


class TestExtensionFieldConstruction:
    def test_gf9_has_characteristic_three(self):
        gf9 = GF(9)
        assert gf9.characteristic == 3
        assert gf9.degree == 2
        # Characteristic p: adding an element to itself p times gives zero.
        for a in range(9):
            total = 0
            for _ in range(3):
                total = int(gf9.add(total, a))
            assert total == 0

    def test_prime_field_rejects_prime_power(self):
        with pytest.raises(FieldError):
            PrimeField(4)

    def test_extension_field_rejects_prime(self):
        with pytest.raises(FieldError):
            ExtensionField(7)


class TestRawOperations:
    """The unchecked ``raw_*`` fast path must agree with the checked ops."""

    def test_raw_ops_match_checked_ops(self, any_field):
        rng = np.random.default_rng(11)
        a = any_field.random_elements(rng, 64)
        b = any_field.random_elements(rng, 64)
        assert np.array_equal(any_field.raw_add(a, b), any_field.add(a, b))
        assert np.array_equal(any_field.raw_sub(a, b), any_field.sub(a, b))
        assert np.array_equal(any_field.raw_mul(a, b), any_field.mul(a, b))
        nonzero = any_field.random_elements(rng, 64, nonzero=True)
        assert np.array_equal(any_field.raw_inv(nonzero), any_field.inv(nonzero))

    def test_raw_combine_matches_dot(self, any_field):
        rng = np.random.default_rng(13)
        coefficients = any_field.random_elements(rng, 5)
        rows = any_field.random_elements(rng, (5, 7))
        assert np.array_equal(
            any_field.raw_combine(coefficients, rows),
            any_field.dot(coefficients, rows),
        )

    def test_raw_ops_broadcast(self, gf16):
        rng = np.random.default_rng(7)
        factor = gf16.random_elements(rng, 4)
        rows = gf16.random_elements(rng, (4, 6))
        broadcast = gf16.raw_mul(factor[:, np.newaxis], rows)
        for i in range(4):
            assert np.array_equal(broadcast[i], gf16.mul(factor[i], rows[i]))


class TestExtensionTableCache:
    """Extension-field lookup tables are memoised per order (module cache)."""

    def test_tables_are_shared_between_instances(self):
        first = ExtensionField(16)
        second = ExtensionField(16)
        assert first is not second
        assert first._add_table is second._add_table
        assert first._mul_table is second._mul_table
        assert first._neg_table is second._neg_table
        assert first._inverse_table is second._inverse_table

    def test_shared_tables_are_immutable(self):
        field = ExtensionField(16)
        with pytest.raises(ValueError):
            field._mul_table[0, 0] = 1

    def test_cached_instance_still_computes_correctly(self):
        ExtensionField(16)  # ensure the cache is warm
        field = ExtensionField(16)
        assert int(field.mul(7, 9)) == 10
        assert int(field.add(5, 5)) == 0  # characteristic 2
        assert int(field.mul(3, field.inv(3))) == 1

    def test_pickle_roundtrip_shares_cached_tables(self):
        import pickle

        field = ExtensionField(16)
        clone = pickle.loads(pickle.dumps(field))
        assert clone == field
        assert clone._mul_table is field._mul_table  # via __reduce__ + cache
        prime = pickle.loads(pickle.dumps(PrimeField(7)))
        assert int(prime.mul(3, 5)) == 1
