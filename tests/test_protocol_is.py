"""Tests for the simulated IS spanning-tree protocol (Section 6)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import SimulationConfig, TimeModel
from repro.errors import SimulationError
from repro.gossip import GossipEngine
from repro.graphs import barbell_graph, clique_chain_graph, complete_graph, line_graph
from repro.protocols import BitStringMessage, ISSpanningTree


def run_is(graph, seed=0, config=None):
    config = config or SimulationConfig(max_rounds=5_000)
    rng = np.random.default_rng(seed)
    protocol = ISSpanningTree(graph, rng)
    result = GossipEngine(graph, protocol, config, rng).run()
    return protocol, result


class TestMechanics:
    def test_initial_bit_strings_are_unit_vectors(self):
        graph = line_graph(5)
        protocol = ISSpanningTree(graph, np.random.default_rng(0))
        for node in graph.nodes():
            bits = protocol.bits_of(node)
            assert bits.sum() == 1
            assert protocol.heard_count(node) == 1

    def test_root_defaults_to_highest_node(self):
        graph = line_graph(5)
        protocol = ISSpanningTree(graph, np.random.default_rng(0))
        assert protocol.root == 4

    def test_explicit_root(self):
        graph = line_graph(5)
        protocol = ISSpanningTree(graph, np.random.default_rng(0), root=2)
        assert protocol.root == 2

    def test_unknown_root_rejected(self):
        with pytest.raises(SimulationError):
            ISSpanningTree(line_graph(5), np.random.default_rng(0), root=50)

    def test_bit_strings_are_monotone(self):
        """Merging can only flip bits from zero to one (the crucial monotonicity
        property the asynchronous analysis of Theorem 8 relies on)."""
        graph = complete_graph(6)
        protocol = ISSpanningTree(graph, np.random.default_rng(1))
        rng = np.random.default_rng(2)
        previous = {node: protocol.bits_of(node) for node in graph.nodes()}
        for _ in range(100):
            node = int(rng.integers(0, 6))
            partner = protocol.choose_partner(node, rng)
            protocol.handle_tree_payload(partner, node, BitStringMessage(protocol.bits_of(node)))
            protocol.handle_tree_payload(node, partner, BitStringMessage(protocol.bits_of(partner)))
            for v in graph.nodes():
                now = protocol.bits_of(v)
                assert np.all(now >= previous[v])
                previous[v] = now

    def test_wrong_payload_rejected(self):
        graph = line_graph(4)
        protocol = ISSpanningTree(graph, np.random.default_rng(0))
        with pytest.raises(SimulationError):
            protocol.handle_tree_payload(0, 1, "nope")

    def test_parent_rule_only_fires_once(self):
        graph = line_graph(3)
        protocol = ISSpanningTree(graph, np.random.default_rng(0))  # root = 2
        full = np.ones(3, dtype=bool)
        assert protocol.handle_tree_payload(0, 1, BitStringMessage(full))
        assert protocol.parent_of(0) == 1
        # A later message containing the root bit does not change the parent.
        protocol.handle_tree_payload(0, 2, BitStringMessage(full))
        assert protocol.parent_of(0) == 1

    def test_alternates_deterministic_and_random_steps(self, rng):
        graph = complete_graph(8)
        protocol = ISSpanningTree(graph, np.random.default_rng(3))
        first = protocol.choose_partner(0, rng)   # round-robin step
        second = protocol.choose_partner(0, rng)  # uniform step
        third = protocol.choose_partner(0, rng)   # round-robin again
        assert graph.has_edge(0, first)
        assert graph.has_edge(0, second)
        assert graph.has_edge(0, third)
        assert third != first  # the round-robin pointer advanced


class TestTreeConstruction:
    @pytest.mark.parametrize("builder, n", [(barbell_graph, 12), (complete_graph, 10),
                                            (line_graph, 10)])
    def test_produces_spanning_tree(self, builder, n):
        graph = builder(n)
        protocol, result = run_is(graph, seed=4)
        assert result.completed
        tree = protocol.current_tree()
        assert tree is not None
        assert tree.root == protocol.root
        assert tree.spans(graph)

    def test_metadata_flags(self):
        graph = complete_graph(8)
        protocol, result = run_is(graph, seed=5)
        metadata = protocol.metadata()
        assert metadata["protocol"] == "ISSpanningTree"
        assert isinstance(metadata["full_spreading_complete"], bool)


class TestSection6Speed:
    """On large-weak-conductance graphs the IS tree completes in polylog rounds."""

    @pytest.mark.parametrize("builder, kwargs", [(barbell_graph, {}),
                                                 (clique_chain_graph, {"cliques": 3})])
    def test_polylog_rounds_on_clique_based_graphs(self, builder, kwargs):
        graph = builder(18, **kwargs)
        n = graph.number_of_nodes()
        config = SimulationConfig(max_rounds=50 * n)
        rounds = []
        for seed in range(3):
            _, result = run_is(graph, seed=seed, config=config)
            rounds.append(result.rounds)
        # The bound is O(c (log n + log 1/δ)/Φ_c + c²); with c = 2, Φ_c = Θ(1)
        # this is a small multiple of log n.  Allow a generous constant.
        assert np.mean(rounds) <= 12 * math.log(n) + 20

    def test_faster_than_n_on_barbell_async(self):
        graph = barbell_graph(16)
        n = graph.number_of_nodes()
        config = SimulationConfig(time_model=TimeModel.ASYNCHRONOUS, max_rounds=100 * n)
        _, result = run_is(graph, seed=6, config=config)
        assert result.rounds <= 6 * math.log(n) ** 2 + 30
