"""Tests for node churn and heterogeneous activation (repro.gossip.dynamics).

Covers the semantics of the two new scenario axes and the contract that
matters most: wherever the batch fast path supports a knob, it is
**bit-identical** to the sequential engine, and where it does not
(reset-mode churn) the trial runners fall back to the sequential engine
explicitly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stopping_time import measure_protocol
from repro.core import SimulationConfig, TimeModel
from repro.errors import ConfigurationError, SimulationError
from repro.experiments.parallel import measure_protocol_batched
from repro.gf import GF
from repro.gossip import GossipEngine, NodeDynamics, batch_supports_config
from repro.gossip.engine import GossipProcess
from repro.graphs import ring_graph
from repro.protocols import AlgebraicGossip
from repro.rlnc import Generation
from repro.scenarios import ScenarioSpec, default_scenario_config

_SYNC = default_scenario_config()
_ASYNC = default_scenario_config(time_model=TimeModel.ASYNCHRONOUS)


def _signature(results):
    return [
        (r.rounds, r.timeslots, r.completed, r.messages_sent, r.helpful_messages,
         dict(r.completion_rounds), dict(r.metadata))
        for r in results
    ]


def _measure_both(spec, trials=4, seed=7):
    scenario = spec.materialize()
    sequential = measure_protocol(
        scenario.graph, scenario.protocol_factory, scenario.config,
        trials=trials, seed=seed,
    )
    batched = measure_protocol_batched(scenario, trials=trials, seed=seed)
    return sequential, batched


class TestConfigValidation:
    def test_churn_rounds_validated(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(churn=((0, 0, 5),))
        with pytest.raises(ConfigurationError):
            SimulationConfig(churn=((0, 5, 5),))
        with pytest.raises(ConfigurationError):
            SimulationConfig(churn=((-1, 1, 5),))

    def test_malformed_churn_and_rates_raise_config_errors(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(churn=((1, 2),))  # not a triple
        with pytest.raises(ConfigurationError):
            SimulationConfig(churn=(("a", 1, 2),))
        with pytest.raises(ConfigurationError):
            SimulationConfig(
                time_model=TimeModel.ASYNCHRONOUS, activation_rates=("x",)
            )
        with pytest.raises(ConfigurationError):
            ScenarioSpec(config="not a config")

    def test_churn_reset_requires_churn(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(churn_reset=True)

    def test_activation_rates_positive_finite(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(
                time_model=TimeModel.ASYNCHRONOUS, activation_rates=(1.0, 0.0)
            )
        with pytest.raises(ConfigurationError):
            SimulationConfig(
                time_model=TimeModel.ASYNCHRONOUS, activation_rates=(1.0, float("inf"))
            )

    def test_activation_rates_rejected_under_synchronous(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(activation_rates=(1.0, 2.0))

    def test_churn_unknown_node_rejected_by_engine(self):
        spec = ScenarioSpec(topology="ring", n=8, config=_SYNC.replace(churn=((99, 1, 5),)))
        scenario = spec.materialize()
        with pytest.raises(SimulationError):
            scenario.run_single()

    def test_rate_length_mismatch_rejected_by_engine(self):
        config = _ASYNC.replace(activation_rates=(1.0, 2.0))
        graph = ring_graph(8)
        rng = np.random.default_rng(0)
        generation = Generation.random(GF(16), 8, 2, rng)
        placement = {node: [node] for node in graph.nodes()}
        process = AlgebraicGossip(graph, generation, placement, config, rng)
        with pytest.raises(SimulationError):
            GossipEngine(graph, process, config, rng)


class TestNodeDynamics:
    def test_down_mask_and_intervals(self):
        config = SimulationConfig(churn=((1, 3, 6), (4, 2, 4)))
        dynamics = NodeDynamics(config, list(range(6)))
        assert not dynamics.is_down(1, 2)
        assert dynamics.is_down(1, 3) and dynamics.is_down(1, 5)
        assert not dynamics.is_down(1, 6)
        assert list(np.nonzero(dynamics.down_mask(3))[0]) == [1, 4]
        assert dynamics.crashes_at(3) == [1] and dynamics.crashes_at(2) == [4]

    def test_uniform_draw_matches_historical_stream(self):
        dynamics = NodeDynamics(SimulationConfig(), list(range(10)))
        a, b = np.random.default_rng(3), np.random.default_rng(3)
        draws = [dynamics.choose_wakeup(a, r) for r in range(1, 50)]
        reference = [int(b.integers(0, 10)) for _ in range(49)]
        assert draws == reference

    def test_all_down_returns_none(self):
        config = SimulationConfig(churn=tuple((node, 1, 5) for node in range(4)))
        dynamics = NodeDynamics(config, list(range(4)))
        assert dynamics.choose_wakeup(np.random.default_rng(0), 2) is None
        assert dynamics.choose_wakeup(np.random.default_rng(0), 6) is not None

    def test_weighted_draw_restricted_to_alive(self):
        config = SimulationConfig(
            time_model=TimeModel.ASYNCHRONOUS,
            churn=((0, 1, 100),),
            activation_rates=(1000.0, 1.0, 1.0),
        )
        dynamics = NodeDynamics(config, list(range(3)))
        rng = np.random.default_rng(1)
        draws = {dynamics.choose_wakeup(rng, 5) for _ in range(50)}
        assert 0 not in draws and draws <= {1, 2}

    def test_weighted_draw_follows_rates(self):
        config = SimulationConfig(
            time_model=TimeModel.ASYNCHRONOUS, activation_rates=(1.0, 999.0)
        )
        dynamics = NodeDynamics(config, [0, 1])
        rng = np.random.default_rng(2)
        draws = [dynamics.choose_wakeup(rng, 1) for _ in range(200)]
        assert draws.count(1) > 180


class TestChurnSemantics:
    def test_same_seed_same_stopping_time(self):
        spec = ScenarioSpec(
            topology="ring", n=10, config=_SYNC.replace(churn=((2, 2, 8), (7, 4, 9)))
        )
        first = spec.materialize().run(trials=3, seed=11)
        second = spec.materialize().run(trials=3, seed=11)
        assert first == second

    def test_churn_slows_dissemination_and_counts_drops(self):
        base = ScenarioSpec(topology="ring", n=10, config=_SYNC)
        churned = base.with_config(churn=((2, 1, 20),))
        calm = base.materialize().run_single()
        result = churned.materialize().run_single()
        assert result.metadata["churn_dropped_messages"] > 0
        assert result.rounds >= calm.rounds

    def test_down_node_blocks_its_unique_message(self):
        # Node 5 holds message 5 exclusively and is down for rounds 1..9:
        # nothing can finish before it comes back at round 10.
        spec = ScenarioSpec(
            topology="ring", n=8, config=_SYNC.replace(churn=((5, 1, 10),))
        )
        result = spec.materialize().run_single()
        assert result.completed
        assert result.rounds >= 10

    def test_never_returning_node_hits_round_limit(self):
        config = _SYNC.replace(
            churn=((5, 1, 1_000_000),), max_rounds=50, allow_incomplete=True
        )
        result = ScenarioSpec(topology="ring", n=8, config=config).materialize().run_single()
        assert not result.completed
        assert result.rounds == 50


class TestBatchEquivalence:
    """Scalar vs batch bit-identity for every supported knob combination."""

    CASES = {
        "sync-churn-uniform": ScenarioSpec(
            topology="ring", n=10, config=_SYNC.replace(churn=((2, 3, 8), (5, 1, 4)))
        ),
        "async-churn-uniform": ScenarioSpec(
            topology="ring", n=10, config=_ASYNC.replace(churn=((2, 3, 8), (5, 1, 4)))
        ),
        "async-hetero-uniform": ScenarioSpec(
            topology="ring", n=10,
            activation={"kind": "two_speed", "ratio": 4.0, "fast_fraction": 0.5},
            config=_ASYNC,
        ),
        "async-churn-hetero-uniform": ScenarioSpec(
            topology="ring", n=10,
            activation={"kind": "degree"},
            config=_ASYNC.replace(churn=((3, 2, 6),)),
        ),
        "sync-churn-tag": ScenarioSpec(
            topology="barbell", n=12, protocol="tag", spanning_tree="brr",
            config=_SYNC.replace(churn=((3, 2, 6),)),
        ),
        "async-churn-hetero-tag": ScenarioSpec(
            topology="barbell", n=12, protocol="tag", spanning_tree="is",
            activation={"kind": "two_speed", "ratio": 3.0, "fast_fraction": 0.25},
            config=_ASYNC.replace(churn=((3, 2, 6),)),
        ),
        "sync-churn-loss-uniform": ScenarioSpec(
            topology="ring", n=10,
            config=_SYNC.replace(churn=((2, 3, 8),), loss_probability=0.2),
        ),
        "sync-churn-tree": ScenarioSpec(
            topology="barbell", n=12, protocol="spanning_tree", spanning_tree="brr",
            config=SimulationConfig(max_rounds=10_000, churn=((3, 2, 6),)),
        ),
    }

    @pytest.mark.parametrize("key", sorted(CASES))
    def test_bit_identical(self, key):
        sequential, batched = _measure_both(self.CASES[key])
        assert _signature(batched) == _signature(sequential)


class TestChurnReset:
    SPEC = ScenarioSpec(
        topology="ring", n=10,
        config=_SYNC.replace(churn=((2, 3, 9),), churn_reset=True),
    )

    def test_outside_batch_support_matrix(self):
        assert not batch_supports_config(self.SPEC.config)
        assert batch_supports_config(self.SPEC.with_config(churn_reset=False).config)

    def test_batched_runner_falls_back_to_scalar(self):
        sequential, batched = _measure_both(self.SPEC, trials=3)
        assert _signature(batched) == _signature(sequential)

    def test_reset_loses_progress(self):
        # Same schedule, pause vs reset: the reset node rejoins with only its
        # initial message, so the reset run can never finish earlier.
        reset = self.SPEC.materialize().run(trials=5, seed=3)
        pause = self.SPEC.with_config(churn_reset=False).materialize().run(trials=5, seed=3)
        assert reset.mean >= pause.mean

    def test_reset_crash_clears_stale_completion_round(self):
        # Node 2 crashes at round 3 with reset semantics: whatever completion
        # it had earned before must be re-earned, so its recorded completion
        # round lies at/after the crash and the slowest node matches rounds.
        spec = ScenarioSpec(
            topology="complete", n=6,
            config=_SYNC.replace(churn=((2, 3, 5),), churn_reset=True),
        )
        result = spec.materialize().run_single()
        assert result.completed
        assert result.completion_rounds[2] >= 3
        assert result.last_completion_round == result.rounds

    def test_on_crash_resets_decoder_rank(self):
        graph = ring_graph(6)
        rng = np.random.default_rng(0)
        generation = Generation.random(GF(16), 6, 2, rng)
        placement = {node: [node] for node in graph.nodes()}
        process = AlgebraicGossip(graph, generation, placement, _SYNC, rng)
        # Feed node 0 a foreign packet so its rank exceeds its initial one.
        packet = process.encoders[1].next_packet()
        process.on_deliver(0, 1, packet)
        assert process.rank_of(0) == 2
        process.on_crash(0)
        assert process.rank_of(0) == 1

    def test_spanning_tree_scenario_rejects_churn_reset_upfront(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                topology="barbell", n=8, protocol="spanning_tree",
                config=SimulationConfig(
                    max_rounds=1000, churn=((1, 2, 4),), churn_reset=True
                ),
            )

    def test_default_on_crash_refuses(self):
        class Opaque(GossipProcess):
            def on_wakeup(self, node, rng):  # pragma: no cover - unused
                return []

            def on_deliver(self, receiver, sender, payload):  # pragma: no cover
                return None

            def is_complete(self):  # pragma: no cover - unused
                return True

            def finished_nodes(self):  # pragma: no cover - unused
                return set()

        with pytest.raises(SimulationError):
            Opaque().on_crash(0)


class TestHeterogeneousRates:
    def test_same_seed_same_stopping_time(self):
        spec = ScenarioSpec(
            topology="ring", n=10, activation={"kind": "degree"}, config=_ASYNC
        )
        assert spec.materialize().run(trials=3, seed=5) == spec.materialize().run(
            trials=3, seed=5
        )

    def test_rates_change_the_outcome(self):
        uniform = ScenarioSpec(topology="star", n=10, config=_ASYNC)
        hetero = uniform.replace(activation={"kind": "two_speed", "ratio": 8.0})
        assert uniform.materialize().run(trials=3, seed=5) != hetero.materialize().run(
            trials=3, seed=5
        )
