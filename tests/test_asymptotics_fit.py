"""Property-based tests of the decade-sweep exponent fit.

:func:`repro.analysis.fit_decades` underpins the ``asymptotics`` campaign's
headline numbers, so its contract is pinned down property-first:

* planted power laws ``T(n) = c·n^a`` are recovered within tolerance, both
  noiseless (exactly, up to float roundoff) and under bounded multiplicative
  noise;
* the exponent is invariant under rescaling every sample by one positive
  constant (quoting timeslots instead of rounds must not change the slope),
  and the bootstrap CI brackets are deterministic in the fit seed;
* degenerate inputs — a single decade, zero variance across sizes, empty or
  non-positive samples, nonsensical bootstrap/confidence settings — raise
  :class:`~repro.errors.AnalysisError` rather than returning a junk slope.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ExponentFit, fit_decades
from repro.core.rng import derive_rng
from repro.errors import AnalysisError

DECADES = (100, 1_000, 10_000, 100_000)


def planted_samples(
    exponent: float,
    coefficient: float,
    *,
    sizes=DECADES,
    trials: int = 8,
    noise: float = 0.0,
    seed: int = 0,
) -> dict[int, list[float]]:
    """Per-size samples of ``c·n^a``, optionally with multiplicative noise."""
    samples: dict[int, list[float]] = {}
    for n in sizes:
        rng = derive_rng(seed, f"planted-{n}")
        base = coefficient * n**exponent
        samples[n] = [
            base * (1.0 + noise * (2.0 * rng.random() - 1.0)) for _ in range(trials)
        ]
    return samples


class TestPowerLawRecovery:
    @given(
        exponent=st.floats(min_value=0.1, max_value=2.5),
        coefficient=st.floats(min_value=0.5, max_value=50.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_noiseless_recovery_is_exact(self, exponent, coefficient):
        fit = fit_decades(planted_samples(exponent, coefficient), bootstrap=10)
        assert fit.exponent == pytest.approx(exponent, rel=1e-9)
        assert fit.coefficient == pytest.approx(coefficient, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)
        # A noiseless planted law leaves the bootstrap nothing to vary.
        assert fit.ci_low == pytest.approx(exponent, rel=1e-9)
        assert fit.ci_high == pytest.approx(exponent, rel=1e-9)

    @given(
        exponent=st.floats(min_value=0.2, max_value=2.0),
        noise=st.floats(min_value=0.01, max_value=0.15),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_noisy_recovery_within_tolerance(self, exponent, noise, seed):
        samples = planted_samples(exponent, 3.0, noise=noise, seed=seed)
        fit = fit_decades(samples, bootstrap=50)
        # ±15% multiplicative noise over three decades moves the log-log
        # slope by far less than 0.1 — the tolerance the campaign's
        # "measured exponent ≈ 1" claims need.
        assert fit.exponent == pytest.approx(exponent, abs=0.1)
        assert fit.ci_low <= fit.ci_high
        assert fit.points == len(DECADES)

    def test_predict_inverts_the_fit(self):
        fit = fit_decades(planted_samples(1.0, 2.0), bootstrap=5)
        assert fit.predict(50_000) == pytest.approx(2.0 * 50_000, rel=1e-6)


class TestInvariances:
    @given(
        exponent=st.floats(min_value=0.2, max_value=2.0),
        scale=st.floats(min_value=1e-3, max_value=1e3),
        noise=st.floats(min_value=0.0, max_value=0.1),
    )
    @settings(max_examples=30, deadline=None)
    def test_exponent_invariant_under_sample_rescaling(self, exponent, scale, noise):
        samples = planted_samples(exponent, 4.0, noise=noise, seed=7)
        scaled = {n: [value * scale for value in values] for n, values in samples.items()}
        fit = fit_decades(samples, bootstrap=20)
        rescaled = fit_decades(scaled, bootstrap=20)
        # Invariant up to float roundoff only: the fit runs in log space,
        # where the scale becomes an additive intercept shift.
        assert rescaled.exponent == pytest.approx(fit.exponent, rel=1e-9, abs=1e-9)
        assert rescaled.coefficient == pytest.approx(fit.coefficient * scale, rel=1e-6)
        assert rescaled.ci_low == pytest.approx(fit.ci_low, rel=1e-9, abs=1e-9)
        assert rescaled.ci_high == pytest.approx(fit.ci_high, rel=1e-9, abs=1e-9)

    def test_bootstrap_is_deterministic_in_the_seed(self):
        samples = planted_samples(1.1, 2.0, noise=0.1, seed=3)
        first = fit_decades(samples, bootstrap=100, seed=5)
        second = fit_decades(samples, bootstrap=100, seed=5)
        assert first == second
        different = fit_decades(samples, bootstrap=100, seed=6)
        assert (different.ci_low, different.ci_high) != (first.ci_low, first.ci_high)

    def test_summary_is_one_human_readable_line(self):
        fit = fit_decades(planted_samples(1.0, 2.0), bootstrap=5)
        text = fit.summary()
        assert "\n" not in text
        assert "exponent 1.000" in text
        assert "95% bootstrap CI" in text
        assert isinstance(fit, ExponentFit)


class TestDegenerateInputs:
    def test_single_decade_raises(self):
        with pytest.raises(AnalysisError, match="at least two distinct sizes"):
            fit_decades({1000: [10.0, 11.0]})

    def test_empty_mapping_raises(self):
        with pytest.raises(AnalysisError, match="at least two distinct sizes"):
            fit_decades({})

    def test_zero_variance_across_sizes_raises(self):
        with pytest.raises(AnalysisError, match="zero variance across sizes"):
            fit_decades({100: [7.0, 7.0], 1000: [7.0, 7.0], 10_000: [7.0, 7.0]})

    def test_size_with_no_samples_raises(self):
        with pytest.raises(AnalysisError, match="no samples for n=1000"):
            fit_decades({100: [5.0], 1000: []})

    def test_non_positive_sample_raises(self):
        with pytest.raises(AnalysisError, match="strictly positive"):
            fit_decades({100: [5.0], 1000: [12.0, 0.0]})

    def test_non_positive_size_raises(self):
        with pytest.raises(AnalysisError, match="sizes must be strictly positive"):
            fit_decades({0: [5.0], 1000: [12.0]})

    @given(bootstrap=st.integers(min_value=-5, max_value=0))
    @settings(max_examples=6, deadline=None)
    def test_bad_bootstrap_raises(self, bootstrap):
        with pytest.raises(AnalysisError, match="bootstrap replicate"):
            fit_decades({100: [5.0], 1000: [12.0]}, bootstrap=bootstrap)

    @given(confidence=st.sampled_from([0.0, 1.0, -0.2, 1.5]))
    @settings(max_examples=4, deadline=None)
    def test_bad_confidence_raises(self, confidence):
        with pytest.raises(AnalysisError, match="strictly between 0 and 1"):
            fit_decades({100: [5.0], 1000: [12.0]}, confidence=confidence)

    def test_fit_errors_are_repro_errors(self):
        # The CLI maps ReproError to exit code 2; the fit's typed errors
        # must stay inside that hierarchy.
        from repro.errors import ReproError

        assert issubclass(AnalysisError, ReproError)


class TestDecadeSweepHelpers:
    def test_decade_ns_walks_the_decades(self):
        from repro.scenarios import decade_ns

        assert decade_ns(1000, 1_000_000) == (1000, 10_000, 100_000, 1_000_000)
        assert decade_ns(64, 640) == (64, 640)
        assert decade_ns(1000, 10_000, points_per_decade=2) == (1000, 3162, 10_000)

    def test_decade_ns_rejects_single_size(self):
        from repro.errors import ConfigurationError
        from repro.scenarios import decade_ns

        with pytest.raises(ConfigurationError, match="at least two sizes"):
            decade_ns(1000, 5000)

    def test_log_sized_cliques_keeps_edges_quasilinear(self):
        from repro.scenarios import log_sized_cliques

        for n in (64, 1000, 100_000):
            cliques = log_sized_cliques(n)["cliques"]
            size = n // cliques
            # Clique size tracks log2 n, so intra-clique edges stay
            # O(n log n) instead of the O(n^2/c) a fixed count gives.
            assert size <= max(4, math.ceil(math.log2(n))) + 1
            assert cliques >= 3 and n >= 2 * cliques

    def test_decade_sweep_scales_topology_params(self):
        from repro.scenarios import decade_sweep, get_scenario, log_sized_cliques

        base = get_scenario("event/ring-of-cliques")
        specs = decade_sweep(
            base, min_n=64, max_n=640, topology_params=log_sized_cliques, trials=2
        )
        assert [spec.n for spec in specs] == [64, 640]
        for spec in specs:
            params = dict(spec.topology_params)
            assert params == log_sized_cliques(spec.n)
            assert spec.trials == 2
            assert spec.name == "" and spec.description == ""
            assert spec.engine == base.engine and spec.backend == base.backend
