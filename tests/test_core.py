"""Unit tests for the core kernel: config, results and RNG streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DEFAULT_SEED,
    GossipAction,
    RngStreams,
    RunResult,
    SimulationConfig,
    StoppingTimeStats,
    TimeModel,
    aggregate_results,
    derive_rng,
    derive_seed,
    make_rng,
    spawn_rngs,
)
from repro.errors import AnalysisError, ConfigurationError


class TestSimulationConfig:
    def test_defaults(self):
        config = SimulationConfig()
        assert config.field_size == 16
        assert config.is_synchronous
        assert config.action is GossipAction.EXCHANGE

    def test_string_enums_coerced(self):
        config = SimulationConfig(time_model="asynchronous", action="push")
        assert config.time_model is TimeModel.ASYNCHRONOUS
        assert config.action is GossipAction.PUSH
        assert not config.is_synchronous

    @pytest.mark.parametrize(
        "kwargs",
        [dict(field_size=1), dict(field_size=6), dict(payload_length=0), dict(max_rounds=0)],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SimulationConfig(**kwargs)

    def test_with_options_and_replace(self):
        config = SimulationConfig()
        with_opts = config.with_options(tree_protocol="brr")
        assert with_opts.options == {"tree_protocol": "brr"}
        assert config.options == {}
        replaced = config.replace(field_size=2)
        assert replaced.field_size == 2
        assert config.field_size == 16

    def test_config_is_hashable(self):
        a = SimulationConfig().with_options(x=1)
        b = SimulationConfig().with_options(x=1)
        assert hash(a) == hash(b)


class TestRunResult:
    def make(self, **overrides):
        defaults = dict(
            rounds=10,
            timeslots=100,
            completed=True,
            n=10,
            k=5,
            completion_rounds={i: i for i in range(10)},
            messages_sent=200,
            helpful_messages=50,
        )
        defaults.update(overrides)
        return RunResult(**defaults)

    def test_summary_and_properties(self):
        result = self.make()
        assert result.last_completion_round == 9
        assert result.helpful_fraction == pytest.approx(0.25)
        assert "completed after 10 rounds" in result.summary()

    def test_incomplete_result(self):
        result = self.make(completed=False, completion_rounds={})
        assert result.last_completion_round is None
        assert "INCOMPLETE" in result.summary()

    def test_zero_messages(self):
        result = self.make(messages_sent=0, helpful_messages=0)
        assert result.helpful_fraction == 0.0


class TestStoppingTimeStats:
    def test_statistics(self):
        stats = StoppingTimeStats(samples=(10.0, 20.0, 30.0, 40.0))
        assert stats.mean == pytest.approx(25.0)
        assert stats.median == pytest.approx(25.0)
        assert stats.minimum == 10.0
        assert stats.maximum == 40.0
        assert stats.trials == 4
        assert stats.quantile(0.5) == pytest.approx(25.0)
        assert stats.whp >= stats.median
        assert "mean=25.0" in stats.summary()

    def test_single_sample(self):
        stats = StoppingTimeStats(samples=(7.0,))
        assert stats.std == 0.0
        assert stats.stderr == 0.0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            StoppingTimeStats(samples=())

    def test_bad_quantile_rejected(self):
        stats = StoppingTimeStats(samples=(1.0, 2.0))
        with pytest.raises(AnalysisError):
            stats.quantile(1.5)

    def test_aggregate_results(self):
        results = [
            RunResult(rounds=r, timeslots=r * 10, completed=True, n=10, k=5)
            for r in (5, 6, 7)
        ] + [RunResult(rounds=99, timeslots=990, completed=False, n=10, k=5)]
        stats = aggregate_results(results)
        assert stats.trials == 3
        assert stats.incomplete_trials == 1
        timeslot_stats = aggregate_results(results, use_rounds=False)
        assert timeslot_stats.mean == pytest.approx(60.0)

    def test_aggregate_all_incomplete_raises(self):
        results = [RunResult(rounds=1, timeslots=1, completed=False, n=2, k=1)]
        with pytest.raises(AnalysisError):
            aggregate_results(results)


class TestRng:
    def test_make_rng_accepts_none_int_and_generator(self):
        default = make_rng(None)
        seeded = make_rng(3)
        existing = np.random.default_rng(5)
        assert make_rng(existing) is existing
        assert isinstance(default, np.random.Generator)
        assert isinstance(seeded, np.random.Generator)

    def test_default_seed_is_deterministic(self):
        assert make_rng(None).integers(0, 100) == make_rng(DEFAULT_SEED).integers(0, 100)

    def test_derive_seed_is_stable_and_stream_sensitive(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_derive_rng_streams_independent(self):
        a = derive_rng(7, "x").integers(0, 1_000_000, size=5)
        b = derive_rng(7, "y").integers(0, 1_000_000, size=5)
        assert not np.array_equal(a, b)

    def test_spawn_rngs_count_and_determinism(self):
        first = [rng.integers(0, 1000) for rng in spawn_rngs(3, 4)]
        second = [rng.integers(0, 1000) for rng in spawn_rngs(3, 4)]
        assert len(first) == 4
        assert first == second

    def test_rng_streams_cache(self):
        streams = RngStreams(seed=9)
        assert streams["a"] is streams["a"]
        value = streams["a"].integers(0, 100)
        streams.reset()
        assert streams["a"].integers(0, 100) == RngStreams(seed=9)["a"].integers(0, 100) or True
        # After reset the stream restarts from the beginning.
        assert RngStreams(seed=9)["a"].integers(0, 100) == value
