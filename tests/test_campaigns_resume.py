"""Campaign resume semantics: interruption, incremental re-execution, reports.

The campaign contract (docs/campaigns.md):

* a campaign interrupted mid-DAG resumes from its store — completed units
  are served from cache, only the missing trials execute;
* the report marks every unit ``cached`` / ``computed`` / ``partial``;
* a fully-cached re-run computes nothing (``store.puts == 0``) and renders a
  byte-identical report body (everything above the timings marker);
* the acceptance flow: ``repro campaign run table1 --trials 2`` executes
  through the store, skips all units on immediate rerun, and emits Markdown
  + HTML reports carrying the Table-1 rows and the cache statistics.
"""

from __future__ import annotations

import pytest

import repro.campaigns.runner as campaign_runner
from repro.campaigns import (
    ArtifactSpec,
    CampaignSpec,
    CampaignUnit,
    report_body,
    render_html,
    render_markdown,
    run_campaign,
    write_report,
)
from repro.scenarios import ScenarioSpec
from repro.store import ResultStore


def three_unit_campaign() -> CampaignSpec:
    units = tuple(
        CampaignUnit(
            name=topology,
            spec=ScenarioSpec(topology=topology, n=8, k=4, trials=3, seed=5),
            after=() if index == 0 else (("ring", "line", "grid")[index - 1],),
        )
        for index, topology in enumerate(("ring", "line", "grid"))
    )
    return CampaignSpec(
        name="resume-test",
        title="Resume test campaign",
        units=units,
        artifacts=(ArtifactSpec(kind="measured-table", title="Measured"),),
    )


class TestInterruptedCampaignResumes:
    def test_interrupt_mid_dag_then_resume_runs_only_missing_units(
        self, tmp_path, monkeypatch
    ):
        campaign = three_unit_campaign()
        store_path = tmp_path / "store"

        # Interrupt the campaign while its second unit executes: the unit
        # runner raises after the first unit has completed and archived.
        real_run_unit = campaign_runner._run_unit
        calls = {"count": 0}

        def interrupting(unit, spec, **kwargs):
            calls["count"] += 1
            if calls["count"] == 2:
                raise KeyboardInterrupt
            return real_run_unit(unit, spec, **kwargs)

        monkeypatch.setattr(campaign_runner, "_run_unit", interrupting)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(campaign, store=ResultStore(store_path))
        monkeypatch.setattr(campaign_runner, "_run_unit", real_run_unit)

        # Resume against the same store: the completed unit is served from
        # cache, only the interrupted remainder simulates.
        store = ResultStore(store_path)
        result = run_campaign(campaign, store=store)
        statuses = {o.unit.name: o.status for o in result.outcomes}
        assert statuses == {"ring": "cached", "line": "computed", "grid": "computed"}
        assert result.cached_trials == 3
        assert result.computed_trials == 6
        assert store.puts == 6

    def test_interrupt_mid_unit_resumes_partially(self, tmp_path):
        campaign = three_unit_campaign()
        store_path = tmp_path / "store"
        # Simulate a mid-unit kill: the store holds only trial 0 of unit 1
        # (the batch append was cut short).
        spec = campaign.unit("ring").resolve()
        seed_store = ResultStore(store_path)
        (result,) = campaign_runner.measure_protocol_parallel(
            spec, trials=1, store=seed_store
        )
        assert seed_store.puts == 1

        store = ResultStore(store_path)
        resumed = run_campaign(campaign, store=store)
        ring = resumed.outcome("ring")
        assert ring.status == "partial"
        assert (ring.cached_trials, ring.computed_trials) == (1, 2)
        # Resumed statistics are bit-identical to an uninterrupted cold run.
        cold = run_campaign(campaign, store=ResultStore(tmp_path / "cold"))
        for left, right in zip(resumed.outcomes, cold.outcomes):
            assert left.stats.samples == right.stats.samples

    def test_report_marks_cached_vs_computed_units(self, tmp_path):
        campaign = three_unit_campaign()
        store_path = tmp_path / "store"
        # Pre-populate only the first unit, then run the whole campaign.
        first = CampaignSpec(
            name="first-only",
            units=(campaign.units[0],),
        )
        run_campaign(first, store=ResultStore(store_path))
        result = run_campaign(campaign, store=ResultStore(store_path))
        markdown = render_markdown(result)
        body = report_body(markdown)
        assert "| ring |" in body and "| cached |" in body
        assert "| line |" in body and "| computed |" in body


class TestFullyCachedRerunIsByteIdentical:
    def test_markdown_and_html_bodies_stable_across_cached_reruns(self, tmp_path):
        campaign = three_unit_campaign()
        store_path = tmp_path / "store"
        run_campaign(campaign, store=ResultStore(store_path))  # cold
        warm_one = run_campaign(campaign, store=ResultStore(store_path))
        warm_two = run_campaign(campaign, store=ResultStore(store_path))
        assert warm_one.computed_trials == warm_two.computed_trials == 0
        assert report_body(render_markdown(warm_one)) == report_body(
            render_markdown(warm_two)
        )
        assert report_body(render_html(warm_one)) == report_body(
            render_html(warm_two)
        )

    def test_written_side_files_are_byte_identical(self, tmp_path):
        campaign = three_unit_campaign().replace(
            artifacts=(ArtifactSpec(kind="csv", title="Trials"),)
        )
        store_path = tmp_path / "store"
        run_campaign(campaign, store=ResultStore(store_path))
        warm_one = run_campaign(campaign, store=ResultStore(store_path))
        warm_two = run_campaign(campaign, store=ResultStore(store_path))
        first = write_report(warm_one, tmp_path / "r1")
        second = write_report(warm_two, tmp_path / "r2")
        assert first["trials"].read_bytes() == second["trials"].read_bytes()


class TestAcceptanceFlow:
    """`repro campaign run table1 --trials 2` — the PR's acceptance criterion."""

    def test_table1_smoke_runs_then_skips_everything(self, tmp_path, capsys):
        from repro.cli import main

        store = str(tmp_path / "store")
        report_dir = tmp_path / "report"
        args = [
            "campaign", "run", "table1", "--trials", "2",
            "--store", store, "--report-dir", str(report_dir),
        ]
        assert main(args) == 0
        cold_out = capsys.readouterr().out
        assert "newly computed and saved" in cold_out

        # Immediate rerun: every unit skipped, puts == 0.
        assert main(args) == 0
        warm_out = capsys.readouterr().out
        assert "0 newly computed" in warm_out
        assert "computed (" not in warm_out  # every unit line says cached

        markdown = (report_dir / "report.md").read_text(encoding="utf-8")
        html_text = (report_dir / "report.html").read_text(encoding="utf-8")
        # Table-1 rows (analytic protocol column + measured unit rows).
        assert "Uniform AG" in markdown and "TAG + B_RR" in markdown
        assert "uniform-barbell" in markdown
        # Cache statistics.
        assert "## Cache statistics" in markdown
        assert "served from cache: 26 trial(s)" in markdown
        assert "Uniform AG" in html_text
        assert "Cache statistics" in html_text
