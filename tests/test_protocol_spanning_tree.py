"""Tests for the spanning-tree gossip protocols (Section 4.1 and Theorem 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.bounds import brr_broadcast_upper_bound
from repro.core import SimulationConfig, TimeModel
from repro.errors import SimulationError
from repro.gossip import GossipEngine
from repro.graphs import (
    barbell_graph,
    bfs_spanning_tree,
    complete_graph,
    diameter,
    grid_graph,
    line_graph,
    ring_graph,
)
from repro.protocols import (
    BfsOracleTree,
    RoundRobinBroadcastTree,
    TreeToken,
    UniformBroadcastTree,
)


def run_standalone(protocol, graph, config, seed=0):
    rng = np.random.default_rng(seed)
    return GossipEngine(graph, protocol, config, rng).run()


class TestBroadcastTreeConstruction:
    @pytest.mark.parametrize("protocol_cls", [UniformBroadcastTree, RoundRobinBroadcastTree])
    @pytest.mark.parametrize("builder, n", [(line_graph, 10), (grid_graph, 16),
                                            (barbell_graph, 12), (complete_graph, 10)])
    def test_produces_valid_spanning_tree(self, protocol_cls, builder, n, sync_config):
        graph = builder(n)
        protocol = protocol_cls(graph, root=0, rng=np.random.default_rng(1))
        result = run_standalone(protocol, graph, sync_config, seed=1)
        assert result.completed
        tree = protocol.current_tree()
        assert tree is not None
        assert tree.root == 0
        assert tree.spans(graph)

    def test_parent_is_first_informer(self, sync_config):
        graph = line_graph(5)
        protocol = RoundRobinBroadcastTree(graph, root=0, rng=np.random.default_rng(2))
        run_standalone(protocol, graph, sync_config, seed=2)
        # On a line rooted at 0 the only possible parent of i is i - 1.
        for node in range(1, 5):
            assert protocol.parent_of(node) == node - 1

    def test_informed_count_monotone(self, sync_config):
        graph = ring_graph(8)
        protocol = UniformBroadcastTree(graph, root=0, rng=np.random.default_rng(3))
        assert protocol.informed_count == 1
        run_standalone(protocol, graph, sync_config, seed=3)
        assert protocol.informed_count == 8

    def test_unknown_root_rejected(self):
        with pytest.raises(SimulationError):
            UniformBroadcastTree(ring_graph(6), root=77, rng=np.random.default_rng(0))

    def test_wrong_payload_type_rejected(self):
        graph = ring_graph(6)
        protocol = UniformBroadcastTree(graph, root=0, rng=np.random.default_rng(0))
        with pytest.raises(SimulationError):
            protocol.handle_tree_payload(1, 0, "bogus")

    def test_token_payload_reflects_informed_state(self):
        graph = line_graph(4)
        protocol = UniformBroadcastTree(graph, root=0, rng=np.random.default_rng(0))
        assert protocol.tree_payload(0).informed
        assert not protocol.tree_payload(3).informed

    def test_metadata_contains_tree_statistics(self, sync_config):
        graph = grid_graph(9)
        protocol = RoundRobinBroadcastTree(graph, root=0, rng=np.random.default_rng(4))
        result = run_standalone(protocol, graph, sync_config, seed=4)
        assert result.metadata["tree_depth"] is not None
        assert result.metadata["tree_diameter"] >= result.metadata["tree_depth"]


class TestTheorem5:
    """B_RR broadcast finishes within O(n) rounds — at most 3n in the sync model."""

    @pytest.mark.parametrize("builder, n", [(line_graph, 16), (barbell_graph, 16),
                                            (grid_graph, 16), (complete_graph, 16)])
    def test_synchronous_within_3n_rounds(self, builder, n):
        graph = builder(n)
        actual_n = graph.number_of_nodes()
        config = SimulationConfig(time_model=TimeModel.SYNCHRONOUS, max_rounds=10 * actual_n)
        protocol = RoundRobinBroadcastTree(graph, root=0, rng=np.random.default_rng(5))
        result = run_standalone(protocol, graph, config, seed=5)
        assert result.rounds <= brr_broadcast_upper_bound(actual_n)

    def test_asynchronous_within_constant_times_n_rounds(self):
        graph = barbell_graph(14)
        n = graph.number_of_nodes()
        config = SimulationConfig(time_model=TimeModel.ASYNCHRONOUS, max_rounds=200 * n)
        rounds = []
        for seed in range(3):
            protocol = RoundRobinBroadcastTree(graph, root=0, rng=np.random.default_rng(seed))
            rounds.append(run_standalone(protocol, graph, config, seed=seed).rounds)
        # The theorem promises O(n) rounds w.h.p.; allow a generous constant.
        assert np.mean(rounds) <= 12 * n

    def test_broadcast_time_at_least_depth(self, sync_config):
        """t(B) >= d(B) in the synchronous model (the observation before Eq. (3))."""
        graph = grid_graph(25)
        protocol = RoundRobinBroadcastTree(graph, root=0, rng=np.random.default_rng(6))
        result = run_standalone(protocol, graph, sync_config, seed=6)
        tree = protocol.current_tree()
        assert result.rounds >= tree.depth


class TestBfsOracleTree:
    def test_tree_available_immediately(self, sync_config):
        graph = grid_graph(16)
        protocol = BfsOracleTree(graph, root=0)
        assert protocol.tree_complete()
        tree = protocol.current_tree()
        assert tree.spans(graph)
        assert tree.depth <= diameter(graph)
        assert tree.parent == bfs_spanning_tree(graph, 0).parent

    def test_phase1_steps_are_noops(self, rng):
        graph = ring_graph(6)
        protocol = BfsOracleTree(graph, root=0)
        assert not protocol.handle_tree_payload(1, 0, TreeToken(True))
        partner = protocol.choose_partner(3, rng)
        assert graph.has_edge(3, partner)
        root_partner = protocol.choose_partner(0, rng)
        assert graph.has_edge(0, root_partner)

    def test_unknown_root_rejected(self):
        with pytest.raises(SimulationError):
            BfsOracleTree(ring_graph(6), root=10)
