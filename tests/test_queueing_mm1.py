"""Unit tests for single-queue primitives and Lemma 8."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.queueing import (
    MM1Queue,
    departure_times,
    exponential_service_times,
    geometric_service_times,
)


class TestServiceTimes:
    def test_exponential_mean(self, rng):
        samples = exponential_service_times(20_000, mu=2.0, rng=rng)
        assert np.mean(samples) == pytest.approx(0.5, rel=0.05)
        assert np.all(samples > 0)

    def test_geometric_mean(self, rng):
        samples = geometric_service_times(20_000, p=0.25, rng=rng)
        assert np.mean(samples) == pytest.approx(4.0, rel=0.05)
        assert np.all(samples >= 1)

    def test_invalid_parameters(self, rng):
        with pytest.raises(SimulationError):
            exponential_service_times(10, mu=0, rng=rng)
        with pytest.raises(SimulationError):
            exponential_service_times(-1, mu=1, rng=rng)
        with pytest.raises(SimulationError):
            geometric_service_times(10, p=0, rng=rng)
        with pytest.raises(SimulationError):
            geometric_service_times(10, p=1.2, rng=rng)


class TestDepartureTimes:
    def test_fcfs_recursion_by_hand(self):
        arrivals = np.array([0.0, 1.0, 1.5])
        services = np.array([2.0, 0.5, 3.0])
        departures = departure_times(arrivals, services)
        # d1 = 0 + 2 = 2; d2 = max(1, 2) + 0.5 = 2.5; d3 = max(1.5, 2.5) + 3 = 5.5
        assert list(departures) == [2.0, 2.5, 5.5]

    def test_departures_are_monotone_and_after_arrivals(self, rng):
        arrivals = np.sort(rng.uniform(0, 10, size=50))
        services = exponential_service_times(50, 1.0, rng)
        departures = departure_times(arrivals, services)
        assert np.all(np.diff(departures) >= 0)
        assert np.all(departures >= arrivals)

    def test_later_arrivals_yield_later_departures(self, rng):
        """Empirical check of Lemma 3 (appendix): shifting arrivals later never
        makes any departure earlier, for the same service times."""
        arrivals = np.sort(rng.uniform(0, 5, size=30))
        services = exponential_service_times(30, 1.5, rng)
        shifted = arrivals + rng.uniform(0, 2, size=30)
        shifted.sort()
        shifted = np.maximum(shifted, arrivals)  # ensure pointwise-later arrivals
        original = departure_times(arrivals, services)
        later = departure_times(shifted, services)
        assert np.all(later >= original - 1e-12)

    def test_shape_mismatch_and_order_checks(self):
        with pytest.raises(SimulationError):
            departure_times(np.array([0.0, 1.0]), np.array([1.0]))
        with pytest.raises(SimulationError):
            departure_times(np.array([2.0, 1.0]), np.array([1.0, 1.0]))


class TestMM1Queue:
    def test_stability_check(self):
        with pytest.raises(SimulationError):
            MM1Queue(arrival_rate=2.0, service_rate=1.0)
        with pytest.raises(SimulationError):
            MM1Queue(arrival_rate=0.0, service_rate=1.0)

    def test_utilisation_and_expected_sojourn(self):
        queue = MM1Queue(arrival_rate=1.0, service_rate=2.0)
        assert queue.utilisation == pytest.approx(0.5)
        assert queue.expected_sojourn_time() == pytest.approx(1.0)

    def test_lemma8_sojourn_time_is_exponential_with_rate_mu_minus_lambda(self, rng):
        """Lemma 8: equilibrium sojourn time ~ Exp(μ - λ).  Check mean and a
        quantile of the simulated distribution against the closed form."""
        queue = MM1Queue(arrival_rate=1.0, service_rate=2.0)
        sojourns = queue.simulate_sojourn_times(8_000, rng, warmup=500)
        assert np.mean(sojourns) == pytest.approx(1.0, rel=0.15)
        # Median of Exp(1) is ln 2.
        assert np.median(sojourns) == pytest.approx(np.log(2), rel=0.2)

    def test_invalid_customer_count(self, rng):
        queue = MM1Queue(arrival_rate=0.5, service_rate=2.0)
        with pytest.raises(SimulationError):
            queue.simulate_sojourn_times(0, rng)
