"""Streaming summary records: bit-identity with the full-record path.

The ``asymptotics`` campaign archives only the stopping-time projection of
each trial (:func:`repro.store.summarize_result`) instead of the full
:class:`~repro.core.RunResult`.  This file pins the two contracts that make
that safe:

* **bit-identity** — the stopping-time aggregates computed through the
  summary path equal the full-record path's exactly, for trials produced by
  the scalar, batch and event engines alike (the engines themselves are
  seed-equivalent, so all cross-combinations must agree);
* **streaming** — :meth:`~repro.store.ResultStore.aggregate` never
  materialises :class:`~repro.core.RunResult` objects or populates the
  shard cache when reading a cold shard (the regression that made
  aggregating a large summary shard cost O(shard bytes) of decoded
  results), and summary records survive gc / export / import / diff like
  any other record kind.
"""

from __future__ import annotations

import pytest

from repro.core import RunResult
from repro.core.results import aggregate_results
from repro.errors import StoreError
from repro.experiments.parallel import _measure_trial_indices
from repro.scenarios import get_scenario
from repro.store import (
    ResultStore,
    diff_snapshots,
    load_snapshot,
    summarize_result,
)

ENGINES = ("scalar", "batch", "event")


def _sweep_spec(trials: int = 3):
    """A small CSR-eligible workload shared by every test in this file."""
    return get_scenario("event/er-logn").replace(n=48, trials=trials, name="")


def _measure(spec, engine: str):
    """The spec's trials through one engine family (same fingerprint for all).

    ``engine``/``backend`` are execution hints excluded from the workload
    fingerprint, so results from different engines land in (and must agree
    with) the same shard.
    """
    pinned = spec.replace(engine=engine)
    scenario = pinned.materialize_preferred()
    return _measure_trial_indices(
        scenario.graph,
        scenario.protocol_factory,
        scenario.config,
        pinned.seed,
        list(range(pinned.trials)),
        True,
        pinned.backend,
        pinned.engine,
    )


class TestSummaryVsFullBitIdentity:
    def test_engines_agree_and_both_record_kinds_aggregate_identically(
        self, tmp_path
    ):
        spec = _sweep_spec()
        results_by_engine = {engine: _measure(spec, engine) for engine in ENGINES}
        reference = results_by_engine["scalar"]
        for engine in ENGINES:
            assert [r.rounds for r in results_by_engine[engine]] == [
                r.rounds for r in reference
            ], f"engine {engine} diverged from scalar"

        full_store = ResultStore(tmp_path / "full")
        full_store.put_many(spec, dict(enumerate(reference)))
        summary_store = ResultStore(tmp_path / "summary")
        summary_store.put_summaries(spec, dict(enumerate(results_by_engine["event"])))

        expected = aggregate_results(reference)
        assert full_store.aggregate(spec) == expected
        assert summary_store.aggregate(spec) == expected

    def test_summary_payload_is_the_projection_of_the_full_result(self):
        spec = _sweep_spec(trials=1)
        (result,) = _measure(spec, "event")
        summary = summarize_result(result)
        assert summary == {
            "completed": result.completed,
            "k": result.k,
            "n": result.n,
            "rounds": result.rounds,
            "timeslots": result.timeslots,
        }

    def test_full_results_serve_summary_queries_transparently(self, tmp_path):
        spec = _sweep_spec()
        results = _measure(spec, "batch")
        store = ResultStore(tmp_path / "store")
        store.put_many(spec, dict(enumerate(results)))
        assert store.missing_summary_trials(spec) == []
        # Re-putting matching summaries writes nothing new...
        assert store.put_summaries(spec, dict(enumerate(results))) == 0
        # ...and a contradictory summary fails loudly instead of shadowing.
        wrong = dict(summarize_result(results[0]))
        wrong["rounds"] = wrong["rounds"] + 1
        with pytest.raises(StoreError, match="changed since it was archived"):
            store.put_summaries(spec, {0: wrong})

    def test_mixed_shard_aggregates_in_trial_order(self, tmp_path):
        # Trials 0,2 as summaries and 1 as a full record must aggregate
        # exactly like three full records: samples assemble by trial index,
        # not by record kind.
        spec = _sweep_spec()
        results = _measure(spec, "event")
        store = ResultStore(tmp_path / "store")
        store.put_summaries(spec, {0: results[0], 2: results[2]})
        store.put_many(spec, {1: results[1]})
        assert store.aggregate(spec) == aggregate_results(results)


class TestStreamingAggregateRegression:
    def test_cold_aggregate_never_materialises_run_results(
        self, tmp_path, monkeypatch
    ):
        spec = _sweep_spec()
        results = _measure(spec, "event")
        ResultStore(tmp_path / "store").put_many(spec, dict(enumerate(results)))

        def _boom(cls, data):  # pragma: no cover - must never run
            raise AssertionError("aggregate materialised a RunResult")

        monkeypatch.setattr(RunResult, "from_dict", classmethod(_boom))
        cold = ResultStore(tmp_path / "store")
        stats = cold.aggregate(spec)
        assert stats == aggregate_results(results)
        # The streaming path must not have populated the shard cache either:
        # decoding 10^5 records into the cache is the other half of the
        # regression this guards against.
        assert spec.fingerprint() not in cold._cache

    def test_partial_shard_fails_with_missing_indices(self, tmp_path):
        spec = _sweep_spec()
        results = _measure(spec, "event")
        store = ResultStore(tmp_path / "store")
        store.put_summaries(spec, {0: results[0]})
        with pytest.raises(StoreError, match="missing trial indices"):
            ResultStore(tmp_path / "store").aggregate(spec)


class TestSummaryStoreMaintenance:
    def test_gc_export_import_diff_round_trip(self, tmp_path):
        spec = _sweep_spec()
        results = _measure(spec, "event")
        store = ResultStore(tmp_path / "store")
        store.put_summaries(spec, dict(enumerate(results)))
        expected = store.aggregate(spec)

        stats = store.gc()
        assert stats["removed_shards"] == 0
        assert ResultStore(tmp_path / "store").aggregate(spec) == expected

        export = tmp_path / "snapshot.jsonl"
        exported = store.export(export)
        assert exported == spec.trials

        other = ResultStore(tmp_path / "other")
        assert other.import_file(export) == spec.trials
        assert other.aggregate(spec) == expected

        report = diff_snapshots(load_snapshot(store.root), load_snapshot(export))
        assert report["identical"] == spec.trials
        assert not report["differing"]

    def test_import_rejects_contradictory_summary(self, tmp_path):
        spec = _sweep_spec()
        results = _measure(spec, "event")
        store = ResultStore(tmp_path / "store")
        store.put_summaries(spec, dict(enumerate(results)))
        export = tmp_path / "snapshot.jsonl"
        store.export(export)

        tampered = export.read_text(encoding="utf-8").replace(
            f'"rounds":{results[0].rounds}', f'"rounds":{results[0].rounds + 5}', 1
        )
        assert tampered != export.read_text(encoding="utf-8")
        bad = tmp_path / "tampered.jsonl"
        bad.write_text(tampered, encoding="utf-8")
        with pytest.raises(StoreError, match="conflicts with store"):
            store.import_file(bad)

    def test_trial_keys_count_summaries(self, tmp_path):
        spec = _sweep_spec()
        results = _measure(spec, "event")
        store = ResultStore(tmp_path / "store")
        store.put_summaries(spec, {1: results[1]})
        store.put_many(spec, {0: results[0]})
        assert store.trial_keys(spec.fingerprint()) == [
            (spec.seed, 0),
            (spec.seed, 1),
        ]
