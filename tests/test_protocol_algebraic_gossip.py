"""Unit and integration tests for uniform algebraic gossip (Theorem 1's protocol)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GossipAction, SimulationConfig, TimeModel
from repro.errors import SimulationError
from repro.gf import GF
from repro.gossip import GossipEngine, RoundRobinSelector
from repro.graphs import complete_graph, line_graph, ring_graph
from repro.protocols import AlgebraicGossip, build_node_decoders
from repro.rlnc import Generation
from repro.experiments import all_to_all_placement, spread_placement


def make_protocol(graph, k, config, seed=0, selector=None, placement=None):
    rng = np.random.default_rng(seed)
    field = GF(config.field_size)
    generation = Generation.random(field, k, config.payload_length, rng)
    if placement is None:
        placement = (
            all_to_all_placement(graph)
            if k >= graph.number_of_nodes()
            else spread_placement(graph, k)
        )
    process = AlgebraicGossip(graph, generation, placement, config, rng, selector)
    return process, rng


class TestConstruction:
    def test_decoders_seeded_with_placement(self, sync_config):
        graph = line_graph(6)
        rng = np.random.default_rng(0)
        field = GF(sync_config.field_size)
        generation = Generation.random(field, 3, 2, rng)
        placement = {0: [0, 1], 5: [2]}
        decoders, encoders = build_node_decoders(graph, generation, placement, rng)
        assert decoders[0].rank == 2
        assert decoders[5].rank == 1
        assert decoders[3].rank == 0
        assert set(decoders) == set(graph.nodes())
        assert set(encoders) == set(graph.nodes())

    def test_missing_message_rejected(self, sync_config):
        graph = line_graph(4)
        rng = np.random.default_rng(0)
        field = GF(sync_config.field_size)
        generation = Generation.random(field, 3, 2, rng)
        with pytest.raises(SimulationError):
            build_node_decoders(graph, generation, {0: [0, 1]}, rng)

    def test_unknown_node_rejected(self, sync_config):
        graph = line_graph(4)
        rng = np.random.default_rng(0)
        field = GF(sync_config.field_size)
        generation = Generation.random(field, 1, 2, rng)
        with pytest.raises(SimulationError):
            build_node_decoders(graph, generation, {99: [0]}, rng)

    def test_field_mismatch_rejected(self, sync_config):
        graph = line_graph(4)
        rng = np.random.default_rng(0)
        generation = Generation.random(GF(256), 2, 2, rng)
        with pytest.raises(SimulationError):
            AlgebraicGossip(graph, generation, {0: [0], 1: [1]}, sync_config, rng)


class TestDissemination:
    @pytest.mark.parametrize("time_model", [TimeModel.SYNCHRONOUS, TimeModel.ASYNCHRONOUS])
    def test_all_to_all_on_ring_completes_and_decodes(self, time_model):
        graph = ring_graph(8)
        config = SimulationConfig(time_model=time_model, max_rounds=20_000)
        process, rng = make_protocol(graph, 8, config, seed=1)
        result = GossipEngine(graph, process, config, rng).run()
        assert result.completed
        assert process.all_nodes_decoded_correctly()
        assert result.k == 8
        assert result.helpful_messages >= 8 * 7  # every node needs 8 helpful packets minus seeds

    def test_partial_k_dissemination(self, sync_config):
        graph = line_graph(10)
        process, rng = make_protocol(graph, 4, sync_config, seed=2)
        result = GossipEngine(graph, process, sync_config, rng).run()
        assert result.completed
        assert all(process.rank_of(node) == 4 for node in graph.nodes())
        assert process.decoded_messages(0).shape == (4, sync_config.payload_length)

    @pytest.mark.parametrize("action", [GossipAction.PUSH, GossipAction.PULL, GossipAction.EXCHANGE])
    def test_all_actions_complete_on_complete_graph(self, action):
        graph = complete_graph(8)
        config = SimulationConfig(action=action, max_rounds=20_000)
        process, rng = make_protocol(graph, 8, config, seed=3)
        result = GossipEngine(graph, process, config, rng).run()
        assert result.completed

    def test_exchange_not_slower_than_push_on_line(self):
        graph = line_graph(8)
        rounds = {}
        for action in (GossipAction.PUSH, GossipAction.EXCHANGE):
            config = SimulationConfig(action=action, max_rounds=50_000)
            samples = []
            for seed in range(3):
                process, rng = make_protocol(graph, 8, config, seed=seed)
                samples.append(GossipEngine(graph, process, config, rng).run().rounds)
            rounds[action] = np.mean(samples)
        assert rounds[GossipAction.EXCHANGE] <= rounds[GossipAction.PUSH] * 1.5

    def test_round_robin_selector_also_completes(self, sync_config):
        graph = ring_graph(8)
        selector = RoundRobinSelector(graph, np.random.default_rng(9))
        process, rng = make_protocol(graph, 8, sync_config, seed=4, selector=selector)
        result = GossipEngine(graph, process, sync_config, rng).run()
        assert result.completed
        assert process.metadata()["selector"] == "RoundRobinSelector"

    def test_single_message_broadcast_case(self, sync_config):
        """k = 1 reduces algebraic gossip to a (coded) broadcast; it must finish."""
        graph = line_graph(8)
        process, rng = make_protocol(graph, 1, sync_config, seed=5, placement={0: [0]})
        result = GossipEngine(graph, process, sync_config, rng).run()
        assert result.completed
        assert result.rounds >= 4  # information must cross at least ~D/2 hops

    def test_metadata_reports_progress(self, sync_config):
        graph = ring_graph(6)
        process, rng = make_protocol(graph, 6, sync_config, seed=6)
        metadata = process.metadata()
        assert metadata["protocol"] == "algebraic-gossip"
        assert metadata["k"] == 6
        assert metadata["min_rank"] <= 1

    def test_wrong_payload_type_rejected(self, sync_config):
        graph = ring_graph(6)
        process, rng = make_protocol(graph, 6, sync_config, seed=7)
        with pytest.raises(SimulationError):
            process.on_deliver(0, 1, "not-a-packet")


class TestStoppingTimeSanity:
    def test_lower_bound_respected(self, sync_config):
        """No gossip protocol can beat k/2 rounds (Theorem 3's lower bound)."""
        graph = complete_graph(10)
        process, rng = make_protocol(graph, 10, sync_config, seed=8)
        result = GossipEngine(graph, process, sync_config, rng).run()
        assert result.rounds >= 10 / 2

    def test_diameter_lower_bound_synchronous(self, sync_config):
        graph = line_graph(12)
        process, rng = make_protocol(graph, 2, sync_config, seed=9,
                                     placement={0: [0], 11: [1]})
        result = GossipEngine(graph, process, sync_config, rng).run()
        # Message 0 must travel 11 hops to reach node 11: at least D/2 rounds
        # (it can move at most one hop per round; EXCHANGE may move it 1 hop
        # towards both directions per round).
        assert result.rounds >= 6
