"""Tests for the TAG protocol (Section 4, Theorems 4, 5, 7, 8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.bounds import tag_with_brr_upper_bound
from repro.core import SimulationConfig, TimeModel
from repro.errors import SimulationError
from repro.gf import GF
from repro.gossip import GossipEngine
from repro.graphs import barbell_graph, grid_graph, line_graph, ring_graph
from repro.protocols import (
    BfsOracleTree,
    ISSpanningTree,
    RoundRobinBroadcastTree,
    TagProtocol,
    UniformBroadcastTree,
)
from repro.rlnc import Generation
from repro.experiments import all_to_all_placement, spread_placement


def make_tag(graph, k, config, stp_factory, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    field = GF(config.field_size)
    generation = Generation.random(field, k, config.payload_length, rng)
    placement = (
        all_to_all_placement(graph)
        if k >= graph.number_of_nodes()
        else spread_placement(graph, k)
    )
    process = TagProtocol(graph, generation, placement, config, rng, stp_factory, **kwargs)
    return process, rng


def brr_factory(root=0):
    return lambda g, r: RoundRobinBroadcastTree(g, root, r)


class TestConstruction:
    def test_accepts_factory_and_instance(self, sync_config):
        graph = ring_graph(6)
        rng = np.random.default_rng(0)
        field = GF(sync_config.field_size)
        generation = Generation.random(field, 6, 2, rng)
        placement = all_to_all_placement(graph)
        instance = BfsOracleTree(graph, root=0)
        tag = TagProtocol(graph, generation, placement, sync_config, rng, instance)
        assert tag.stp is instance
        tag2 = TagProtocol(graph, generation, placement, sync_config, rng, brr_factory())
        assert isinstance(tag2.stp, RoundRobinBroadcastTree)

    def test_rejects_non_protocol(self, sync_config):
        graph = ring_graph(6)
        rng = np.random.default_rng(0)
        generation = Generation.random(GF(16), 6, 2, rng)
        with pytest.raises(SimulationError):
            TagProtocol(graph, generation, all_to_all_placement(graph), sync_config, rng,
                        lambda g, r: "not a protocol")

    def test_rejects_field_mismatch(self, sync_config):
        graph = ring_graph(6)
        rng = np.random.default_rng(0)
        generation = Generation.random(GF(256), 6, 2, rng)
        with pytest.raises(SimulationError):
            TagProtocol(graph, generation, all_to_all_placement(graph), sync_config, rng,
                        brr_factory())


class TestDissemination:
    @pytest.mark.parametrize("time_model", [TimeModel.SYNCHRONOUS, TimeModel.ASYNCHRONOUS])
    def test_completes_and_decodes_on_barbell(self, time_model):
        graph = barbell_graph(10)
        config = SimulationConfig(time_model=time_model, max_rounds=50_000)
        process, rng = make_tag(graph, 10, config, brr_factory(), seed=1)
        result = GossipEngine(graph, process, config, rng).run()
        assert result.completed
        assert process.all_nodes_decoded_correctly()
        assert process.stp.tree_complete()

    @pytest.mark.parametrize("stp_name, factory", [
        ("brr", brr_factory()),
        ("uniform", lambda g, r: UniformBroadcastTree(g, 0, r)),
        ("bfs", lambda g, r: BfsOracleTree(g, 0)),
        ("is", lambda g, r: ISSpanningTree(g, r)),
    ])
    def test_all_spanning_tree_protocols_work(self, stp_name, factory, sync_config):
        graph = grid_graph(9)
        process, rng = make_tag(graph, 9, sync_config, factory, seed=2)
        result = GossipEngine(graph, process, sync_config, rng).run()
        assert result.completed, stp_name
        assert process.all_nodes_decoded_correctly(), stp_name

    def test_partial_k_on_line(self, sync_config):
        graph = line_graph(10)
        process, rng = make_tag(graph, 3, sync_config, brr_factory(), seed=3)
        result = GossipEngine(graph, process, sync_config, rng).run()
        assert result.completed
        assert all(process.rank_of(node) == 3 for node in graph.nodes())

    def test_metadata_reports_tree_and_phase1(self, sync_config):
        graph = barbell_graph(10)
        process, rng = make_tag(graph, 10, sync_config, brr_factory(), seed=4)
        GossipEngine(graph, process, sync_config, rng).run()
        metadata = process.metadata()
        assert metadata["protocol"] == "TAG"
        assert metadata["tree_complete"]
        assert metadata["tree_depth"] >= 1
        assert metadata["phase1_rounds"] >= 1

    def test_phase2_idle_without_parent(self, sync_config, rng):
        """Before the tree reaches a node, its even wakeups produce no packets."""
        graph = line_graph(6)
        process, _ = make_tag(graph, 6, sync_config, brr_factory(), seed=5)
        # Node 5 has no parent yet; two wakeups: first is phase 1, second phase 2.
        process.on_wakeup(5, rng)
        transmissions = process.on_wakeup(5, rng)
        assert transmissions == []

    def test_keep_phase1_flag_changes_behaviour(self, sync_config, rng):
        graph = line_graph(4)
        process, _ = make_tag(graph, 4, sync_config, lambda g, r: BfsOracleTree(g, 0),
                              seed=6, keep_phase1_after_tree=False)
        # With the oracle tree complete from the start and phase 1 disabled,
        # every wakeup of a non-root node is a phase-2 RLNC exchange.
        transmissions = process.on_wakeup(1, rng)
        assert transmissions
        assert all(t.kind == "rlnc" for t in transmissions)


class TestTheorem4And5Shapes:
    def test_tag_brr_beats_bound_on_barbell(self):
        """Section 5: with k = n, TAG + B_RR finishes within O(n) rounds."""
        graph = barbell_graph(12)
        n = graph.number_of_nodes()
        config = SimulationConfig(max_rounds=100 * n)
        rounds = []
        for seed in range(3):
            process, rng = make_tag(graph, n, config, brr_factory(), seed=seed)
            rounds.append(GossipEngine(graph, process, config, rng).run().rounds)
        # Allow a constant factor over the explicit 3n + k + log n expression.
        assert np.mean(rounds) <= 3 * tag_with_brr_upper_bound(n, n)

    def test_oracle_tree_runs_are_not_slower_than_broadcast_tree_runs(self):
        """d(S)=BFS and t(S)=0 should never hurt compared to building the tree live."""
        graph = barbell_graph(12)
        n = graph.number_of_nodes()
        config = SimulationConfig(max_rounds=100 * n)
        oracle_rounds, brr_rounds = [], []
        for seed in range(3):
            p1, r1 = make_tag(graph, n, config, lambda g, r: BfsOracleTree(g, 0), seed=seed)
            oracle_rounds.append(GossipEngine(graph, p1, config, r1).run().rounds)
            p2, r2 = make_tag(graph, n, config, brr_factory(), seed=seed)
            brr_rounds.append(GossipEngine(graph, p2, config, r2).run().rounds)
        assert np.mean(oracle_rounds) <= np.mean(brr_rounds) * 1.5
