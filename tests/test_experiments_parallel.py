"""Determinism and equivalence tests for the batched / parallel trial runners.

The contract under test: for the same root seed, every runner —
sequential, batched, multi-process — produces the *same* results
trial-for-trial, because trial ``i`` always draws from
``derive_rng(seed, f"trial-{i}")`` and the batch engine replicates the
sequential engine's random stream call-for-call.
"""

from __future__ import annotations

import pytest

from repro.analysis.stopping_time import measure_protocol, run_trials
from repro.core import TimeModel
from repro.errors import AnalysisError, SimulationError
from repro.experiments import (
    default_config,
    measure_protocol_batched,
    measure_protocol_parallel,
    run_trials_batched,
    run_trials_parallel,
    tag_case,
    uniform_ag_case,
)
from repro.experiments.parallel import _chunks
from repro.gossip.batch import BatchGossipEngine


def _signature(results):
    return [
        (r.rounds, r.timeslots, r.completed, r.messages_sent, r.helpful_messages,
         dict(r.completion_rounds), dict(r.metadata))
        for r in results
    ]


@pytest.fixture(scope="module")
def uniform_case():
    return uniform_ag_case("grid", 9, 5)


class TestBatchedEqualsSequential:
    @pytest.mark.parametrize("time_model", list(TimeModel), ids=lambda m: m.value)
    def test_bit_identical_results(self, time_model):
        case = uniform_ag_case("ring", 8, 4, config=default_config(time_model=time_model))
        sequential = measure_protocol(
            case.graph, case.protocol_factory, case.config, trials=4, seed=99
        )
        batched = measure_protocol_batched(
            case.graph, case.protocol_factory, case.config, trials=4, seed=99
        )
        assert _signature(batched) == _signature(sequential)

    def test_bit_identical_under_packet_loss(self, uniform_case):
        config = uniform_case.config.replace(loss_probability=0.25)
        sequential = measure_protocol(
            uniform_case.graph, uniform_case.protocol_factory, config, trials=3, seed=5
        )
        batched = measure_protocol_batched(
            uniform_case.graph, uniform_case.protocol_factory, config, trials=3, seed=5
        )
        assert _signature(batched) == _signature(sequential)

    def test_stats_equal_run_trials(self, uniform_case):
        sequential = run_trials(
            uniform_case.graph, uniform_case.protocol_factory, uniform_case.config,
            trials=4, seed=21,
        )
        batched = run_trials_batched(
            uniform_case.graph, uniform_case.protocol_factory, uniform_case.config,
            trials=4, seed=21,
        )
        assert batched.samples == sequential.samples

    def test_tag_runs_on_its_own_batch_path(self):
        # TAG declares the BatchTagEngine strategy; results stay bit-identical.
        case = tag_case("barbell", 10, 10)
        sequential = measure_protocol(
            case.graph, case.protocol_factory, case.config, trials=2, seed=13
        )
        batched = measure_protocol_batched(
            case.graph, case.protocol_factory, case.config, trials=2, seed=13
        )
        assert _signature(batched) == _signature(sequential)

    def test_non_batchable_protocol_falls_back(self, uniform_case):
        # A uniform-AG process with a non-uniform selector declares no batch
        # strategy, so the batched runner must fall back to the sequential
        # engine — and still match it (trivially, being the same path).
        from repro.gossip.communication import RoundRobinSelector
        from repro.protocols import AlgebraicGossip
        from repro.rlnc import Generation
        from repro.gf import GF
        from repro.experiments import all_to_all_placement

        config = default_config()

        def factory(graph, rng):
            generation = Generation.random(GF(16), graph.number_of_nodes(), 2, rng)
            return AlgebraicGossip(
                graph, generation, all_to_all_placement(graph), config, rng,
                selector=RoundRobinSelector(graph, rng),
            )

        import numpy as np

        assert factory(uniform_case.graph, np.random.default_rng(0)).batch_strategy() is None
        sequential = measure_protocol(
            uniform_case.graph, factory, config, trials=2, seed=13
        )
        batched = measure_protocol_batched(
            uniform_case.graph, factory, config, trials=2, seed=13
        )
        assert _signature(batched) == _signature(sequential)

    def test_tag_is_not_rank_only_batchable(self):
        # The rank-only BatchGossipEngine still rejects TAG — TAG's fast path
        # is the dedicated BatchTagEngine, not the uniform-gossip engine.
        case = tag_case("barbell", 10, 10)
        import numpy as np

        process = case.protocol_factory(case.graph, np.random.default_rng(0))
        assert not BatchGossipEngine.is_batchable(process)
        with pytest.raises(SimulationError):
            BatchGossipEngine(
                case.graph, [process], case.config, [np.random.default_rng(0)]
            )


class TestParallelEqualsSequential:
    def test_trial_for_trial_determinism(self, uniform_case):
        sequential = measure_protocol(
            uniform_case.graph, uniform_case.protocol_factory, uniform_case.config,
            trials=5, seed=77,
        )
        parallel = measure_protocol_parallel(
            uniform_case.graph, uniform_case.protocol_factory, uniform_case.config,
            trials=5, seed=77, jobs=3,
        )
        assert _signature(parallel) == _signature(sequential)

    def test_run_trials_parallel_stats(self, uniform_case):
        sequential = run_trials(
            uniform_case.graph, uniform_case.protocol_factory, uniform_case.config,
            trials=4, seed=31,
        )
        parallel = run_trials_parallel(
            uniform_case.graph, uniform_case.protocol_factory, uniform_case.config,
            trials=4, seed=31, jobs=2,
        )
        assert parallel.samples == sequential.samples

    def test_unpicklable_factory_falls_back_in_process(self, uniform_case):
        delegate = uniform_case.protocol_factory
        parallel = measure_protocol_parallel(
            uniform_case.graph,
            lambda graph, rng: delegate(graph, rng),  # lambdas cannot be pickled
            uniform_case.config,
            trials=3, seed=8, jobs=2,
        )
        sequential = measure_protocol(
            uniform_case.graph, uniform_case.protocol_factory, uniform_case.config,
            trials=3, seed=8,
        )
        assert _signature(parallel) == _signature(sequential)

    def test_no_batch_with_jobs_still_matches(self, uniform_case):
        # --no-batch combined with worker processes must honour both: the
        # workers run the sequential scalar path, and the results still
        # equal the reference runner's.
        sequential = measure_protocol(
            uniform_case.graph, uniform_case.protocol_factory, uniform_case.config,
            trials=4, seed=19,
        )
        parallel = measure_protocol_parallel(
            uniform_case.graph, uniform_case.protocol_factory, uniform_case.config,
            trials=4, seed=19, jobs=2, batch=False,
        )
        assert _signature(parallel) == _signature(sequential)

    def test_chunking_is_balanced_and_ordered(self):
        assert _chunks(range(7), 3) == [[0, 1, 2], [3, 4], [5, 6]]
        assert _chunks(range(2), 5) == [[0], [1]]

    def test_invalid_arguments_rejected(self, uniform_case):
        with pytest.raises(AnalysisError):
            measure_protocol_parallel(
                uniform_case.graph, uniform_case.protocol_factory,
                uniform_case.config, trials=0, seed=0,
            )
        with pytest.raises(AnalysisError):
            measure_protocol_parallel(
                uniform_case.graph, uniform_case.protocol_factory,
                uniform_case.config, trials=2, seed=0, jobs=0,
            )

    def test_run_sweep_rejects_non_positive_jobs(self, uniform_case):
        from repro.analysis import run_sweep

        with pytest.raises(AnalysisError):
            run_sweep([uniform_case], trials=2, jobs=0)


class TestSweepWiring:
    def test_run_sweep_batched_matches_sequential(self):
        from repro.analysis import run_sweep

        cases = [uniform_ag_case("ring", 8, 4), uniform_ag_case("grid", 9, 4)]
        fast = run_sweep(cases, trials=3, seed=2, batch=True)
        slow = run_sweep(cases, trials=3, seed=2, batch=False)
        assert [p.stats.samples for p in fast] == [p.stats.samples for p in slow]


class TestSharedProcessPool:
    def test_pooled_runs_match_per_call_pools(self, uniform_case):
        from repro.experiments import shared_process_pool

        direct = measure_protocol_parallel(
            uniform_case.graph, uniform_case.protocol_factory,
            uniform_case.config, trials=4, seed=9, jobs=2,
        )
        with shared_process_pool(2):
            pooled_one = measure_protocol_parallel(
                uniform_case.graph, uniform_case.protocol_factory,
                uniform_case.config, trials=4, seed=9, jobs=2,
            )
            # Second call inside the same block reuses the same workers.
            pooled_two = measure_protocol_parallel(
                uniform_case.graph, uniform_case.protocol_factory,
                uniform_case.config, trials=4, seed=9, jobs=2,
            )
        signature = lambda results: [(r.rounds, r.timeslots) for r in results]
        assert signature(pooled_one) == signature(direct)
        assert signature(pooled_two) == signature(direct)

    def test_nesting_rejected_and_pool_cleared_on_exit(self):
        from repro.experiments import parallel
        from repro.experiments.parallel import shared_process_pool

        with shared_process_pool(1):
            assert parallel._SHARED_POOL is not None
            with pytest.raises(AnalysisError, match="does not nest"):
                with shared_process_pool(1):
                    pass
        assert parallel._SHARED_POOL is None

    def test_rejects_non_positive_jobs(self):
        from repro.experiments.parallel import shared_process_pool

        with pytest.raises(AnalysisError):
            with shared_process_pool(0):
                pass
