"""Tests for per-round progress metrics (rank evolution, completion curves)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import ProgressRecorder, rounds_to_fraction_complete
from repro.core import SimulationConfig, TimeModel
from repro.errors import AnalysisError
from repro.gf import GF
from repro.gossip import GossipEngine
from repro.graphs import line_graph, ring_graph
from repro.protocols import AlgebraicGossip, RoundRobinBroadcastTree, TagProtocol, UncodedRandomGossip
from repro.rlnc import Generation
from repro.experiments import all_to_all_placement


def make_recorded_run(graph, k, config, seed=0, protocol="uniform"):
    rng = np.random.default_rng(seed)
    generation = Generation.random(GF(config.field_size), k, 2, rng)
    placement = all_to_all_placement(graph)
    if protocol == "uniform":
        inner = AlgebraicGossip(graph, generation, placement, config, rng)
    else:
        inner = TagProtocol(graph, generation, placement, config, rng,
                            lambda g, r: RoundRobinBroadcastTree(g, 0, r))
    recorder = ProgressRecorder(inner)
    result = GossipEngine(graph, recorder, config, rng).run()
    return recorder, result


class TestProgressRecorder:
    def test_requires_rank_reporting_protocol(self, sync_config, rng):
        graph = ring_graph(6)
        uncoded = UncodedRandomGossip(graph, 6, all_to_all_placement(graph), sync_config, rng)
        with pytest.raises(AnalysisError):
            ProgressRecorder(uncoded)

    def test_snapshot_per_round_synchronous(self, sync_config):
        graph = ring_graph(8)
        recorder, result = make_recorded_run(graph, 8, sync_config, seed=1)
        assert len(recorder.snapshots) == result.rounds
        assert recorder.snapshots[-1].min_rank == 8
        assert recorder.snapshots[-1].completed_nodes == 8
        assert recorder.metadata()["progress_snapshots"] == result.rounds

    def test_snapshots_in_asynchronous_model(self):
        graph = ring_graph(6)
        config = SimulationConfig(time_model=TimeModel.ASYNCHRONOUS, max_rounds=50_000)
        recorder, result = make_recorded_run(graph, 6, config, seed=2)
        # One snapshot per *completed* round (the final partial round may not be sampled).
        assert result.rounds - 1 <= len(recorder.snapshots) <= result.rounds

    def test_rank_curves_are_monotone(self, sync_config):
        graph = line_graph(10)
        recorder, _ = make_recorded_run(graph, 10, sync_config, seed=3)
        for statistic in ("min", "median", "max"):
            curve = recorder.rank_curve(statistic)
            values = [value for _, value in curve]
            assert all(a <= b for a, b in zip(values, values[1:])), statistic
        completion = recorder.completion_curve()
        counts = [count for _, count in completion]
        assert all(a <= b for a, b in zip(counts, counts[1:]))

    def test_unknown_statistic_rejected(self, sync_config):
        graph = ring_graph(6)
        recorder, _ = make_recorded_run(graph, 6, sync_config, seed=4)
        with pytest.raises(AnalysisError):
            recorder.rank_curve("mode")

    def test_works_with_tag(self, sync_config):
        graph = ring_graph(8)
        recorder, result = make_recorded_run(graph, 8, sync_config, seed=5, protocol="tag")
        assert result.completed
        assert recorder.snapshots[-1].min_rank == 8

    def test_as_rows(self, sync_config):
        graph = ring_graph(6)
        recorder, _ = make_recorded_run(graph, 6, sync_config, seed=6)
        rows = recorder.as_rows()
        assert rows[0]["round"] == 1
        assert set(rows[0]) == {"round", "min_rank", "median_rank", "max_rank", "completed_nodes"}


class TestFractionComplete:
    def test_fraction_thresholds(self, sync_config):
        graph = ring_graph(10)
        recorder, result = make_recorded_run(graph, 10, sync_config, seed=7)
        half = rounds_to_fraction_complete(recorder, 0.5)
        full = rounds_to_fraction_complete(recorder, 1.0)
        assert half is not None and full is not None
        assert half <= full == result.rounds

    def test_invalid_fraction(self, sync_config):
        graph = ring_graph(6)
        recorder, _ = make_recorded_run(graph, 6, sync_config, seed=8)
        with pytest.raises(AnalysisError):
            rounds_to_fraction_complete(recorder, 0.0)
        with pytest.raises(AnalysisError):
            rounds_to_fraction_complete(recorder, 1.5)

    def test_empty_recorder_rejected(self, sync_config, rng):
        graph = ring_graph(6)
        generation = Generation.random(GF(16), 6, 2, rng)
        inner = AlgebraicGossip(graph, generation, all_to_all_placement(graph), sync_config, rng)
        recorder = ProgressRecorder(inner)
        with pytest.raises(AnalysisError):
            rounds_to_fraction_complete(recorder, 0.5)
