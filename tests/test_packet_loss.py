"""Failure injection: gossip under independent packet loss.

The paper assumes reliable links; the engine's ``loss_probability`` knob lets
robustness be measured.  The invariants: lossy runs still complete and still
decode correctly (RLNC never delivers wrong data), they are slower on average
than loss-free runs, and the engine's drop accounting is consistent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SimulationConfig
from repro.errors import ConfigurationError
from repro.gf import GF
from repro.gossip import EventTrace, GossipEngine
from repro.graphs import ring_graph
from repro.protocols import AlgebraicGossip, RoundRobinBroadcastTree, TagProtocol
from repro.rlnc import Generation
from repro.experiments import all_to_all_placement


def run_with_loss(loss, seed=0, protocol="uniform", n=8, trace=None):
    graph = ring_graph(n)
    config = SimulationConfig(loss_probability=loss, max_rounds=100_000)
    rng = np.random.default_rng(seed)
    generation = Generation.random(GF(16), n, 2, rng)
    placement = all_to_all_placement(graph)
    if protocol == "uniform":
        process = AlgebraicGossip(graph, generation, placement, config, rng)
    else:
        process = TagProtocol(graph, generation, placement, config, rng,
                              lambda g, r: RoundRobinBroadcastTree(g, 0, r))
    result = GossipEngine(graph, process, config, rng, trace).run()
    return process, result


class TestLossConfiguration:
    def test_valid_range(self):
        SimulationConfig(loss_probability=0.0)
        SimulationConfig(loss_probability=0.5)
        with pytest.raises(ConfigurationError):
            SimulationConfig(loss_probability=1.0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(loss_probability=-0.1)


class TestLossyRuns:
    @pytest.mark.parametrize("protocol", ["uniform", "tag"])
    def test_completes_and_decodes_under_loss(self, protocol):
        process, result = run_with_loss(0.3, seed=1, protocol=protocol)
        assert result.completed
        assert process.all_nodes_decoded_correctly()
        assert result.metadata["dropped_messages"] > 0

    def test_loss_free_run_reports_no_drop_counter(self):
        _, result = run_with_loss(0.0, seed=2)
        assert "dropped_messages" not in result.metadata

    def test_dropped_messages_never_reach_the_trace(self):
        trace = EventTrace()
        _, result = run_with_loss(0.4, seed=3, trace=trace)
        dropped = result.metadata["dropped_messages"]
        assert len(trace) == result.messages_sent - dropped
        assert len(trace.helpful_events()) == result.helpful_messages

    def test_higher_loss_is_slower_on_average(self):
        def mean_rounds(loss):
            return float(np.mean([run_with_loss(loss, seed=s)[1].rounds for s in range(4)]))

        assert mean_rounds(0.5) > mean_rounds(0.0)

    def test_drop_rate_matches_probability(self):
        _, result = run_with_loss(0.25, seed=4, n=10)
        rate = result.metadata["dropped_messages"] / result.messages_sent
        assert 0.1 <= rate <= 0.4
