"""Unit tests for structural graph properties (Claim 1, Lemma 2, conductances)."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.graphs import (
    barbell_graph,
    binary_tree_graph,
    complete_graph,
    cut_conductance,
    diameter,
    graph_conductance,
    grid_graph,
    is_constant_degree_family,
    line_graph,
    max_degree,
    max_shortest_path_degree_sum,
    min_cut_gamma,
    min_degree,
    profile_graph,
    ring_graph,
    shortest_path_degree_sum,
    spectral_gap,
    weak_conductance,
)
from repro.analysis.bounds import claim1_min_diameter, lemma2_path_degree_bound


class TestBasicProperties:
    def test_diameter_and_degrees(self):
        graph = line_graph(10)
        assert diameter(graph) == 9
        assert max_degree(graph) == 2
        assert min_degree(graph) == 1

    def test_disconnected_graph_rejected(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        with pytest.raises(TopologyError):
            diameter(graph)

    def test_empty_graph_rejected(self):
        with pytest.raises(TopologyError):
            max_degree(nx.Graph())

    def test_constant_degree_heuristic(self):
        assert is_constant_degree_family(3)
        assert not is_constant_degree_family(100)

    def test_profile_graph_summary(self):
        profile = profile_graph(ring_graph(8))
        assert profile.n == 8
        assert profile.max_degree == 2
        assert profile.diameter == 4
        assert "n=8" in profile.describe()


class TestClaim1:
    """Claim 1: constant-maximum-degree graphs have diameter Ω(log n)."""

    @pytest.mark.parametrize("n", [8, 16, 32, 64])
    def test_line_ring_tree_satisfy_claim(self, n):
        for builder in (line_graph, ring_graph, binary_tree_graph):
            graph = builder(n)
            lower = claim1_min_diameter(graph.number_of_nodes(), max_degree(graph))
            assert diameter(graph) >= lower

    def test_lower_bound_decreases_with_degree(self):
        assert claim1_min_diameter(64, 2) > claim1_min_diameter(64, 8)


class TestLemma2:
    """Lemma 2: the degree sum along any shortest path is at most 3n."""

    @pytest.mark.parametrize(
        "builder, n",
        [(line_graph, 16), (ring_graph, 16), (grid_graph, 16), (barbell_graph, 16),
         (complete_graph, 12), (binary_tree_graph, 15)],
    )
    def test_bound_holds_on_all_families(self, builder, n):
        graph = builder(n)
        actual_n = graph.number_of_nodes()
        worst = max_shortest_path_degree_sum(graph)
        assert worst <= lemma2_path_degree_bound(actual_n)

    def test_single_pair_degree_sum(self):
        graph = line_graph(6)
        # Path 0-1-2-3-4-5: degrees 1,2,2,2,2,1 sum to 10.
        assert shortest_path_degree_sum(graph, 0, 5) == 10

    def test_source_restricted_maximum(self):
        graph = barbell_graph(10)
        assert max_shortest_path_degree_sum(graph, source=0) <= 3 * 10


class TestConductance:
    def test_cut_conductance_of_barbell_bridge(self):
        graph = barbell_graph(10)
        left = set(range(5))
        # Exactly one edge crosses; each side has volume 21.
        assert cut_conductance(graph, left) == pytest.approx(1 / 21)

    def test_trivial_cut_rejected(self):
        graph = ring_graph(6)
        with pytest.raises(TopologyError):
            cut_conductance(graph, set())
        with pytest.raises(TopologyError):
            cut_conductance(graph, set(range(6)))

    def test_complete_graph_has_high_conductance(self):
        assert graph_conductance(complete_graph(8)) > 0.4

    def test_barbell_has_low_conductance(self):
        assert graph_conductance(barbell_graph(10)) == pytest.approx(1 / 21)

    def test_large_graph_falls_back_to_spectral_estimate(self):
        graph = ring_graph(40)
        value = graph_conductance(graph)
        assert 0 < value < 0.2

    def test_spectral_gap_ordering(self):
        # The complete graph mixes much faster than the ring.
        assert spectral_gap(complete_graph(12)) > spectral_gap(ring_graph(12))


class TestWeakConductance:
    def test_barbell_weak_conductance_much_larger_than_conductance(self):
        graph = barbell_graph(12)
        phi = graph_conductance(graph)
        phi_2 = weak_conductance(graph, c=2)
        assert phi_2 > 5 * phi

    def test_c_equal_one_reduces_to_conductance(self):
        graph = ring_graph(10)
        assert weak_conductance(graph, c=1) == pytest.approx(graph_conductance(graph))

    def test_invalid_c_rejected(self):
        with pytest.raises(TopologyError):
            weak_conductance(ring_graph(8), c=0)

    def test_line_weak_conductance_stays_small(self):
        graph = line_graph(24)
        assert weak_conductance(graph, c=2) < 0.3


class TestMinCutGamma:
    def test_line_gamma_matches_bridge_probability(self):
        graph = line_graph(8)
        # The sparsest cut is a single edge between two interior degree-2 nodes:
        # gamma = 1/(n*2) + 1/(n*2) = 1/n.
        assert min_cut_gamma(graph) == pytest.approx(1 / 8, rel=0.3)

    def test_complete_graph_gamma_is_large(self):
        assert min_cut_gamma(complete_graph(10)) > 0.05

    def test_larger_graph_uses_min_edge_cut_path(self):
        graph = line_graph(30)
        assert 0 < min_cut_gamma(graph) < 0.2
