"""Unit tests for the topology generators."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.graphs import (
    TOPOLOGY_BUILDERS,
    barbell_graph,
    binary_tree_graph,
    build_topology,
    clique_chain_graph,
    complete_graph,
    dumbbell_graph,
    erdos_renyi_graph,
    expander_graph,
    grid_graph,
    hypercube_graph,
    line_graph,
    random_regular_graph,
    ring_graph,
    star_graph,
    torus_graph,
)
from repro.graphs.properties import diameter, max_degree


@pytest.mark.parametrize("name", sorted(TOPOLOGY_BUILDERS))
def test_every_builder_produces_connected_consecutive_graph(name):
    graph = build_topology(name, 16)
    assert nx.is_connected(graph)
    assert sorted(graph.nodes()) == list(range(graph.number_of_nodes()))
    assert graph.number_of_nodes() >= 4


def test_build_topology_unknown_name():
    with pytest.raises(TopologyError):
        build_topology("moebius", 16)


class TestLineRingGrid:
    def test_line_structure(self):
        graph = line_graph(10)
        assert graph.number_of_nodes() == 10
        assert graph.number_of_edges() == 9
        assert max_degree(graph) == 2
        assert diameter(graph) == 9

    def test_ring_structure(self):
        graph = ring_graph(10)
        assert graph.number_of_edges() == 10
        assert max_degree(graph) == 2
        assert diameter(graph) == 5

    def test_grid_structure(self):
        graph = grid_graph(16)
        assert graph.number_of_nodes() == 16
        assert max_degree(graph) == 4
        assert diameter(graph) == 6  # 2 * (4 - 1)

    def test_torus_is_four_regular(self):
        graph = torus_graph(16)
        degrees = {d for _, d in graph.degree()}
        assert degrees == {4}

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            line_graph(1)
        with pytest.raises(TopologyError):
            ring_graph(2)


class TestDenseTopologies:
    def test_complete_graph(self):
        graph = complete_graph(8)
        assert graph.number_of_edges() == 28
        assert diameter(graph) == 1
        assert max_degree(graph) == 7

    def test_star_graph(self):
        graph = star_graph(9)
        assert graph.number_of_nodes() == 9
        assert max_degree(graph) == 8
        assert diameter(graph) == 2

    def test_hypercube_degree_is_dimension(self):
        graph = hypercube_graph(16)
        assert graph.number_of_nodes() == 16
        assert max_degree(graph) == 4


class TestTreeTopologies:
    def test_binary_tree_exact_node_count_and_degree(self):
        graph = binary_tree_graph(13)
        assert graph.number_of_nodes() == 13
        assert graph.number_of_edges() == 12
        assert max_degree(graph) <= 3
        assert nx.is_tree(graph)

    def test_binary_tree_logarithmic_diameter(self):
        graph = binary_tree_graph(31)
        assert diameter(graph) == 8  # two root-to-leaf paths of depth 4


class TestBottleneckTopologies:
    def test_barbell_structure(self):
        graph = barbell_graph(10)
        assert graph.number_of_nodes() == 10
        # Two 5-cliques (2 * C(5,2) = 20 edges) plus the bridge.
        assert graph.number_of_edges() == 21
        assert diameter(graph) == 3

    def test_barbell_odd_count_keeps_n_nodes(self):
        graph = barbell_graph(11)
        assert graph.number_of_nodes() == 11
        assert nx.is_connected(graph)

    def test_barbell_too_small(self):
        with pytest.raises(TopologyError):
            barbell_graph(3)

    def test_dumbbell_path_length(self):
        graph = dumbbell_graph(14, path_length=4)
        assert graph.number_of_nodes() == 14
        assert nx.is_connected(graph)
        assert diameter(graph) >= 5

    def test_dumbbell_invalid_parameters(self):
        with pytest.raises(TopologyError):
            dumbbell_graph(6, path_length=10)
        with pytest.raises(TopologyError):
            dumbbell_graph(14, path_length=-1)

    def test_clique_chain_counts(self):
        graph = clique_chain_graph(20, cliques=4)
        assert graph.number_of_nodes() == 20
        assert nx.is_connected(graph)
        # Four 5-cliques plus three bridges.
        assert graph.number_of_edges() == 4 * 10 + 3

    def test_clique_chain_invalid(self):
        with pytest.raises(TopologyError):
            clique_chain_graph(20, cliques=1)
        with pytest.raises(TopologyError):
            clique_chain_graph(6, cliques=4)


class TestRandomTopologies:
    def test_random_regular_is_regular_and_deterministic(self):
        a = random_regular_graph(12, degree=3, seed=7)
        b = random_regular_graph(12, degree=3, seed=7)
        assert set(dict(a.degree()).values()) == {3}
        assert nx.utils.graphs_equal(a, b)

    def test_random_regular_invalid_degree(self):
        with pytest.raises(TopologyError):
            random_regular_graph(12, degree=1)

    def test_erdos_renyi_connected_and_seeded(self):
        a = erdos_renyi_graph(30, average_degree=5.0, seed=3)
        b = erdos_renyi_graph(30, average_degree=5.0, seed=3)
        assert nx.is_connected(a)
        assert nx.utils.graphs_equal(a, b)

    def test_expander_is_connected_constant_degree(self):
        graph = expander_graph(20, seed=1)
        assert nx.is_connected(graph)
        assert max_degree(graph) == 4


class TestTopologyRegistry:
    """The register_topology decorator keeps the registry and exports in sync."""

    def test_every_module_builder_is_registered(self):
        # Every public *_graph generator defined in the module must have gone
        # through @register_topology — the registry cannot drift from the code.
        from repro.graphs import topologies

        defined = {
            name
            for name in vars(topologies)
            if name.endswith("_graph") and callable(getattr(topologies, name))
        }
        registered = {builder.__name__ for builder in topologies.TOPOLOGY_BUILDERS.values()}
        assert defined == registered

    def test_every_builder_is_exported(self):
        from repro.graphs import topologies

        for builder in topologies.TOPOLOGY_BUILDERS.values():
            assert builder.__name__ in topologies.__all__

    @pytest.mark.parametrize("name", sorted(TOPOLOGY_BUILDERS))
    def test_every_builder_yields_connected_consecutive_graph(self, name):
        graph = build_topology(name, 16)
        assert nx.is_connected(graph)
        assert sorted(graph.nodes()) == list(range(graph.number_of_nodes()))

    def test_duplicate_registration_rejected(self):
        from repro.graphs.topologies import register_topology

        with pytest.raises(TopologyError):

            @register_topology("ring")
            def ring_clone_graph(n):  # pragma: no cover - must not register
                raise AssertionError

    def test_user_registration_reaches_build_topology_and_scenarios(self):
        from repro.graphs.topologies import register_topology
        from repro.scenarios import ScenarioSpec

        @register_topology("test_tiny_clique")
        def test_tiny_clique_graph(n):
            return nx.complete_graph(n)

        try:
            assert build_topology("test_tiny_clique", 5).number_of_nodes() == 5
            stats = ScenarioSpec(topology="test_tiny_clique", n=6, trials=1).materialize().run()
            assert stats.trials == 1
        finally:
            from repro.graphs import topologies

            TOPOLOGY_BUILDERS.pop("test_tiny_clique")
            topologies.__all__.remove("test_tiny_clique_graph")
