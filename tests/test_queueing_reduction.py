"""Tests for the gossip → queueing reduction of Theorem 1 (experiment E7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SimulationConfig, TimeModel
from repro.errors import SimulationError
from repro.gf import GF
from repro.gossip import GossipEngine
from repro.graphs import diameter, grid_graph, line_graph, ring_graph
from repro.protocols import AlgebraicGossip
from repro.queueing import (
    QueueingReduction,
    service_probability,
    worst_case_service_probability,
)
from repro.rlnc import Generation
from repro.experiments import all_to_all_placement


class TestServiceProbability:
    def test_formula(self):
        assert service_probability(2, 4) == pytest.approx(0.5 / 4)
        assert service_probability(16, 1) == pytest.approx(15 / 16)
        assert worst_case_service_probability(10) == pytest.approx(1 / 20)

    def test_validation(self):
        with pytest.raises(SimulationError):
            service_probability(1, 4)
        with pytest.raises(SimulationError):
            service_probability(2, 0)


class TestReductionConstruction:
    def test_rates_per_time_model(self):
        graph = ring_graph(8)  # n = 8, Δ = 2
        async_reduction = QueueingReduction(graph, k=4, q=2, time_model=TimeModel.ASYNCHRONOUS)
        sync_reduction = QueueingReduction(graph, k=4, q=2, time_model=TimeModel.SYNCHRONOUS)
        assert async_reduction.service_rate() == pytest.approx(1 / (2 * 8 * 2))
        assert sync_reduction.service_rate() == pytest.approx(1 / (2 * 2))

    def test_fixed_partner_removes_delta(self):
        graph = grid_graph(16)  # Δ = 4
        with_delta = QueueingReduction(graph, k=4, time_model=TimeModel.SYNCHRONOUS)
        fixed = QueueingReduction(graph, k=4, time_model=TimeModel.SYNCHRONOUS, fixed_partner=True)
        assert fixed.service_rate() == pytest.approx(with_delta.service_rate() * 4)

    def test_bfs_tree_depth_at_most_diameter(self):
        graph = grid_graph(16)
        reduction = QueueingReduction(graph, k=4)
        tree = reduction.bfs_tree(0)
        assert tree.depth <= diameter(graph)

    def test_invalid_k(self):
        with pytest.raises(SimulationError):
            QueueingReduction(ring_graph(6), k=0)

    def test_customer_placement_counts(self):
        graph = line_graph(6)
        reduction = QueueingReduction(graph, k=4)
        tree = reduction.bfs_tree(0)
        placement = reduction.customer_placement(tree)
        assert sum(placement.values()) == 4
        # Explicit per-node counts are also honoured.
        explicit = reduction.customer_placement(tree, {5: 2, 0: 1})
        assert explicit == {5: 2}  # messages at the root need no transport
        with pytest.raises(SimulationError):
            reduction.customer_placement(tree, {99: 1})

    def test_describe_mentions_bound(self):
        graph = ring_graph(8)
        reduction = QueueingReduction(graph, k=4)
        text = reduction.describe()
        assert "service rate" in text
        assert "O((k + log n + D)" in text


class TestReductionPredictions:
    def test_analytic_and_simulated_predictions(self, rng):
        graph = grid_graph(9)
        reduction = QueueingReduction(graph, k=5, q=2, time_model=TimeModel.SYNCHRONOUS)
        prediction = reduction.predict_for_root(0, rng, trials=100)
        assert prediction.analytic_bound > 0
        assert prediction.simulated_whp is not None
        # The closed-form bound must upper-bound the simulated queueing system.
        assert prediction.simulated_whp <= prediction.analytic_bound

    def test_simulation_requires_rng(self):
        graph = ring_graph(6)
        reduction = QueueingReduction(graph, k=3)
        with pytest.raises(SimulationError):
            reduction.predict_for_root(0, None, trials=10)

    def test_prediction_upper_bounds_real_gossip_on_constant_degree_graph(self):
        """The whole point of Theorem 1: the queueing bound dominates the real
        synchronous uniform-AG stopping time (here checked on a small ring)."""
        graph = ring_graph(8)
        n = graph.number_of_nodes()
        config = SimulationConfig(field_size=2, time_model=TimeModel.SYNCHRONOUS,
                                  max_rounds=50_000)
        measured = []
        for seed in range(3):
            rng = np.random.default_rng(seed)
            generation = Generation.random(GF(2), n, 2, rng)
            process = AlgebraicGossip(graph, generation, all_to_all_placement(graph), config, rng)
            measured.append(GossipEngine(graph, process, config, rng).run().rounds)
        reduction = QueueingReduction(graph, k=n, q=2, time_model=TimeModel.SYNCHRONOUS)
        assert max(measured) <= reduction.predicted_rounds_upper_bound()

    def test_asynchronous_bound_converted_to_rounds(self):
        graph = ring_graph(8)
        sync_bound = QueueingReduction(
            graph, k=8, time_model=TimeModel.SYNCHRONOUS
        ).predicted_rounds_upper_bound()
        async_bound = QueueingReduction(
            graph, k=8, time_model=TimeModel.ASYNCHRONOUS
        ).predicted_rounds_upper_bound()
        # After dividing timeslots by n, both bounds are the same expression.
        assert async_bound == pytest.approx(sync_bound)
