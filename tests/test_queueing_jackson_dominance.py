"""Tests for Jackson-network facts (Lemmas 7–9) and the dominance utilities."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import AnalysisError, SimulationError
from repro.queueing import (
    dominance_violation,
    empirical_cdf,
    empirically_dominates,
    equilibrium_queue_length_distribution,
    expected_sojourn_time,
    lemma7_stopping_time_bound,
    mean_ordering_holds,
    sample_equilibrium_queue_length,
    sum_exponentials_tail_bound,
    theorem2_stopping_time_bound,
    utilisation,
)


class TestJacksonFacts:
    def test_utilisation(self):
        assert utilisation(1.0, 2.0) == pytest.approx(0.5)
        with pytest.raises(SimulationError):
            utilisation(2.0, 2.0)
        with pytest.raises(SimulationError):
            utilisation(-1.0, 2.0)

    def test_equilibrium_distribution_is_geometric(self):
        probs = equilibrium_queue_length_distribution(0.5, 10)
        assert probs[0] == pytest.approx(0.5)
        assert probs[1] == pytest.approx(0.25)
        assert probs.sum() == pytest.approx(1 - 0.5**11)
        with pytest.raises(SimulationError):
            equilibrium_queue_length_distribution(1.5, 10)

    def test_equilibrium_sampling_matches_mean(self, rng):
        rho = 0.5
        samples = sample_equilibrium_queue_length(rho, rng, size=20_000)
        # Mean of the stationary M/M/1 queue length is rho / (1 - rho) = 1.
        assert np.mean(samples) == pytest.approx(1.0, rel=0.1)
        assert samples.min() >= 0

    def test_expected_sojourn_time(self):
        assert expected_sojourn_time(0.5, 1.0) == pytest.approx(2.0)

    def test_lemma9_tail_bound_validated_by_simulation(self, rng):
        """Pr(Y < α E[Y]) is indeed at least the Lemma 9 expression."""
        count, alpha = 20, 2.5
        bound = sum_exponentials_tail_bound(count, alpha)
        sums = rng.exponential(1.0, size=(4_000, count)).sum(axis=1)
        empirical = np.mean(sums < alpha * count)
        assert empirical >= bound - 0.02
        with pytest.raises(SimulationError):
            sum_exponentials_tail_bound(0, 2.0)
        with pytest.raises(SimulationError):
            sum_exponentials_tail_bound(5, 0.5)

    def test_lemma7_formula(self):
        k, depth, n, mu = 10, 4, 30, 0.5
        expected = (4 * k + 4 * depth + 16 * math.log(n)) / mu
        assert lemma7_stopping_time_bound(k, depth, n, mu) == pytest.approx(expected)
        assert theorem2_stopping_time_bound(k, depth, n, mu) == pytest.approx(expected)
        with pytest.raises(SimulationError):
            lemma7_stopping_time_bound(0, 1, 10, 1.0)


class TestDominanceUtilities:
    def test_empirical_cdf(self):
        samples = np.array([1.0, 2.0, 3.0, 4.0])
        cdf = empirical_cdf(samples, np.array([0.5, 2.0, 5.0]))
        assert list(cdf) == [0.0, 0.5, 1.0]
        with pytest.raises(AnalysisError):
            empirical_cdf(np.array([]), np.array([1.0]))

    def test_dominance_detects_clear_ordering(self, rng):
        smaller = rng.exponential(1.0, size=2_000)
        larger = rng.exponential(1.0, size=2_000) + 1.0
        assert empirically_dominates(smaller, larger, tolerance=0.05)
        assert not empirically_dominates(larger, smaller, tolerance=0.05)
        assert dominance_violation(smaller, larger) <= 0.05

    def test_identical_distributions_within_tolerance(self, rng):
        a = rng.normal(0, 1, size=3_000)
        b = rng.normal(0, 1, size=3_000)
        assert empirically_dominates(a, b, tolerance=0.1)
        assert empirically_dominates(b, a, tolerance=0.1)

    def test_mean_ordering(self, rng):
        a = rng.uniform(0, 1, size=500)
        b = rng.uniform(0.5, 1.5, size=500)
        assert mean_ordering_holds(a, b)
        assert not mean_ordering_holds(b, a)

    def test_input_validation(self):
        with pytest.raises(AnalysisError):
            dominance_violation(np.array([]), np.array([1.0]))
        with pytest.raises(AnalysisError):
            mean_ordering_holds(np.array([]), np.array([1.0]))
        with pytest.raises(AnalysisError):
            empirically_dominates(np.array([1.0]), np.array([1.0]), tolerance=-1)
