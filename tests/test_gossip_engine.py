"""Unit tests for the gossip engine: time-model semantics and result accounting."""

from __future__ import annotations

from typing import Any

import networkx as nx
import numpy as np
import pytest

from repro.core import GossipAction, SimulationConfig, TimeModel
from repro.errors import SimulationError
from repro.gossip import EventTrace, GossipEngine, GossipProcess, Transmission, run_protocol
from repro.graphs import line_graph, ring_graph


class TokenSpread(GossipProcess):
    """Minimal protocol: node 0 owns a token; informed nodes push it to a fixed neighbour.

    On a line each informed node pushes to its right neighbour, so in the
    synchronous model the token moves exactly one hop per round — which makes
    the engine's "deliveries visible next round" semantics directly testable.
    """

    def __init__(self, graph: nx.Graph) -> None:
        self.graph = graph
        self.informed = {0}
        self.n = graph.number_of_nodes()

    def on_wakeup(self, node: int, rng: np.random.Generator) -> list[Transmission]:
        if node not in self.informed or node + 1 >= self.n:
            return []
        return [Transmission(node, node + 1, "token", kind="token")]

    def on_deliver(self, receiver: int, sender: int, payload: Any) -> bool:
        if receiver in self.informed:
            return False
        self.informed.add(receiver)
        return True

    def is_complete(self) -> bool:
        return len(self.informed) == self.n

    def finished_nodes(self) -> set[int]:
        return set(self.informed)

    def metadata(self) -> dict[str, Any]:
        return {"k": 1, "note": "token"}


class TestSynchronousSemantics:
    def test_token_travels_one_hop_per_round(self):
        graph = line_graph(6)
        process = TokenSpread(graph)
        config = SimulationConfig(time_model=TimeModel.SYNCHRONOUS, max_rounds=100)
        result = GossipEngine(graph, process, config, np.random.default_rng(0)).run()
        # The token must reach node 5, exactly 5 hops, one per round.
        assert result.completed
        assert result.rounds == 5
        assert result.timeslots == 5 * 6
        assert result.completion_rounds[0] == 0
        assert result.completion_rounds[5] == 5

    def test_helpful_message_counting(self):
        graph = line_graph(4)
        process = TokenSpread(graph)
        config = SimulationConfig(time_model=TimeModel.SYNCHRONOUS, max_rounds=100)
        result = GossipEngine(graph, process, config, np.random.default_rng(0)).run()
        # Each round, every informed interior node transmits; only the frontier
        # delivery is helpful.
        assert result.helpful_messages == 3
        assert result.messages_sent >= 3
        assert result.helpful_messages <= result.messages_sent

    def test_metadata_k_extracted(self):
        graph = line_graph(3)
        process = TokenSpread(graph)
        config = SimulationConfig(time_model=TimeModel.SYNCHRONOUS)
        result = GossipEngine(graph, process, config, np.random.default_rng(0)).run()
        assert result.k == 1
        assert result.metadata["note"] == "token"


class TestAsynchronousSemantics:
    def test_completion_and_round_accounting(self):
        graph = line_graph(5)
        process = TokenSpread(graph)
        config = SimulationConfig(time_model=TimeModel.ASYNCHRONOUS, max_rounds=10_000)
        result = GossipEngine(graph, process, config, np.random.default_rng(1)).run()
        assert result.completed
        assert result.rounds >= 4  # needs at least 4 helpful deliveries
        assert result.rounds == -(-result.timeslots // 5)

    def test_async_needs_at_least_one_timeslot_per_hop(self):
        """Each hop of the token needs its own timeslot (deliveries are per wakeup),
        so the asynchronous run can never use fewer timeslots than hops."""
        graph = line_graph(8)
        async_result = GossipEngine(
            graph,
            TokenSpread(graph),
            SimulationConfig(time_model=TimeModel.ASYNCHRONOUS, max_rounds=50_000),
            np.random.default_rng(2),
        ).run()
        assert async_result.completed
        assert async_result.timeslots >= 7
        assert async_result.helpful_messages == 7


class TestSafetyLimits:
    class NeverFinishes(TokenSpread):
        def is_complete(self) -> bool:
            return False

    def test_max_rounds_raises_by_default(self):
        graph = line_graph(4)
        config = SimulationConfig(time_model=TimeModel.SYNCHRONOUS, max_rounds=5)
        with pytest.raises(SimulationError):
            GossipEngine(graph, self.NeverFinishes(graph), config, np.random.default_rng(0)).run()

    def test_allow_incomplete_returns_partial_result(self):
        graph = line_graph(4)
        config = SimulationConfig(
            time_model=TimeModel.SYNCHRONOUS, max_rounds=5, allow_incomplete=True
        )
        result = GossipEngine(
            graph, self.NeverFinishes(graph), config, np.random.default_rng(0)
        ).run()
        assert not result.completed
        assert result.rounds == 5

    def test_disconnected_or_tiny_graphs_rejected(self):
        config = SimulationConfig()
        tiny = nx.Graph()
        tiny.add_node(0)
        with pytest.raises(SimulationError):
            GossipEngine(tiny, TokenSpread(tiny), config, np.random.default_rng(0))
        disconnected = nx.Graph()
        disconnected.add_edges_from([(0, 1), (2, 3)])
        with pytest.raises(SimulationError):
            GossipEngine(disconnected, TokenSpread(disconnected), config, np.random.default_rng(0))


class TestTracing:
    def test_trace_records_every_delivery(self):
        graph = line_graph(5)
        trace = EventTrace()
        config = SimulationConfig(time_model=TimeModel.SYNCHRONOUS)
        result = run_protocol(graph, TokenSpread(graph), config, np.random.default_rng(0), trace)
        assert len(trace) == result.messages_sent
        helpful = trace.helpful_events()
        assert len(helpful) == result.helpful_messages
        assert all(event.kind == "token" for event in trace)
        # Round histogram covers rounds 1..rounds.
        histogram = trace.messages_per_round()
        assert set(histogram) <= set(range(1, result.rounds + 1))

    def test_trace_queries(self):
        graph = ring_graph(6)
        trace = EventTrace()
        config = SimulationConfig(time_model=TimeModel.SYNCHRONOUS, max_rounds=50,
                                  allow_incomplete=True)
        run_protocol(graph, TokenSpread(graph), config, np.random.default_rng(0), trace)
        contacts = trace.contacts_of(0)
        assert all(event.sender == 0 or event.receiver == 0 for event in contacts)
        assert trace.events_in_round(1)

    def test_disabled_trace_records_nothing(self):
        graph = line_graph(4)
        trace = EventTrace(enabled=False)
        config = SimulationConfig(time_model=TimeModel.SYNCHRONOUS)
        run_protocol(graph, TokenSpread(graph), config, np.random.default_rng(0), trace)
        assert len(trace) == 0
