"""Resume semantics of store-backed sweeps (the ``make store-check`` contract).

The guarantees under test:

* a sweep interrupted part-way (fewer trials completed, or a writer killed
  mid-append) and *resumed* against the same store computes only the missing
  trials and produces **bit-identical** per-trial results and aggregates to
  an uninterrupted run — on the batch and the scalar execution paths;
* a second fully-cached invocation executes **zero** new trials (verified by
  the :attr:`~repro.store.ResultStore.puts` counter) and runs at least 10x
  faster than the cold run;
* extending a cached table with one new workload simulates only the new
  workload's trials.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import run_sweep
from repro.experiments import run_experiment
from repro.experiments.parallel import measure_protocol_batched
from repro.scenarios import ScenarioSpec, default_scenario_config
from repro.store import ResultStore

TRIALS = 10
SEED = 42
TOPOLOGIES = ("line", "grid", "complete", "binary_tree")


def _table1_specs(topologies=TOPOLOGIES) -> list[ScenarioSpec]:
    return [
        ScenarioSpec(
            topology=topology,
            n=16,
            k=8,
            config=default_scenario_config(),
            trials=TRIALS,
            seed=SEED,
        )
        for topology in topologies
    ]


def _signature(points) -> list[tuple]:
    """Everything a sweep aggregate is built from, per case."""
    return [
        (point.label, point.stats.samples, point.stats.incomplete_trials)
        for point in points
    ]


def _truncate_final_record(store_root) -> None:
    """Simulate a writer killed mid-append: chop the last shard line in half."""
    shards = sorted(store_root.glob("shards/*/*.jsonl"))
    assert shards, "expected at least one shard to truncate"
    path = shards[-1]
    raw = path.read_bytes().rstrip(b"\n")
    last_line_start = raw.rfind(b"\n") + 1
    cut = last_line_start + (len(raw) - last_line_start) // 2
    path.write_bytes(raw[:cut])


class TestResumeSemantics:
    @pytest.mark.parametrize("batch", [True, False], ids=["batch", "scalar"])
    def test_interrupted_sweep_resumes_bit_identical(self, tmp_path, batch):
        specs = _table1_specs()
        cold = run_sweep(specs, trials=TRIALS, seed=SEED, batch=batch)

        # Phase 1: the "interrupted" sweep got through half the trials...
        first_half = ResultStore(tmp_path / "store")
        run_sweep(specs, trials=TRIALS // 2, seed=SEED, batch=batch, store=first_half)
        assert first_half.puts == len(specs) * (TRIALS // 2)
        # ... and its writer died mid-append on the final record.
        _truncate_final_record(tmp_path / "store")

        # Phase 2: resume with the same specs/seed against the same store.
        resumed_store = ResultStore(tmp_path / "store")
        resumed = run_sweep(
            specs, trials=TRIALS, seed=SEED, batch=batch, store=resumed_store
        )
        assert _signature(resumed) == _signature(cold)
        # Only the remaining trials (plus the one lost to the truncation)
        # were computed.
        expected_remaining = len(specs) * (TRIALS - TRIALS // 2) + 1
        assert resumed_store.puts == expected_remaining
        assert resumed_store.hits == len(specs) * TRIALS - expected_remaining

    def test_per_trial_results_identical_through_the_store(self, tmp_path):
        spec = _table1_specs(("grid",))[0]
        direct = measure_protocol_batched(spec)
        store = ResultStore(tmp_path)
        # Warm the store with a prefix of the trial range only.
        measure_protocol_batched(spec, trials=4, store=store)
        mixed = measure_protocol_batched(spec, store=store)
        assert mixed == direct
        # And a pure read-back run returns the same objects' worth of data.
        replayed = measure_protocol_batched(spec, store=ResultStore(tmp_path))
        assert replayed == direct

    def test_scalar_and_batch_paths_share_cache_records(self, tmp_path):
        specs = _table1_specs(("line", "complete"))
        batch_store = ResultStore(tmp_path)
        batch_points = run_sweep(specs, trials=TRIALS, seed=SEED, store=batch_store)
        scalar_store = ResultStore(tmp_path)
        scalar_points = run_sweep(
            specs, trials=TRIALS, seed=SEED, batch=False, store=scalar_store
        )
        # The engines are bit-identical, so the scalar pass is served
        # entirely from the batch pass's records.
        assert scalar_store.puts == 0
        assert _signature(scalar_points) == _signature(batch_points)


class TestCachedRerun:
    def test_second_invocation_computes_nothing_and_is_10x_faster(self, tmp_path):
        specs = _table1_specs()
        cold_store = ResultStore(tmp_path)
        start = time.perf_counter()
        cold_points = run_sweep(specs, trials=TRIALS, seed=SEED, store=cold_store)
        cold_seconds = time.perf_counter() - start
        assert cold_store.puts == len(specs) * TRIALS

        warm_store = ResultStore(tmp_path)
        start = time.perf_counter()
        warm_points = run_sweep(specs, trials=TRIALS, seed=SEED, store=warm_store)
        warm_seconds = time.perf_counter() - start
        assert warm_store.puts == 0, "a fully cached sweep must compute zero trials"
        assert warm_store.hits == len(specs) * TRIALS
        assert _signature(warm_points) == _signature(cold_points)
        assert warm_seconds * 10 <= cold_seconds, (
            f"cached rerun took {warm_seconds:.3f}s vs {cold_seconds:.3f}s cold "
            "(expected >= 10x faster)"
        )

    def test_extending_a_table_computes_only_the_new_workload(self, tmp_path):
        store = ResultStore(tmp_path)
        run_sweep(_table1_specs(), trials=TRIALS, seed=SEED, store=store)
        extended = _table1_specs(TOPOLOGIES + ("barbell",))
        rerun_store = ResultStore(tmp_path)
        run_sweep(extended, trials=TRIALS, seed=SEED, store=rerun_store)
        # run_sweep derives each case's seed from its *position*, so the new
        # topology must be appended for the existing cases to stay cached.
        assert rerun_store.puts == TRIALS
        assert rerun_store.hits == len(TOPOLOGIES) * TRIALS

    def test_experiment_reruns_are_fully_cached(self, tmp_path):
        first = ResultStore(tmp_path)
        cold = run_experiment("E1-uniform-ag", trials=3, store=first)
        assert first.puts > 0
        second = ResultStore(tmp_path)
        warm = run_experiment("E1-uniform-ag", trials=3, store=second)
        assert second.puts == 0
        assert warm.rows == cold.rows

    def test_fresh_recomputes_without_duplicating_records(self, tmp_path):
        spec = _table1_specs(("grid",))[0]
        store = ResultStore(tmp_path)
        baseline = measure_protocol_batched(spec, store=store)
        fresh_store = ResultStore(tmp_path)
        recomputed = measure_protocol_batched(spec, store=fresh_store, fresh=True)
        assert recomputed == baseline
        assert fresh_store.hits == 0, "fresh must not read the cache"
        assert fresh_store.puts == 0, "identical records must not be re-appended"
        assert fresh_store.gc()["dropped_records"] == 0
