"""Tests for the geometric-service queueing variant (the raw timeslot model).

The gossip reduction's native service model is geometric (a helpful packet
crosses an edge in a timeslot with probability ``p``); Lemma 2 of the authors'
earlier paper lets it be replaced by an exponential server with the same rate,
which is stochastically slower.  These tests check that substitution
empirically: the exponential network's stopping time dominates the geometric
network's in the mean and (approximately) in distribution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.queueing import TreeQueueNetwork, empirically_dominates, line_tree, mean_ordering_holds


class TestGeometricService:
    def test_invalid_parameters(self):
        tree = line_tree(3)
        with pytest.raises(SimulationError):
            TreeQueueNetwork(tree, 0.5, {2: 1}, service="uniform")
        with pytest.raises(SimulationError):
            TreeQueueNetwork(tree, 2.0, {2: 1}, service="geometric")

    def test_geometric_single_queue_mean(self, rng):
        tree = line_tree(1)
        network = TreeQueueNetwork(tree, 0.25, {0: 1}, service="geometric")
        samples = network.simulate_many(4_000, rng)
        # One Geom(0.25) service: mean 4 timeslots.
        assert np.mean(samples) == pytest.approx(4.0, rel=0.1)

    def test_exponential_dominates_geometric(self, rng):
        """The Lemma-2 substitution: Exp(p) service is slower than Geom(p) service."""
        tree = line_tree(4)
        customers = {3: 6}
        p = 0.3
        geometric = TreeQueueNetwork(tree, p, customers, service="geometric")
        exponential = TreeQueueNetwork(tree, p, customers, service="exponential")
        geo_samples = geometric.simulate_many(500, rng)
        exp_samples = exponential.simulate_many(500, rng)
        assert mean_ordering_holds(geo_samples, exp_samples, slack=0.5)
        assert empirically_dominates(geo_samples, exp_samples, tolerance=0.15)

    def test_both_services_scale_with_load(self, rng):
        tree = line_tree(3)
        for service in ("geometric", "exponential"):
            rate = 0.5
            light = TreeQueueNetwork(tree, rate, {2: 2}, service=service)
            heavy = TreeQueueNetwork(tree, rate, {2: 12}, service=service)
            assert heavy.simulate_many(200, rng).mean() > light.simulate_many(200, rng).mean()
