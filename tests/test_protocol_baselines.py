"""Tests for the uncoded baseline protocols."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GossipAction, SimulationConfig
from repro.errors import SimulationError
from repro.gossip import GossipEngine
from repro.graphs import complete_graph, diameter, line_graph, ring_graph
from repro.protocols import AlgebraicGossip, FloodingDissemination, UncodedRandomGossip
from repro.rlnc import Generation
from repro.gf import GF
from repro.experiments import all_to_all_placement, spread_placement


class TestUncodedRandomGossip:
    def test_completes_on_complete_graph(self, sync_config):
        graph = complete_graph(8)
        rng = np.random.default_rng(0)
        process = UncodedRandomGossip(graph, 8, all_to_all_placement(graph), sync_config, rng)
        result = GossipEngine(graph, process, sync_config, rng).run()
        assert result.completed
        assert all(process.messages_known(node) == set(range(8)) for node in graph.nodes())

    def test_partial_k(self, sync_config):
        graph = ring_graph(8)
        rng = np.random.default_rng(1)
        process = UncodedRandomGossip(graph, 3, spread_placement(graph, 3), sync_config, rng)
        result = GossipEngine(graph, process, sync_config, rng).run()
        assert result.completed
        assert result.k == 3

    def test_invalid_placements_rejected(self, sync_config):
        graph = ring_graph(6)
        rng = np.random.default_rng(2)
        with pytest.raises(SimulationError):
            UncodedRandomGossip(graph, 2, {0: [0]}, sync_config, rng)  # message 1 missing
        with pytest.raises(SimulationError):
            UncodedRandomGossip(graph, 2, {99: [0, 1]}, sync_config, rng)
        with pytest.raises(SimulationError):
            UncodedRandomGossip(graph, 2, {0: [0, 5]}, sync_config, rng)
        with pytest.raises(SimulationError):
            UncodedRandomGossip(graph, 0, {}, sync_config, rng)

    def test_push_only_also_completes(self):
        graph = complete_graph(6)
        config = SimulationConfig(action=GossipAction.PUSH, max_rounds=20_000)
        rng = np.random.default_rng(3)
        process = UncodedRandomGossip(graph, 6, all_to_all_placement(graph), config, rng)
        assert GossipEngine(graph, process, config, rng).run().completed

    def test_duplicate_delivery_not_helpful(self, sync_config, rng):
        graph = ring_graph(6)
        process = UncodedRandomGossip(graph, 6, all_to_all_placement(graph), sync_config, rng)
        assert process.on_deliver(0, 1, 1) is True
        assert process.on_deliver(0, 1, 1) is False

    def test_coded_gossip_not_slower_than_uncoded_on_complete_graph(self):
        """The motivation for RLNC: coding removes the coupon-collector penalty."""
        graph = complete_graph(12)
        config = SimulationConfig(max_rounds=50_000)
        coded_rounds, uncoded_rounds = [], []
        for seed in range(3):
            rng = np.random.default_rng(seed)
            generation = Generation.random(GF(16), 12, 2, rng)
            coded = AlgebraicGossip(graph, generation, all_to_all_placement(graph), config, rng)
            coded_rounds.append(GossipEngine(graph, coded, config, rng).run().rounds)
            rng2 = np.random.default_rng(seed + 100)
            uncoded = UncodedRandomGossip(
                graph, 12, all_to_all_placement(graph), config, rng2
            )
            uncoded_rounds.append(GossipEngine(graph, uncoded, config, rng2).run().rounds)
        assert np.mean(coded_rounds) <= np.mean(uncoded_rounds)


class TestFlooding:
    def test_flooding_finishes_in_eccentricity_rounds(self, sync_config):
        graph = line_graph(9)
        process = FloodingDissemination(graph, 1, {0: [0]})
        rng = np.random.default_rng(4)
        result = GossipEngine(graph, process, sync_config, rng).run()
        assert result.completed
        assert result.rounds == diameter(graph)

    def test_flooding_all_to_all(self, sync_config):
        graph = ring_graph(8)
        process = FloodingDissemination(graph, 8, all_to_all_placement(graph))
        rng = np.random.default_rng(5)
        result = GossipEngine(graph, process, sync_config, rng).run()
        assert result.completed
        assert result.rounds == diameter(graph)

    def test_flooding_lower_bounds_gossip(self, sync_config):
        """Any single-partner gossip needs at least as many rounds as flooding."""
        graph = line_graph(8)
        flood = FloodingDissemination(graph, 8, all_to_all_placement(graph))
        rng = np.random.default_rng(6)
        flood_rounds = GossipEngine(graph, flood, sync_config, rng).run().rounds
        rng2 = np.random.default_rng(6)
        generation = Generation.random(GF(16), 8, 2, rng2)
        gossip = AlgebraicGossip(graph, generation, all_to_all_placement(graph), sync_config, rng2)
        gossip_rounds = GossipEngine(graph, gossip, sync_config, rng2).run().rounds
        assert gossip_rounds >= flood_rounds

    def test_invalid_parameters(self):
        graph = ring_graph(6)
        with pytest.raises(SimulationError):
            FloodingDissemination(graph, 0, {})
        with pytest.raises(SimulationError):
            FloodingDissemination(graph, 1, {55: [0]})
