"""Tier-1 doctest lane for the declarative layers.

The docstrings of :class:`~repro.scenarios.ScenarioSpec`,
:class:`~repro.store.ResultStore` and the campaign classes carry executable
examples (the API-reference pages in ``docs/api/`` quote the same
docstrings), so they must stay true.  ``make test`` additionally runs the
same modules under ``pytest --doctest-modules``; this file keeps the lane
inside the plain ``pytest`` tier-1 invocation as well.
"""

from __future__ import annotations

import doctest

import pytest

import repro.analysis.tables
import repro.campaigns.registry
import repro.campaigns.report
import repro.campaigns.runner
import repro.campaigns.spec
import repro.scenarios.registry
import repro.scenarios.spec
import repro.store.result_store

DOCTEST_MODULES = [
    repro.scenarios.spec,
    repro.scenarios.registry,
    repro.store.result_store,
    repro.analysis.tables,
    repro.campaigns.spec,
    repro.campaigns.registry,
    repro.campaigns.runner,
    repro.campaigns.report,
]


@pytest.mark.parametrize(
    "module", DOCTEST_MODULES, ids=lambda module: module.__name__
)
def test_module_doctests(module):
    failures, tests = doctest.testmod(module, verbose=False, report=True)
    assert failures == 0, f"{failures} doctest failure(s) in {module.__name__}"


def test_declarative_layers_carry_doctests():
    # The docstring examples are part of the documented contract: the spec,
    # store and campaign surfaces must keep at least one executable example.
    for module in (
        repro.scenarios.spec,
        repro.store.result_store,
        repro.campaigns.spec,
    ):
        finder = doctest.DocTestFinder()
        examples = [
            test for test in finder.find(module) if test.examples
        ]
        assert examples, f"{module.__name__} lost its doctest examples"
