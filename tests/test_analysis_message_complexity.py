"""Tests for message/bit complexity accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    message_complexity,
    minimum_helpful_receptions,
    minimum_rounds_from_messages,
    packet_size_bits,
)
from repro.core import RunResult, SimulationConfig
from repro.errors import AnalysisError
from repro.gf import GF
from repro.gossip import GossipEngine
from repro.graphs import complete_graph, ring_graph
from repro.protocols import AlgebraicGossip
from repro.rlnc import Generation
from repro.experiments import all_to_all_placement


class TestClosedForms:
    def test_packet_size(self):
        # (k + r) * log2(q): (8 + 4) * 4 bits for GF(16).
        assert packet_size_bits(8, 4, 16) == 48
        assert packet_size_bits(8, 4, 2) == 12
        with pytest.raises(AnalysisError):
            packet_size_bits(0, 4, 16)
        with pytest.raises(AnalysisError):
            packet_size_bits(8, 4, 1)

    def test_minimum_receptions(self):
        assert minimum_helpful_receptions(10, 5) == 50
        assert minimum_helpful_receptions(10, 5, seeded=5) == 45
        assert minimum_helpful_receptions(2, 1, seeded=10) == 0
        with pytest.raises(AnalysisError):
            minimum_helpful_receptions(0, 5)
        with pytest.raises(AnalysisError):
            minimum_helpful_receptions(5, 5, seeded=-1)

    def test_minimum_rounds(self):
        assert minimum_rounds_from_messages(10, 8, synchronous=True) == 4.0
        assert minimum_rounds_from_messages(10, 8, synchronous=False) == 4.0
        with pytest.raises(AnalysisError):
            minimum_rounds_from_messages(0, 8, synchronous=True)


class TestRunAccounting:
    def run_ag(self, graph, seed=0):
        n = graph.number_of_nodes()
        config = SimulationConfig(max_rounds=50_000)
        rng = np.random.default_rng(seed)
        generation = Generation.random(GF(16), n, 2, rng)
        process = AlgebraicGossip(graph, generation, all_to_all_placement(graph), config, rng)
        result = GossipEngine(graph, process, config, rng).run()
        return result, config

    def test_accounting_consistency(self):
        graph = ring_graph(8)
        result, config = self.run_ag(graph)
        accounting = message_complexity(
            result, payload_length=config.payload_length,
            field_size=config.field_size, seeded=8,
        )
        assert accounting.packets_sent == result.messages_sent
        assert accounting.helpful_packets == result.helpful_messages
        # Every node needs rank 8; the all-to-all placement seeds one per node.
        assert accounting.minimum_helpful == 8 * 8 - 8
        assert accounting.helpful_packets >= accounting.minimum_helpful
        assert accounting.total_bits == accounting.packet_bits * accounting.packets_sent
        assert 0 < accounting.helpful_fraction <= 1
        assert accounting.overhead_factor >= 1.0

    def test_complete_graph_is_more_efficient_than_ring(self):
        """On the complete graph nearly every packet is helpful; on the ring the
        EXCHANGE traffic is more redundant, so the overhead factor is larger."""
        ring_result, config = self.run_ag(ring_graph(10), seed=1)
        complete_result, _ = self.run_ag(complete_graph(10), seed=1)
        ring_acc = message_complexity(ring_result, payload_length=2, field_size=16, seeded=10)
        complete_acc = message_complexity(complete_result, payload_length=2, field_size=16, seeded=10)
        assert complete_acc.overhead_factor <= ring_acc.overhead_factor

    def test_as_dict_round_trip(self):
        graph = ring_graph(6)
        result, _ = self.run_ag(graph, seed=2)
        accounting = message_complexity(result, payload_length=2, field_size=16, seeded=6)
        data = accounting.as_dict()
        assert data["n"] == 6
        assert data["packets_sent"] == result.messages_sent
        assert "overhead_factor" in data

    def test_missing_k_rejected(self):
        bogus = RunResult(rounds=1, timeslots=1, completed=True, n=4, k=0)
        with pytest.raises(AnalysisError):
            message_complexity(bogus, payload_length=2, field_size=16)
