"""Integration test for Equation (3) and the broadcast-tree observation.

Section 4.1: when the spanning tree is built by a broadcast protocol B, the
synchronous-model bound improves to ``t(TAG) = O(k + log n + t(B))`` because a
broadcast tree's depth can never exceed the broadcast time, ``d(B) ≤ t(B)``.
This test measures ``t(B)`` and ``d(B)`` directly for both broadcast protocols
on several graphs, verifies the structural inequality, and then checks that
the measured TAG stopping time respects the Eq. (3) expression built from the
*measured* ``t(B)``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import tag_broadcast_upper_bound
from repro.core import SimulationConfig
from repro.gf import GF
from repro.gossip import GossipEngine
from repro.graphs import barbell_graph, grid_graph, line_graph
from repro.protocols import RoundRobinBroadcastTree, TagProtocol, UniformBroadcastTree
from repro.rlnc import Generation
from repro.experiments import all_to_all_placement


def measure_broadcast(protocol_cls, graph, seed):
    config = SimulationConfig(max_rounds=100 * graph.number_of_nodes())
    rng = np.random.default_rng(seed)
    protocol = protocol_cls(graph, root=0, rng=rng)
    result = GossipEngine(graph, protocol, config, rng).run()
    tree = protocol.current_tree()
    return result.rounds, tree.depth, tree.tree_diameter


def measure_tag(protocol_cls, graph, seed):
    n = graph.number_of_nodes()
    config = SimulationConfig(max_rounds=500_000)
    rng = np.random.default_rng(seed)
    generation = Generation.random(GF(16), n, 2, rng)
    process = TagProtocol(
        graph, generation, all_to_all_placement(graph), config, rng,
        lambda g, r: protocol_cls(g, 0, r),
    )
    return GossipEngine(graph, process, config, rng).run().rounds


@pytest.mark.parametrize("protocol_cls", [RoundRobinBroadcastTree, UniformBroadcastTree])
@pytest.mark.parametrize("builder, n", [(line_graph, 16), (grid_graph, 16), (barbell_graph, 16)])
def test_broadcast_tree_depth_never_exceeds_broadcast_time(protocol_cls, builder, n):
    graph = builder(n)
    rounds, depth, _ = measure_broadcast(protocol_cls, graph, seed=5)
    assert depth <= rounds


@pytest.mark.parametrize("builder, n", [(barbell_graph, 16), (grid_graph, 16)])
def test_equation3_with_measured_broadcast_time(builder, n):
    """t(TAG) stays within a constant of k + ln n + t(B) with t(B) measured."""
    graph = builder(n)
    actual_n = graph.number_of_nodes()
    broadcast_rounds = []
    tag_rounds = []
    for seed in range(3):
        rounds, _, _ = measure_broadcast(RoundRobinBroadcastTree, graph, seed)
        broadcast_rounds.append(rounds)
        tag_rounds.append(measure_tag(RoundRobinBroadcastTree, graph, seed))
    t_b = float(np.mean(broadcast_rounds))
    bound = tag_broadcast_upper_bound(actual_n, actual_n, t_b)
    # Eq. (3) is an O(·) statement; a constant factor of 3 is ample at this scale.
    assert float(np.mean(tag_rounds)) <= 3.0 * bound
