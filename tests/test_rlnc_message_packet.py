"""Unit tests for generations, source messages and coded packets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DecodingError
from repro.gf import GF
from repro.rlnc import CodedPacket, Generation


class TestGeneration:
    def test_random_generation_shape_and_range(self, gf16, rng):
        generation = Generation.random(gf16, k=6, payload_length=3, rng=rng)
        assert generation.k == 6
        assert generation.payload_length == 3
        matrix = generation.payload_matrix
        assert matrix.shape == (6, 3)
        assert matrix.max() < 16

    def test_from_values(self, gf16):
        generation = Generation.from_values(gf16, [[1, 2], [3, 4]])
        assert generation.k == 2
        assert np.array_equal(generation.payload_matrix, np.array([[1, 2], [3, 4]]))

    def test_payload_matrix_is_a_copy(self, gf16):
        generation = Generation.from_values(gf16, [[1, 2], [3, 4]])
        matrix = generation.payload_matrix
        matrix[0, 0] = 9
        assert generation.payload_matrix[0, 0] == 1

    def test_message_accessor(self, gf16):
        generation = Generation.from_values(gf16, [[1, 2], [3, 4]])
        message = generation.message(1)
        assert message.index == 1
        assert message.payload == (3, 4)
        assert len(generation.messages()) == 2
        assert len(generation) == 2

    def test_message_out_of_range(self, gf16):
        generation = Generation.from_values(gf16, [[1, 2]])
        with pytest.raises(DecodingError):
            generation.message(5)

    def test_invalid_shapes_rejected(self, gf16):
        with pytest.raises(DecodingError):
            Generation(gf16, np.array([1, 2, 3]))
        with pytest.raises(DecodingError):
            Generation(gf16, np.zeros((0, 3), dtype=int))

    def test_values_validated_against_field(self):
        gf2 = GF(2)
        with pytest.raises(Exception):
            Generation.from_values(gf2, [[0, 5]])


class TestCodedPacket:
    def test_from_arrays_and_back(self, gf16):
        packet = CodedPacket.from_arrays(np.array([1, 0, 2]), np.array([7, 8]))
        assert packet.k == 3
        assert packet.payload_length == 2
        assert np.array_equal(packet.coefficient_array(gf16), [1, 0, 2])
        assert np.array_equal(packet.payload_array(gf16), [7, 8])

    def test_unit_packet(self, gf16):
        packet = CodedPacket.unit(gf16, 4, 2, np.array([9, 9]))
        assert packet.coefficients == (0, 0, 1, 0)
        assert packet.payload == (9, 9)

    def test_unit_packet_index_out_of_range(self, gf16):
        with pytest.raises(DecodingError):
            CodedPacket.unit(gf16, 4, 7, np.array([0, 0]))

    def test_is_zero(self):
        assert CodedPacket(coefficients=(0, 0), payload=(0,)).is_zero
        assert not CodedPacket(coefficients=(0, 1), payload=(0,)).is_zero

    def test_size_in_bits(self, gf16):
        packet = CodedPacket(coefficients=(1, 2, 3), payload=(4, 5))
        # 5 symbols x 4 bits each for GF(16).
        assert packet.size_in_bits(gf16) == 20
        gf2 = GF(2)
        packet2 = CodedPacket(coefficients=(1, 0, 1), payload=(1, 1))
        assert packet2.size_in_bits(gf2) == 5

    def test_packet_is_hashable_and_frozen(self):
        packet = CodedPacket(coefficients=(1, 2), payload=(3,))
        assert hash(packet) == hash(CodedPacket(coefficients=(1, 2), payload=(3,)))
        with pytest.raises(AttributeError):
            packet.coefficients = (0, 0)  # type: ignore[misc]
