"""The optional numba event kernel: bit-identical when present, silent when not.

The jitted asynchronous hot loop (:mod:`repro.backends.accel`) is an optional
accelerator with a strict contract: when numba is importable the kernel
replays the pure-python event loop draw for draw; when it is not (the test
container does not ship it), :func:`~repro.backends.accel.async_event_kernel`
returns ``None`` and nothing changes but wall-clock.  Both halves are tested
here — the parity matrix runs only where numba is installed (the CI numba
lane), the fallback guarantees run everywhere.
"""

from __future__ import annotations

import pytest

from repro.backends import accel, use_backend
from repro.backends.accel import async_event_kernel, numba_available
from repro.core import GossipAction, TimeModel
from repro.core.rng import derive_rng
from repro.gossip import EventGossipEngine
from repro.scenarios import get_scenario
from repro.scenarios.spec import default_scenario_config

HAS_NUMBA = accel.numba is not None

ASYNC_GF2 = default_scenario_config(time_model=TimeModel.ASYNCHRONOUS, field_size=2)


def _spec(**overrides):
    return get_scenario("event/er-logn").replace(n=96, trials=2, seed=1311, **overrides)


def _engine(spec) -> EventGossipEngine:
    materialized = spec.materialize_csr()
    rng = derive_rng(spec.seed, "trial-0")
    with use_backend(spec.backend):  # the eliminator family follows the backend
        process = materialized.build_process(rng)
        return EventGossipEngine(materialized.graph, process, materialized.config, rng)


# ----------------------------------------------------------------------
# Fallback guarantees (run everywhere, numba or not)
# ----------------------------------------------------------------------
def test_env_switch_disables_the_kernel(monkeypatch):
    for value in ("0", "off", "OFF", "false"):
        monkeypatch.setenv("REPRO_EVENT_KERNEL", value)
        assert not numba_available()


@pytest.mark.skipif(HAS_NUMBA, reason="covers the numba-less container only")
def test_without_numba_the_kernel_slot_is_empty_and_the_engine_still_runs():
    assert not numba_available()
    engine = _engine(_spec())
    assert async_event_kernel(engine) is None
    result = engine.run()
    assert result.completed
    assert len(result.completion_rounds) == 96


def test_disabled_kernel_changes_nothing(monkeypatch):
    """With the kernel forced off, results equal the default configuration's.

    Where numba is absent both runs take the python loop (a tautology that
    still guards the env plumbing); on the CI numba lane this is the actual
    jitted-vs-python parity check at the scenario level.
    """
    spec = _spec()
    monkeypatch.setenv("REPRO_EVENT_KERNEL", "0")
    fallback = spec.materialize_csr().measure()
    monkeypatch.delenv("REPRO_EVENT_KERNEL")
    default = spec.materialize_csr().measure()
    assert fallback == default


# ----------------------------------------------------------------------
# Parity matrix (CI numba lane only)
# ----------------------------------------------------------------------
#: name → spec overrides: each axis the kernel claims to replay bit-identically.
PARITY_CASES = {
    "exchange": dict(),
    "loss": dict(config=ASYNC_GF2.replace(loss_probability=0.25)),
    "push": dict(config=ASYNC_GF2.replace(action=GossipAction.PUSH)),
    "pull": dict(config=ASYNC_GF2.replace(action=GossipAction.PULL)),
}


@pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
@pytest.mark.parametrize("case", sorted(PARITY_CASES), ids=str)
@pytest.mark.parametrize("seed", [0, 7, 1311])
def test_kernel_parity_per_seed(monkeypatch, case, seed):
    """Jitted and pure-python loops produce identical RunResults per seed."""
    spec = _spec(seed=seed, **PARITY_CASES[case])
    monkeypatch.setenv("REPRO_EVENT_KERNEL", "0")
    python_loop = spec.materialize_csr().measure()
    monkeypatch.delenv("REPRO_EVENT_KERNEL")
    jitted = spec.materialize_csr().measure()
    assert python_loop == jitted


@pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
def test_kernel_matches_the_networkx_pipeline_too():
    spec = _spec()
    assert spec.materialize().measure() == spec.materialize_csr().measure()


@pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
def test_kernel_declines_workloads_outside_its_contract():
    """Synchronous time, churn and non-gf2bit eliminators fall back to python."""
    assert async_event_kernel(_engine(_spec())) is not None
    sync = _spec(config=default_scenario_config(field_size=2))
    assert async_event_kernel(_engine(sync)) is None
    churned = _spec(config=ASYNC_GF2.replace(churn=((3, 2, 10),)))
    assert async_event_kernel(_engine(churned)) is None
    scalar_backend = _spec(backend="numpy")
    assert async_event_kernel(_engine(scalar_backend)) is None
