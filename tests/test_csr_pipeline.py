"""The graph-free CSR topology pipeline: byte-identical arrays, bit-identical runs.

Three layers of guarantees:

* **Builder equivalence matrix** — every direct-CSR generator registered in
  :data:`repro.graphs.CSR_BUILDERS` produces ``(indptr, indices)`` arrays
  that are *byte-identical* (``tobytes()``, int64) to
  ``csr_adjacency(networkx_builder(...))`` for the same arguments, across
  sizes, parameters and seeds — including the seed-derived retry loops of the
  random families.
* **Pipeline equivalence** — a scenario materialised through
  :meth:`~repro.scenarios.ScenarioSpec.materialize_csr` replays the networkx
  pipeline's per-trial :class:`~repro.core.results.RunResult` exactly (every
  field, every trial) across loss, actions, placements and parallel worker
  dispatch, and both pipelines share one keyed adjacency cache.
* **Typed refusals** — workloads the CSR pipeline cannot serve (non-uniform
  protocols, non-event engines, unconverted families, analytic bounds) fail
  eagerly with :class:`~repro.errors.ConfigurationError` /
  :class:`~repro.errors.EngineError`, never a silent fallback.
"""

from __future__ import annotations

import dataclasses
import json
import pickle

import networkx as nx
import numpy as np
import pytest

from repro.core import GossipAction
from repro.core.rng import derive_rng
from repro.errors import ConfigurationError, EngineError, TopologyError
from repro.graphs import (
    CSR_BUILDERS,
    CSRGraph,
    TOPOLOGY_BUILDERS,
    build_csr_topology,
    build_topology,
    csr_adjacency,
    csr_bfs_distances,
    csr_from_edges,
    topology_cache_key,
)
from repro.scenarios import ScenarioSpec, get_scenario

# ----------------------------------------------------------------------
# Builder equivalence matrix: direct CSR == csr_adjacency(networkx), bytewise
# ----------------------------------------------------------------------

#: (family, n, kwargs) — several sizes/parameterisations/seeds per family.
CSR_EQUIVALENCE_CASES = [
    ("line", 2, {}),
    ("line", 17, {}),
    ("line", 64, {}),
    ("ring", 3, {}),
    ("ring", 17, {}),
    ("ring", 64, {}),
    ("grid", 16, {}),
    ("grid", 30, {}),  # non-square n: rounded by two_dimensional_side
    ("torus", 9, {}),
    ("torus", 30, {}),
    ("ring_of_cliques", 8, {"cliques": 4}),
    ("ring_of_cliques", 16, {}),
    ("ring_of_cliques", 257, {"cliques": 8}),  # uneven clique sizes
    ("erdos_renyi_logn", 64, {}),
    ("erdos_renyi_logn", 200, {"c": 2.5, "seed": 3}),
    ("random_regular", 20, {}),
    ("random_regular", 30, {"degree": 4, "seed": 7}),
    ("expander", 24, {"seed": 2}),
    ("small_world", 32, {}),
    ("small_world", 40, {"neighbours": 6, "rewire_probability": 0.3, "seed": 9}),
]


@pytest.mark.parametrize(
    "name,n,kwargs",
    CSR_EQUIVALENCE_CASES,
    ids=[f"{name}-{n}-{sorted(kw.items())}" for name, n, kwargs in CSR_EQUIVALENCE_CASES
         for kw in (kwargs,)],
)
def test_direct_csr_builder_matches_networkx_reference_bytewise(name, n, kwargs):
    """Cold builds on both sides: no shared cache can mask a divergence."""
    direct = build_csr_topology(name, n, use_cache=False, **kwargs)
    reference = TOPOLOGY_BUILDERS[name](n, **kwargs)  # raw builder: unstamped
    indptr, indices = csr_adjacency(reference)
    assert direct.indptr.dtype == np.int64 and direct.indices.dtype == np.int64
    assert direct.n == reference.number_of_nodes()
    assert direct.indptr.tobytes() == indptr.tobytes()
    assert direct.indices.tobytes() == indices.tobytes()


def test_equivalence_matrix_covers_every_registered_csr_builder():
    assert {name for name, _, _ in CSR_EQUIVALENCE_CASES} == set(CSR_BUILDERS)


def test_csr_builders_are_a_subset_of_the_networkx_registry():
    assert set(CSR_BUILDERS) <= set(TOPOLOGY_BUILDERS)


def test_register_csr_topology_requires_a_networkx_reference():
    from repro.graphs import register_csr_topology

    with pytest.raises(TopologyError, match="no networkx reference"):

        @register_csr_topology("csr_only_family")
        def csr_only_family(n):  # pragma: no cover - must not register
            raise AssertionError


def test_build_csr_topology_refuses_unconverted_families():
    with pytest.raises(TopologyError, match="no direct-CSR builder"):
        build_csr_topology("complete", 16)
    with pytest.raises(TopologyError, match="unknown topology"):
        build_csr_topology("moebius", 16)


def test_direct_builders_share_the_reference_validation_errors():
    with pytest.raises(TopologyError):
        build_csr_topology("ring", 2, use_cache=False)
    with pytest.raises(TopologyError):
        build_csr_topology("ring_of_cliques", 20, use_cache=False, cliques=1)
    with pytest.raises(TopologyError):
        build_csr_topology("erdos_renyi_logn", 64, use_cache=False, c=0.5)
    with pytest.raises(TopologyError):
        build_csr_topology("small_world", 32, use_cache=False, neighbours=1)


# ----------------------------------------------------------------------
# The keyed adjacency cache is shared by both pipelines
# ----------------------------------------------------------------------
def test_csr_build_first_then_networkx_adjacency_shares_arrays():
    from repro.graphs.topologies import _KEYED_CSR

    _KEYED_CSR.pop(topology_cache_key("ring", 4099, {}), None)
    direct = build_csr_topology("ring", 4099)
    stamped = build_topology("ring", 4099)
    indptr, indices = csr_adjacency(stamped)
    assert indptr is direct.indptr and indices is direct.indices


def test_networkx_adjacency_first_then_csr_build_shares_arrays():
    from repro.graphs.topologies import _KEYED_CSR

    _KEYED_CSR.pop(topology_cache_key("ring", 4101, {}), None)
    indptr, indices = csr_adjacency(build_topology("ring", 4101))
    direct = build_csr_topology("ring", 4101)
    assert direct.indptr is indptr and direct.indices is indices


# ----------------------------------------------------------------------
# CSRGraph container semantics
# ----------------------------------------------------------------------
class TestCSRGraph:
    def test_matches_networkx_surface(self):
        graph = build_csr_topology("grid", 16, use_cache=False)
        reference = TOPOLOGY_BUILDERS["grid"](16)
        assert graph.number_of_nodes() == reference.number_of_nodes()
        assert graph.number_of_edges() == reference.number_of_edges()
        assert list(graph.nodes()) == sorted(reference.nodes())
        assert len(graph) == 16 and list(graph) == list(range(16))
        for node in graph.nodes():
            assert list(graph.neighbors(node)) == sorted(reference.neighbors(node))
            assert graph.degree[node] == reference.degree[node]
        assert dict(iter(graph.degree)) == dict(reference.degree)
        assert 0 in graph and 15 in graph
        assert 16 not in graph and -1 not in graph and "a" not in graph

    def test_arrays_are_read_only_int64(self):
        graph = build_csr_topology("ring", 12, use_cache=False)
        assert not graph.indptr.flags.writeable
        assert not graph.indices.flags.writeable
        with pytest.raises(ValueError):
            graph.indices[0] = 99

    def test_constructor_validates_shapes(self):
        with pytest.raises(ValueError, match="indptr"):
            CSRGraph(3, np.zeros(3, dtype=np.int64), np.zeros(0, dtype=np.int64))
        with pytest.raises(ValueError, match="indices"):
            CSRGraph(2, np.array([0, 1, 2]), np.zeros(5, dtype=np.int64))

    def test_pickle_roundtrip_preserves_arrays_and_flags(self):
        graph = build_csr_topology("torus", 16, use_cache=False)
        clone = pickle.loads(pickle.dumps(graph))
        assert clone.n == graph.n
        assert clone.indptr.tobytes() == graph.indptr.tobytes()
        assert clone.indices.tobytes() == graph.indices.tobytes()
        assert not clone.indptr.flags.writeable
        assert not clone.indices.flags.writeable

    def test_degrees_vector(self):
        graph = build_csr_topology("torus", 16, use_cache=False)
        assert np.array_equal(graph.degrees(), np.full(16, 4, dtype=np.int64))

    def test_connectivity(self):
        assert build_csr_topology("ring", 10, use_cache=False).is_connected()
        split = csr_from_edges(4, np.array([0, 2]), np.array([1, 3]))
        assert not split.is_connected()

    def test_bfs_distances_match_networkx(self):
        graph = build_csr_topology("grid", 25, use_cache=False)
        reference = TOPOLOGY_BUILDERS["grid"](25)
        for source in (0, 12, 24):
            expected = nx.single_source_shortest_path_length(reference, source)
            hops = csr_bfs_distances(graph.indptr, graph.indices, source)
            assert {node: int(d) for node, d in enumerate(hops)} == expected

    def test_csr_from_edges_matches_csr_adjacency(self):
        reference = nx.gnp_random_graph(30, 0.2, seed=11)
        edges = np.array(sorted(reference.edges()), dtype=np.int64)
        graph = csr_from_edges(30, edges[:, 0], edges[:, 1])
        indptr, indices = csr_adjacency(reference)
        assert graph.indptr.tobytes() == indptr.tobytes()
        assert graph.indices.tobytes() == indices.tobytes()

    def test_csr_adjacency_returns_csr_graph_arrays_as_is(self):
        graph = build_csr_topology("ring", 10, use_cache=False)
        indptr, indices = csr_adjacency(graph)
        assert indptr is graph.indptr and indices is graph.indices


# ----------------------------------------------------------------------
# Pipeline equivalence: materialize_csr() == materialize(), field for field
# ----------------------------------------------------------------------
def _er_spec(**overrides) -> ScenarioSpec:
    settings = dict(n=64, trials=3, seed=20260808)
    settings.update(overrides)
    return get_scenario("event/er-logn").replace(**settings)


#: name → spec factory: one entry per behavioural axis the CSR pipeline
#: claims to replay bit-identically.
PIPELINE_CASES = {
    "er-logn": lambda: _er_spec(),
    "ring-of-cliques": lambda: get_scenario("event/ring-of-cliques").replace(
        n=64, trials=2, seed=5
    ),
    "loss": lambda: _er_spec(
        config=_er_spec().config.replace(loss_probability=0.25)
    ),
    "push": lambda: _er_spec(config=_er_spec().config.replace(action=GossipAction.PUSH)),
    "pull": lambda: _er_spec(config=_er_spec().config.replace(action=GossipAction.PULL)),
    "spread-placement": lambda: _er_spec(placement="spread"),
    "random-placement": lambda: _er_spec(placement="random"),
    "adversarial-far": lambda: get_scenario("event/ring-of-cliques").replace(
        n=48, trials=2, seed=9, placement="adversarial_far"
    ),
}


@pytest.mark.parametrize("case", sorted(PIPELINE_CASES), ids=str)
def test_csr_pipeline_matches_networkx_pipeline_bit_identically(case):
    spec = PIPELINE_CASES[case]()
    via_networkx = spec.materialize()
    via_csr = spec.materialize_csr()
    assert via_networkx.pipeline == "networkx" and via_csr.pipeline == "csr"
    assert via_networkx.measure() == via_csr.measure()


def test_run_single_matches_across_pipelines():
    spec = _er_spec(trials=1)
    assert spec.materialize().run_single() == spec.materialize_csr().run_single()


def test_parallel_worker_dispatch_matches_inline_on_csr_pipeline():
    """Chunked workers receive the CSRGraph by pickle and stay bit-identical."""
    spec = _er_spec(trials=4)
    scenario = spec.materialize_csr()
    assert scenario.measure(jobs=2) == spec.materialize().measure(jobs=1)


def test_pipelines_share_one_fingerprint():
    spec = _er_spec()
    assert spec.materialize().spec.fingerprint() == spec.materialize_csr().spec.fingerprint()


# ----------------------------------------------------------------------
# Typed refusals
# ----------------------------------------------------------------------
def test_materialize_csr_rejects_non_uniform_protocols():
    spec = ScenarioSpec(
        name="t", description="t", topology="barbell", n=16, protocol="tag",
        spanning_tree="brr",
    )
    with pytest.raises(ConfigurationError, match="uniform algebraic gossip"):
        spec.materialize_csr()


def test_materialize_csr_requires_the_event_engine():
    spec = _er_spec(engine="")
    with pytest.raises(ConfigurationError, match="engine='event'"):
        spec.materialize_csr()


def test_materialize_csr_rejects_unconverted_topologies():
    spec = ScenarioSpec(
        name="t", description="t", topology="complete", n=16, k=8, engine="event",
        config=_er_spec().config,
    )
    with pytest.raises(ConfigurationError, match="no direct-CSR builder"):
        spec.materialize_csr()


def test_bounds_require_the_networkx_pipeline():
    scenario = _er_spec().materialize_csr()
    with pytest.raises(ConfigurationError, match="analytic bounds"):
        scenario.bounds


def test_csr_scenario_refuses_non_event_engines():
    scenario = _er_spec().materialize_csr()
    rewired = dataclasses.replace(scenario, spec=scenario.spec.replace(engine="scalar"))
    with pytest.raises(EngineError, match="event-driven engine"):
        rewired.measure()


def test_build_event_process_refuses_non_rank_only_factories_on_csr():
    from repro.gossip.event import build_event_process

    tag = ScenarioSpec(
        name="t", description="t", topology="barbell", n=16, protocol="tag",
        spanning_tree="brr",
    ).materialize()
    graph = build_csr_topology("ring", 16)
    with pytest.raises(EngineError, match="graph-free pipeline"):
        build_event_process(graph, tag.protocol_factory, derive_rng(0, "trial-0"))


# ----------------------------------------------------------------------
# CLI: `repro scenario stats`
# ----------------------------------------------------------------------
class TestScenarioStatsCommand:
    def test_json_reports_csr_pipeline(self, capsys):
        from repro.cli import main

        assert main(["scenario", "stats", "event/er-logn", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pipeline"] == "csr"
        assert payload["topology"] == "erdos_renyi_logn"
        assert payload["n"] == 2048
        assert payload["degree_min"] >= 1
        assert payload["degree_min"] <= payload["degree_mean"] <= payload["degree_max"]
        assert payload["materialize_seconds"] >= 0
        assert payload["m"] > payload["n"]  # connected G(n, 2 log n / n)

    def test_networkx_pipeline_reported_for_unconverted_workloads(self, capsys):
        from repro.cli import main

        assert main(["scenario", "stats", "uniform/complete", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pipeline"] == "networkx"

    def test_human_readable_output(self, capsys):
        from repro.cli import main

        assert main(["scenario", "stats", "event/ring-of-cliques"]) == 0
        out = capsys.readouterr().out
        assert "csr" in out and "ring_of_cliques" in out

    def test_unknown_scenario_is_an_error(self, capsys):
        from repro.cli import main

        assert main(["scenario", "stats", "event/none-such"]) == 2
        assert "error:" in capsys.readouterr().err
