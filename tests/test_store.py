"""Tests for the persistent content-addressed result store.

Covers the three layers of the tentpole contract:

* lossless serialisation — :class:`~repro.core.RunResult` normalises numpy
  scalar/array leakage at construction and round-trips through JSON exactly;
* content addressing — :meth:`~repro.scenarios.ScenarioSpec.fingerprint`
  identifies the workload (not the trial plan or registry identity);
* store integrity — atomic concurrent appends, first-record-wins
  deduplication, corrupt-shard detection with a clear
  :class:`~repro.errors.StoreError`, interrupted-append tolerance and
  gc / export / import round trips.

Resume semantics (interrupt a sweep, resume from the store, compare against
an uninterrupted run) live in ``tests/test_store_resume.py``.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.core import RunResult, json_ready
from repro.errors import AnalysisError, StoreError
from repro.scenarios import ScenarioSpec, default_scenario_config
from repro.store import ResultStore, diff_snapshots, load_snapshot


def _spec(**overrides) -> ScenarioSpec:
    base = dict(
        topology="ring",
        n=8,
        k=4,
        config=default_scenario_config(),
        trials=4,
        seed=11,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _result(rounds: int = 7, **metadata) -> RunResult:
    return RunResult(
        rounds=rounds,
        timeslots=rounds * 8,
        completed=True,
        n=8,
        k=4,
        completion_rounds={0: 3, 1: rounds},
        messages_sent=20,
        helpful_messages=9,
        metadata={"protocol": "test", **metadata},
    )


class TestJsonReady:
    def test_numpy_scalars_become_python(self):
        assert json_ready(np.int64(3)) == 3
        assert type(json_ready(np.int64(3))) is int
        assert type(json_ready(np.float64(0.5))) is float
        assert type(json_ready(np.bool_(True))) is bool

    def test_arrays_tuples_and_nested_mappings(self):
        value = json_ready(
            {"a": np.arange(3), "b": (np.int64(1), [np.float64(2.0)]), 3: None}
        )
        assert value == {"a": [0, 1, 2], "b": [1, [2.0]], "3": None}

    def test_rejects_unserialisable_values(self):
        with pytest.raises(AnalysisError, match="cannot normalise"):
            json_ready({"bad": object()})


class TestRunResultSerialization:
    def test_numpy_leakage_is_normalised_at_construction(self):
        # Regression test: engines assemble results from numpy state, and
        # np.int64 in metadata / completion_rounds used to survive into the
        # dataclass, breaking exact JSON round trips.
        result = RunResult(
            rounds=np.int64(5),
            timeslots=np.int64(40),
            completed=np.bool_(True),
            n=np.int64(8),
            k=np.int64(4),
            completion_rounds={np.int64(0): np.int64(3), 1: np.int64(5)},
            messages_sent=np.int64(12),
            helpful_messages=np.int64(6),
            metadata={"min_rank": np.int64(4), "depths": np.array([1, 2])},
        )
        assert type(result.rounds) is int
        assert all(
            type(key) is int and type(value) is int
            for key, value in result.completion_rounds.items()
        )
        assert result.metadata == {"min_rank": 4, "depths": [1, 2]}
        assert type(result.metadata["min_rank"]) is int

    def test_round_trip_is_exact_through_real_json(self):
        result = _result(tree_depth=None, ranks=[3, 4], flag=True)
        restored = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored == result
        assert RunResult.from_json(result.to_json()) == result

    def test_completion_round_keys_restore_to_int(self):
        restored = RunResult.from_json(_result().to_json())
        assert set(restored.completion_rounds) == {0, 1}

    def test_unknown_fields_rejected(self):
        data = _result().to_dict()
        data["bogus"] = 1
        with pytest.raises(AnalysisError, match="bogus"):
            RunResult.from_dict(data)

    def test_engine_produced_result_round_trips(self):
        result = _spec(trials=1).materialize().run_single()
        assert RunResult.from_json(result.to_json()) == result


class TestFingerprint:
    def test_stable_across_processes_and_plan_fields(self):
        spec = _spec()
        fingerprint = spec.fingerprint()
        assert len(fingerprint) == 64
        assert spec.replace(trials=99).fingerprint() == fingerprint
        assert spec.replace(seed=123).fingerprint() == fingerprint
        assert spec.replace(name="table-1", description="x").fingerprint() == fingerprint

    def test_workload_fields_change_it(self):
        fingerprint = _spec().fingerprint()
        assert _spec(n=10).fingerprint() != fingerprint
        assert _spec(k=3).fingerprint() != fingerprint
        assert _spec(topology="grid").fingerprint() != fingerprint
        assert (
            _spec(config=default_scenario_config(field_size=2)).fingerprint()
            != fingerprint
        )

    def test_random_placement_folds_seed_back_in(self):
        spec = _spec(placement="random")
        assert spec.replace(seed=12).fingerprint() != spec.fingerprint()
        # ... but the trial count still does not matter.
        assert spec.replace(trials=50).fingerprint() == spec.fingerprint()


class TestResultStoreBasics:
    def test_put_get_and_persistence_across_instances(self, tmp_path):
        spec = _spec()
        writer = ResultStore(tmp_path / "store")
        assert writer.missing_trials(spec) == [0, 1, 2, 3]
        assert writer.put(spec, 0, _result())
        assert not writer.put(spec, 0, _result()), "duplicate put must be a no-op"
        reader = ResultStore(tmp_path / "store")
        assert reader.get(spec, 0) == _result()
        assert reader.get(spec, 1) is None
        assert reader.hits == 1 and reader.misses == 1
        assert reader.missing_trials(spec) == [1, 2, 3]

    def test_seed_is_part_of_the_key(self, tmp_path):
        spec = _spec(seed=11)
        store = ResultStore(tmp_path)
        store.put(spec, 0, _result())
        assert store.get(spec, 0, seed=12) is None
        assert store.get(spec.replace(seed=12), 0) is None
        assert store.get(spec, 0, seed=11) == _result()

    def test_aggregate_requires_full_range(self, tmp_path):
        spec = _spec(trials=3)
        store = ResultStore(tmp_path)
        store.put_many(spec, {0: _result(5), 2: _result(9)})
        with pytest.raises(StoreError, match=r"missing trial indices \[1\]"):
            store.aggregate(spec)
        store.put(spec, 1, _result(7))
        stats = store.aggregate(spec)
        assert stats.samples == (5.0, 7.0, 9.0)

    def test_spec_round_trips_through_the_shard_header(self, tmp_path):
        spec = _spec()
        store = ResultStore(tmp_path)
        store.put(spec, 0, _result())
        # Identity/plan fields are serialised with the spec, so the rebuilt
        # value equals the original exactly.
        assert ResultStore(tmp_path).spec(spec.fingerprint()) == spec

    def test_fingerprint_prefix_resolution(self, tmp_path):
        spec = _spec()
        store = ResultStore(tmp_path)
        store.put(spec, 0, _result())
        fingerprint = spec.fingerprint()
        assert store.resolve_fingerprint(fingerprint[:8]) == fingerprint
        with pytest.raises(StoreError, match="no shard"):
            store.resolve_fingerprint("ffffffff" * 8)

    def test_bare_fingerprint_needs_explicit_seed_and_cannot_put(self, tmp_path):
        spec = _spec()
        store = ResultStore(tmp_path)
        store.put(spec, 0, _result())
        fingerprint = spec.fingerprint()
        with pytest.raises(StoreError, match="seed"):
            store.get(fingerprint, 0)
        assert store.get(fingerprint, 0, seed=spec.seed) == _result()
        with pytest.raises(StoreError, match="full ScenarioSpec"):
            store.put_many(fingerprint, {1: _result()}, seed=spec.seed)

    def test_missing_store_directory_rejected_without_create(self, tmp_path):
        with pytest.raises(StoreError, match="does not exist"):
            ResultStore(tmp_path / "nope", create=False)

    def test_root_colliding_with_a_file_is_a_store_error(self, tmp_path):
        collision = tmp_path / "not-a-dir"
        collision.write_text("occupied")
        with pytest.raises(StoreError, match="cannot create result store"):
            ResultStore(collision)


def _concurrent_writer(args) -> int:
    """Worker: open the same store directory and append a disjoint trial range."""
    root, start, stop = args
    from repro.scenarios import ScenarioSpec, default_scenario_config
    from repro.store import ResultStore

    spec = ScenarioSpec(
        topology="ring", n=8, k=4, config=default_scenario_config(), trials=64, seed=11
    )
    store = ResultStore(root)
    results = {
        trial: RunResult(
            rounds=trial + 1, timeslots=(trial + 1) * 8, completed=True, n=8, k=4,
            completion_rounds={0: trial + 1}, metadata={"trial": trial},
        )
        for trial in range(start, stop)
    }
    return store.put_many(spec, results)


class TestConcurrencyAndIntegrity:
    def test_two_interleaved_writer_instances(self, tmp_path):
        spec = _spec(trials=6)
        left = ResultStore(tmp_path)
        right = ResultStore(tmp_path)
        left.put(spec, 0, _result(1))
        right.put(spec, 1, _result(2))
        left.put(spec, 2, _result(3))
        # Each instance cached its own view; a fresh reader sees all appends.
        merged = ResultStore(tmp_path).results(spec)
        assert sorted(merged) == [0, 1, 2]
        assert [merged[t].rounds for t in (0, 1, 2)] == [1, 2, 3]

    def test_two_process_concurrent_appends(self, tmp_path):
        spec = _spec(trials=64)
        ranges = [(str(tmp_path), 0, 32), (str(tmp_path), 32, 64)]
        with ProcessPoolExecutor(max_workers=2) as pool:
            written = list(pool.map(_concurrent_writer, ranges))
        assert written == [32, 32]
        store = ResultStore(tmp_path)
        assert store.missing_trials(spec, 64) == []
        assert [store.get(spec, t).rounds for t in range(64)] == list(range(1, 65))

    def test_racing_duplicate_appends_collapse_first_wins(self, tmp_path):
        spec = _spec()
        left = ResultStore(tmp_path)
        right = ResultStore(tmp_path)
        # `right` caches its (empty) view of the shard before `left` writes,
        # so its later put appends a genuine duplicate record.
        assert right.missing_trials(spec) == [0, 1, 2, 3]
        left.put(spec, 0, _result(5))
        right.put(spec, 0, _result(5))
        reader = ResultStore(tmp_path)
        assert reader.get(spec, 0) == _result(5)
        stats = reader.gc()
        assert stats["dropped_records"] >= 1, "gc must compact the duplicate"
        assert ResultStore(tmp_path).get(spec, 0) == _result(5)

    def _shard_path(self, root, spec):
        fingerprint = spec.fingerprint()
        return root / "shards" / fingerprint[:2] / f"{fingerprint}.jsonl"

    def test_corrupt_committed_line_raises_store_error(self, tmp_path):
        spec = _spec()
        ResultStore(tmp_path).put(spec, 0, _result())
        path = self._shard_path(tmp_path, spec)
        with path.open("a", encoding="utf-8") as handle:
            handle.write("{not json\n")
        with pytest.raises(StoreError, match="not valid JSON"):
            ResultStore(tmp_path).get(spec, 0)

    def test_wrong_fingerprint_in_shard_raises_store_error(self, tmp_path):
        spec = _spec()
        ResultStore(tmp_path).put(spec, 0, _result())
        path = self._shard_path(tmp_path, spec)
        record = json.loads(path.read_text().splitlines()[-1])
        record["fingerprint"] = "0" * 64
        with path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
        with pytest.raises(StoreError, match="does not match its shard"):
            ResultStore(tmp_path).get(spec, 1)

    def test_well_shaped_but_corrupt_payload_raises_store_error(self, tmp_path):
        spec = _spec()
        ResultStore(tmp_path).put(spec, 0, _result())
        path = self._shard_path(tmp_path, spec)
        record = json.loads(path.read_text().splitlines()[-1])
        record["trial"] = 1
        record["result"]["rounds"] = "abc"  # valid JSON, invalid RunResult
        with path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
        with pytest.raises(StoreError, match="corrupt result payload .* trial=1"):
            ResultStore(tmp_path).get(spec, 1)

    def test_unknown_record_kind_raises_store_error(self, tmp_path):
        spec = _spec()
        ResultStore(tmp_path).put(spec, 0, _result())
        path = self._shard_path(tmp_path, spec)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "mystery"}\n')
        with pytest.raises(StoreError, match="unknown kind"):
            ResultStore(tmp_path).get(spec, 0)

    def test_interrupted_final_append_is_skipped_not_fatal(self, tmp_path):
        spec = _spec()
        store = ResultStore(tmp_path)
        store.put_many(spec, {0: _result(5), 1: _result(6)})
        path = self._shard_path(tmp_path, spec)
        text = path.read_text(encoding="utf-8")
        # Kill the writer mid-line: drop the trailing newline and half the
        # final record.
        path.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
        survivor = ResultStore(tmp_path)
        assert survivor.get(spec, 0) == _result(5)
        assert survivor.get(spec, 1) is None
        assert survivor.last_load_dropped_partial == 1
        # Resume: re-put the lost trial; the store is whole again.
        survivor.put(spec, 1, _result(6))
        assert ResultStore(tmp_path).results(spec, 2) == {0: _result(5), 1: _result(6)}


class TestGcExportImport:
    def test_gc_keep_prunes_other_workloads(self, tmp_path):
        keep_spec, drop_spec = _spec(), _spec(topology="grid", n=9)
        store = ResultStore(tmp_path)
        store.put(keep_spec, 0, _result())
        store.put(drop_spec, 0, _result())
        stats = store.gc(keep=[keep_spec])
        assert stats["kept_shards"] == 1 and stats["removed_shards"] == 1
        fresh = ResultStore(tmp_path)
        assert fresh.fingerprints() == [keep_spec.fingerprint()]
        assert fresh.get(keep_spec, 0) == _result()

    def test_gc_keep_spec_matching_no_shard_refuses_to_prune(self, tmp_path):
        stored_spec = _spec()
        store = ResultStore(tmp_path)
        store.put(stored_spec, 0, _result())
        absent_spec = _spec(topology="grid", n=9)
        with pytest.raises(StoreError, match="refusing to prune"):
            store.gc(keep=[absent_spec])
        assert ResultStore(tmp_path).fingerprints() == [stored_spec.fingerprint()]

    def test_snapshot_of_a_non_store_directory_is_an_error(self, tmp_path):
        (tmp_path / "random-dir").mkdir()
        with pytest.raises(StoreError, match="not a result store"):
            load_snapshot(tmp_path / "random-dir")
        # ... but a real (even empty) store loads fine.
        ResultStore(tmp_path / "empty-store")
        assert load_snapshot(tmp_path / "empty-store").trial_count == 0

    def test_gc_keep_accepts_prefixes_and_rejects_misses(self, tmp_path):
        keep_spec, drop_spec = _spec(), _spec(topology="grid", n=9)
        store = ResultStore(tmp_path)
        store.put(keep_spec, 0, _result())
        store.put(drop_spec, 0, _result())
        # A keep entry matching no shard must raise, not prune everything.
        with pytest.raises(StoreError, match="no shard"):
            store.gc(keep=["feedfeed"])
        assert len(ResultStore(tmp_path).fingerprints()) == 2
        # The 12-char prefixes `store ls` prints are valid keep entries.
        store.gc(keep=[keep_spec.fingerprint()[:12]])
        assert ResultStore(tmp_path).fingerprints() == [keep_spec.fingerprint()]

    def test_put_of_a_divergent_result_is_a_loud_error(self, tmp_path):
        spec = _spec()
        store = ResultStore(tmp_path)
        store.put(spec, 0, _result(5))
        assert not store.put(spec, 0, _result(5)), "identical re-put is a no-op"
        with pytest.raises(StoreError, match="behaviour has changed"):
            store.put(spec, 0, _result(6))
        # The original record survives untouched.
        assert ResultStore(tmp_path).get(spec, 0) == _result(5)

    def test_export_import_round_trip(self, tmp_path):
        spec = _spec(trials=3)
        source = ResultStore(tmp_path / "a")
        source.put_many(spec, {t: _result(t + 5) for t in range(3)})
        export_path = tmp_path / "snapshot.jsonl"
        assert source.export(export_path) == 3
        target = ResultStore(tmp_path / "b")
        assert target.import_file(export_path) == 3
        assert target.import_file(export_path) == 0, "re-import must be a no-op"
        report = diff_snapshots(load_snapshot(tmp_path / "a"), load_snapshot(tmp_path / "b"))
        assert report["identical"] == 3
        assert not report["differing"]
        assert ResultStore(tmp_path / "b").aggregate(spec).samples == (5.0, 6.0, 7.0)

    def test_import_of_a_divergent_archive_is_a_loud_error(self, tmp_path):
        spec = _spec(trials=1)
        local = ResultStore(tmp_path / "a")
        other = ResultStore(tmp_path / "b")
        local.put(spec, 0, _result(5))
        other.put(spec, 0, _result(6))
        other.export(tmp_path / "other.jsonl")
        with pytest.raises(StoreError, match="diverging simulation code"):
            local.import_file(tmp_path / "other.jsonl")
        # The local record survives.
        assert ResultStore(tmp_path / "a").get(spec, 0) == _result(5)

    def test_diff_detects_divergent_records(self, tmp_path):
        spec = _spec(trials=1)
        left = ResultStore(tmp_path / "a")
        right = ResultStore(tmp_path / "b")
        left.put(spec, 0, _result(5))
        right.put(spec, 0, _result(6))
        report = diff_snapshots(load_snapshot(tmp_path / "a"), load_snapshot(tmp_path / "b"))
        assert report["differing"] == [(spec.fingerprint(), spec.seed, 0)]

    def test_snapshot_reads_exports_and_directories_alike(self, tmp_path):
        spec = _spec(trials=2)
        store = ResultStore(tmp_path / "store")
        store.put_many(spec, {0: _result(4), 1: _result(6)})
        store.export(tmp_path / "snapshot.jsonl")
        from_dir = load_snapshot(tmp_path / "store")
        from_file = load_snapshot(tmp_path / "snapshot.jsonl")
        assert from_dir.results == from_file.results
        assert from_dir.specs == from_file.specs


class TestInspectionIsReadOnly:
    def test_repair_false_loads_but_never_truncates(self, tmp_path):
        spec = _spec()
        store = ResultStore(tmp_path)
        store.put_many(spec, {0: _result(5), 1: _result(6)})
        fingerprint = spec.fingerprint()
        path = tmp_path / "shards" / fingerprint[:2] / f"{fingerprint}.jsonl"
        truncated = path.read_bytes()[:-10]  # kill the writer mid final record
        path.write_bytes(truncated)
        from repro.store import load_snapshot

        snapshot = load_snapshot(tmp_path)
        assert list(snapshot.results[fingerprint]) == [(spec.seed, 0)]
        assert path.read_bytes() == truncated, "inspection must not modify shards"
        # A writing store (repair on) truncates the fragment before appending.
        writer = ResultStore(tmp_path)
        writer.put(spec, 1, _result(6))
        assert ResultStore(tmp_path).results(spec, 2) == {0: _result(5), 1: _result(6)}
