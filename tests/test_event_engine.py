"""The event-driven engine's contract: bit-identical, sparse, typed refusals.

Three layers of guarantees:

* **Equivalence matrix** — on small graphs the event engine reproduces the
  scalar engine's :class:`~repro.core.results.RunResult` *exactly* (every
  field, every trial) across both time models, PUSH/PULL/EXCHANGE, packet
  loss, pause- and reset-mode churn, heterogeneous activation rates and both
  compute backends.
* **Hot-path conformance** — the single-problem ``combine_one`` /
  ``eliminate_one`` fast paths of both shipped eliminators hold state
  identical to the batched ``eliminate`` reference on random traces, and
  ``reset_problems`` returns problems to a freshly-constructed state.
* **Typed refusals and dispatch** — unsupported protocol/engine pairings
  fail eagerly with :class:`~repro.errors.EngineError` /
  :class:`~repro.errors.ConfigurationError` (never a silent fallback), the
  ``engine`` axis never enters the result-store fingerprint, and every
  dispatch layer (``run_single``, ``measure``, chunked parallel workers)
  routes to the same bit-identical results.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import get_backend, use_backend
from repro.core import GossipAction, SimulationConfig, TimeModel
from repro.core.rng import derive_rng
from repro.errors import ConfigurationError, EngineError, SimulationError
from repro.gf import GF
from repro.gf.linalg import BatchEliminator
from repro.gossip import (
    EventGossipEngine,
    event_supports_config,
    event_supports_process,
    run_event_trials,
)
from repro.scenarios import ScenarioSpec, get_scenario
from repro.scenarios.spec import default_scenario_config

ASYNC = default_scenario_config(time_model=TimeModel.ASYNCHRONOUS)
SYNC = default_scenario_config()

#: name → ScenarioSpec kwargs: one entry per behavioural axis the event
#: engine claims to replay bit-identically.
EQUIVALENCE_CASES = {
    "sync-ring": dict(topology="ring", n=16, k=8, config=SYNC),
    "async-grid": dict(topology="grid", n=16, k=8, config=ASYNC),
    "async-loss": dict(
        topology="complete", n=16, k=8, config=ASYNC.replace(loss_probability=0.25)
    ),
    "sync-churn-pause": dict(
        topology="ring", n=16, k=8, config=SYNC.replace(churn=((3, 2, 10), (11, 6, 14)))
    ),
    "async-churn-pause": dict(
        topology="complete",
        n=16,
        k=8,
        config=ASYNC.replace(churn=tuple((node, 2, 12) for node in range(4))),
    ),
    "sync-churn-reset": dict(
        topology="ring", n=12, k=6, config=SYNC.replace(churn=((4, 3, 9),), churn_reset=True)
    ),
    "async-churn-reset": dict(
        topology="ring", n=12, k=6, config=ASYNC.replace(churn=((4, 3, 9),), churn_reset=True)
    ),
    "async-two-speed": dict(
        topology="ring",
        n=16,
        k=8,
        config=ASYNC,
        activation={"kind": "two_speed", "ratio": 4.0, "fast_fraction": 0.5},
    ),
    "async-push": dict(
        topology="grid", n=16, k=8, config=ASYNC.replace(action=GossipAction.PUSH)
    ),
    "async-pull": dict(
        topology="grid", n=16, k=8, config=ASYNC.replace(action=GossipAction.PULL)
    ),
    "gf2bit-er-logn": dict(
        topology="erdos_renyi_logn",
        n=32,
        k=8,
        backend="gf2bit",
        config=ASYNC.replace(field_size=2),
    ),
    "gf2bit-churn-reset": dict(
        topology="ring",
        n=12,
        k=6,
        backend="gf2bit",
        config=ASYNC.replace(field_size=2, churn=((4, 3, 9),), churn_reset=True),
    ),
}

#: Registered scenarios the event engine can run (uniform protocol only).
EVENT_CAPABLE_SCENARIOS = (
    "uniform/line",
    "uniform/ring",
    "uniform/grid",
    "uniform/complete",
    "uniform/binary_tree",
    "uniform/barbell",
    "churn/ring-crash-restart",
    "churn/async-complete-blackout",
    "churn/ring-reset",
    "hetero/two-speed-ring",
    "hetero/degree-star",
    "hetero/churned-two-speed-complete",
    "robustness/lossy-grid",
)


def _spec(**kwargs) -> ScenarioSpec:
    return ScenarioSpec(name="event-test", description="event-test", **kwargs)


def _measure(spec: ScenarioSpec, engine: str, trials: int = 3, **kwargs):
    return list(
        spec.replace(engine=engine).materialize().measure(trials=trials, **kwargs)
    )


# ----------------------------------------------------------------------
# Equivalence matrix: event == scalar, field for field
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case", sorted(EQUIVALENCE_CASES), ids=str)
def test_event_engine_matches_scalar_bit_identically(case):
    spec = _spec(trials=3, seed=20260808, **EQUIVALENCE_CASES[case])
    assert _measure(spec, "scalar") == _measure(spec, "event")


def test_event_engine_matches_scalar_on_every_backend(compute_backend):
    """The ambient backend never changes the event engine's results."""
    spec = _spec(
        topology="grid", n=16, k=8, trials=2, seed=7, config=ASYNC.replace(field_size=2)
    )
    assert _measure(spec, "scalar") == _measure(spec, "event")


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    name=st.sampled_from(EVENT_CAPABLE_SCENARIOS),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_event_engine_stopping_times_match_on_registry_scenarios(name, seed):
    """Trial-for-trial RunResult equality on registered scenarios ⇒ the
    stopping-time distributions of the engine families coincide exactly."""
    spec = get_scenario(name).replace(seed=seed)
    assert _measure(spec, "scalar", trials=2) == _measure(spec, "event", trials=2)


def test_event_engine_direct_construction_matches_scalar():
    """Engine-level (not spec-level) equivalence, sharing one derived rng."""
    from repro.gossip import GossipEngine

    spec = _spec(topology="binary_tree", n=16, k=8, trials=1, seed=3, config=ASYNC)
    materialized = spec.materialize()
    results = []
    for engine_cls in (GossipEngine, EventGossipEngine):
        rng = derive_rng(3, "trial-0")
        process = materialized.build_process(rng)
        results.append(engine_cls(materialized.graph, process, spec.config, rng).run())
    assert results[0] == results[1]


def test_event_engine_timeout_matches_scalar():
    """Hitting max_rounds reports the same incomplete result as the scalar."""
    config = ASYNC.replace(max_rounds=3, allow_incomplete=True)
    spec = _spec(topology="ring", n=16, k=8, trials=2, seed=11, config=config)
    scalar, event = _measure(spec, "scalar"), _measure(spec, "event")
    assert scalar == event
    assert not scalar[0].completed


# ----------------------------------------------------------------------
# Typed refusals: no silent fallback anywhere
# ----------------------------------------------------------------------
def test_spec_rejects_unknown_engine():
    with pytest.raises(ConfigurationError, match="unknown engine"):
        _spec(topology="ring", n=8, k=4, engine="warp")


def test_spec_rejects_batch_engine_with_reset_churn():
    with pytest.raises(ConfigurationError, match="reset-mode churn"):
        _spec(
            topology="ring",
            n=12,
            k=6,
            engine="batch",
            config=SYNC.replace(churn=((4, 3, 9),), churn_reset=True),
        )


def test_spec_rejects_event_engine_for_tag():
    with pytest.raises(ConfigurationError, match="uniform algebraic gossip"):
        _spec(
            topology="barbell",
            n=16,
            protocol="tag",
            spanning_tree="brr",
            engine="event",
            config=SYNC,
        )


def test_event_engine_rejects_non_rank_only_process():
    """Direct construction with an unsupported protocol is a typed error."""
    spec = _spec(
        topology="barbell", n=16, protocol="tag", spanning_tree="brr", config=SYNC
    )
    materialized = spec.materialize()
    rng = derive_rng(0, "trial-0")
    process = materialized.build_process(rng)
    assert not event_supports_process(process)
    with pytest.raises(EngineError, match="event-driven"):
        EventGossipEngine(materialized.graph, process, spec.config, rng)


def test_event_supports_config_covers_every_axis():
    assert event_supports_config(SYNC.replace(churn=((1, 2, 3),), churn_reset=True))
    assert event_supports_config(ASYNC.replace(loss_probability=0.5))


def test_run_event_trials_checks_lengths():
    spec = _spec(topology="ring", n=8, k=4, trials=1, seed=5, config=SYNC)
    materialized = spec.materialize()
    rng = derive_rng(5, "trial-0")
    process = materialized.build_process(rng)
    with pytest.raises(SimulationError, match="generators"):
        run_event_trials(materialized.graph, [process], spec.config, [rng, rng])


# ----------------------------------------------------------------------
# Fingerprint and dispatch plumbing
# ----------------------------------------------------------------------
def test_engine_axis_never_enters_the_fingerprint():
    base = _spec(topology="grid", n=16, k=8, config=ASYNC)
    prints = {base.replace(engine=e).fingerprint() for e in ("", "scalar", "batch", "event")}
    assert len(prints) == 1


def test_run_single_dispatches_to_event_engine():
    spec = _spec(topology="grid", n=16, k=8, trials=1, seed=21, config=ASYNC)
    scalar = spec.replace(engine="scalar").materialize().run_single()
    event = spec.replace(engine="event").materialize().run_single()
    assert scalar == event


def test_parallel_chunked_dispatch_matches_inline():
    """Worker processes pick the event engine up from the pickled spec."""
    spec = _spec(topology="grid", n=16, k=8, trials=4, seed=13, config=ASYNC)
    inline = _measure(spec, "event", trials=4, jobs=1)
    chunked = _measure(spec, "event", trials=4, jobs=2)
    assert inline == chunked


def test_store_records_are_engine_invariant(tmp_path):
    """A store filled by the scalar engine fully serves an event-engine rerun."""
    from repro.store import ResultStore

    spec = _spec(topology="ring", n=16, k=8, trials=3, seed=17, config=ASYNC)
    store = ResultStore(tmp_path / "store")
    scalar = _measure(spec, "scalar", store=store)
    before = store.puts
    event = _measure(spec, "event", store=store)
    assert scalar == event
    assert store.puts == before  # full cache hit: nothing recomputed


# ----------------------------------------------------------------------
# Single-problem hot paths: conformance with the batched reference
# ----------------------------------------------------------------------
def _random_payload(field, rng, columns):
    return field.random_elements(rng, columns)


@pytest.mark.parametrize("columns,augmented", [(8, 0), (12, 4), (70, 0)])
def test_single_problem_fast_paths_match_bulk_eliminate(
    compute_backend, backend_field, columns, augmented
):
    """combine_one/eliminate_one hold state identical to eliminate()."""
    field = backend_field
    batch = 4
    fast = compute_backend.make_eliminator(
        field, batch, columns, augmented_columns=augmented
    )
    reference = BatchEliminator(field, batch, columns, augmented_columns=augmented)
    rng = np.random.default_rng(99)
    for step in range(120):
        index = int(rng.integers(0, batch))
        draw = np.random.default_rng(1000 + step)
        if rng.random() < 0.3 and reference.ranks[index] > 0:
            coefficients = field.random_elements(draw, int(reference.ranks[index]))
            payload = fast.combine_one(index, coefficients)
            dense = reference.combine(index, coefficients)
            helpful = fast.eliminate_one(index, payload)
            expected = bool(
                reference.eliminate(dense[np.newaxis, :], np.array([index]))[0]
            )
        else:
            row = _random_payload(field, draw, columns)
            helpful = fast.eliminate_one(index, _as_native(fast, row))
            expected = bool(
                reference.eliminate(row[np.newaxis, :], np.array([index]))[0]
            )
        assert helpful == expected
        if rng.random() < 0.08:
            fast.reset_problems(np.array([index]))
            reference.reset_problems(np.array([index]))
        assert np.array_equal(fast.ranks, reference.ranks)
        for problem in range(batch):
            assert np.array_equal(fast.basis(problem), reference.basis(problem))


def _as_native(eliminator, row):
    """A dense row in the payload form ``eliminate_one`` expects."""
    from repro.backends.gf2bit import PackedGf2Eliminator

    if isinstance(eliminator, PackedGf2Eliminator):
        packed = np.packbits(row.astype(np.uint8), bitorder="little")
        return int.from_bytes(packed.tobytes(), "little")
    return row


def test_reset_problems_restores_fresh_state(compute_backend, backend_field):
    """A reset problem is indistinguishable from a freshly constructed one."""
    field = backend_field
    eliminator = compute_backend.make_eliminator(field, 3, 8)
    fresh = compute_backend.make_eliminator(field, 3, 8)
    rng = np.random.default_rng(5)
    for _ in range(6):
        rows = field.random_elements(rng, (3, 8))
        eliminator.eliminate(rows)
    eliminator.reset_problems(np.array([0, 2]))
    replay_rng = np.random.default_rng(5)
    history = [field.random_elements(replay_rng, (3, 8)) for _ in range(6)]
    for rows in history:
        fresh.eliminate(rows[1:2], np.array([1]))
    assert eliminator.rank_of(0) == 0 and eliminator.rank_of(2) == 0
    assert eliminator.basis(0).shape[0] == 0
    assert eliminator.rank_of(1) == fresh.rank_of(1)
    assert np.array_equal(eliminator.basis(1), fresh.basis(1))
    # A wiped problem accepts the same rows a fresh eliminator would.
    probe = field.random_elements(np.random.default_rng(8), (1, 8))
    assert bool(eliminator.eliminate(probe, np.array([0]))[0])


def test_base_eliminator_default_refuses_reset():
    from repro.backends import EliminatorState
    from repro.errors import BackendError

    class Stub(EliminatorState):
        def eliminate(self, incoming, indices=None):  # pragma: no cover
            raise NotImplementedError

        def rank_of(self, index):  # pragma: no cover
            raise NotImplementedError

        def basis(self, index):  # pragma: no cover
            raise NotImplementedError

        def combine(self, index, coefficients):  # pragma: no cover
            raise NotImplementedError

    with pytest.raises(BackendError, match="does not support resetting"):
        Stub().reset_problems(np.array([0]))
