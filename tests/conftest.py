"""Shared fixtures for the test suite.

Everything is deliberately small (n ≤ 20, k ≤ 16) so the full suite runs in a
couple of minutes; the benchmarks are where larger sweeps live.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import all_backends, get_backend, use_backend
from repro.core import GossipAction, SimulationConfig, TimeModel
from repro.gf import GF
from repro.graphs import (
    barbell_graph,
    binary_tree_graph,
    grid_graph,
    line_graph,
    ring_graph,
)
from repro.rlnc import Generation


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(params=[2, 3, 16, 256], ids=lambda q: f"GF({q})")
def any_field(request):
    """A representative spread of supported fields (prime and extension)."""
    return GF(request.param)


@pytest.fixture(params=all_backends())
def compute_backend(request):
    """Every registered compute backend, installed as the ambient default.

    Equivalence tests that parametrise over this fixture run once per
    backend — decoders and batch engines built inside the test body resolve
    the ambient backend, so the same assertions exercise every
    implementation.  Tests whose field the backend rejects should clamp the
    field (``backend_field`` does this) rather than skip, so each backend
    still proves the full invariant set on a field it supports.
    """
    backend = get_backend(request.param)
    with use_backend(backend.name):
        yield backend


@pytest.fixture
def backend_field(compute_backend):
    """A field the active ``compute_backend`` supports: GF(16) when it can,
    else GF(2) (the one field every backend must support)."""
    preferred = GF(16)
    if compute_backend.supports_field(preferred):
        return preferred
    return GF(2)


@pytest.fixture
def gf16():
    return GF(16)


@pytest.fixture
def gf2():
    return GF(2)


@pytest.fixture
def small_line():
    """Path graph on 8 nodes (constant degree, large diameter)."""
    return line_graph(8)


@pytest.fixture
def small_ring():
    return ring_graph(8)


@pytest.fixture
def small_grid():
    """3x3 grid (9 nodes)."""
    return grid_graph(9)


@pytest.fixture
def small_tree():
    return binary_tree_graph(10)


@pytest.fixture
def small_barbell():
    """Two 5-cliques joined by an edge (10 nodes)."""
    return barbell_graph(10)


@pytest.fixture
def sync_config() -> SimulationConfig:
    return SimulationConfig(
        field_size=16,
        payload_length=2,
        time_model=TimeModel.SYNCHRONOUS,
        action=GossipAction.EXCHANGE,
        max_rounds=20_000,
    )


@pytest.fixture
def async_config() -> SimulationConfig:
    return SimulationConfig(
        field_size=16,
        payload_length=2,
        time_model=TimeModel.ASYNCHRONOUS,
        action=GossipAction.EXCHANGE,
        max_rounds=20_000,
    )


@pytest.fixture
def small_generation(gf16, rng) -> Generation:
    """Four messages of two GF(16) symbols each."""
    return Generation.random(gf16, k=4, payload_length=2, rng=rng)
