"""Batch-vs-scalar equivalence for the TAG and spanning-tree fast paths.

The contract under test (see ``repro/gossip/batch_tag.py``): for the same
per-trial generators, :class:`~repro.gossip.batch_tag.BatchTagEngine` and
:class:`~repro.gossip.batch_tag.BatchSpanningTreeEngine` are **bit-identical**
to :class:`~repro.gossip.engine.GossipEngine` driving the scalar protocol —
same stopping times, timeslots, message/helpful counts, per-node completion
rounds, tree shapes and metadata.  The cross product covers both time models,
all four spanning-tree protocols and both ``keep_phase1_after_tree``
settings; the large-size sweep is marked ``slow`` (run with ``--run-slow``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stopping_time import measure_protocol
from repro.core import SimulationConfig, TimeModel
from repro.errors import SimulationError
from repro.experiments import all_to_all_placement, default_config, tag_case
from repro.experiments.parallel import measure_protocol_batched
from repro.gf import GF
from repro.gossip import (
    BatchTagEngine,
    run_rank_only_batch,
    run_spanning_tree_batch,
    run_tag_batch,
)
from repro.gossip.communication import RoundRobinSelector
from repro.graphs import barbell_graph, grid_graph
from repro.protocols import (
    AlgebraicGossip,
    BfsOracleTree,
    ISSpanningTree,
    RoundRobinBroadcastTree,
    TagProtocol,
    UniformBroadcastTree,
)
from repro.rlnc import Generation

SPANNING_TREES = ["brr", "uniform_broadcast", "bfs_oracle", "is"]


def _signature(results):
    """Everything a RunResult observes; any divergence fails the test."""
    return [
        (r.rounds, r.timeslots, r.completed, r.messages_sent, r.helpful_messages,
         dict(r.completion_rounds), dict(r.metadata))
        for r in results
    ]


def _assert_batched_equals_sequential(graph, factory, config, *, trials, seed):
    sequential = measure_protocol(graph, factory, config, trials=trials, seed=seed)
    batched = measure_protocol_batched(graph, factory, config, trials=trials, seed=seed)
    assert _signature(batched) == _signature(sequential)


def _tag_factory(config, *, keep_phase1_after_tree=True, tree=RoundRobinBroadcastTree):
    """A TAG factory with explicit knobs (closures are fine in-process)."""

    def factory(graph, rng):
        generation = Generation.random(
            GF(config.field_size), graph.number_of_nodes(), 2, rng
        )
        return TagProtocol(
            graph, generation, all_to_all_placement(graph), config, rng,
            lambda g, r: tree(g, sorted(g.nodes())[0], r),
            keep_phase1_after_tree=keep_phase1_after_tree,
        )

    return factory


class TestTagBatchedEqualsSequential:
    # ``compute_backend`` parametrises the equivalence over every registered
    # backend (the fixture installs it as the ambient default);
    # ``backend_field`` clamps the field order to one the backend supports,
    # so e.g. gf2bit proves the same bit-identity over GF(2).
    @pytest.mark.parametrize("time_model", list(TimeModel), ids=lambda m: m.value)
    @pytest.mark.parametrize("spanning_tree", SPANNING_TREES)
    def test_bit_identical_results(
        self, spanning_tree, time_model, compute_backend, backend_field
    ):
        case = tag_case(
            "barbell", 8, 4, spanning_tree=spanning_tree,
            config=default_config(
                time_model=time_model, field_size=backend_field.order
            ),
        )
        _assert_batched_equals_sequential(
            case.graph, case.protocol_factory, case.config, trials=3, seed=99
        )

    @pytest.mark.parametrize("time_model", list(TimeModel), ids=lambda m: m.value)
    def test_keep_phase1_off_matches(self, time_model, compute_backend, backend_field):
        config = default_config(
            time_model=time_model, field_size=backend_field.order
        )
        graph = barbell_graph(8)
        factory = _tag_factory(config, keep_phase1_after_tree=False)
        _assert_batched_equals_sequential(graph, factory, config, trials=3, seed=7)

    def test_bit_identical_under_packet_loss(self):
        case = tag_case("grid", 9, 9, spanning_tree="uniform_broadcast")
        config = case.config.replace(loss_probability=0.2)
        _assert_batched_equals_sequential(
            case.graph, case.protocol_factory, config, trials=3, seed=5
        )

    @pytest.mark.slow
    @pytest.mark.parametrize("time_model", list(TimeModel), ids=lambda m: m.value)
    @pytest.mark.parametrize("spanning_tree", SPANNING_TREES)
    @pytest.mark.parametrize("keep_phase1", [True, False])
    def test_large_cross_product(self, spanning_tree, time_model, keep_phase1):
        config = default_config(time_model=time_model)
        graph = grid_graph(16)
        trees = {
            "brr": RoundRobinBroadcastTree,
            "uniform_broadcast": UniformBroadcastTree,
            "bfs_oracle": BfsOracleTree,
            "is": None,
        }
        if spanning_tree == "is":
            def factory(g, rng):
                generation = Generation.random(GF(16), g.number_of_nodes(), 2, rng)
                return TagProtocol(
                    g, generation, all_to_all_placement(g), config, rng,
                    lambda gg, r: ISSpanningTree(gg, r),
                    keep_phase1_after_tree=keep_phase1,
                )
        else:
            factory = _tag_factory(
                config, keep_phase1_after_tree=keep_phase1, tree=trees[spanning_tree]
            )
        _assert_batched_equals_sequential(graph, factory, config, trials=4, seed=17)


class TestSpanningTreeBatchedEqualsSequential:
    @pytest.mark.parametrize("time_model", list(TimeModel), ids=lambda m: m.value)
    @pytest.mark.parametrize(
        "factory",
        [
            lambda g, rng: RoundRobinBroadcastTree(g, 0, rng),
            lambda g, rng: UniformBroadcastTree(g, 0, rng),
            lambda g, rng: ISSpanningTree(g, rng),
            lambda g, rng: BfsOracleTree(g, 0, rng),
        ],
        ids=["brr", "uniform_broadcast", "is", "bfs_oracle"],
    )
    def test_standalone_protocols_match(self, factory, time_model, compute_backend):
        # Tree protocols carry no decoder state; running the matrix under
        # every backend proves the tree path never depends on one.
        graph = barbell_graph(10)
        config = SimulationConfig(time_model=time_model, max_rounds=5_000)
        _assert_batched_equals_sequential(graph, factory, config, trials=3, seed=11)

    def test_restored_tree_matches_sequential_tree(self):
        """After a batch run the scalar protocol objects hold the final tree."""
        graph = barbell_graph(10)
        config = SimulationConfig(max_rounds=5_000)
        rngs = [np.random.default_rng(seed) for seed in range(3)]
        protocols = [RoundRobinBroadcastTree(graph, 0, rng) for rng in rngs]
        run_spanning_tree_batch(graph, protocols, config, rngs)
        scalar_rngs = [np.random.default_rng(seed) for seed in range(3)]
        for protocol, rng in zip(protocols, scalar_rngs):
            reference = RoundRobinBroadcastTree(graph, 0, rng)
            from repro.gossip import GossipEngine

            GossipEngine(graph, reference, config, rng).run()
            assert protocol.current_tree().parent == reference.current_tree().parent


class TestBatchStrategySelection:
    def test_tag_declares_the_tag_runner(self, rng):
        case = tag_case("barbell", 8, 4, spanning_tree="brr")
        process = case.protocol_factory(case.graph, rng)
        assert process.batch_strategy() is run_tag_batch

    def test_tag_subclass_falls_back(self, rng):
        config = default_config()
        graph = barbell_graph(8)

        class TracingTag(TagProtocol):
            pass

        generation = Generation.random(GF(16), 8, 2, rng)
        process = TracingTag(
            graph, generation, all_to_all_placement(graph), config, rng,
            lambda g, r: RoundRobinBroadcastTree(g, 0, r),
        )
        assert process.batch_strategy() is None

    def test_tag_with_unsupported_tree_falls_back(self, rng):
        config = default_config()
        graph = barbell_graph(8)

        class CustomTree(UniformBroadcastTree):
            pass

        generation = Generation.random(GF(16), 8, 2, rng)
        process = TagProtocol(
            graph, generation, all_to_all_placement(graph), config, rng,
            lambda g, r: CustomTree(g, 0, r),
        )
        assert process.batch_strategy() is None

    def test_uniform_ag_declares_the_rank_only_runner(self, rng, sync_config):
        graph = barbell_graph(8)
        generation = Generation.random(GF(16), 8, 2, rng)
        process = AlgebraicGossip(
            graph, generation, all_to_all_placement(graph), sync_config, rng
        )
        assert process.batch_strategy() is run_rank_only_batch

    def test_round_robin_ag_falls_back(self, rng, sync_config):
        graph = barbell_graph(8)
        generation = Generation.random(GF(16), 8, 2, rng)
        process = AlgebraicGossip(
            graph, generation, all_to_all_placement(graph), sync_config, rng,
            selector=RoundRobinSelector(graph, rng),
        )
        assert process.batch_strategy() is None

    def test_standalone_tree_declares_the_tree_runner(self, rng):
        graph = barbell_graph(8)
        protocol = RoundRobinBroadcastTree(graph, 0, rng)
        assert protocol.batch_strategy() is run_spanning_tree_batch


class TestBatchTagEngineValidation:
    def test_rejects_mixed_keep_phase1(self, sync_config):
        graph = barbell_graph(8)
        rngs = [np.random.default_rng(seed) for seed in range(2)]
        processes = []
        for keep, rng in zip([True, False], rngs):
            generation = Generation.random(GF(16), 8, 2, rng)
            processes.append(
                TagProtocol(
                    graph, generation, all_to_all_placement(graph), sync_config, rng,
                    lambda g, r: RoundRobinBroadcastTree(g, 0, r),
                    keep_phase1_after_tree=keep,
                )
            )
        with pytest.raises(SimulationError):
            BatchTagEngine(graph, processes, sync_config, rngs)

    def test_rejects_non_tag_processes(self, rng, sync_config):
        graph = barbell_graph(8)
        generation = Generation.random(GF(16), 8, 2, rng)
        process = AlgebraicGossip(
            graph, generation, all_to_all_placement(graph), sync_config, rng
        )
        with pytest.raises(SimulationError):
            BatchTagEngine(graph, [process], sync_config, [rng])
