"""Tests for the additional topology families (lollipop, caterpillar, small world,
star of cliques) and their use in gossip runs."""

from __future__ import annotations

import networkx as nx
import pytest

from repro import quick_run
from repro.errors import TopologyError
from repro.graphs import (
    caterpillar_graph,
    diameter,
    graph_conductance,
    lollipop_graph,
    max_degree,
    small_world_graph,
    star_of_cliques_graph,
    weak_conductance,
)


class TestLollipop:
    def test_structure(self):
        graph = lollipop_graph(16)
        assert graph.number_of_nodes() == 16
        assert nx.is_connected(graph)
        # Clique of 8 plus a path of 8: diameter is at least the path length.
        assert diameter(graph) >= 8
        assert max_degree(graph) >= 7

    def test_low_conductance(self):
        assert graph_conductance(lollipop_graph(14)) < 0.1

    def test_too_small(self):
        with pytest.raises(TopologyError):
            lollipop_graph(4)


class TestCaterpillar:
    def test_constant_degree_and_exact_size(self):
        graph = caterpillar_graph(20, legs_per_spine=2)
        assert graph.number_of_nodes() == 20
        assert nx.is_connected(graph)
        assert max_degree(graph) <= 6

    def test_invalid_legs(self):
        with pytest.raises(TopologyError):
            caterpillar_graph(10, legs_per_spine=0)


class TestSmallWorld:
    def test_connected_and_seeded(self):
        a = small_world_graph(24, seed=5)
        b = small_world_graph(24, seed=5)
        assert nx.is_connected(a)
        assert nx.utils.graphs_equal(a, b)
        # Small world: diameter much smaller than n.
        assert diameter(a) <= 8

    def test_parameter_validation(self):
        with pytest.raises(TopologyError):
            small_world_graph(20, neighbours=1)
        with pytest.raises(TopologyError):
            small_world_graph(20, rewire_probability=1.5)


class TestStarOfCliques:
    def test_structure(self):
        graph = star_of_cliques_graph(17, cliques=4)
        assert graph.number_of_nodes() == 17
        assert nx.is_connected(graph)
        # The hub connects the cliques; removing it disconnects the graph.
        pruned = graph.copy()
        pruned.remove_node(0)
        assert not nx.is_connected(pruned)

    def test_weak_conductance_larger_than_conductance(self):
        graph = star_of_cliques_graph(17, cliques=4)
        assert weak_conductance(graph, 4) > 3 * graph_conductance(graph)

    def test_invalid_parameters(self):
        with pytest.raises(TopologyError):
            star_of_cliques_graph(17, cliques=1)
        with pytest.raises(TopologyError):
            star_of_cliques_graph(7, cliques=4)


class TestGossipOnNewTopologies:
    @pytest.mark.parametrize("topology", ["lollipop", "caterpillar", "small_world",
                                          "star_of_cliques"])
    def test_uniform_ag_completes(self, topology):
        result = quick_run(topology, n=14, k=7, seed=9)
        assert result.completed

    def test_tag_on_star_of_cliques(self):
        result = quick_run("star_of_cliques", n=13, protocol="tag", seed=10, cliques=3)
        assert result.completed
