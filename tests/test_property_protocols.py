"""Property-based tests over whole protocol executions.

Invariants checked across random topologies, field sizes, time models and
message counts:

* every completed run decodes the ground-truth generation exactly,
* node ranks never exceed ``k`` and completion implies rank ``k`` everywhere,
* the number of helpful messages delivered is at least ``n·k`` minus the
  initially seeded knowledge (every rank increase needs one helpful packet),
* spanning-tree protocols always end with a valid tree of the whole graph.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GossipAction, SimulationConfig, TimeModel
from repro.gf import GF
from repro.gossip import GossipEngine
from repro.graphs import build_topology
from repro.protocols import AlgebraicGossip, RoundRobinBroadcastTree, TagProtocol, UniformBroadcastTree
from repro.rlnc import Generation
from repro.experiments import spread_placement

TOPOLOGIES = ["line", "ring", "complete", "binary_tree", "barbell", "grid"]


@st.composite
def gossip_scenario(draw):
    topology = draw(st.sampled_from(TOPOLOGIES))
    n = draw(st.integers(min_value=6, max_value=12))
    graph = build_topology(topology, n)
    actual_n = graph.number_of_nodes()
    k = draw(st.integers(min_value=1, max_value=actual_n))
    q = draw(st.sampled_from([2, 16]))
    time_model = draw(st.sampled_from([TimeModel.SYNCHRONOUS, TimeModel.ASYNCHRONOUS]))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    config = SimulationConfig(
        field_size=q,
        payload_length=1,
        time_model=time_model,
        action=GossipAction.EXCHANGE,
        max_rounds=100_000,
    )
    return graph, k, config, seed


@given(gossip_scenario())
@settings(max_examples=15, deadline=None)
def test_uniform_ag_completes_and_decodes_everywhere(scenario):
    graph, k, config, seed = scenario
    rng = np.random.default_rng(seed)
    generation = Generation.random(GF(config.field_size), k, config.payload_length, rng)
    placement = spread_placement(graph, k)
    process = AlgebraicGossip(graph, generation, placement, config, rng)
    result = GossipEngine(graph, process, config, rng).run()
    assert result.completed
    assert process.all_nodes_decoded_correctly()
    assert all(process.rank_of(node) == k for node in graph.nodes())
    # Every node's rank went from its seed count to k via helpful deliveries.
    seeded = sum(len(indices) for indices in placement.values())
    assert result.helpful_messages >= graph.number_of_nodes() * k - seeded
    assert result.helpful_messages <= result.messages_sent


@given(gossip_scenario())
@settings(max_examples=10, deadline=None)
def test_tag_completes_and_tree_is_valid(scenario):
    graph, k, config, seed = scenario
    rng = np.random.default_rng(seed)
    generation = Generation.random(GF(config.field_size), k, config.payload_length, rng)
    placement = spread_placement(graph, k)
    process = TagProtocol(
        graph, generation, placement, config, rng,
        lambda g, r: RoundRobinBroadcastTree(g, sorted(g.nodes())[0], r),
    )
    result = GossipEngine(graph, process, config, rng).run()
    assert result.completed
    assert process.all_nodes_decoded_correctly()
    tree = process.stp.current_tree()
    assert tree is not None
    assert tree.spans(graph)


@given(
    st.sampled_from(TOPOLOGIES),
    st.integers(min_value=6, max_value=14),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.sampled_from([TimeModel.SYNCHRONOUS, TimeModel.ASYNCHRONOUS]),
)
@settings(max_examples=15, deadline=None)
def test_broadcast_trees_always_span(topology, n, seed, time_model):
    graph = build_topology(topology, n)
    config = SimulationConfig(time_model=time_model, max_rounds=100_000)
    rng = np.random.default_rng(seed)
    protocol = UniformBroadcastTree(graph, root=0, rng=rng)
    result = GossipEngine(graph, protocol, config, rng).run()
    assert result.completed
    tree = protocol.current_tree()
    assert tree.spans(graph)
    assert tree.root == 0
    # Parents were assigned by the first informer, so every parent was informed
    # before its child: depths along the tree are consistent (no cycles).
    assert tree.depth <= graph.number_of_nodes() - 1
