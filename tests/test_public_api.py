"""Tests for the top-level public API (`repro.quick_run` and re-exports)."""

from __future__ import annotations

import pytest

import repro
from repro import EventTrace, SimulationError, TimeModel, quick_run


class TestQuickRun:
    def test_default_uniform_run(self):
        result = quick_run("ring", n=10, k=5, seed=1)
        assert result.completed
        assert result.k == 5
        assert result.n == 10

    def test_tag_and_tag_is(self):
        for protocol in ("tag", "tag-is"):
            result = quick_run("barbell", n=10, protocol=protocol, seed=2)
            assert result.completed
            assert result.metadata["protocol"] == "TAG"

    def test_asynchronous_mode(self):
        result = quick_run("line", n=8, k=4, time_model=TimeModel.ASYNCHRONOUS, seed=3)
        assert result.completed
        assert result.timeslots >= result.rounds

    def test_k_defaults_to_n_and_is_clamped(self):
        result = quick_run("ring", n=8, seed=4)
        assert result.k == 8
        clamped = quick_run("ring", n=8, k=100, seed=4)
        assert clamped.k == 8

    def test_trace_capture(self):
        trace = EventTrace()
        result = quick_run("ring", n=8, k=4, seed=5, trace=trace)
        assert len(trace) == result.messages_sent
        assert len(trace.helpful_events()) == result.helpful_messages

    def test_topology_kwargs_forwarded(self):
        result = quick_run("clique_chain", n=12, k=6, seed=6, cliques=3)
        assert result.completed

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SimulationError):
            quick_run("ring", n=8, protocol="telepathy")

    def test_version_and_exports(self):
        assert repro.__version__
        for name in ("GF", "Generation", "RlncDecoder", "AlgebraicGossip", "TagProtocol"):
            assert hasattr(repro, name)
