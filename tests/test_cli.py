"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.topology == "ring"
        assert args.protocol == "uniform"
        assert args.k is None

    def test_invalid_topology_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--topology", "mystery"])

    def test_experiment_requires_known_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "E99-unknown"])


class TestRunCommand:
    def test_uniform_run_prints_summary(self, capsys):
        exit_code = main(["run", "--topology", "ring", "--n", "8", "--k", "4", "--seed", "1"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "uniform on ring" in captured.out
        assert "completed after" in captured.out

    def test_tag_run(self, capsys):
        exit_code = main(["run", "--topology", "barbell", "--n", "10",
                          "--protocol", "tag", "--seed", "2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "tag on barbell" in captured.out
        assert "spanning_tree_protocol" in captured.out

    def test_asynchronous_run(self, capsys):
        exit_code = main(["run", "--topology", "line", "--n", "8", "--k", "4",
                          "--time-model", "asynchronous", "--seed", "3"])
        assert exit_code == 0
        assert "completed after" in capsys.readouterr().out

    def test_bad_field_size_is_reported_as_error(self, capsys):
        exit_code = main(["run", "--field-size", "6"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err


class TestExperimentCommand:
    def test_runs_registered_experiment(self, capsys):
        exit_code = main(["experiment", "E2-constant-degree", "--trials", "1"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "E2-constant-degree" in captured.out
        assert "mean_rounds" in captured.out


class TestTablesCommand:
    def test_prints_both_tables(self, capsys):
        exit_code = main(["tables", "--n", "16", "--k", "8"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Table 1 (analytic)" in captured.out
        assert "Table 2" in captured.out
        assert "improvement_factor" in captured.out


class TestStoreIntegration:
    """The --store / --no-store / --fresh flags and the `store` subcommand."""

    def _run_args(self, store_path: str, trials: int = 4) -> list[str]:
        return [
            "run", "--topology", "ring", "--n", "8", "--k", "4",
            "--trials", str(trials), "--seed", "1", "--store", store_path,
        ]

    def test_run_then_cached_rerun(self, tmp_path, capsys):
        store_path = str(tmp_path / "store")
        assert main(self._run_args(store_path)) == 0
        cold = capsys.readouterr().out
        assert "4 newly computed" in cold
        assert main(self._run_args(store_path)) == 0
        warm = capsys.readouterr().out
        assert "4 trial(s) read from cache" in warm
        assert "0 newly computed" in warm
        # Identical statistics line either way.
        assert cold.splitlines()[0] == warm.splitlines()[0]

    def test_single_run_reads_through_the_store(self, tmp_path, capsys):
        store_path = str(tmp_path / "store")
        assert main(self._run_args(store_path, trials=1)) == 0
        assert "1 newly computed" in capsys.readouterr().out
        assert main(self._run_args(store_path, trials=1)) == 0
        out = capsys.readouterr().out
        assert "1 trial(s) read from cache" in out

    def test_fresh_recomputes_but_appends_nothing(self, tmp_path, capsys):
        store_path = str(tmp_path / "store")
        assert main(self._run_args(store_path)) == 0
        capsys.readouterr()
        assert main(self._run_args(store_path) + ["--fresh"]) == 0
        out = capsys.readouterr().out
        assert "0 trial(s) read from cache" in out
        assert "0 newly computed" in out

    def test_env_store_and_no_store(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
        args = ["run", "--topology", "ring", "--n", "8", "--k", "4",
                "--trials", "2", "--seed", "1"]
        assert main(args) == 0
        assert "newly computed" in capsys.readouterr().out
        assert main(args + ["--no-store"]) == 0
        assert "newly computed" not in capsys.readouterr().out

    def test_scenario_run_with_store(self, tmp_path, capsys):
        store_path = str(tmp_path / "store")
        args = ["scenario", "run", "uniform/ring", "--trials", "3",
                "--store", store_path]
        assert main(args) == 0
        assert "3 newly computed" in capsys.readouterr().out
        assert main(args) == 0
        assert "3 trial(s) read from cache" in capsys.readouterr().out

    def test_experiment_with_store(self, tmp_path, capsys):
        store_path = str(tmp_path / "store")
        args = ["experiment", "E2-constant-degree", "--trials", "1",
                "--store", store_path]
        assert main(args) == 0
        assert "newly computed" in capsys.readouterr().out
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "0 newly computed" in out


class TestStoreCommands:
    def _populate(self, store_path: str, capsys) -> str:
        assert main(["run", "--topology", "ring", "--n", "8", "--k", "4",
                     "--trials", "3", "--seed", "1", "--store", store_path]) == 0
        capsys.readouterr()
        from repro.store import ResultStore

        return ResultStore(store_path).fingerprints()[0]

    def test_ls_and_show(self, tmp_path, capsys):
        store_path = str(tmp_path / "store")
        fingerprint = self._populate(store_path, capsys)
        assert main(["store", "ls", "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert fingerprint[:12] in out and "ring" in out
        assert main(["store", "show", fingerprint[:8], "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert fingerprint in out
        assert "3 trial(s)" in out

    def test_export_diff_and_gc(self, tmp_path, capsys):
        store_path = str(tmp_path / "store")
        self._populate(store_path, capsys)
        export_path = str(tmp_path / "snapshot.jsonl")
        assert main(["store", "export", export_path, "--store", store_path]) == 0
        assert "exported 3 trial record(s)" in capsys.readouterr().out
        assert main(["store", "diff", store_path, export_path]) == 0
        out = capsys.readouterr().out
        assert "3 shared record(s) identical, 0 differing" in out
        assert main(["store", "gc", "--store", store_path]) == 0
        assert "kept 1 shard(s)" in capsys.readouterr().out

    def test_missing_store_is_a_clear_error(self, tmp_path, capsys):
        assert main(["store", "ls", "--store", str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err
