"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.topology == "ring"
        assert args.protocol == "uniform"
        assert args.k is None

    def test_invalid_topology_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--topology", "mystery"])

    def test_experiment_requires_known_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "E99-unknown"])


class TestRunCommand:
    def test_uniform_run_prints_summary(self, capsys):
        exit_code = main(["run", "--topology", "ring", "--n", "8", "--k", "4", "--seed", "1"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "uniform on ring" in captured.out
        assert "completed after" in captured.out

    def test_tag_run(self, capsys):
        exit_code = main(["run", "--topology", "barbell", "--n", "10",
                          "--protocol", "tag", "--seed", "2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "tag on barbell" in captured.out
        assert "spanning_tree_protocol" in captured.out

    def test_asynchronous_run(self, capsys):
        exit_code = main(["run", "--topology", "line", "--n", "8", "--k", "4",
                          "--time-model", "asynchronous", "--seed", "3"])
        assert exit_code == 0
        assert "completed after" in capsys.readouterr().out

    def test_bad_field_size_is_reported_as_error(self, capsys):
        exit_code = main(["run", "--field-size", "6"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err


class TestExperimentCommand:
    def test_runs_registered_experiment(self, capsys):
        exit_code = main(["experiment", "E2-constant-degree", "--trials", "1"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "E2-constant-degree" in captured.out
        assert "mean_rounds" in captured.out


class TestTablesCommand:
    def test_prints_both_tables(self, capsys):
        exit_code = main(["tables", "--n", "16", "--k", "8"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Table 1 (analytic)" in captured.out
        assert "Table 2" in captured.out
        assert "improvement_factor" in captured.out
