"""Tests for the experiments layer: workloads, named experiments and reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AnalysisError, SimulationError
from repro.experiments import (
    EXPERIMENTS,
    Experiment,
    adversarial_far_placement,
    all_to_all_placement,
    default_config,
    format_comparison,
    format_experiment_report,
    format_markdown_table,
    random_placement,
    register_experiment,
    run_experiment,
    single_source_placement,
    spread_placement,
    tag_case,
    uniform_ag_case,
    validate_placement,
)
from repro.graphs import line_graph, ring_graph


class TestWorkloadsShimDeprecation:
    def test_experiments_package_does_not_import_the_shim(self):
        # The placements re-exported by repro.experiments come straight from
        # repro.scenarios.placements; importing the package must not pull in
        # (and hence not warn about) the deprecated workloads module.
        import sys

        import repro.experiments  # noqa: F401 - already imported at module scope

        assert "repro.experiments.workloads" not in sys.modules

    def test_shim_import_warns_and_reexports(self):
        import importlib
        import sys

        sys.modules.pop("repro.experiments.workloads", None)
        with pytest.warns(DeprecationWarning, match="repro.scenarios.placements"):
            shim = importlib.import_module("repro.experiments.workloads")
        assert shim.all_to_all_placement is all_to_all_placement
        sys.modules.pop("repro.experiments.workloads", None)


class TestWorkloads:
    def test_all_to_all(self):
        graph = ring_graph(6)
        placement = all_to_all_placement(graph)
        assert sorted(placement) == list(range(6))
        assert sorted(i for msgs in placement.values() for i in msgs) == list(range(6))
        validate_placement(graph, 6, placement)

    def test_spread_uses_distinct_nodes(self):
        graph = line_graph(10)
        placement = spread_placement(graph, 4)
        assert len(placement) == 4
        validate_placement(graph, 4, placement)
        with pytest.raises(SimulationError):
            spread_placement(graph, 11)

    def test_single_source(self):
        graph = line_graph(8)
        placement = single_source_placement(graph, 5)
        assert placement == {0: [0, 1, 2, 3, 4]}
        other = single_source_placement(graph, 2, source=3)
        assert list(other) == [3]
        with pytest.raises(SimulationError):
            single_source_placement(graph, 2, source=55)

    def test_random_placement_covers_all_messages(self, rng):
        graph = ring_graph(6)
        placement = random_placement(graph, 10, rng)
        validate_placement(graph, 10, placement)

    def test_adversarial_far_placement(self):
        graph = line_graph(10)
        placement = adversarial_far_placement(graph, 3, target=0)
        # The three messages go to the three nodes farthest from node 0.
        assert set(placement) == {9, 8, 7}
        with pytest.raises(SimulationError):
            adversarial_far_placement(graph, 3, target=99)

    def test_validate_placement_detects_problems(self):
        graph = ring_graph(4)
        with pytest.raises(SimulationError):
            validate_placement(graph, 2, {0: [0]})
        with pytest.raises(SimulationError):
            validate_placement(graph, 2, {9: [0, 1]})
        with pytest.raises(SimulationError):
            validate_placement(graph, 2, {0: [0, 7]})


class TestCaseBuilders:
    def test_uniform_ag_case_has_bounds(self):
        case = uniform_ag_case("ring", 8, 4)
        assert case.graph.number_of_nodes() == 8
        assert "theorem1" in case.bounds
        assert "theorem3" in case.bounds  # ring is constant degree
        process = case.protocol_factory(case.graph, np.random.default_rng(0))
        assert process.generation.k == 4

    def test_dense_graph_case_has_no_theorem3_bound(self):
        case = uniform_ag_case("complete", 16, 4)
        assert "theorem3" not in case.bounds

    def test_tag_case_builders(self):
        for stp in ("brr", "uniform_broadcast", "bfs_oracle", "is"):
            case = tag_case("barbell", 8, 8, spanning_tree=stp)
            process = case.protocol_factory(case.graph, np.random.default_rng(0))
            assert process.metadata()["protocol"] == "TAG"

    def test_tag_case_unknown_protocol(self):
        with pytest.raises(AnalysisError):
            tag_case("barbell", 8, 8, spanning_tree="mystery")

    def test_default_config(self):
        config = default_config()
        assert config.is_synchronous
        assert config.field_size == 16


class TestExperimentRegistry:
    def test_builtin_experiments_registered(self):
        assert "E1-uniform-ag" in EXPERIMENTS
        assert "E4-tag-omega-n" in EXPERIMENTS
        assert "E8-barbell" in EXPERIMENTS

    def test_unknown_experiment(self):
        with pytest.raises(AnalysisError):
            run_experiment("does-not-exist")

    def test_run_small_experiment(self):
        result = run_experiment("E2-constant-degree", trials=1, seed=0)
        assert len(result.points) == 4
        assert result.rows[0]["k"] == 2
        assert all(row["p95_rounds"] > 0 for row in result.rows)

    def test_register_custom_experiment(self):
        experiment = Experiment(
            experiment_id="custom-test",
            description="tiny",
            build_cases=lambda: [uniform_ag_case("ring", 6, 3)],
            bound_names=("theorem1",),
            trials=1,
        )
        register_experiment(experiment)
        try:
            result = run_experiment("custom-test")
            assert len(result.points) == 1
            assert "ratio(theorem1)" in result.rows[0]
        finally:
            EXPERIMENTS.pop("custom-test", None)


class TestReporting:
    def test_markdown_table(self):
        rows = [{"x": 1, "y": 2}, {"x": 3, "y": 4}]
        text = format_markdown_table(rows)
        assert text.splitlines()[0] == "| x | y |"
        assert "| 3 | 4 |" in text
        with pytest.raises(AnalysisError):
            format_markdown_table([])

    def test_experiment_report_text_and_markdown(self):
        rows = [{"x": 1}]
        text = format_experiment_report("Title", rows, notes=["note one"])
        assert "Title" in text and "note one" in text
        markdown = format_experiment_report("Title", rows, notes=["note"], markdown=True)
        assert markdown.startswith("### Title")

    def test_comparison_line(self):
        line = format_comparison("TAG", 30.0, "Uniform AG", 90.0)
        assert "3.0x faster" in line
        with pytest.raises(AnalysisError):
            format_comparison("a", 0.0, "b", 1.0)
