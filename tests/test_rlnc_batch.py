"""Tests for the batched rank-only decoding stack.

The load-bearing property: a :class:`~repro.rlnc.batch.BatchDecoder` fed the
same coefficient vectors as a grid of scalar
:class:`~repro.rlnc.decoder.RlncDecoder` objects must agree with them packet
for packet — same helpfulness flags, same ranks, same stored RREF basis, and
(given the same coefficient draws) the same encoded packets.  That is what
makes the batch simulation fast path bit-identical to the sequential engine.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import get_backend
from repro.errors import DecodingError, FieldError
from repro.gf import GF, BatchEliminator, rank as matrix_rank
from repro.rlnc import BatchDecoder, RlncDecoder
from repro.rlnc.packet import CodedPacket


def _random_trace(field, k, problems, packets, rng):
    """Random coefficient vectors with an independent schedule per problem."""
    return [
        (int(rng.integers(0, problems)),
         field.random_elements(rng, k))
        for _ in range(packets)
    ]


class TestBatchDecoderMatchesScalar:
    @settings(max_examples=30, deadline=None)
    @given(
        order=st.sampled_from([2, 3, 16, 256]),
        k=st.integers(min_value=1, max_value=6),
        problems=st.integers(min_value=1, max_value=4),
        packets=st.integers(min_value=0, max_value=40),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_ranks_and_helpfulness_match_scalar_decoder(
        self, order, k, problems, packets, seed
    ):
        field = GF(order)
        rng = np.random.default_rng(seed)
        batch = BatchDecoder(field, k, problems)
        scalars = [RlncDecoder(field, k, payload_length=1) for _ in range(problems)]
        for problem, row in _random_trace(field, k, problems, packets, rng):
            packet = CodedPacket.from_arrays(row, field.zeros(1))
            expected = scalars[problem].receive(packet)
            got = bool(batch.receive(row[np.newaxis, :], np.array([problem]))[0])
            assert got == expected
        for problem, scalar in enumerate(scalars):
            assert batch.rank_of(problem) == scalar.rank
            assert np.array_equal(
                batch.coefficient_matrix(problem), scalar.coefficient_matrix()
            )
            assert batch.packets_received(problem) == scalar.packets_received
            assert batch.helpful_received(problem) == scalar.helpful_received

    @settings(max_examples=20, deadline=None)
    @given(
        order=st.sampled_from([2, 16]),
        k=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_encode_matches_scalar_encoder_coefficients(self, order, k, seed):
        field = GF(order)
        rng = np.random.default_rng(seed)
        batch = BatchDecoder(field, k, 1)
        scalar = RlncDecoder(field, k, payload_length=1)
        for _ in range(3 * k):
            row = field.random_elements(rng, k)
            scalar.receive(CodedPacket.from_arrays(row, field.zeros(1)))
            batch.receive(row[np.newaxis, :], np.array([0]))
        if scalar.rank == 0:
            return
        coefficients = field.random_elements(rng, scalar.rank)
        expected = field.dot(coefficients, scalar.coefficient_matrix())
        assert np.array_equal(batch.encode(0, coefficients), expected)

    def test_vectorised_sweep_equals_one_by_one(self, gf16):
        rng = np.random.default_rng(5)
        k, problems = 4, 8
        together = BatchDecoder(gf16, k, problems)
        one_by_one = BatchDecoder(gf16, k, problems)
        for _ in range(6):
            rows = gf16.random_elements(rng, (problems, k))
            mask = together.receive(rows)
            for problem in range(problems):
                single = one_by_one.receive(
                    rows[problem][np.newaxis, :], np.array([problem])
                )
                assert bool(single[0]) == bool(mask[problem])
        assert np.array_equal(together.ranks, one_by_one.ranks)


class TestBatchDecoderMatchesScalarAcrossBackends:
    """The scalar/batch agreement of the class above, once per backend.

    ``compute_backend`` installs each registered backend as the ambient
    default, so both decoders below are built on it; ``backend_field``
    clamps the field to one the backend supports.  The health check is
    suppressed because the fixtures are deterministic per parametrisation —
    hypothesis re-drawing examples against the same fixture value is exactly
    what we want here.
    """

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        k=st.integers(min_value=1, max_value=6),
        problems=st.integers(min_value=1, max_value=4),
        packets=st.integers(min_value=0, max_value=30),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_trace_agrees_per_packet(
        self, compute_backend, backend_field, k, problems, packets, seed
    ):
        field = backend_field
        rng = np.random.default_rng(seed)
        batch = BatchDecoder(field, k, problems)
        scalars = [RlncDecoder(field, k, payload_length=1) for _ in range(problems)]
        assert batch.backend is compute_backend
        assert all(scalar.backend is compute_backend for scalar in scalars)
        for problem, row in _random_trace(field, k, problems, packets, rng):
            packet = CodedPacket.from_arrays(row, field.zeros(1))
            expected = scalars[problem].receive(packet)
            got = bool(batch.receive(row[np.newaxis, :], np.array([problem]))[0])
            assert got == expected
        for problem, scalar in enumerate(scalars):
            assert batch.rank_of(problem) == scalar.rank
            assert np.array_equal(
                batch.coefficient_matrix(problem), scalar.coefficient_matrix()
            )

    def test_explicit_backend_argument_overrides_ambient(self):
        gf2 = GF(2)
        packed = BatchDecoder(gf2, k=3, problems=2, backend="gf2bit")
        assert packed.backend is get_backend("gf2bit")
        scalar = RlncDecoder(gf2, k=3, payload_length=1, backend="gf2bit")
        assert scalar.backend is get_backend("gf2bit")
        # The ambient default is untouched by the explicit argument.
        assert BatchDecoder(gf2, k=3, problems=2).backend is get_backend("numpy")


class TestBatchEliminator:
    def test_rank_agrees_with_dense_rank(self, any_field):
        rng = np.random.default_rng(17)
        k = 5
        eliminator = BatchEliminator(any_field, batch=3, columns=k)
        stacked = [[] for _ in range(3)]
        for _ in range(8):
            rows = any_field.random_elements(rng, (3, k))
            eliminator.eliminate(rows)
            for b in range(3):
                stacked[b].append(rows[b])
        for b in range(3):
            dense = np.vstack(stacked[b])
            assert eliminator.rank_of(b) == matrix_rank(any_field, dense)

    def test_basis_is_rref_with_unit_pivots(self, gf16):
        rng = np.random.default_rng(3)
        eliminator = BatchEliminator(gf16, batch=1, columns=5)
        for _ in range(4):
            eliminator.eliminate(gf16.random_elements(rng, (1, 5)))
        basis = eliminator.basis(0)
        pivots = [int(np.nonzero(row)[0][0]) for row in basis]
        assert pivots == sorted(pivots)
        for i, row in enumerate(basis):
            assert int(row[pivots[i]]) == 1
            for j, other in enumerate(basis):
                if i != j:
                    assert int(other[pivots[i]]) == 0

    def test_shape_validation(self, gf16):
        eliminator = BatchEliminator(gf16, batch=2, columns=3)
        with pytest.raises(FieldError):
            eliminator.eliminate(gf16.zeros((2, 4)))
        with pytest.raises(FieldError):
            eliminator.eliminate(gf16.zeros((2, 3)), np.array([0]))
        with pytest.raises(FieldError):
            BatchEliminator(gf16, batch=0, columns=3)

    def test_duplicate_indices_rejected(self, gf16):
        # Regression: two rows for the same problem in one sweep would
        # silently drop one of them via fancy-indexed writes; it must raise.
        eliminator = BatchEliminator(gf16, batch=2, columns=3)
        rows = gf16.random_elements(np.random.default_rng(1), (2, 3))
        with pytest.raises(FieldError, match="distinct"):
            eliminator.eliminate(rows, np.array([0, 0]))


class TestBatchDecoderApi:
    def test_seed_unit_and_completion(self, gf16):
        batch = BatchDecoder(gf16, k=2, problems=2)
        assert batch.seed_unit(0, 0)
        assert batch.seed_unit(0, 1)
        assert not batch.seed_unit(0, 1)  # already known
        assert bool(batch.complete[0]) and not bool(batch.complete[1])
        assert not batch.all_complete
        with pytest.raises(DecodingError):
            batch.seed_unit(0, 5)

    def test_dimension_validation(self, gf16):
        with pytest.raises(DecodingError):
            BatchDecoder(gf16, k=0, problems=1)
        with pytest.raises(DecodingError):
            BatchDecoder(gf16, k=2, problems=0)
        batch = BatchDecoder(gf16, k=2, problems=1)
        with pytest.raises(DecodingError):
            batch.receive(gf16.zeros((1, 3)))

    def test_receive_validates_elements_and_indices(self, gf16):
        batch = BatchDecoder(gf16, k=2, problems=2)
        with pytest.raises(FieldError, match="boolean"):
            batch.receive(np.array([[True, False]]))
        with pytest.raises(FieldError):
            batch.receive(np.array([[0.9, 1.2]]))
        with pytest.raises(FieldError):
            batch.receive(np.array([[200, 3]]))
        with pytest.raises(DecodingError, match="out of range"):
            batch.receive(gf16.zeros((1, 2)), np.array([5]))
