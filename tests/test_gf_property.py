"""Property-based tests (hypothesis) for the field axioms and linear algebra.

These exercise the algebraic invariants RLNC correctness rests on: the field
axioms (associativity, commutativity, distributivity, inverses) and the
consistency of rank under row operations.  The final block runs the same
invariants once per registered compute backend — every backend must uphold
them, not just the dense numpy reference.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import all_backends, get_backend, use_backend
from repro.gf import GF, rank, row_reduce

FIELD_ORDERS = [2, 3, 5, 4, 16, 9]


def elements(order: int):
    return st.integers(min_value=0, max_value=order - 1)


@st.composite
def field_and_elements(draw, count: int = 3):
    order = draw(st.sampled_from(FIELD_ORDERS))
    values = [draw(elements(order)) for _ in range(count)]
    return GF(order), values


@given(field_and_elements())
@settings(max_examples=150, deadline=None)
def test_addition_commutative_and_associative(data):
    field, (a, b, c) = data
    assert int(field.add(a, b)) == int(field.add(b, a))
    left = int(field.add(field.add(a, b), c))
    right = int(field.add(a, field.add(b, c)))
    assert left == right


@given(field_and_elements())
@settings(max_examples=150, deadline=None)
def test_multiplication_commutative_and_associative(data):
    field, (a, b, c) = data
    assert int(field.mul(a, b)) == int(field.mul(b, a))
    left = int(field.mul(field.mul(a, b), c))
    right = int(field.mul(a, field.mul(b, c)))
    assert left == right


@given(field_and_elements())
@settings(max_examples=150, deadline=None)
def test_distributivity(data):
    field, (a, b, c) = data
    left = int(field.mul(a, field.add(b, c)))
    right = int(field.add(field.mul(a, b), field.mul(a, c)))
    assert left == right


@given(field_and_elements(count=1))
@settings(max_examples=100, deadline=None)
def test_additive_and_multiplicative_identities(data):
    field, (a,) = data
    assert int(field.add(a, 0)) == a
    assert int(field.mul(a, 1)) == a
    assert int(field.mul(a, 0)) == 0


@given(field_and_elements(count=1))
@settings(max_examples=100, deadline=None)
def test_inverses(data):
    field, (a,) = data
    assert int(field.add(a, field.neg(a))) == 0
    if a != 0:
        assert int(field.mul(a, field.inv(a))) == 1


@st.composite
def small_matrix(draw):
    order = draw(st.sampled_from([2, 16]))
    rows = draw(st.integers(min_value=1, max_value=5))
    cols = draw(st.integers(min_value=1, max_value=5))
    entries = draw(
        st.lists(
            st.lists(elements(order), min_size=cols, max_size=cols),
            min_size=rows,
            max_size=rows,
        )
    )
    return GF(order), np.array(entries, dtype=np.int64)


@given(small_matrix())
@settings(max_examples=80, deadline=None)
def test_row_reduction_preserves_rank(data):
    field, matrix = data
    reduced, pivots = row_reduce(field, matrix)
    assert rank(field, matrix) == len(pivots)
    assert rank(field, reduced) == len(pivots)


@given(small_matrix())
@settings(max_examples=80, deadline=None)
def test_rank_invariant_under_row_permutation(data):
    field, matrix = data
    permuted = matrix[::-1].copy()
    assert rank(field, matrix) == rank(field, permuted)


@given(small_matrix(), st.integers(min_value=0, max_value=4))
@settings(max_examples=80, deadline=None)
def test_duplicating_a_row_never_changes_rank(data, row_index):
    field, matrix = data
    row = matrix[row_index % matrix.shape[0]]
    augmented = np.vstack([matrix, row[np.newaxis, :]])
    assert rank(field, augmented) == rank(field, matrix)


# ----------------------------------------------------------------------
# Backend-invariant properties: every registered compute backend must
# uphold the algebraic contract on a field it supports (GF(2) is the one
# field all backends share).
# ----------------------------------------------------------------------


def _backend_matrix(backend_name: str):
    """A random matrix over a field the named backend supports."""
    backend = get_backend(backend_name)
    orders = [q for q in (2, 16) if backend.supports_field(GF(q))]

    @st.composite
    def build(draw):
        order = draw(st.sampled_from(orders))
        rows = draw(st.integers(min_value=1, max_value=6))
        cols = draw(st.integers(min_value=1, max_value=7))
        entries = draw(
            st.lists(
                st.lists(elements(order), min_size=cols, max_size=cols),
                min_size=rows,
                max_size=rows,
            )
        )
        return GF(order), np.array(entries, dtype=np.int64)

    return build()


@pytest.mark.parametrize("backend_name", all_backends())
class TestBackendAlgebraicInvariants:
    """Rank monotonicity, idempotent re-elimination, helpfulness ⇔ rank."""

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_rank_monotone_under_row_append(self, backend_name, data):
        field, matrix = data.draw(_backend_matrix(backend_name))
        extra = data.draw(
            st.lists(
                elements(field.order),
                min_size=matrix.shape[1],
                max_size=matrix.shape[1],
            )
        )
        with use_backend(backend_name):
            base = rank(field, matrix)
            grown = rank(
                field, np.vstack([matrix, np.array(extra, dtype=np.int64)])
            )
        assert base <= grown <= base + 1

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_row_reduce_is_idempotent(self, backend_name, data):
        field, matrix = data.draw(_backend_matrix(backend_name))
        with use_backend(backend_name):
            reduced, pivots = row_reduce(field, matrix)
            again, pivots_again = row_reduce(field, reduced)
        assert pivots_again == pivots
        assert np.array_equal(again, reduced)

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_helpful_iff_rank_increases(self, backend_name, data):
        field, matrix = data.draw(_backend_matrix(backend_name))
        candidate = np.array(
            data.draw(
                st.lists(
                    elements(field.order),
                    min_size=matrix.shape[1],
                    max_size=matrix.shape[1],
                )
            ),
            dtype=np.int64,
        )
        backend = get_backend(backend_name)
        columns = matrix.shape[1]
        with use_backend(backend_name):
            eliminator = backend.make_eliminator(field, 1, columns)
            for row in matrix:
                eliminator.eliminate(
                    field.validate(row)[np.newaxis, :], np.zeros(1, np.int64)
                )
            before = eliminator.rank_of(0)
            helpful = bool(
                eliminator.eliminate(
                    field.validate(candidate)[np.newaxis, :],
                    np.zeros(1, np.int64),
                )[0]
            )
            after = eliminator.rank_of(0)
        assert helpful == (after == before + 1)
        assert (not helpful) == (after == before)
