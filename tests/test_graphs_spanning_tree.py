"""Unit tests for spanning trees (parent maps, BFS construction, depth/diameter)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.errors import TopologyError
from repro.graphs import (
    SpanningTree,
    barbell_graph,
    bfs_spanning_tree,
    binary_tree_graph,
    diameter,
    grid_graph,
    line_graph,
    random_spanning_tree,
    ring_graph,
)


class TestSpanningTreeStructure:
    def test_from_parent_map_valid(self):
        tree = SpanningTree.from_parent_map(0, {1: 0, 2: 0, 3: 1})
        assert tree.size == 4
        assert tree.depth == 2
        assert tree.depth_of(3) == 2
        assert tree.children()[0] == [1, 2]
        assert tree.path_to_root(3) == [3, 1, 0]

    def test_root_with_parent_rejected(self):
        with pytest.raises(TopologyError):
            SpanningTree.from_parent_map(0, {0: 1, 1: 0})

    def test_cycle_rejected(self):
        with pytest.raises(TopologyError):
            SpanningTree.from_parent_map(0, {1: 2, 2: 1})

    def test_unreachable_node_rejected(self):
        with pytest.raises(TopologyError):
            SpanningTree.from_parent_map(0, {1: 5})

    def test_depth_of_unknown_node_raises(self):
        tree = SpanningTree.from_parent_map(0, {1: 0})
        with pytest.raises(TopologyError):
            tree.depth_of(9)

    def test_single_node_tree(self):
        tree = SpanningTree.from_parent_map(0, {})
        assert tree.depth == 0
        assert tree.tree_diameter == 0
        assert tree.size == 1

    def test_as_graph_and_spans(self):
        graph = ring_graph(6)
        tree = bfs_spanning_tree(graph, 0)
        assert nx.is_tree(tree.as_graph())
        assert tree.spans(graph)
        # A tree over different node ids does not span the ring.
        other = SpanningTree.from_parent_map(10, {11: 10})
        assert not other.spans(graph)

    def test_tree_diameter_of_path_tree(self):
        tree = SpanningTree.from_parent_map(0, {1: 0, 2: 1, 3: 2})
        assert tree.tree_diameter == 3


class TestBfsSpanningTree:
    @pytest.mark.parametrize(
        "builder, n", [(line_graph, 12), (ring_graph, 12), (grid_graph, 16),
                       (barbell_graph, 12), (binary_tree_graph, 15)],
    )
    def test_bfs_tree_spans_and_depth_at_most_diameter(self, builder, n):
        graph = builder(n)
        tree = bfs_spanning_tree(graph, 0)
        assert tree.spans(graph)
        assert tree.depth <= diameter(graph)

    def test_bfs_tree_gives_shortest_path_depths(self):
        graph = grid_graph(16)
        tree = bfs_spanning_tree(graph, 0)
        lengths = nx.single_source_shortest_path_length(graph, 0)
        for node, distance in lengths.items():
            if node == 0:
                continue
            assert tree.depth_of(node) == distance

    def test_unknown_root_rejected(self):
        with pytest.raises(TopologyError):
            bfs_spanning_tree(ring_graph(6), 99)

    def test_disconnected_graph_rejected(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        with pytest.raises(TopologyError):
            bfs_spanning_tree(graph, 0)


class TestRandomSpanningTree:
    def test_random_tree_spans_graph(self):
        rng = np.random.default_rng(0)
        graph = grid_graph(16)
        tree = random_spanning_tree(graph, 0, rng)
        assert tree.spans(graph)

    def test_random_tree_depth_can_exceed_bfs_depth(self):
        """On the ring a randomised tree is usually deeper than the BFS tree."""
        rng = np.random.default_rng(1)
        graph = ring_graph(20)
        bfs_depth = bfs_spanning_tree(graph, 0).depth
        depths = [random_spanning_tree(graph, 0, rng).depth for _ in range(10)]
        assert max(depths) >= bfs_depth

    def test_random_tree_requires_known_root(self):
        rng = np.random.default_rng(2)
        with pytest.raises(TopologyError):
            random_spanning_tree(ring_graph(6), 42, rng)
