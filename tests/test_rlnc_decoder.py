"""Unit tests for the incremental RLNC decoder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DecodingError
from repro.gf import GF
from repro.rlnc import CodedPacket, Generation, RlncDecoder, encode_from_decoder


def make_decoder(field, k=4, r=2):
    return RlncDecoder(field, k, r)


class TestConstruction:
    def test_initial_state(self, gf16):
        decoder = make_decoder(gf16)
        assert decoder.rank == 0
        assert not decoder.is_complete
        assert decoder.packets_received == 0
        assert decoder.coefficient_matrix().shape == (0, 4)

    def test_invalid_parameters(self, gf16):
        with pytest.raises(DecodingError):
            RlncDecoder(gf16, 0, 2)
        with pytest.raises(DecodingError):
            RlncDecoder(gf16, 4, 0)


class TestReceive:
    def test_unit_packets_fill_rank(self, gf16, small_generation):
        decoder = make_decoder(gf16)
        for index in range(4):
            helpful = decoder.add_source_message(
                index, small_generation.payload_matrix[index]
            )
            assert helpful
            assert decoder.rank == index + 1
        assert decoder.is_complete

    def test_duplicate_packet_not_helpful(self, gf16, small_generation):
        decoder = make_decoder(gf16)
        payload = small_generation.payload_matrix[0]
        assert decoder.add_source_message(0, payload)
        assert not decoder.add_source_message(0, payload)
        assert decoder.rank == 1
        assert decoder.packets_received == 2
        assert decoder.helpful_received == 1

    def test_zero_packet_not_helpful(self, gf16):
        decoder = make_decoder(gf16)
        packet = CodedPacket(coefficients=(0, 0, 0, 0), payload=(0, 0))
        assert not decoder.receive(packet)
        assert decoder.rank == 0

    def test_linearly_dependent_combination_rejected(self, gf16, small_generation):
        decoder = make_decoder(gf16)
        decoder.add_source_message(0, small_generation.payload_matrix[0])
        decoder.add_source_message(1, small_generation.payload_matrix[1])
        # 3*x0 + 5*x1 is in the span of what the decoder already has.
        coeffs = gf16.zeros(4)
        coeffs[0], coeffs[1] = 3, 5
        payload = gf16.add(
            gf16.scalar_mul(3, small_generation.payload_matrix[0]),
            gf16.scalar_mul(5, small_generation.payload_matrix[1]),
        )
        packet = CodedPacket.from_arrays(coeffs, payload)
        assert not decoder.receive(packet)
        assert decoder.rank == 2

    def test_would_be_helpful_does_not_mutate(self, gf16, small_generation):
        decoder = make_decoder(gf16)
        packet = CodedPacket.unit(gf16, 4, 2, small_generation.payload_matrix[2])
        assert decoder.would_be_helpful(packet)
        assert decoder.rank == 0
        assert decoder.packets_received == 0

    def test_dimension_mismatch_raises(self, gf16):
        decoder = make_decoder(gf16, k=4, r=2)
        wrong_k = CodedPacket(coefficients=(1, 0, 0), payload=(0, 0))
        with pytest.raises(DecodingError):
            decoder.receive(wrong_k)
        wrong_r = CodedPacket(coefficients=(1, 0, 0, 0), payload=(0, 0, 0))
        with pytest.raises(DecodingError):
            decoder.receive(wrong_r)

    def test_rref_invariant_after_random_packets(self, gf16, small_generation, rng):
        """Stored rows stay in reduced row-echelon form after arbitrary traffic."""
        source = make_decoder(gf16)
        for index in range(4):
            source.add_source_message(index, small_generation.payload_matrix[index])
        sink = make_decoder(gf16)
        for _ in range(20):
            packet = encode_from_decoder(source, rng)
            sink.receive(packet)
        matrix = sink.coefficient_matrix()
        pivots = sink.pivot_columns
        assert list(pivots) == sorted(pivots)
        for row_index, pivot in enumerate(pivots):
            assert matrix[row_index, pivot] == 1
            assert int(np.count_nonzero(matrix[:, pivot])) == 1
            assert np.all(matrix[row_index, :pivot] == 0)


class TestDecode:
    def test_decode_before_complete_raises(self, gf16):
        decoder = make_decoder(gf16)
        with pytest.raises(DecodingError):
            decoder.decode()

    def test_decode_from_unit_packets(self, gf16, small_generation):
        decoder = make_decoder(gf16)
        for index in range(4):
            decoder.add_source_message(index, small_generation.payload_matrix[index])
        assert np.array_equal(decoder.decode(), small_generation.payload_matrix)
        assert decoder.matches_generation(small_generation)

    def test_decode_from_random_combinations(self, gf16, small_generation, rng):
        """End-to-end: a sink decoding only coded packets recovers the originals."""
        source = make_decoder(gf16)
        for index in range(4):
            source.add_source_message(index, small_generation.payload_matrix[index])
        sink = make_decoder(gf16)
        attempts = 0
        while not sink.is_complete:
            packet = encode_from_decoder(source, rng)
            sink.receive(packet)
            attempts += 1
            assert attempts < 200, "decoder failed to converge"
        assert np.array_equal(sink.decode(), small_generation.payload_matrix)

    def test_matches_generation_false_when_incomplete(self, gf16, small_generation):
        decoder = make_decoder(gf16)
        assert not decoder.matches_generation(small_generation)

    @pytest.mark.parametrize("order", [2, 3, 256])
    def test_round_trip_across_fields(self, order, rng):
        field = GF(order)
        generation = Generation.random(field, k=5, payload_length=3, rng=rng)
        source = RlncDecoder(field, 5, 3)
        for index in range(5):
            source.add_source_message(index, generation.payload_matrix[index])
        sink = RlncDecoder(field, 5, 3)
        attempts = 0
        while not sink.is_complete and attempts < 500:
            sink.receive(encode_from_decoder(source, rng))
            attempts += 1
        assert sink.is_complete
        assert np.array_equal(sink.decode(), generation.payload_matrix)

    def test_round_trip_across_backends(self, compute_backend, backend_field, rng):
        """Full encode → gossip → decode payload recovery on every backend."""
        field = backend_field
        generation = Generation.random(field, k=5, payload_length=3, rng=rng)
        source = RlncDecoder(field, 5, 3)
        for index in range(5):
            source.add_source_message(index, generation.payload_matrix[index])
        sink = RlncDecoder(field, 5, 3)
        assert sink.backend is compute_backend
        attempts = 0
        while not sink.is_complete and attempts < 500:
            sink.receive(encode_from_decoder(source, rng))
            attempts += 1
        assert sink.is_complete
        assert np.array_equal(sink.decode(), generation.payload_matrix)
        assert sink.matches_generation(generation)
