"""Unit tests for the RLNC encoder and the helpfulness predicates (Definition 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DecodingError
from repro.gf import GF
from repro.rlnc import (
    Generation,
    RlncDecoder,
    RlncEncoder,
    encode_from_decoder,
    helpful_message_probability_lower_bound,
    is_helpful_node,
    subspace_dimension_gain,
)


def seeded_decoder(field, generation, indices):
    decoder = RlncDecoder(field, generation.k, generation.payload_length)
    for index in indices:
        decoder.add_source_message(index, generation.payload_matrix[index])
    return decoder


class TestEncoder:
    def test_empty_decoder_emits_nothing(self, gf16, rng):
        decoder = RlncDecoder(gf16, 4, 2)
        assert encode_from_decoder(decoder, rng) is None
        encoder = RlncEncoder(decoder, rng)
        assert encoder.next_packet() is None
        assert encoder.packets_emitted == 0

    def test_emitted_packet_lies_in_senders_span(self, gf16, small_generation, rng):
        decoder = seeded_decoder(gf16, small_generation, [0, 2])
        for _ in range(10):
            packet = encode_from_decoder(decoder, rng)
            # Coefficients of messages the sender does not know must be zero.
            assert packet.coefficients[1] == 0
            assert packet.coefficients[3] == 0

    def test_emitted_packet_is_consistent_equation(self, gf16, small_generation, rng):
        """The packet payload equals the same combination applied to the true messages."""
        decoder = seeded_decoder(gf16, small_generation, [0, 1, 2, 3])
        for _ in range(10):
            packet = encode_from_decoder(decoder, rng)
            coeffs = packet.coefficient_array(gf16)
            expected = gf16.dot(coeffs, small_generation.payload_matrix)
            assert np.array_equal(packet.payload_array(gf16), expected)

    def test_encoder_counts_packets(self, gf16, small_generation, rng):
        decoder = seeded_decoder(gf16, small_generation, [0])
        encoder = RlncEncoder(decoder, rng)
        for _ in range(3):
            assert encoder.next_packet() is not None
        assert encoder.packets_emitted == 3
        assert encoder.field is gf16

    def test_systematic_packet_known_message(self, gf16, small_generation, rng):
        decoder = seeded_decoder(gf16, small_generation, [0, 1])
        encoder = RlncEncoder(decoder, rng)
        packet = encoder.systematic_packet(1)
        assert packet.coefficients == (0, 1, 0, 0)
        assert np.array_equal(
            packet.payload_array(gf16), small_generation.payload_matrix[1]
        )

    def test_systematic_packet_unknown_message_raises(self, gf16, small_generation, rng):
        decoder = seeded_decoder(gf16, small_generation, [0])
        encoder = RlncEncoder(decoder, rng)
        with pytest.raises(DecodingError):
            encoder.systematic_packet(3)


class TestHelpfulness:
    def test_probability_lower_bound(self):
        assert helpful_message_probability_lower_bound(2) == pytest.approx(0.5)
        assert helpful_message_probability_lower_bound(16) == pytest.approx(15 / 16)
        with pytest.raises(ValueError):
            helpful_message_probability_lower_bound(1)

    def test_node_with_nothing_is_not_helpful(self, gf16, small_generation):
        empty = RlncDecoder(gf16, 4, 2)
        receiver = seeded_decoder(gf16, small_generation, [0])
        assert not is_helpful_node(empty, receiver)

    def test_node_with_new_information_is_helpful(self, gf16, small_generation):
        sender = seeded_decoder(gf16, small_generation, [0, 1])
        receiver = seeded_decoder(gf16, small_generation, [0])
        assert is_helpful_node(sender, receiver)
        assert subspace_dimension_gain(sender, receiver) == 1

    def test_subset_knowledge_is_not_helpful(self, gf16, small_generation):
        sender = seeded_decoder(gf16, small_generation, [0])
        receiver = seeded_decoder(gf16, small_generation, [0, 1])
        assert not is_helpful_node(sender, receiver)
        assert subspace_dimension_gain(sender, receiver) == 0

    def test_complete_receiver_never_needs_help(self, gf16, small_generation):
        sender = seeded_decoder(gf16, small_generation, [0, 1, 2, 3])
        receiver = seeded_decoder(gf16, small_generation, [0, 1, 2, 3])
        assert not is_helpful_node(sender, receiver)

    def test_helpful_message_rate_matches_lower_bound(self, rng):
        """Empirical check of Lemma 2.1 of Deb et al.: packets from a helpful
        node are helpful with probability at least 1 - 1/q."""
        for order in (2, 16):
            field = GF(order)
            generation = Generation.random(field, k=6, payload_length=1, rng=rng)
            sender = seeded_decoder(field, generation, range(6))
            trials = 300
            helpful = 0
            for _ in range(trials):
                receiver = seeded_decoder(field, generation, [0, 1, 2])
                packet = encode_from_decoder(sender, rng)
                if receiver.receive(packet):
                    helpful += 1
            rate = helpful / trials
            bound = helpful_message_probability_lower_bound(order)
            # Allow a small sampling slack below the theoretical lower bound.
            assert rate >= bound - 0.08, f"GF({order}): rate {rate} below bound {bound}"
