"""Documentation drift checks (the ``make docs-check`` target).

The README's fenced Python blocks are working code, not prose: this test
extracts every ```python block and executes it.  If the library's API moves
— a renamed function, a changed signature, a different default — the README
breaks here instead of silently rotting.  The quickstart example the README
mirrors is executed too, so the two cannot drift apart without a failure.
"""

from __future__ import annotations

import re
import runpy
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"

_FENCED_PYTHON = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _readme_python_blocks() -> list[str]:
    return _FENCED_PYTHON.findall(README.read_text(encoding="utf-8"))


def test_readme_exists_with_python_blocks():
    assert README.exists(), "top-level README.md is missing"
    assert len(_readme_python_blocks()) >= 2, (
        "README.md should contain at least the quickstart and the batched "
        "runner as executable ```python blocks"
    )


@pytest.mark.parametrize(
    "index_and_block",
    list(enumerate(_readme_python_blocks())),
    ids=lambda pair: f"block-{pair[0]}",
)
def test_readme_python_blocks_execute(index_and_block, capsys):
    index, block = index_and_block
    namespace: dict[str, object] = {"__name__": f"readme_block_{index}"}
    exec(compile(block, f"README.md[block {index}]", "exec"), namespace)


def test_quickstart_example_runs(capsys):
    # The README quickstart mirrors examples/quickstart.py; run the original
    # so a change to either surfaces as a failure somewhere.
    runpy.run_path(str(REPO_ROOT / "examples" / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "decoded all messages correctly" in out
