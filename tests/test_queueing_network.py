"""Tests for tree/line queueing networks and the Theorem 2 dominance chain."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.graphs import SpanningTree, bfs_spanning_tree, grid_graph
from repro.queueing import (
    TreeQueueNetwork,
    empirically_dominates,
    lemma7_stopping_time_bound,
    line_tree,
    mean_ordering_holds,
    open_line_stopping_time,
    single_level_scheduling_stopping_time,
    theorem2_stopping_time_bound,
)


def balanced_tree(depth: int, branching: int = 2) -> SpanningTree:
    """A complete ``branching``-ary tree of the given depth as a SpanningTree."""
    parent = {}
    nodes = [0]
    next_id = 1
    frontier = [0]
    for _ in range(depth):
        new_frontier = []
        for node in frontier:
            for _ in range(branching):
                parent[next_id] = node
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return SpanningTree(root=0, parent=parent)


class TestTreeQueueNetwork:
    def test_single_queue_single_customer(self, rng):
        tree = line_tree(1)
        network = TreeQueueNetwork(tree, service_rate=2.0, initial_customers={0: 1})
        samples = network.simulate_many(5_000, rng)
        # A single Exp(2) service: mean 0.5.
        assert np.mean(samples) == pytest.approx(0.5, rel=0.1)

    def test_line_of_queues_customer_must_traverse_all(self, rng):
        tree = line_tree(5)
        network = TreeQueueNetwork(tree, service_rate=1.0, initial_customers={4: 1})
        samples = network.simulate_many(3_000, rng)
        # The lone customer is served 5 times: Erlang(5, 1) with mean 5.
        assert np.mean(samples) == pytest.approx(5.0, rel=0.1)

    def test_stopping_time_grows_with_customers(self, rng):
        tree = line_tree(3)
        few = TreeQueueNetwork(tree, 1.0, {2: 2}).simulate_many(400, rng).mean()
        many = TreeQueueNetwork(tree, 1.0, {2: 10}).simulate_many(400, rng).mean()
        assert many > few

    def test_invalid_parameters(self):
        tree = line_tree(3)
        with pytest.raises(SimulationError):
            TreeQueueNetwork(tree, 0.0, {0: 1})
        with pytest.raises(SimulationError):
            TreeQueueNetwork(tree, 1.0, {})
        with pytest.raises(SimulationError):
            TreeQueueNetwork(tree, 1.0, {99: 1})
        with pytest.raises(SimulationError):
            TreeQueueNetwork(tree, 1.0, {0: -1})
        with pytest.raises(SimulationError):
            TreeQueueNetwork(tree, 1.0, {0: 1}).simulate_many(0, np.random.default_rng(0))

    def test_works_on_bfs_tree_of_a_real_graph(self, rng):
        graph = grid_graph(16)
        tree = bfs_spanning_tree(graph, 0)
        customers = {node: 1 for node in tree.parent}
        network = TreeQueueNetwork(tree, service_rate=1.0, initial_customers=customers)
        value = network.simulate(rng)
        assert value > 0


class TestTheorem2DominanceChain:
    """Empirical versions of Lemmas 4–7: each transformation in the proof can
    only make the stopping time stochastically larger."""

    def test_tree_dominated_by_single_server_per_level(self, rng):
        tree = balanced_tree(depth=3)
        customers = {node: 1 for node in tree.parent}
        network = TreeQueueNetwork(tree, 1.0, customers)
        tree_samples = network.simulate_many(300, rng)
        level_samples = np.array([
            single_level_scheduling_stopping_time(tree, 1.0, customers, rng)
            for _ in range(300)
        ])
        assert mean_ordering_holds(tree_samples, level_samples, slack=0.5)
        assert empirically_dominates(tree_samples, level_samples, tolerance=0.15)

    def test_line_dominated_by_all_customers_at_far_end(self, rng):
        depth = 4
        line = line_tree(depth + 1)
        spread = {i: 2 for i in range(1, depth + 1)}
        spread_samples = TreeQueueNetwork(line, 1.0, spread).simulate_many(300, rng)
        far = {depth: 2 * depth}
        far_samples = TreeQueueNetwork(line, 1.0, far).simulate_many(300, rng)
        assert mean_ordering_holds(spread_samples, far_samples, slack=0.5)
        assert empirically_dominates(spread_samples, far_samples, tolerance=0.15)

    def test_closed_line_dominated_by_open_jackson_line(self, rng):
        """Moving the customers outside and re-injecting them at rate μ/2 only
        slows the system down (the final step of Lemma 7)."""
        k, depth, mu = 8, 4, 1.0
        line = line_tree(depth)
        closed = TreeQueueNetwork(line, mu, {depth - 1: k}).simulate_many(300, rng)
        open_samples = np.array([
            open_line_stopping_time(k, depth, mu, rng) for _ in range(300)
        ])
        assert mean_ordering_holds(closed, open_samples, slack=0.5)

    def test_full_chain_tree_bounded_by_lemma7_formula(self, rng):
        """Theorem 2 end to end: the tree network's p95 stopping time is below
        the explicit (4k + 4 l_max + 16 ln n)/μ bound."""
        tree = balanced_tree(depth=3)
        n = tree.size
        customers = {node: 1 for node in tree.parent}
        k = sum(customers.values())
        mu = 1.0
        samples = TreeQueueNetwork(tree, mu, customers).simulate_many(400, rng)
        bound = lemma7_stopping_time_bound(k, tree.depth, n, mu)
        assert np.quantile(samples, 0.95) <= bound

    def test_theorem2_bound_scales_inversely_with_mu(self):
        assert theorem2_stopping_time_bound(10, 3, 20, 0.5) == pytest.approx(
            2 * theorem2_stopping_time_bound(10, 3, 20, 1.0)
        )


class TestOpenLine:
    def test_open_line_mean_reasonable(self, rng):
        k, depth, mu = 10, 3, 1.0
        samples = np.array([open_line_stopping_time(k, depth, mu, rng) for _ in range(400)])
        # Arrival of the k-th customer takes ~k/(mu/2) = 2k; traversal ~depth/(mu/2).
        expected = 2 * k / mu + 2 * depth / mu
        assert np.mean(samples) == pytest.approx(expected, rel=0.3)

    def test_invalid_parameters(self, rng):
        with pytest.raises(SimulationError):
            open_line_stopping_time(0, 3, 1.0, rng)
        with pytest.raises(SimulationError):
            open_line_stopping_time(3, 0, 1.0, rng)
        with pytest.raises(SimulationError):
            open_line_stopping_time(3, 3, -1.0, rng)
        with pytest.raises(SimulationError):
            open_line_stopping_time(3, 3, 1.0, rng, arrival_rate=0.0)

    def test_line_tree_requires_positive_length(self):
        with pytest.raises(SimulationError):
            line_tree(0)
