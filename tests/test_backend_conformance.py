"""The backend conformance suite: every registered backend, one contract.

The :mod:`repro.backends` seam promises that compute backends are
**bit-identical by contract** — same inputs, same seeds, same observable
state — which is what lets ``ScenarioSpec.fingerprint()`` ignore the backend
and the result store treat records from any backend as interchangeable.
This module is where that promise is enforced, for every backend
``all_backends()`` reports (a future numba/cupy backend lands in this matrix
automatically):

* **kernel conformance** — ``row_reduce`` / ``rank`` / ``is_in_row_space``
  agree with the dense numpy reference on seeded random matrices, including
  augmented columns, dependent rows and degenerate shapes;
* **eliminator conformance** — long random incremental traces through
  ``make_eliminator`` produce identical helpful masks, ranks, pivot masks,
  bases and ``combine`` outputs, scalar (batch=1) and batched alike;
* **end-to-end equivalence** — on a matrix of registry scenarios flipped to
  GF(2), the sequential scalar engine and the vectorised batch engine under
  every backend reproduce the numpy reference signatures trial-for-trial;
* **typed refusal** — the ``gf2bit`` backend rejects every ``q != 2`` entry
  point with :class:`~repro.errors.BackendError` instead of silently
  falling back;
* **store invariance** — a scenario measured under one backend is a full
  cache hit (``puts == 0``) when re-measured under another.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    BACKEND_ENV,
    ComputeBackend,
    EliminatorState,
    all_backends,
    current_backend,
    default_backend_name,
    get_backend,
    register_backend,
    resolve_backend,
    use_backend,
)
from repro.errors import BackendError, ConfigurationError
from repro.gf import GF
from repro.scenarios import ScenarioSpec, get_scenario
from repro.store import ResultStore

NUMPY = get_backend("numpy")

#: Field orders each backend is conformance-tested on (the ones it supports).
FIELD_ORDERS = (2, 3, 16, 256)


def _supported_orders(backend: ComputeBackend) -> list[int]:
    return [q for q in FIELD_ORDERS if backend.supports_field(GF(q))]


def _random_matrix(rng: np.random.Generator, field, rows: int, cols: int):
    matrix = rng.integers(0, field.order, size=(rows, cols))
    # Mix in duplicated and scaled rows so dependent-row handling is hit.
    if rows >= 2 and rng.random() < 0.5:
        matrix[rows - 1] = matrix[0]
    return field.validate(matrix)


# ----------------------------------------------------------------------
# Registry behaviour
# ----------------------------------------------------------------------


class TestRegistry:
    def test_both_shipped_backends_registered(self):
        assert {"numpy", "gf2bit"} <= set(all_backends())

    def test_get_backend_unknown_name(self):
        with pytest.raises(BackendError, match="unknown compute backend"):
            get_backend("definitely-not-a-backend")

    def test_use_backend_unknown_name_fails_on_entry(self):
        with pytest.raises(BackendError, match="unknown compute backend"):
            with use_backend("definitely-not-a-backend"):
                pragma = "never reached"  # pragma: no cover
                assert pragma

    def test_use_backend_nests_and_restores(self):
        before = current_backend().name
        with use_backend("gf2bit"):
            assert current_backend().name == "gf2bit"
            with use_backend("numpy"):
                assert current_backend().name == "numpy"
            assert current_backend().name == "gf2bit"
        assert current_backend().name == before

    def test_use_backend_falsy_name_is_passthrough(self):
        with use_backend("gf2bit"):
            with use_backend("") as backend:
                assert backend.name == "gf2bit"
            with use_backend(None) as backend:
                assert backend.name == "gf2bit"

    def test_resolve_backend_accepts_instance_name_and_none(self):
        assert resolve_backend(NUMPY) is NUMPY
        assert resolve_backend("gf2bit").name == "gf2bit"
        with use_backend("gf2bit"):
            assert resolve_backend(None).name == "gf2bit"
            assert resolve_backend("").name == "gf2bit"

    def test_env_variable_sets_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "gf2bit")
        assert default_backend_name() == "gf2bit"
        assert current_backend().name == "gf2bit"
        monkeypatch.setenv(BACKEND_ENV, "  ")
        assert default_backend_name() == "numpy"

    def test_register_backend_requires_name(self):
        class Anonymous(ComputeBackend):
            name = ""

            def supports_field(self, field):  # pragma: no cover
                return False

            def row_reduce(self, field, matrix, *, augmented_columns=0):
                raise NotImplementedError  # pragma: no cover

            def rank(self, field, matrix):
                raise NotImplementedError  # pragma: no cover

            def is_in_row_space(self, field, matrix, vector):
                raise NotImplementedError  # pragma: no cover

            def make_eliminator(self, field, batch, columns, *, augmented_columns=0):
                raise NotImplementedError  # pragma: no cover

        with pytest.raises(BackendError, match="no registry name"):
            register_backend(Anonymous())

    def test_every_backend_supports_gf2(self):
        # GF(2) is the shared floor of the conformance matrix: every backend
        # must support it so the cross-backend scenarios below always run.
        for name in all_backends():
            assert get_backend(name).supports_field(GF(2)), name


# ----------------------------------------------------------------------
# Kernel conformance: row_reduce / rank / is_in_row_space
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend_name", all_backends())
class TestKernelConformance:
    """Seeded random matrices: every kernel agrees with the numpy reference."""

    def test_row_reduce_matches_reference(self, backend_name):
        backend = get_backend(backend_name)
        rng = np.random.default_rng(2024)
        for order in _supported_orders(backend):
            field = GF(order)
            for rows, cols in [(1, 1), (3, 5), (5, 3), (8, 8), (6, 70), (17, 130)]:
                matrix = _random_matrix(rng, field, rows, cols)
                want, want_pivots = NUMPY.row_reduce(field, matrix)
                got, got_pivots = backend.row_reduce(field, matrix)
                assert got_pivots == want_pivots, (order, rows, cols)
                assert np.array_equal(got, want), (order, rows, cols)

    def test_row_reduce_augmented_matches_reference(self, backend_name):
        backend = get_backend(backend_name)
        rng = np.random.default_rng(77)
        for order in _supported_orders(backend):
            field = GF(order)
            for rows, cols, aug in [(4, 6, 2), (5, 9, 4), (9, 80, 16)]:
                matrix = _random_matrix(rng, field, rows, cols)
                want, want_pivots = NUMPY.row_reduce(
                    field, matrix, augmented_columns=aug
                )
                got, got_pivots = backend.row_reduce(
                    field, matrix, augmented_columns=aug
                )
                assert got_pivots == want_pivots
                assert np.array_equal(got, want)

    def test_rank_matches_reference(self, backend_name):
        backend = get_backend(backend_name)
        rng = np.random.default_rng(11)
        for order in _supported_orders(backend):
            field = GF(order)
            for rows, cols in [(1, 4), (6, 6), (10, 4), (4, 100)]:
                matrix = _random_matrix(rng, field, rows, cols)
                assert backend.rank(field, matrix) == NUMPY.rank(field, matrix)

    def test_rank_of_empty_matrix(self, backend_name):
        backend = get_backend(backend_name)
        for order in _supported_orders(backend):
            field = GF(order)
            empty = field.zeros((0, 5))
            assert backend.rank(field, empty) == 0

    def test_is_in_row_space_matches_reference(self, backend_name):
        backend = get_backend(backend_name)
        rng = np.random.default_rng(5150)
        for order in _supported_orders(backend):
            field = GF(order)
            matrix = _random_matrix(rng, field, 4, 9)
            # Mix guaranteed members (random combinations of the rows) with
            # random probes that are usually outside the span.
            probes = [field.zeros(9)]
            for _ in range(6):
                coefficients = field.validate(rng.integers(0, field.order, size=4))
                member = field.zeros(9)
                for coefficient, row in zip(coefficients, matrix):
                    member = field.add(member, field.scalar_mul(int(coefficient), row))
                probes.append(member)
                probes.append(field.validate(rng.integers(0, field.order, size=9)))
            for probe in probes:
                assert backend.is_in_row_space(field, matrix, probe) == (
                    NUMPY.is_in_row_space(field, matrix, probe)
                )


# ----------------------------------------------------------------------
# Eliminator conformance: incremental traces, scalar and batched
# ----------------------------------------------------------------------


def _trace_eliminators(
    backend: ComputeBackend,
    field,
    *,
    batch: int,
    columns: int,
    augmented_columns: int,
    sweeps: int,
    seed: int,
) -> list[tuple]:
    """Drive one eliminator through a seeded random trace; log everything."""
    rng = np.random.default_rng(seed)
    eliminator = backend.make_eliminator(
        field, batch, columns, augmented_columns=augmented_columns
    )
    assert isinstance(eliminator, EliminatorState)
    log: list[tuple] = []
    for _ in range(sweeps):
        m = int(rng.integers(1, batch + 1))
        indices = rng.choice(batch, size=m, replace=False).astype(np.int64)
        rows = field.validate(rng.integers(0, field.order, size=(m, columns)))
        helpful = eliminator.eliminate(rows, indices)
        probe = int(rng.integers(0, batch))
        basis = eliminator.basis(probe)
        coefficients = field.validate(
            rng.integers(0, field.order, size=basis.shape[0])
        )
        log.append(
            (
                helpful.tolist(),
                eliminator.ranks.tolist(),
                eliminator.pivot_mask.tolist(),
                basis.tolist(),
                eliminator.combine(probe, coefficients).tolist(),
            )
        )
    return log


@pytest.mark.parametrize("backend_name", all_backends())
@pytest.mark.parametrize(
    "batch,columns,augmented_columns",
    [(1, 12, 0), (1, 18, 6), (4, 20, 0), (4, 20, 4), (3, 130, 64)],
    ids=["scalar", "scalar-augmented", "batched", "batched-augmented", "multiword"],
)
def test_eliminator_trace_matches_reference(
    backend_name, batch, columns, augmented_columns
):
    backend = get_backend(backend_name)
    for order in _supported_orders(backend):
        field = GF(order)
        kwargs = dict(
            batch=batch,
            columns=columns,
            augmented_columns=augmented_columns,
            sweeps=40,
            seed=1234 + order,
        )
        assert _trace_eliminators(backend, field, **kwargs) == (
            _trace_eliminators(NUMPY, field, **kwargs)
        ), f"GF({order})"


@pytest.mark.parametrize("backend_name", all_backends())
def test_eliminator_validation_matches_reference(backend_name):
    """Constructor validation is part of the contract (same typed errors)."""
    from repro.errors import FieldError

    backend = get_backend(backend_name)
    field = GF(_supported_orders(backend)[0])
    with pytest.raises(FieldError, match="batch size must be positive"):
        backend.make_eliminator(field, 0, 4)
    with pytest.raises(FieldError, match="column count must be positive"):
        backend.make_eliminator(field, 2, 0)
    with pytest.raises(FieldError, match="augmented_columns"):
        backend.make_eliminator(field, 2, 4, augmented_columns=4)


# ----------------------------------------------------------------------
# gf2bit refuses non-binary fields (no silent fallback)
# ----------------------------------------------------------------------


class TestGf2BitRejectsOtherFields:
    """Satellite: ``q != 2`` must be a typed, loud :class:`BackendError`."""

    BACKEND = get_backend("gf2bit")

    @pytest.mark.parametrize("order", [3, 16, 256])
    def test_every_entry_point_refuses(self, order):
        field = GF(order)
        matrix = field.zeros((2, 4))
        with pytest.raises(BackendError, match=r"only supports GF\(2\)"):
            self.BACKEND.row_reduce(field, matrix)
        with pytest.raises(BackendError, match=r"only supports GF\(2\)"):
            self.BACKEND.rank(field, matrix)
        with pytest.raises(BackendError, match=r"only supports GF\(2\)"):
            self.BACKEND.is_in_row_space(field, matrix, field.zeros(4))
        with pytest.raises(BackendError, match=r"only supports GF\(2\)"):
            self.BACKEND.make_eliminator(field, 1, 4)

    def test_error_names_the_offending_field(self):
        with pytest.raises(BackendError, match=r"got GF\(16\)"):
            self.BACKEND.rank(GF(16), GF(16).zeros((1, 1)))

    def test_supports_field_reports_without_raising(self):
        assert self.BACKEND.supports_field(GF(2))
        assert not self.BACKEND.supports_field(GF(16))

    def test_scenario_spec_rejects_incompatible_backend_eagerly(self):
        with pytest.raises(ConfigurationError, match="does not support GF\\(16\\)"):
            ScenarioSpec(topology="ring", n=8, backend="gf2bit").with_config(
                field_size=2
            )  # the base spec (field_size=16) already fails

    def test_scenario_spec_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            ScenarioSpec(topology="ring", n=8, backend="not-a-backend")


# ----------------------------------------------------------------------
# End-to-end: scalar vs batch vs backend on registry scenarios
# ----------------------------------------------------------------------

#: Registry scenarios for the stopping-time equivalence matrix — a spread of
#: protocols (uniform AG, TAG over two tree protocols, standalone tree),
#: topologies, time models, churn and heterogeneous activation.  Each is
#: flipped to GF(2) so the matrix exercises every backend.
EQUIVALENCE_SCENARIOS = (
    "uniform/complete",
    "uniform/ring",
    "uniform/barbell",
    "tag/brr-barbell",
    "tag/is-barbell",
    "tree/brr-broadcast-barbell",
    "churn/ring-crash-restart",
    "hetero/two-speed-ring",
)

EQUIVALENCE_TRIALS = 2


def _signature(results):
    return [
        (
            result.rounds,
            result.timeslots,
            result.completed,
            result.messages_sent,
            result.helpful_messages,
            tuple(sorted(result.completion_rounds.items())),
            tuple(sorted(result.metadata.items())),
        )
        for result in results
    ]


def _gf2_spec(name: str) -> ScenarioSpec:
    return get_scenario(name).with_config(field_size=2).replace(
        trials=EQUIVALENCE_TRIALS
    )


@pytest.fixture(scope="module")
def reference_signatures():
    """Numpy sequential-engine signatures, computed once per scenario."""
    from repro.analysis.stopping_time import measure_protocol

    signatures = {}
    for name in EQUIVALENCE_SCENARIOS:
        scenario = _gf2_spec(name).materialize()
        with use_backend("numpy"):
            results = measure_protocol(
                scenario.graph,
                scenario.protocol_factory,
                scenario.config,
                trials=EQUIVALENCE_TRIALS,
                seed=scenario.spec.seed,
            )
        signatures[name] = _signature(results)
    return signatures


@pytest.mark.parametrize("backend_name", all_backends())
@pytest.mark.parametrize("scenario_name", EQUIVALENCE_SCENARIOS)
class TestScenarioEquivalence:
    """Scalar and batch engines reproduce the reference under every backend."""

    def test_sequential_scalar_engine_matches(
        self, backend_name, scenario_name, reference_signatures
    ):
        from repro.analysis.stopping_time import measure_protocol

        scenario = _gf2_spec(scenario_name).materialize()
        with use_backend(backend_name):
            results = measure_protocol(
                scenario.graph,
                scenario.protocol_factory,
                scenario.config,
                trials=EQUIVALENCE_TRIALS,
                seed=scenario.spec.seed,
            )
        assert _signature(results) == reference_signatures[scenario_name]

    def test_batch_engine_matches(
        self, backend_name, scenario_name, reference_signatures
    ):
        from repro.experiments.parallel import measure_protocol_batched

        spec = _gf2_spec(scenario_name).replace(backend=backend_name)
        results = measure_protocol_batched(spec)
        assert _signature(results) == reference_signatures[scenario_name]


# ----------------------------------------------------------------------
# Store invariance: the cache is backend-blind
# ----------------------------------------------------------------------


class TestStoreBackendInvariance:
    """Satellite: same fingerprint, same records, zero recomputation."""

    def _spec(self, backend: str) -> ScenarioSpec:
        return (
            get_scenario("uniform/complete")
            .with_config(field_size=2)
            .replace(trials=3, backend=backend)
        )

    def test_fingerprint_ignores_backend(self):
        fingerprints = {self._spec(name).fingerprint() for name in all_backends()}
        fingerprints.add(self._spec("").fingerprint())
        assert len(fingerprints) == 1

    def test_backend_excluded_from_fingerprint_payload(self):
        assert "backend" not in self._spec("gf2bit").fingerprint_payload()

    def test_cross_backend_rerun_is_pure_cache_hit(self, tmp_path):
        from repro.experiments.parallel import measure_protocol_batched

        store = ResultStore(tmp_path)
        first = measure_protocol_batched(self._spec("numpy"), store=store)
        assert store.puts == 3 and store.hits == 0

        rerun_store = ResultStore(tmp_path)
        second = measure_protocol_batched(self._spec("gf2bit"), store=rerun_store)
        assert rerun_store.hits == 3
        assert rerun_store.puts == 0
        assert _signature(second) == _signature(first)

    def test_records_land_in_the_same_shard(self, tmp_path):
        from repro.experiments.parallel import measure_protocol_batched

        store = ResultStore(tmp_path)
        measure_protocol_batched(self._spec("gf2bit"), store=store)
        assert store.fingerprints() == [self._spec("numpy").fingerprint()]
        assert store.trial_keys(self._spec("numpy").fingerprint()) == [
            (self._spec("numpy").seed, trial) for trial in range(3)
        ]
