"""Unit tests for the communication models (partner selectors)."""

from __future__ import annotations

import collections

import networkx as nx
import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gossip import FixedPartnerSelector, RoundRobinSelector, UniformSelector
from repro.graphs import line_graph, ring_graph, star_graph


class TestUniformSelector:
    def test_partner_is_always_a_neighbour(self, rng):
        graph = ring_graph(8)
        selector = UniformSelector(graph)
        for node in graph.nodes():
            for _ in range(10):
                partner = selector.partner(node, rng)
                assert graph.has_edge(node, partner)

    def test_partner_distribution_roughly_uniform(self, rng):
        graph = star_graph(5)  # hub 0 with 4 leaves
        selector = UniformSelector(graph)
        counts = collections.Counter(selector.partner(0, rng) for _ in range(4000))
        for leaf in range(1, 5):
            assert 800 <= counts[leaf] <= 1200

    def test_isolated_node_rejected(self, rng):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        graph.add_edge(0, 1)
        graph.add_node(2)
        with pytest.raises(SimulationError):
            UniformSelector(graph)


class TestRoundRobinSelector:
    def test_cycles_through_all_neighbours(self, rng):
        graph = star_graph(5)
        selector = RoundRobinSelector(graph, np.random.default_rng(0))
        partners = [selector.partner(0, rng) for _ in range(4)]
        assert sorted(partners) == [1, 2, 3, 4]
        # The next cycle repeats the same order.
        assert [selector.partner(0, rng) for _ in range(4)] == partners

    def test_reset_restores_initial_offsets(self, rng):
        graph = ring_graph(6)
        selector = RoundRobinSelector(graph, np.random.default_rng(1))
        first = [selector.partner(2, rng) for _ in range(2)]
        selector.reset()
        assert [selector.partner(2, rng) for _ in range(2)] == first

    def test_random_initial_offsets_differ_across_constructions(self, rng):
        graph = star_graph(9)
        offsets = set()
        for seed in range(12):
            selector = RoundRobinSelector(graph, np.random.default_rng(seed))
            offsets.add(selector.partner(0, rng))
        assert len(offsets) > 1

    def test_line_endpoints_have_single_partner(self, rng):
        graph = line_graph(4)
        selector = RoundRobinSelector(graph, np.random.default_rng(2))
        assert selector.partner(0, rng) == 1
        assert selector.partner(0, rng) == 1


class TestFixedPartnerSelector:
    def test_unassigned_nodes_get_none(self, rng):
        selector = FixedPartnerSelector()
        assert selector.partner(3, rng) is None

    def test_assignment_and_partner_map(self, rng):
        selector = FixedPartnerSelector({1: 0})
        selector.set_partner(2, 0)
        assert selector.partner(1, rng) == 0
        assert selector.partner(2, rng) == 0
        assert selector.partner_map() == {1: 0, 2: 0}

    def test_partner_map_is_a_copy(self, rng):
        selector = FixedPartnerSelector({1: 0})
        mapping = selector.partner_map()
        mapping[5] = 9
        assert selector.partner(5, rng) is None
