"""Integration tests: the paper's theorems hold *in shape* at small scale.

These are the executable versions of the claims listed in Table 1, run at
sizes small enough for CI.  They check bounded ratios against the closed-form
bounds and the qualitative orderings (who wins on which topology), never the
asymptotic constants.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    constant_degree_upper_bound,
    fit_power_law,
    run_trials,
    tag_with_brr_upper_bound,
    uniform_ag_upper_bound,
)
from repro.core import SimulationConfig, TimeModel
from repro.gf import GF
from repro.graphs import (
    barbell_graph,
    diameter,
    line_graph,
    max_degree,
    ring_graph,
)
from repro.protocols import AlgebraicGossip, RoundRobinBroadcastTree, TagProtocol
from repro.rlnc import Generation
from repro.experiments import all_to_all_placement, spread_placement, tag_case, uniform_ag_case
from repro.analysis.sweep import run_sweep


def ag_factory(k, config):
    def factory(graph, rng):
        n = graph.number_of_nodes()
        kk = min(k, n)
        generation = Generation.random(GF(config.field_size), kk, 2, rng)
        placement = all_to_all_placement(graph) if kk >= n else spread_placement(graph, kk)
        return AlgebraicGossip(graph, generation, placement, config, rng)

    return factory


def tag_factory(k, config):
    def factory(graph, rng):
        n = graph.number_of_nodes()
        kk = min(k, n)
        generation = Generation.random(GF(config.field_size), kk, 2, rng)
        placement = all_to_all_placement(graph) if kk >= n else spread_placement(graph, kk)
        return TagProtocol(
            graph, generation, placement, config, rng,
            lambda g, r: RoundRobinBroadcastTree(g, 0, r),
        )

    return factory


class TestTheorem1Shape:
    """Uniform AG stays below a constant multiple of (k + log n + D)Δ."""

    @pytest.mark.parametrize("time_model", [TimeModel.SYNCHRONOUS, TimeModel.ASYNCHRONOUS])
    @pytest.mark.parametrize("builder, n", [(line_graph, 12), (ring_graph, 12),
                                            (barbell_graph, 12)])
    def test_measured_below_bound(self, builder, n, time_model):
        graph = builder(n)
        actual_n = graph.number_of_nodes()
        config = SimulationConfig(time_model=time_model, max_rounds=200_000)
        stats = run_trials(graph, ag_factory(actual_n, config), config, trials=3, seed=11)
        bound = uniform_ag_upper_bound(
            actual_n, actual_n, diameter(graph), max_degree(graph)
        )
        assert stats.whp <= bound  # the theorem's constants are generous


class TestTheorem3Shape:
    """On constant-degree graphs the stopping time grows linearly in k and in D."""

    def test_linear_growth_in_k_on_the_ring(self):
        graph = ring_graph(12)
        config = SimulationConfig(max_rounds=100_000)
        ks = [3, 6, 12]
        means = []
        for k in ks:
            stats = run_trials(graph, ag_factory(k, config), config, trials=3, seed=13)
            means.append(stats.mean)
            assert stats.whp <= 6 * constant_degree_upper_bound(k, diameter(graph))
        assert means[0] <= means[1] <= means[2]

    def test_sublinear_in_n_for_fixed_k_is_impossible_below_diameter(self):
        """The stopping time must grow at least like the diameter on the line."""
        config = SimulationConfig(max_rounds=100_000)
        sizes = [8, 16, 24]
        means = []
        for n in sizes:
            graph = line_graph(n)
            stats = run_trials(graph, ag_factory(2, config), config, trials=3, seed=17)
            means.append(stats.mean)
            assert stats.mean >= diameter(graph) / 2
        assert means[-1] > means[0]


class TestTheorem4And5Shape:
    """TAG + B_RR is Θ(n) for k = n on any graph, including the barbell."""

    def test_tag_brr_linear_in_n_on_barbell(self):
        config = SimulationConfig(max_rounds=200_000)
        sizes = [8, 12, 16, 20]
        means = []
        for n in sizes:
            graph = barbell_graph(n)
            stats = run_trials(graph, tag_factory(n, config), config, trials=3, seed=19)
            means.append(stats.mean)
            assert stats.whp <= 3 * tag_with_brr_upper_bound(n, n)
        fit = fit_power_law(sizes, means)
        # Θ(n): the growth exponent should be close to 1 (allow noise at small n).
        assert 0.5 <= fit.exponent <= 1.6

    def test_tag_beats_uniform_ag_on_barbell(self):
        """The headline speed-up: on the barbell TAG wins once n is past the
        small-constant regime, and its advantage grows with n (the paper's
        speed-up ratio is Θ(n) asymptotically)."""
        config = SimulationConfig(max_rounds=400_000)
        gaps = []
        for n in (12, 24):
            graph = barbell_graph(n)
            uniform = run_trials(graph, ag_factory(n, config), config, trials=2, seed=23)
            tag = run_trials(graph, tag_factory(n, config), config, trials=2, seed=23)
            gaps.append(uniform.mean / tag.mean)
        assert gaps[-1] > 1.0  # TAG is faster at the larger size
        assert gaps[-1] > gaps[0]  # and the advantage grows with n


class TestUniformAgBarbellScaling:
    """Uniform AG on the barbell scales super-linearly in n (the Ω(n²) regime)."""

    def test_superlinear_growth(self):
        config = SimulationConfig(max_rounds=400_000)
        sizes = [8, 12, 16, 20]
        means = []
        for n in sizes:
            graph = barbell_graph(n)
            stats = run_trials(graph, ag_factory(n, config), config, trials=2, seed=29)
            means.append(stats.mean)
        fit = fit_power_law(sizes, means)
        assert fit.exponent > 1.2  # clearly super-linear, heading towards 2


class TestSweepIntegration:
    def test_experiment_case_builders_run_end_to_end(self):
        cases = [
            uniform_ag_case("ring", 8, 8),
            tag_case("barbell", 8, 8, spanning_tree="brr"),
        ]
        points = run_sweep(cases, trials=1, seed=31)
        assert len(points) == 2
        assert all(point.stats.trials == 1 for point in points)
        assert points[0].ratio_to("theorem1") <= 1.5
