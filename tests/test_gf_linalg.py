"""Unit tests for linear algebra over finite fields."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FieldError
from repro.gf import GF
from repro.gf.linalg import (
    identity,
    invert_matrix,
    is_in_row_space,
    matmul,
    rank,
    row_reduce,
    solve,
)


class TestRowReduce:
    def test_identity_is_already_reduced(self, gf16):
        eye = identity(gf16, 4)
        reduced, pivots = row_reduce(gf16, eye)
        assert np.array_equal(reduced, eye)
        assert pivots == [0, 1, 2, 3]

    def test_dependent_rows_produce_zero_row(self, gf16):
        matrix = np.array([[1, 2, 3], [2, 4, 6]])  # row2 = 2 * row1 over GF(16)
        reduced, pivots = row_reduce(gf16, matrix)
        assert len(pivots) == 1
        assert np.all(reduced[1] == 0)

    def test_pivots_are_one_and_columns_cleared(self, gf16):
        rng = np.random.default_rng(1)
        matrix = gf16.random_elements(rng, (4, 6))
        reduced, pivots = row_reduce(gf16, matrix)
        for row_index, col in enumerate(pivots):
            assert reduced[row_index, col] == 1
            column = reduced[:, col]
            assert int(np.count_nonzero(column)) == 1

    def test_augmented_columns_never_pivot(self, gf16):
        matrix = np.array([[0, 0, 5], [0, 0, 7]])
        reduced, pivots = row_reduce(gf16, matrix, augmented_columns=1)
        assert pivots == []

    def test_rejects_bad_shapes(self, gf16):
        with pytest.raises(FieldError):
            row_reduce(gf16, np.array([1, 2, 3]))
        with pytest.raises(FieldError):
            row_reduce(gf16, np.array([[1, 2]]), augmented_columns=3)

    def test_input_not_modified(self, gf16):
        matrix = np.array([[3, 1], [1, 2]], dtype=np.uint8)
        original = matrix.copy()
        row_reduce(gf16, matrix)
        assert np.array_equal(matrix, original)


class TestRank:
    def test_rank_of_empty_matrix_is_zero(self, gf16):
        assert rank(gf16, gf16.zeros((0, 5))) == 0

    def test_rank_of_identity(self, any_field):
        assert rank(any_field, identity(any_field, 5)) == 5

    def test_rank_of_random_square_matrix_usually_full(self, gf16):
        rng = np.random.default_rng(2)
        matrix = gf16.random_elements(rng, (6, 6))
        assert 0 < rank(gf16, matrix) <= 6

    def test_rank_bounded_by_min_dimension(self, gf2):
        rng = np.random.default_rng(3)
        matrix = gf2.random_elements(rng, (3, 10))
        assert rank(gf2, matrix) <= 3


class TestRowSpace:
    def test_vector_in_span(self, gf16):
        matrix = np.array([[1, 0, 2], [0, 1, 3]])
        vector = gf16.add(matrix[0], gf16.scalar_mul(5, matrix[1]))
        assert is_in_row_space(gf16, matrix, vector)

    def test_vector_not_in_span(self, gf16):
        matrix = np.array([[1, 0, 0], [0, 1, 0]])
        assert not is_in_row_space(gf16, matrix, np.array([0, 0, 1]))

    def test_zero_vector_always_in_span(self, gf16):
        matrix = np.array([[1, 2, 3]])
        assert is_in_row_space(gf16, matrix, np.zeros(3, dtype=int))

    def test_empty_matrix_only_contains_zero(self, gf16):
        empty = gf16.zeros((0, 3))
        assert is_in_row_space(gf16, empty, np.zeros(3, dtype=int))
        assert not is_in_row_space(gf16, empty, np.array([1, 0, 0]))

    def test_dimension_mismatch_raises(self, gf16):
        with pytest.raises(FieldError):
            is_in_row_space(gf16, np.array([[1, 2]]), np.array([1, 2, 3]))


class TestSolveAndInvert:
    def test_solve_recovers_known_solution(self, any_field):
        rng = np.random.default_rng(4)
        size = 4
        # Build an invertible matrix by perturbing the identity with a random
        # upper-triangular part (always full rank).
        matrix = identity(any_field, size)
        noise = any_field.random_elements(rng, (size, size))
        matrix = any_field.add(matrix, np.triu(noise, k=1).astype(matrix.dtype))
        x_true = any_field.random_elements(rng, (size, 2))
        rhs = matmul(any_field, matrix, x_true)
        x_solved = solve(any_field, matrix, rhs)
        assert np.array_equal(x_solved, x_true)

    def test_solve_vector_rhs(self, gf16):
        matrix = identity(gf16, 3)
        rhs = np.array([5, 6, 7])
        assert np.array_equal(solve(gf16, matrix, rhs), rhs)

    def test_underdetermined_raises(self, gf16):
        matrix = np.array([[1, 2, 3]])
        with pytest.raises(FieldError):
            solve(gf16, matrix, np.array([1]))

    def test_inconsistent_raises(self, gf16):
        matrix = np.array([[1, 0], [1, 0]])  # second row duplicates the first
        rhs = np.array([1, 2])  # ...but asks for different values
        with pytest.raises(FieldError):
            solve(gf16, matrix, rhs)

    def test_invert_matrix_roundtrip(self, gf16):
        rng = np.random.default_rng(6)
        size = 4
        matrix = identity(gf16, size)
        noise = gf16.random_elements(rng, (size, size))
        matrix = gf16.add(matrix, np.triu(noise, k=1).astype(matrix.dtype))
        inverse = invert_matrix(gf16, matrix)
        assert np.array_equal(matmul(gf16, matrix, inverse), identity(gf16, size))

    def test_invert_non_square_raises(self, gf16):
        with pytest.raises(FieldError):
            invert_matrix(gf16, np.array([[1, 2, 3], [4, 5, 6]]))

    def test_matmul_shape_check(self, gf16):
        with pytest.raises(FieldError):
            matmul(gf16, np.array([[1, 2]]), np.array([[1, 2]]))
