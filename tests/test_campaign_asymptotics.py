"""Asymptotics campaign: resume matrix, streaming units, acceptance flow.

The ``asymptotics`` campaign chains each family's decades ``after`` one
another and archives through the streaming-summary store path, so its
resume story is sharper than the generic campaign contract:

* an interrupt **mid-decade** (between units of one family's chain) resumes
  bit-identically from the same store — completed decades serve from cache,
  and the resumed statistics equal an uninterrupted cold run's exactly;
* a **mid-unit** interrupt (some trials archived, the rest not) resumes as
  a ``partial`` unit that recomputes only the missing trial indices;
* a fully-cached rerun puts **zero** records and renders a byte-identical
  report body below the timings marker;
* the CLI acceptance flow (`repro campaign run asymptotics --min-n 160
  --max-n 1600 --trials 1`) completes, reruns fully cached, and rejects the
  decade-scale flags for campaigns that are not decade sweeps.
"""

from __future__ import annotations

import pytest

import repro.campaigns.runner as campaign_runner
from repro.campaigns import (
    CampaignUnit,
    asymptotics_campaign,
    render_html,
    render_markdown,
    report_body,
    run_campaign,
)
from repro.errors import CampaignError
from repro.store import ResultStore


def small_campaign(trials: int = 2):
    """The real campaign builder at a seconds-scale size (two tiny decades).

    The expander family walks 160..1600 and the ring family — which the
    builder scales one decade lower to equalise event cost — 16..160.
    """
    return asymptotics_campaign(min_n=160, max_n=1600, trials=trials)


class TestResumeMatrix:
    def test_interrupt_mid_decade_then_resume_is_bit_identical(
        self, tmp_path, monkeypatch
    ):
        campaign = small_campaign()
        store_path = tmp_path / "store"

        # Kill the campaign while its second decade executes: exactly one
        # unit has completed and archived its summaries.
        real_run_unit = campaign_runner._run_unit
        calls = {"count": 0}

        def interrupting(unit, spec, **kwargs):
            calls["count"] += 1
            if calls["count"] == 2:
                raise KeyboardInterrupt
            return real_run_unit(unit, spec, **kwargs)

        monkeypatch.setattr(campaign_runner, "_run_unit", interrupting)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(campaign, store=ResultStore(store_path))
        monkeypatch.setattr(campaign_runner, "_run_unit", real_run_unit)

        # Resume against the same store: the completed decade is cached,
        # the other three compute.
        store = ResultStore(store_path)
        resumed = run_campaign(campaign, store=store)
        statuses = sorted(o.status for o in resumed.outcomes)
        assert statuses == ["cached", "computed", "computed", "computed"]
        assert resumed.cached_trials == 2
        assert resumed.computed_trials == 6
        assert store.puts == 6

        # Bit-identity with an uninterrupted cold run: same samples, same
        # rendered body (the store path must leave no trace in the stats).
        cold = run_campaign(campaign, store=ResultStore(tmp_path / "cold"))
        for left, right in zip(resumed.outcomes, cold.outcomes):
            assert left.unit.name == right.unit.name
            assert left.stats.samples == right.stats.samples

    def test_mid_unit_interrupt_resumes_partial_trials(self, tmp_path):
        # Simulate a kill halfway through every decade's trial loop by
        # first archiving a single trial per unit (trials is an execution
        # parameter outside the workload fingerprint, so the trials=1 run
        # seeds trial 0 of the very shards the trials=2 run reads).
        store_path = tmp_path / "store"
        run_campaign(small_campaign(trials=1), store=ResultStore(store_path))

        store = ResultStore(store_path)
        resumed = run_campaign(small_campaign(trials=2), store=store)
        for outcome in resumed.outcomes:
            assert outcome.status == "partial"
            assert (outcome.cached_trials, outcome.computed_trials) == (1, 1)
        assert store.puts == 4  # one new summary per decade, nothing else

        cold = run_campaign(
            small_campaign(trials=2), store=ResultStore(tmp_path / "cold")
        )
        for left, right in zip(resumed.outcomes, cold.outcomes):
            assert left.stats.samples == right.stats.samples

    def test_fully_cached_rerun_puts_nothing_and_body_is_byte_identical(
        self, tmp_path
    ):
        campaign = small_campaign()
        store_path = tmp_path / "store"
        run_campaign(campaign, store=ResultStore(store_path))  # cold

        warm_store = ResultStore(store_path)
        warm_one = run_campaign(campaign, store=warm_store)
        warm_two = run_campaign(campaign, store=ResultStore(store_path))
        assert warm_store.puts == 0
        assert warm_one.computed_trials == warm_two.computed_trials == 0
        assert report_body(render_markdown(warm_one)) == report_body(
            render_markdown(warm_two)
        )
        assert report_body(render_html(warm_one)) == report_body(
            render_html(warm_two)
        )

        markdown = render_markdown(warm_one)
        assert "Stopping-time exponent fits" in markdown
        assert "er-logn" in markdown and "ring-of-cliques" in markdown


class TestStreamingUnits:
    def test_summary_units_carry_no_result_payloads(self, tmp_path):
        result = run_campaign(
            small_campaign(trials=1), store=ResultStore(tmp_path / "store")
        )
        for outcome in result.outcomes:
            assert outcome.unit.record == "summary"
            assert outcome.results == ()
            assert outcome.stats.samples  # the aggregate still has every trial

    def test_offline_run_over_an_empty_store_names_missing_trials(self, tmp_path):
        with pytest.raises(CampaignError, match="not fully cached"):
            run_campaign(
                small_campaign(trials=1),
                store=ResultStore(tmp_path / "store"),
                offline=True,
            )

    def test_record_field_round_trips_and_validates(self):
        unit = small_campaign().units[0]
        assert unit.record == "summary"
        data = unit.to_dict()
        assert data["record"] == "summary"
        assert CampaignUnit.from_dict(data) == unit

        # The default full-record mode stays out of the serialized form so
        # campaign files written before the field existed parse unchanged.
        plain = CampaignUnit(name="plain", spec=unit.spec)
        assert "record" not in plain.to_dict()
        with pytest.raises(CampaignError, match="record must be ''"):
            CampaignUnit(name="bad", spec=unit.spec, record="full")

    def test_too_small_min_n_is_refused_eagerly(self):
        # The ring family walks from min_n/10; below 2k nodes the k=8
        # message placement has no room, so the builder refuses up front
        # instead of failing decades into the run.
        with pytest.raises(CampaignError, match="raise --min-n"):
            asymptotics_campaign(min_n=80, max_n=800)


class TestAcceptanceFlow:
    """`repro campaign run asymptotics ...` — the PR's acceptance criterion."""

    def test_cli_runs_then_skips_everything(self, tmp_path, capsys):
        from repro.cli import main

        report_dir = tmp_path / "report"
        args = [
            "campaign", "run", "asymptotics",
            "--min-n", "160", "--max-n", "1600", "--trials", "1",
            "--store", str(tmp_path / "store"), "--report-dir", str(report_dir),
        ]
        assert main(args) == 0
        cold_out = capsys.readouterr().out
        assert "newly computed and saved" in cold_out

        assert main(args) == 0
        warm_out = capsys.readouterr().out
        assert "0 newly computed" in warm_out
        assert "computed (" not in warm_out  # every decade line says cached

        markdown = (report_dir / "report.md").read_text(encoding="utf-8")
        assert "Stopping-time exponent fits" in markdown
        assert "er-logn-n1600" in markdown and "ring-of-cliques-n160" in markdown
        assert (report_dir / "report.html").stat().st_size > 0

    def test_scale_flags_are_rejected_for_other_campaigns(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "campaign", "run", "table1", "--max-n", "10000",
                "--store", str(tmp_path / "store"),
                "--report-dir", str(tmp_path / "report"),
            ]
        )
        assert code == 2
        assert "not valid for campaign 'table1'" in capsys.readouterr().err
