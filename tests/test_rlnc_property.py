"""Property-based tests for the RLNC codec.

The key invariants:

* feeding any sequence of coded packets (helpful or not, in any order) never
  makes the decoder's rank exceed ``k`` nor decrease;
* once the rank reaches ``k``, decoding recovers the original generation
  exactly, regardless of which packets were received;
* the helpfulness predicate agrees with the rank change actually observed.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import GF
from repro.rlnc import CodedPacket, Generation, RlncDecoder, encode_from_decoder, is_helpful_node


@st.composite
def generation_strategy(draw):
    order = draw(st.sampled_from([2, 4, 16]))
    k = draw(st.integers(min_value=1, max_value=5))
    r = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    field = GF(order)
    rng = np.random.default_rng(seed)
    return field, Generation.random(field, k, r, rng), rng


@given(generation_strategy(), st.integers(min_value=1, max_value=40))
@settings(max_examples=60, deadline=None)
def test_rank_monotone_and_bounded(data, packet_count):
    field, generation, rng = data
    source = RlncDecoder(field, generation.k, generation.payload_length)
    for index in range(generation.k):
        source.add_source_message(index, generation.payload_matrix[index])
    sink = RlncDecoder(field, generation.k, generation.payload_length)
    previous_rank = 0
    for _ in range(packet_count):
        packet = encode_from_decoder(source, rng)
        helpful = sink.receive(packet)
        assert sink.rank >= previous_rank
        assert sink.rank <= generation.k
        assert helpful == (sink.rank == previous_rank + 1)
        previous_rank = sink.rank


@given(generation_strategy())
@settings(max_examples=60, deadline=None)
def test_complete_decoder_recovers_generation(data):
    field, generation, rng = data
    source = RlncDecoder(field, generation.k, generation.payload_length)
    for index in range(generation.k):
        source.add_source_message(index, generation.payload_matrix[index])
    sink = RlncDecoder(field, generation.k, generation.payload_length)
    safety = 0
    while not sink.is_complete:
        sink.receive(encode_from_decoder(source, rng))
        safety += 1
        assert safety < 60 * generation.k + 200
    assert np.array_equal(sink.decode(), generation.payload_matrix)


@given(generation_strategy(), st.lists(st.integers(min_value=0, max_value=4), max_size=5))
@settings(max_examples=60, deadline=None)
def test_helpful_node_predicate_matches_possible_gain(data, receiver_indices):
    field, generation, rng = data
    indices = sorted({i % generation.k for i in receiver_indices})
    source = RlncDecoder(field, generation.k, generation.payload_length)
    for index in range(generation.k):
        source.add_source_message(index, generation.payload_matrix[index])
    receiver = RlncDecoder(field, generation.k, generation.payload_length)
    for index in indices:
        receiver.add_source_message(index, generation.payload_matrix[index])
    helpful = is_helpful_node(source, receiver)
    assert helpful == (receiver.rank < generation.k)


@given(generation_strategy(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_relaying_through_an_intermediate_node_preserves_decodability(data, relay_seed):
    """A two-hop chain source → relay → sink still lets the sink decode, even
    though the relay re-encodes (the essence of network coding)."""
    field, generation, rng = data
    relay_rng = np.random.default_rng(relay_seed)
    source = RlncDecoder(field, generation.k, generation.payload_length)
    for index in range(generation.k):
        source.add_source_message(index, generation.payload_matrix[index])
    relay = RlncDecoder(field, generation.k, generation.payload_length)
    sink = RlncDecoder(field, generation.k, generation.payload_length)
    safety = 0
    while not sink.is_complete:
        relay.receive(encode_from_decoder(source, rng))
        packet = encode_from_decoder(relay, relay_rng)
        if packet is not None:
            sink.receive(packet)
        safety += 1
        assert safety < 200 * generation.k + 400
    assert np.array_equal(sink.decode(), generation.payload_matrix)


@given(
    st.lists(st.integers(min_value=0, max_value=15), min_size=4, max_size=4),
    st.lists(st.integers(min_value=0, max_value=15), min_size=2, max_size=2),
)
@settings(max_examples=60, deadline=None)
def test_inconsistent_dimensions_never_accepted_silently(coeffs, payload):
    """Arbitrary hand-built packets either raise (wrong size) or are processed."""
    field = GF(16)
    decoder = RlncDecoder(field, 4, 2)
    packet = CodedPacket(coefficients=tuple(coeffs), payload=tuple(payload))
    decoder.receive(packet)  # must not raise for matching sizes
    assert decoder.rank <= 1
