"""Unit tests for the closed-form bound evaluators."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    brr_broadcast_upper_bound,
    claim1_min_diameter,
    constant_degree_upper_bound,
    haeupler_upper_bound,
    is_protocol_upper_bound,
    k_dissemination_lower_bound,
    lemma1_tree_gossip_bound,
    lemma2_path_degree_bound,
    log2ceil,
    tag_broadcast_upper_bound,
    tag_upper_bound,
    tag_with_brr_upper_bound,
    tag_with_is_upper_bound,
    theorem2_bound_rounds,
    uniform_ag_upper_bound,
)
from repro.errors import AnalysisError


class TestLog2Ceil:
    def test_values(self):
        assert log2ceil(1) == 1
        assert log2ceil(2) == 1
        assert log2ceil(3) == 2
        assert log2ceil(1024) == 10

    def test_invalid(self):
        with pytest.raises(AnalysisError):
            log2ceil(0)


class TestTheorem1Bound:
    def test_formula(self):
        n, k, d, delta = 64, 16, 10, 4
        assert uniform_ag_upper_bound(n, k, d, delta) == pytest.approx(
            (16 + math.log(64) + 10) * 4
        )

    def test_monotonicity(self):
        base = uniform_ag_upper_bound(64, 16, 10, 4)
        assert uniform_ag_upper_bound(64, 32, 10, 4) > base
        assert uniform_ag_upper_bound(64, 16, 20, 4) > base
        assert uniform_ag_upper_bound(64, 16, 10, 8) > base

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            uniform_ag_upper_bound(0, 1, 1, 1)
        with pytest.raises(AnalysisError):
            uniform_ag_upper_bound(10, -1, 1, 1)


class TestTheorem3Bounds:
    def test_constant_degree_upper_is_k_plus_d(self):
        assert constant_degree_upper_bound(10, 7) == 17

    def test_lower_bound_sync_includes_diameter(self):
        sync = k_dissemination_lower_bound(10, 8, synchronous=True)
        async_ = k_dissemination_lower_bound(10, 8, synchronous=False)
        assert sync == pytest.approx(9.0)
        assert async_ == pytest.approx(5.0)
        assert sync > async_

    def test_upper_and_lower_sandwich(self):
        """Θ(k + D): the upper bound is within a constant factor of the lower."""
        for k, d in [(4, 4), (16, 8), (64, 20)]:
            upper = constant_degree_upper_bound(k, d)
            lower = k_dissemination_lower_bound(k, d, synchronous=True)
            assert upper / lower <= 2.1


class TestTagBounds:
    def test_theorem4(self):
        value = tag_upper_bound(100, 20, 10, 50)
        assert value == pytest.approx(20 + math.log(100) + 10 + 50)
        with pytest.raises(AnalysisError):
            tag_upper_bound(100, 20, -1, 50)

    def test_broadcast_variant_drops_tree_diameter(self):
        assert tag_broadcast_upper_bound(100, 20, 50) < tag_upper_bound(100, 20, 30, 50)

    def test_brr_and_combination(self):
        assert brr_broadcast_upper_bound(40) == 120
        assert tag_with_brr_upper_bound(40, 40) == pytest.approx(
            40 + math.log(40) + 120
        )

    def test_tag_with_brr_is_theta_n_for_k_equal_n(self):
        """For k = n the bound is linear in n (the paper's headline result)."""
        ratios = [tag_with_brr_upper_bound(n, n) / n for n in (32, 64, 128, 256)]
        assert max(ratios) - min(ratios) < 1.0  # converges to a constant (≈ 4)


class TestISBounds:
    def test_is_protocol_bound_decreases_with_conductance(self):
        slow = is_protocol_upper_bound(256, c=2, weak_conductance=0.1)
        fast = is_protocol_upper_bound(256, c=2, weak_conductance=0.9)
        assert fast < slow

    def test_theorem7_k_dominates_for_large_k(self):
        """For k = log^{2p+1} n and Φ_c = 1/log^p n the k term dominates the bound."""
        n = 4096
        p = 1
        c = math.log(n) ** p
        phi = 1 / math.log(n) ** p
        k = int(math.log(n) ** (2 * p + 1))
        total = tag_with_is_upper_bound(n, k, c, phi)
        assert total <= 3 * k + 20

    def test_invalid(self):
        with pytest.raises(AnalysisError):
            is_protocol_upper_bound(10, c=0, weak_conductance=0.5)


class TestHaeuplerComparison:
    def test_formula(self):
        assert haeupler_upper_bound(10, 0.5, 0.25, 100) == pytest.approx(
            20 + math.log(100) ** 2 / 0.25
        )

    def test_line_improvement_factor_grows_with_n(self):
        """Table 2: on the line our bound wins by ~log² n."""
        factors = []
        for n in (64, 256, 1024):
            ours = uniform_ag_upper_bound(n, n, n - 1, 2)
            haeupler = haeupler_upper_bound(n, 1.0 / n, 1.0 / n**2, n)
            factors.append(haeupler / ours)
        assert factors[0] < factors[1] < factors[2]


class TestQueueingAndStructuralBounds:
    def test_theorem2_rounds(self):
        assert theorem2_bound_rounds(10, 5, 100, 0.5) == pytest.approx(
            (10 + 5 + math.log(100)) / 0.5
        )

    def test_lemma1(self):
        assert lemma1_tree_gossip_bound(100, 10, 7) == pytest.approx(
            10 + math.log(100) + 7
        )

    def test_claim1(self):
        assert claim1_min_diameter(64, 2) == pytest.approx(4.0)
        assert claim1_min_diameter(3, 1) == 2.0

    def test_lemma2(self):
        assert lemma2_path_degree_bound(20) == 60
        with pytest.raises(AnalysisError):
            lemma2_path_degree_bound(0)
