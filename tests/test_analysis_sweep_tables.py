"""Tests for parameter sweeps and the Table 1 / Table 2 generators."""

from __future__ import annotations

import pytest

from repro.analysis import (
    SweepCase,
    format_table,
    run_sweep,
    scaling_table,
    table1_rows,
    table2_rows,
)
from repro.core import SimulationConfig
from repro.errors import AnalysisError
from repro.gf import GF
from repro.graphs import complete_graph, line_graph, ring_graph
from repro.protocols import AlgebraicGossip
from repro.rlnc import Generation
from repro.experiments import all_to_all_placement


def make_case(n, label=None):
    graph = ring_graph(n)
    config = SimulationConfig(max_rounds=50_000)

    def factory(g, rng):
        generation = Generation.random(GF(16), n, 2, rng)
        return AlgebraicGossip(g, generation, all_to_all_placement(g), config, rng)

    return SweepCase(
        label=label or f"ring n={n}",
        value=float(n),
        graph=graph,
        protocol_factory=factory,
        config=config,
        bounds={"trivial": 100.0 * n},
    )


class TestSweep:
    def test_run_sweep_produces_point_per_case(self):
        points = run_sweep([make_case(6), make_case(8)], trials=2, seed=0)
        assert len(points) == 2
        assert points[0].value == 6
        assert points[1].value == 8
        assert all(point.stats.trials == 2 for point in points)
        assert all(point.ratio_to("trivial") < 1.0 for point in points)

    def test_empty_sweep_rejected(self):
        with pytest.raises(AnalysisError):
            run_sweep([], trials=1)

    def test_unknown_bound_name(self):
        points = run_sweep([make_case(6)], trials=1, seed=0)
        with pytest.raises(AnalysisError):
            points[0].ratio_to("nonexistent")

    def test_scaling_table_columns(self):
        points = run_sweep([make_case(6)], trials=2, seed=0)
        rows = scaling_table(points, bound_names=("trivial",), value_header="n")
        assert rows[0]["n"] == 6
        assert "mean_rounds" in rows[0]
        assert "ratio(trivial)" in rows[0]


class TestTable1:
    def test_rows_cover_all_protocols(self):
        graphs = {"ring": ring_graph(16), "complete": complete_graph(16)}
        rows = table1_rows(16, 8, graphs=graphs)
        protocols = {row["protocol"] for row in rows}
        assert {"Uniform AG", "TAG", "TAG + B_RR", "TAG + IS"} <= protocols
        # The constant-degree ring earns an order-optimal Θ(k + D) row.
        assert any(row["bound"] == "Θ(k + D)" for row in rows)
        for row in rows:
            assert row["bound_value"] >= row["lower_bound_value"]

    def test_requires_at_least_one_graph(self):
        with pytest.raises(AnalysisError):
            table1_rows(16, 8, graphs={})


class TestTable2:
    def test_rows_families_and_improvement(self):
        rows = table2_rows(64, 64)
        assert [row["graph"] for row in rows] == ["line", "grid", "binary_tree"]
        for row in rows:
            assert row["our_bound"] > 0
            assert row["haeupler_bound"] > 0
            # Our bound should not lose to Haeupler's on these three families
            # (that is the entire point of Table 2).
            assert row["improvement_factor"] >= 0.8

    def test_improvement_factor_grows_with_n_on_the_line(self):
        small = table2_rows(32, 32)[0]["improvement_factor"]
        large = table2_rows(128, 128)[0]["improvement_factor"]
        assert large > small

    def test_minimum_size(self):
        with pytest.raises(AnalysisError):
            table2_rows(4, 4)


class TestFormatTable:
    def test_renders_headers_and_rows(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_mismatched_columns_rejected(self):
        with pytest.raises(AnalysisError):
            format_table([{"a": 1}, {"b": 2}])
        with pytest.raises(AnalysisError):
            format_table([])
