"""Unit tests for polynomial helpers used in field construction."""

from __future__ import annotations

import pytest

from repro.errors import FieldError
from repro.gf.polynomial import (
    CONWAY_BINARY_POLYNOMIALS,
    factor_prime_power,
    find_binary_irreducible,
    find_irreducible,
    gf2_poly_degree,
    gf2_poly_is_irreducible,
    gf2_poly_mulmod,
    is_prime,
)


class TestIsPrime:
    def test_small_primes(self):
        assert all(is_prime(p) for p in (2, 3, 5, 7, 11, 13, 127, 251))

    def test_small_composites_and_edge_cases(self):
        assert not any(is_prime(v) for v in (-3, 0, 1, 4, 6, 9, 100, 121, 255))


class TestFactorPrimePower:
    @pytest.mark.parametrize(
        "order, expected",
        [(2, (2, 1)), (4, (2, 2)), (8, (2, 3)), (9, (3, 2)), (16, (2, 4)),
         (27, (3, 3)), (25, (5, 2)), (256, (2, 8)), (7, (7, 1)), (121, (11, 2))],
    )
    def test_prime_powers(self, order, expected):
        assert factor_prime_power(order) == expected

    @pytest.mark.parametrize("order", [1, 0, 6, 12, 15, 100, 200])
    def test_non_prime_powers_rejected(self, order):
        with pytest.raises(FieldError):
            factor_prime_power(order)


class TestGF2Polynomials:
    def test_degree(self):
        assert gf2_poly_degree(0) == -1
        assert gf2_poly_degree(1) == 0
        assert gf2_poly_degree(0b10011) == 4

    def test_mulmod_matches_known_gf16_product(self):
        # In GF(16) with x^4 + x + 1: x * x^3 = x^4 = x + 1 -> 0b0011.
        assert gf2_poly_mulmod(0b0010, 0b1000, 0b10011) == 0b0011

    def test_mulmod_identity(self):
        modulus = CONWAY_BINARY_POLYNOMIALS[8]
        for value in (1, 2, 37, 255):
            assert gf2_poly_mulmod(value, 1, modulus) == value

    def test_standard_polynomials_are_irreducible(self):
        for degree, poly in CONWAY_BINARY_POLYNOMIALS.items():
            if degree >= 2:
                assert gf2_poly_is_irreducible(poly), f"degree {degree}"

    def test_reducible_polynomial_detected(self):
        # x^2 = x * x is reducible; x^4 + 1 = (x+1)^4 is reducible.
        assert not gf2_poly_is_irreducible(0b100)
        assert not gf2_poly_is_irreducible(0b10001)

    def test_find_binary_irreducible_unusual_degree(self):
        poly = find_binary_irreducible(9)
        assert gf2_poly_degree(poly) == 9
        assert gf2_poly_is_irreducible(poly)

    def test_find_binary_irreducible_rejects_bad_degree(self):
        with pytest.raises(FieldError):
            find_binary_irreducible(0)


class TestFindIrreducible:
    def test_degree_one_is_x(self):
        assert find_irreducible(5, 1) == (0, 1)

    @pytest.mark.parametrize("p, m", [(3, 2), (3, 3), (5, 2), (7, 2), (11, 2)])
    def test_no_roots_in_base_field(self, p, m):
        coeffs = find_irreducible(p, m)
        assert len(coeffs) == m + 1
        assert coeffs[-1] == 1  # monic
        for x in range(p):
            value = sum(c * x**i for i, c in enumerate(coeffs)) % p
            assert value != 0

    def test_large_degree_non_binary_rejected(self):
        with pytest.raises(FieldError):
            find_irreducible(3, 4)

    def test_non_prime_characteristic_rejected(self):
        with pytest.raises(FieldError):
            find_irreducible(4, 2)
