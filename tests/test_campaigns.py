"""Tests for the declarative campaign layer (spec, registry, runner, report)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.campaigns import (
    ARTIFACT_KINDS,
    CAMPAIGNS,
    ArtifactSpec,
    CampaignSpec,
    CampaignUnit,
    campaign_names,
    get_campaign,
    load_campaign_file,
    register_campaign,
    render_html,
    render_markdown,
    render_text_summary,
    report_body,
    run_campaign,
    write_report,
)
from repro.campaigns.report import TIMINGS_MARKER
from repro.errors import CampaignError
from repro.scenarios import ScenarioSpec
from repro.store import ResultStore


def tiny_spec(topology: str = "ring", *, n: int = 8, seed: int = 3) -> ScenarioSpec:
    return ScenarioSpec(topology=topology, n=n, k=4, trials=2, seed=seed)


def tiny_campaign(**overrides) -> CampaignSpec:
    defaults = dict(
        name="tiny",
        title="Tiny test campaign",
        units=(
            CampaignUnit(name="ring", spec=tiny_spec("ring")),
            CampaignUnit(name="line", spec=tiny_spec("line"), after=("ring",)),
        ),
        artifacts=(
            ArtifactSpec(kind="measured-table", title="Measured"),
            ArtifactSpec(kind="csv", title="Trials"),
        ),
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestCampaignSpec:
    def test_json_round_trip(self):
        campaign = tiny_campaign()
        assert CampaignSpec.from_json(campaign.to_json()) == campaign

    def test_builtin_campaigns_round_trip(self):
        for name in campaign_names():
            campaign = CAMPAIGNS[name]
            assert CampaignSpec.from_dict(campaign.to_dict()) == campaign

    def test_unit_needs_exactly_one_workload_source(self):
        with pytest.raises(CampaignError, match="exactly one"):
            CampaignUnit(name="u")
        with pytest.raises(CampaignError, match="exactly one"):
            CampaignUnit(name="u", scenario="uniform/line", spec=tiny_spec())

    def test_duplicate_unit_names_rejected(self):
        with pytest.raises(CampaignError, match="duplicate"):
            tiny_campaign(
                units=(
                    CampaignUnit(name="ring", spec=tiny_spec()),
                    CampaignUnit(name="ring", spec=tiny_spec("line")),
                ),
                artifacts=(),
            )

    def test_unknown_dependency_rejected(self):
        with pytest.raises(CampaignError, match="unknown unit"):
            tiny_campaign(
                units=(CampaignUnit(name="a", spec=tiny_spec(), after=("ghost",)),),
                artifacts=(),
            )

    def test_unknown_scenario_name_fails_at_construction_with_suggestion(self):
        with pytest.raises(CampaignError, match="did you mean"):
            tiny_campaign(
                units=(CampaignUnit(name="a", scenario="uniform/lin"),),
                artifacts=(),
            )

    def test_artifact_referencing_unknown_unit_rejected(self):
        with pytest.raises(CampaignError, match="references unknown"):
            tiny_campaign(
                artifacts=(ArtifactSpec(kind="csv", units=("ghost",)),),
            )

    def test_unknown_artifact_kind_rejected(self):
        with pytest.raises(CampaignError, match="unknown artifact kind"):
            ArtifactSpec(kind="pie-chart")
        assert "measured-table" in ARTIFACT_KINDS

    def test_colliding_csv_slugs_rejected_at_load_time(self):
        # Two csv-producing artifacts whose labels slug identically would
        # fight over one <slug>.csv side file; that must fail when the
        # campaign is built, not after it has fully executed.
        with pytest.raises(CampaignError, match="distinct titles"):
            tiny_campaign(
                artifacts=(
                    ArtifactSpec(kind="csv", title="Per-trial times"),
                    ArtifactSpec(kind="rank-evolution", title="per trial times"),
                ),
            )

    def test_dependency_cycle_detected(self):
        with pytest.raises(CampaignError, match="cycle"):
            tiny_campaign(
                units=(
                    CampaignUnit(name="a", spec=tiny_spec(), after=("b",)),
                    CampaignUnit(name="b", spec=tiny_spec("line"), after=("a",)),
                ),
                artifacts=(),
            )

    def test_execution_order_respects_after_edges(self):
        campaign = tiny_campaign(
            units=(
                CampaignUnit(name="last", spec=tiny_spec(), after=("mid",)),
                CampaignUnit(name="first", spec=tiny_spec("line")),
                CampaignUnit(name="mid", spec=tiny_spec("grid"), after=("first",)),
            ),
            artifacts=(),
        )
        assert [u.name for u in campaign.execution_order()] == ["first", "mid", "last"]

    def test_resolve_precedence_campaign_beats_unit_beats_spec(self):
        unit = CampaignUnit(name="u", spec=tiny_spec(), trials=7, seed=11)
        assert unit.resolve().trials == 7
        assert unit.resolve().seed == 11
        assert unit.resolve(trials=2, seed=5).trials == 2
        assert unit.resolve(trials=2, seed=5).seed == 5
        bare = CampaignUnit(name="u", spec=tiny_spec())
        assert bare.resolve().trials == tiny_spec().trials


class TestCampaignFiles:
    def test_toml_file_round_trip(self, tmp_path):
        path = tmp_path / "campaign.toml"
        path.write_text(
            """
name = "from-toml"
title = "TOML campaign"

[[units]]
name = "registered"
scenario = "uniform/line"
trials = 2

[[units]]
name = "inline"
after = ["registered"]
[units.spec]
topology = "ring"
n = 8
k = 4

[[artifacts]]
kind = "measured-table"
title = "Rows"
units = ["registered", "inline"]
""",
            encoding="utf-8",
        )
        campaign = load_campaign_file(path)
        assert campaign.name == "from-toml"
        assert campaign.unit("registered").resolve().trials == 2
        assert [u.name for u in campaign.execution_order()] == ["registered", "inline"]

    def test_json_file_accepted(self, tmp_path):
        campaign = tiny_campaign()
        path = tmp_path / "campaign.json"
        path.write_text(campaign.to_json(), encoding="utf-8")
        assert load_campaign_file(path) == campaign

    def test_bad_files_raise_campaign_error(self, tmp_path):
        missing = tmp_path / "nope.toml"
        with pytest.raises(CampaignError, match="cannot read"):
            load_campaign_file(missing)
        bad = tmp_path / "bad.toml"
        bad.write_text("name = [unclosed", encoding="utf-8")
        with pytest.raises(CampaignError, match="not valid TOML"):
            load_campaign_file(bad)
        bad_json = tmp_path / "bad.json"
        bad_json.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(CampaignError, match="top level"):
            load_campaign_file(bad_json)


class TestRegistry:
    def test_builtins_present(self):
        assert {"table1", "table2", "theorem2", "theorem5", "full-paper"} <= set(
            campaign_names()
        )

    def test_unknown_campaign_suggests(self):
        with pytest.raises(CampaignError, match="did you mean 'table1'"):
            get_campaign("tabel1")

    def test_register_rejects_duplicates(self):
        campaign = tiny_campaign(name="tiny-registered")
        register_campaign(campaign)
        try:
            with pytest.raises(CampaignError, match="already registered"):
                register_campaign(campaign)
            register_campaign(campaign, overwrite=True)
        finally:
            CAMPAIGNS.pop("tiny-registered", None)

    def test_full_paper_csv_artifacts_write_distinct_files(self):
        # Regression: table2 and theorem2 both declare a csv artifact with
        # the same title; the full-paper union must keep their side-file
        # slugs distinct (titles are prefixed by source campaign) or
        # write_report would refuse to emit the flagship report.
        from repro.campaigns.spec import artifact_slug

        full = get_campaign("full-paper")
        slugs = [
            artifact_slug(artifact.label)
            for artifact in full.artifacts
            if artifact.kind in ("csv", "rank-evolution")
        ]
        assert len(slugs) == len(set(slugs))
        assert len(slugs) >= 3

    def test_full_paper_covers_all_parts(self):
        full = get_campaign("full-paper")
        prefixes = {unit.name.split("/", 1)[0] for unit in full.units}
        assert prefixes == {"table1", "table2", "theorem2", "theorem5"}
        # Every part's units appear, renamed but workload-identical.
        for part_name in sorted(prefixes):
            part = get_campaign(part_name)
            for unit in part.units:
                combined = full.unit(f"{part_name}/{unit.name}")
                assert combined.resolve() == unit.resolve()


class TestRunner:
    def test_requires_store(self):
        with pytest.raises(CampaignError, match="requires a ResultStore"):
            run_campaign(tiny_campaign(), store=None)

    def test_cold_run_computes_everything(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        result = run_campaign(tiny_campaign(), store=store)
        assert result.computed_trials == result.total_trials == 4
        assert result.cached_trials == 0
        assert all(outcome.status == "computed" for outcome in result.outcomes)
        assert store.puts == 4

    def test_rerun_is_fully_cached(self, tmp_path):
        campaign = tiny_campaign()
        run_campaign(campaign, store=ResultStore(tmp_path / "store"))
        store = ResultStore(tmp_path / "store")
        result = run_campaign(campaign, store=store)
        assert store.puts == 0
        assert result.computed_trials == 0
        assert all(outcome.status == "cached" for outcome in result.outcomes)

    def test_campaign_trials_override_changes_plan(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        result = run_campaign(tiny_campaign(), store=store, trials=1)
        assert result.total_trials == 2  # 1 per unit
        assert all(outcome.trials == 1 for outcome in result.outcomes)

    def test_results_match_direct_scenario_run(self, tmp_path):
        # The campaign layer adds orchestration, not physics: a unit's stats
        # equal running its spec directly.
        spec = tiny_spec()
        direct = spec.materialize().run()
        result = run_campaign(
            tiny_campaign(
                units=(CampaignUnit(name="only", spec=spec),), artifacts=()
            ),
            store=ResultStore(tmp_path / "store"),
        )
        assert result.outcome("only").stats.samples == direct.samples

    def test_offline_mode_requires_full_cache(self, tmp_path):
        campaign = tiny_campaign()
        store = ResultStore(tmp_path / "store")
        with pytest.raises(CampaignError, match="not fully cached"):
            run_campaign(campaign, store=store, offline=True)
        run_campaign(campaign, store=store)
        offline_store = ResultStore(tmp_path / "store")
        result = run_campaign(campaign, store=offline_store, offline=True)
        assert offline_store.puts == 0
        assert result.computed_trials == 0

    def test_fresh_recomputes_and_verifies(self, tmp_path):
        campaign = tiny_campaign()
        run_campaign(campaign, store=ResultStore(tmp_path / "store"))
        store = ResultStore(tmp_path / "store")
        result = run_campaign(campaign, store=store, fresh=True)
        # Everything recomputed; nothing newly archived (payloads identical).
        assert result.computed_trials == result.total_trials
        assert store.puts == 0

    def test_shared_pool_multiprocess_run_matches_in_process(self, tmp_path):
        campaign = tiny_campaign()
        in_process = run_campaign(campaign, store=ResultStore(tmp_path / "a"))
        pooled = run_campaign(campaign, store=ResultStore(tmp_path / "b"), jobs=2)
        for left, right in zip(in_process.outcomes, pooled.outcomes):
            assert left.stats.samples == right.stats.samples

    def test_artifacts_evaluated(self, tmp_path):
        result = run_campaign(
            tiny_campaign(), store=ResultStore(tmp_path / "store")
        )
        measured, csv = result.artifacts
        assert [row["unit"] for row in measured.rows] == ["ring", "line"]
        assert all(row["trials"] == 2 for row in measured.rows)
        assert csv.csv.startswith("unit,fingerprint,seed,trial,rounds")
        assert csv.csv.count("\n") == 1 + 4  # header + one line per trial

    def test_rank_evolution_rejects_tree_protocols(self, tmp_path):
        campaign = tiny_campaign(
            units=(
                CampaignUnit(
                    name="tree",
                    spec=ScenarioSpec(
                        topology="ring",
                        n=8,
                        protocol="spanning_tree",
                        trials=1,
                        seed=0,
                    ),
                ),
            ),
            artifacts=(ArtifactSpec(kind="rank-evolution", units=("tree",)),),
        )
        with pytest.raises(CampaignError, match="reports no decoder ranks"):
            run_campaign(campaign, store=ResultStore(tmp_path / "store"))

    def test_rank_evolution_curves_recorded(self, tmp_path):
        campaign = tiny_campaign(
            artifacts=(ArtifactSpec(kind="rank-evolution", units=("ring",)),),
        )
        result = run_campaign(campaign, store=ResultStore(tmp_path / "store"))
        (artifact,) = result.artifacts
        ((name, points),) = artifact.curves
        assert name == "ring"
        # The curve ends with every node at full rank k.
        assert points[-1][1] == tiny_spec().k
        assert artifact.csv.startswith("unit,round,min_rank")


class TestReport:
    def run_tiny(self, tmp_path) -> tuple:
        store = ResultStore(tmp_path / "store")
        result = run_campaign(tiny_campaign(), store=store)
        return store, result

    def test_markdown_report_structure(self, tmp_path):
        _, result = self.run_tiny(tmp_path)
        markdown = render_markdown(result)
        assert markdown.startswith("# Campaign report: Tiny test campaign")
        assert "## Units" in markdown
        assert "## Cache statistics" in markdown
        assert "## Campaign spec" in markdown
        assert TIMINGS_MARKER in markdown
        # The embedded spec is the exact campaign document.
        embedded = markdown.split("```json\n", 1)[1].split("\n```", 1)[0]
        assert CampaignSpec.from_json(embedded) == result.campaign

    def test_regenerate_hint_matches_campaign_provenance(self, tmp_path):
        # An unregistered (file-loaded) campaign cannot be regenerated by
        # name; its report must point at the embedded spec instead.
        _, result = self.run_tiny(tmp_path)
        markdown = render_markdown(result)
        assert "campaign run tiny" not in markdown
        assert "--file" in markdown.split("## Units")[0]
        # A registered campaign regenerates by name.
        store = ResultStore(tmp_path / "store2")
        registered = run_campaign(
            __import__("repro.campaigns", fromlist=["get_campaign"]).get_campaign(
                "theorem2"
            ),
            store=store,
            trials=1,
        )
        assert "campaign run theorem2" in render_markdown(registered)

    def test_body_excludes_timings(self, tmp_path):
        _, result = self.run_tiny(tmp_path)
        body = report_body(render_markdown(result))
        assert "Execution timings" not in body
        assert "## Units" in body

    def test_html_report_is_standalone(self, tmp_path):
        _, result = self.run_tiny(tmp_path)
        html_text = render_html(result)
        assert html_text.startswith("<!DOCTYPE html>")
        assert "<table>" in html_text
        assert TIMINGS_MARKER in html_text

    def test_html_rank_curves_render_svg(self, tmp_path):
        campaign = tiny_campaign(
            artifacts=(ArtifactSpec(kind="rank-evolution", units=("ring",)),),
        )
        result = run_campaign(campaign, store=ResultStore(tmp_path / "store"))
        assert "<svg" in render_html(result)

    def test_write_report_emits_files(self, tmp_path):
        _, result = self.run_tiny(tmp_path)
        written = write_report(result, tmp_path / "report")
        assert written["md"].read_text(encoding="utf-8").startswith("# Campaign")
        assert written["html"].exists()
        csv_paths = [p for key, p in written.items() if key not in ("md", "html")]
        assert len(csv_paths) == 1 and csv_paths[0].suffix == ".csv"

    def test_write_report_rejects_unknown_format(self, tmp_path):
        _, result = self.run_tiny(tmp_path)
        with pytest.raises(CampaignError, match="unknown report format"):
            write_report(result, tmp_path / "report", formats=("pdf",))

    def test_text_summary_names_cache_split(self, tmp_path):
        _, result = self.run_tiny(tmp_path)
        summary = render_text_summary(result)
        assert "0 trial(s) read from cache, 4 newly computed" in summary


class TestCampaignCli:
    def test_list_and_show(self, capsys):
        from repro.cli import main

        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        assert "full-paper" in out and "table1" in out
        assert main(["campaign", "show", "theorem2"]) == 0
        out = capsys.readouterr().out
        assert "units (3" in out
        assert main(["campaign", "show", "table2", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["name"] == "table2"

    def test_show_unknown_campaign_suggests(self, capsys):
        from repro.cli import main

        assert main(["campaign", "show", "tabel2"]) == 2
        assert "did you mean" in capsys.readouterr().err

    def test_run_requires_exactly_one_source(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["campaign", "run", "--store", str(tmp_path / "s")]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_run_from_file_and_report_offline(self, capsys, tmp_path):
        from repro.cli import main

        campaign_path = tmp_path / "tiny.json"
        campaign_path.write_text(tiny_campaign().to_json(), encoding="utf-8")
        store = str(tmp_path / "store")
        report_dir = tmp_path / "report"
        code = main(
            ["campaign", "run", "--file", str(campaign_path),
             "--store", store, "--report-dir", str(report_dir)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "4 newly computed" in out
        assert (report_dir / "report.md").exists()
        assert (report_dir / "report.html").exists()
        # A fully-cached rerun and an offline report render the same body
        # (the cold run above differs: it marks its units computed).
        code = main(
            ["campaign", "run", "--file", str(campaign_path),
             "--store", store, "--report-dir", str(report_dir)]
        )
        assert code == 0
        assert "0 newly computed" in capsys.readouterr().out
        code = main(
            ["campaign", "report", "--file", str(campaign_path),
             "--store", store, "--report-dir", str(tmp_path / "report2"),
             "--format", "md"]
        )
        assert code == 0
        capsys.readouterr()
        cached_run = report_body((report_dir / "report.md").read_text(encoding="utf-8"))
        offline = report_body(
            (tmp_path / "report2" / "report.md").read_text(encoding="utf-8")
        )
        assert cached_run == offline

    def test_report_against_missing_store_fails(self, capsys, tmp_path):
        from repro.cli import main

        code = main(
            ["campaign", "report", "table1", "--store", str(tmp_path / "none"),
             "--report-dir", str(tmp_path / "r")]
        )
        assert code == 2
        assert "does not exist" in capsys.readouterr().err


class TestScenarioDidYouMean:
    def test_scenario_run_unknown_name_exits_with_suggestion(self, capsys):
        from repro.cli import main

        code = main(["scenario", "run", "uniform/lin"])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown scenario" in captured.err
        assert "did you mean" in captured.err
        assert "uniform/line" in captured.err
        assert "Traceback" not in captured.err

    def test_scenario_show_unknown_name_suggests_too(self, capsys):
        from repro.cli import main

        assert main(["scenario", "show", "churn/ring-crash-restar"]) == 2
        assert "did you mean 'churn/ring-crash-restart'" in capsys.readouterr().err
