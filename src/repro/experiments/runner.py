"""Named, reproducible experiment definitions.

Every table/figure reproduction in DESIGN.md has an experiment id (E1–E10).
This module gives each a *named, parameterised, reproducible* definition that
both the benchmark harness and EXPERIMENTS.md generation call into, so the
numbers reported in documentation and the numbers produced by
``pytest benchmarks/`` come from the same code path.

An :class:`Experiment` bundles a builder function returning the list of
:class:`~repro.analysis.sweep.SweepCase` objects to run; :func:`run_experiment`
executes it and returns the sweep points plus the scaling table rows.

Case construction is entirely delegated to the scenario layer
(:mod:`repro.scenarios`): :func:`uniform_ag_case` and :func:`tag_case` are
thin wrappers that assemble a :class:`~repro.scenarios.ScenarioSpec` and
materialise it, so every experiment case is traceable to a declarative,
JSON-serialisable spec (``case.spec``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..analysis.sweep import SweepCase, SweepPoint, run_sweep, scaling_table
from ..core.config import SimulationConfig, TimeModel
from ..errors import AnalysisError
from ..scenarios.spec import (
    ScenarioSpec,
    SpanningTreeFactory,
    TagFactory,
    UniformGossipFactory,
    default_scenario_config,
)

__all__ = [
    "Experiment",
    "ExperimentResult",
    "EXPERIMENTS",
    "register_experiment",
    "run_experiment",
    "uniform_ag_case",
    "tag_case",
    "default_config",
    "UniformGossipFactory",
    "TagFactory",
    "SpanningTreeFactory",
]


def default_config(
    *,
    time_model: TimeModel = TimeModel.SYNCHRONOUS,
    field_size: int = 16,
    max_rounds: int = 50_000,
    allow_incomplete: bool = False,
) -> SimulationConfig:
    """The configuration experiments share unless they say otherwise."""
    return default_scenario_config(
        time_model=time_model,
        field_size=field_size,
        max_rounds=max_rounds,
        allow_incomplete=allow_incomplete,
    )


def uniform_ag_case(
    topology: str,
    n: int,
    k: int,
    *,
    config: SimulationConfig | None = None,
    label: str | None = None,
    value: float | None = None,
    **topology_kwargs: Any,
) -> SweepCase:
    """Build a sweep case running uniform algebraic gossip on a named topology."""
    spec = ScenarioSpec(
        topology=topology,
        n=n,
        k=k,
        protocol="uniform",
        topology_params=topology_kwargs,
        config=config if config is not None else default_config(),
    )
    scenario = spec.materialize()
    return scenario.sweep_case(
        label=label or f"{topology}(n={scenario.n}, k={scenario.k})",
        value=value if value is not None else scenario.n,
    )


def tag_case(
    topology: str,
    n: int,
    k: int,
    *,
    spanning_tree: str = "brr",
    config: SimulationConfig | None = None,
    label: str | None = None,
    value: float | None = None,
    **topology_kwargs: Any,
) -> SweepCase:
    """Build a sweep case running TAG with the named spanning-tree protocol."""
    from ..scenarios.spec import TREE_PROTOCOLS

    if spanning_tree not in TREE_PROTOCOLS:
        raise AnalysisError(
            f"unknown spanning tree protocol {spanning_tree!r}; "
            f"known: {sorted(TREE_PROTOCOLS)}"
        )
    spec = ScenarioSpec(
        topology=topology,
        n=n,
        k=k,
        protocol="tag",
        spanning_tree=spanning_tree,
        topology_params=topology_kwargs,
        config=config if config is not None else default_config(),
    )
    scenario = spec.materialize()
    return scenario.sweep_case(
        label=label or f"TAG+{spanning_tree} {topology}(n={scenario.n}, k={scenario.k})",
        value=value if value is not None else scenario.n,
    )


@dataclass(frozen=True)
class Experiment:
    """A named experiment: an id, a description and a case builder."""

    experiment_id: str
    description: str
    build_cases: Callable[[], Sequence[SweepCase]]
    bound_names: tuple[str, ...] = ()
    trials: int = 3
    value_header: str = "value"


@dataclass(frozen=True)
class ExperimentResult:
    """The outcome of running a named experiment."""

    experiment: Experiment
    points: list[SweepPoint]
    rows: list[dict[str, Any]] = field(default_factory=list)


#: Registry of named experiments (populated below and extendable by users).
EXPERIMENTS: dict[str, Experiment] = {}


def register_experiment(experiment: Experiment) -> Experiment:
    """Add an experiment to the registry (overwriting an existing id)."""
    EXPERIMENTS[experiment.experiment_id] = experiment
    return experiment


def run_experiment(
    experiment_id: str,
    *,
    trials: int | None = None,
    seed: int = 0,
    jobs: int | None = None,
    batch: bool = True,
    store: Any = None,
    fresh: bool = False,
) -> ExperimentResult:
    """Run a registered experiment and return its sweep points and table rows.

    ``jobs`` and ``batch`` are forwarded to
    :func:`~repro.analysis.sweep.run_sweep`: ``batch`` (default on) routes
    rank-only cases through the vectorised batch engine, ``jobs`` spreads the
    trials of each case over that many worker processes.  Neither changes the
    results — same seeds, same stopping times.  ``store`` (a
    :class:`~repro.store.ResultStore`) reuses every already-cached trial and
    persists the rest, so repeating an experiment — or extending it with
    cases *appended* to its list — only simulates what the store does not
    yet hold (case seeds are position-derived; see
    :func:`~repro.analysis.sweep.run_sweep`).
    """
    try:
        experiment = EXPERIMENTS[experiment_id]
    except KeyError:
        raise AnalysisError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    cases = list(experiment.build_cases())
    points = run_sweep(
        cases, trials=trials or experiment.trials, seed=seed, jobs=jobs, batch=batch,
        store=store, fresh=fresh,
    )
    rows = scaling_table(
        points, bound_names=experiment.bound_names, value_header=experiment.value_header
    )
    return ExperimentResult(experiment=experiment, points=points, rows=rows)


# ----------------------------------------------------------------------
# Built-in experiment definitions (small sizes: they must run in CI time).
# ----------------------------------------------------------------------
register_experiment(
    Experiment(
        experiment_id="E1-uniform-ag",
        description="Theorem 1: uniform AG vs O((k + log n + D)Δ) on several topologies",
        build_cases=lambda: [
            uniform_ag_case("line", 16, 8),
            uniform_ag_case("grid", 16, 8),
            uniform_ag_case("complete", 16, 8),
            uniform_ag_case("binary_tree", 16, 8),
        ],
        bound_names=("theorem1", "lower"),
        value_header="n",
    )
)

register_experiment(
    Experiment(
        experiment_id="E2-constant-degree",
        description="Theorem 3: Θ(k + D) scaling on constant-degree graphs (k sweep)",
        build_cases=lambda: [
            uniform_ag_case("ring", 16, k, label=f"ring k={k}", value=k) for k in (2, 4, 8, 16)
        ],
        bound_names=("theorem3", "lower"),
        value_header="k",
    )
)

register_experiment(
    Experiment(
        experiment_id="E3-tag",
        description="Theorem 4: TAG with broadcast spanning trees on bottleneck graphs",
        build_cases=lambda: [
            tag_case("barbell", 16, 16, spanning_tree="brr"),
            tag_case("barbell", 16, 16, spanning_tree="uniform_broadcast"),
            tag_case("grid", 16, 16, spanning_tree="brr"),
        ],
        bound_names=("theorem4", "lower"),
        value_header="n",
    )
)

register_experiment(
    Experiment(
        experiment_id="E4-tag-omega-n",
        description="Section 5: TAG + B_RR is Θ(n) for k = n on any graph",
        build_cases=lambda: [
            tag_case("barbell", n, n, spanning_tree="brr", value=n) for n in (8, 16, 24)
        ],
        bound_names=("tag_brr", "lower"),
        value_header="n",
    )
)

register_experiment(
    Experiment(
        experiment_id="E5-tag-is",
        description="Theorems 7/8: TAG + IS on large-weak-conductance graphs",
        build_cases=lambda: [
            tag_case("barbell", 16, 16, spanning_tree="is"),
            tag_case("clique_chain", 16, 16, spanning_tree="is", cliques=4),
        ],
        bound_names=("lower",),
        value_header="n",
    )
)

register_experiment(
    Experiment(
        experiment_id="E8-barbell",
        description="Barbell worst case: uniform AG (slow) vs TAG + B_RR (Θ(n))",
        build_cases=lambda: [
            uniform_ag_case(
                "barbell",
                12,
                12,
                label="uniform AG barbell",
                config=default_config(max_rounds=200_000),
            ),
            tag_case("barbell", 12, 12, spanning_tree="brr", label="TAG+BRR barbell"),
        ],
        bound_names=("lower",),
        value_header="n",
    )
)
