"""Named, reproducible experiment definitions.

Every table/figure reproduction in DESIGN.md has an experiment id (E1–E10).
This module gives each a *named, parameterised, reproducible* definition that
both the benchmark harness and EXPERIMENTS.md generation call into, so the
numbers reported in documentation and the numbers produced by
``pytest benchmarks/`` come from the same code path.

An :class:`Experiment` bundles a builder function returning the list of
:class:`~repro.analysis.sweep.SweepCase` objects to run; :func:`run_experiment`
executes it and returns the sweep points plus the scaling table rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import networkx as nx
import numpy as np

from ..analysis.bounds import (
    brr_broadcast_upper_bound,
    constant_degree_upper_bound,
    k_dissemination_lower_bound,
    lemma1_tree_gossip_bound,
    tag_upper_bound,
    tag_with_brr_upper_bound,
    uniform_ag_upper_bound,
)
from ..analysis.sweep import SweepCase, SweepPoint, run_sweep, scaling_table
from ..core.config import GossipAction, SimulationConfig, TimeModel
from ..errors import AnalysisError
from ..graphs.properties import diameter as graph_diameter
from ..graphs.properties import max_degree as graph_max_degree
from ..graphs.topologies import build_topology
from ..protocols.algebraic_gossip import AlgebraicGossip
from ..protocols.is_protocol import ISSpanningTree
from ..protocols.spanning_tree_protocols import (
    BfsOracleTree,
    RoundRobinBroadcastTree,
    UniformBroadcastTree,
)
from ..protocols.tag import TagProtocol
from ..rlnc.message import Generation
from ..gf import GF
from .workloads import Placement, all_to_all_placement, spread_placement

__all__ = [
    "Experiment",
    "ExperimentResult",
    "EXPERIMENTS",
    "register_experiment",
    "run_experiment",
    "uniform_ag_case",
    "tag_case",
    "default_config",
    "UniformGossipFactory",
    "TagFactory",
    "SpanningTreeFactory",
]


def default_config(
    *,
    time_model: TimeModel = TimeModel.SYNCHRONOUS,
    field_size: int = 16,
    max_rounds: int = 50_000,
    allow_incomplete: bool = False,
) -> SimulationConfig:
    """The configuration experiments share unless they say otherwise."""
    return SimulationConfig(
        field_size=field_size,
        payload_length=2,
        time_model=time_model,
        action=GossipAction.EXCHANGE,
        max_rounds=max_rounds,
        allow_incomplete=allow_incomplete,
    )


def _placement_for(graph: nx.Graph, k: int) -> Placement:
    n = graph.number_of_nodes()
    if k >= n:
        return all_to_all_placement(graph)
    return spread_placement(graph, k)


@dataclass
class UniformGossipFactory:
    """Picklable protocol factory for uniform algebraic gossip cases.

    Sweep cases used to capture their parameters in closures, which cannot
    cross a process boundary; a plain dataclass with ``__call__`` gives
    :func:`repro.experiments.parallel.run_trials_parallel` something it can
    ship to worker processes.  The field object itself is not stored — only
    its order — so pickles stay small and each worker reuses its own cached
    :func:`~repro.gf.GF` tables.
    """

    field_order: int
    k: int
    payload_length: int
    placement: Placement
    config: SimulationConfig

    def __call__(self, graph: nx.Graph, rng: np.random.Generator) -> AlgebraicGossip:
        generation = Generation.random(
            GF(self.field_order), self.k, self.payload_length, rng
        )
        return AlgebraicGossip(graph, generation, self.placement, self.config, rng)


@dataclass
class SpanningTreeFactory:
    """Picklable factory for the spanning-tree protocol TAG composes with."""

    protocol: str
    root: int

    def __call__(self, graph: nx.Graph, rng: np.random.Generator):
        if self.protocol == "is":
            return ISSpanningTree(graph, rng)
        return _TREE_PROTOCOLS[self.protocol](graph, self.root, rng)


@dataclass
class TagFactory:
    """Picklable protocol factory for TAG sweep cases."""

    field_order: int
    k: int
    payload_length: int
    placement: Placement
    config: SimulationConfig
    spanning_tree: SpanningTreeFactory

    def __call__(self, graph: nx.Graph, rng: np.random.Generator) -> TagProtocol:
        generation = Generation.random(
            GF(self.field_order), self.k, self.payload_length, rng
        )
        return TagProtocol(
            graph, generation, self.placement, self.config, rng, self.spanning_tree
        )


def uniform_ag_case(
    topology: str,
    n: int,
    k: int,
    *,
    config: SimulationConfig | None = None,
    label: str | None = None,
    value: float | None = None,
    **topology_kwargs: Any,
) -> SweepCase:
    """Build a sweep case running uniform algebraic gossip on a named topology."""
    graph = build_topology(topology, n, **topology_kwargs)
    actual_n = graph.number_of_nodes()
    actual_k = min(k, actual_n)
    cfg = config if config is not None else default_config()
    placement = _placement_for(graph, actual_k)
    diameter_value = graph_diameter(graph)
    delta = graph_max_degree(graph)
    factory = UniformGossipFactory(
        field_order=cfg.field_size,
        k=actual_k,
        payload_length=cfg.payload_length,
        placement=placement,
        config=cfg,
    )
    bounds = {
        "theorem1": uniform_ag_upper_bound(actual_n, actual_k, diameter_value, delta),
        "lower": k_dissemination_lower_bound(
            actual_k, diameter_value, synchronous=cfg.is_synchronous
        ),
    }
    if delta <= 8:
        bounds["theorem3"] = constant_degree_upper_bound(actual_k, diameter_value)
    return SweepCase(
        label=label or f"{topology}(n={actual_n}, k={actual_k})",
        value=float(value if value is not None else actual_n),
        graph=graph,
        protocol_factory=factory,
        config=cfg,
        bounds=bounds,
    )


_TREE_PROTOCOLS = {
    "brr": RoundRobinBroadcastTree,
    "uniform_broadcast": UniformBroadcastTree,
    "bfs_oracle": BfsOracleTree,
    "is": ISSpanningTree,
}


def tag_case(
    topology: str,
    n: int,
    k: int,
    *,
    spanning_tree: str = "brr",
    config: SimulationConfig | None = None,
    label: str | None = None,
    value: float | None = None,
    **topology_kwargs: Any,
) -> SweepCase:
    """Build a sweep case running TAG with the named spanning-tree protocol."""
    if spanning_tree not in _TREE_PROTOCOLS:
        raise AnalysisError(
            f"unknown spanning tree protocol {spanning_tree!r}; "
            f"known: {sorted(_TREE_PROTOCOLS)}"
        )
    graph = build_topology(topology, n, **topology_kwargs)
    actual_n = graph.number_of_nodes()
    actual_k = min(k, actual_n)
    cfg = config if config is not None else default_config()
    placement = _placement_for(graph, actual_k)
    diameter_value = graph_diameter(graph)
    root = sorted(graph.nodes())[0]
    factory = TagFactory(
        field_order=cfg.field_size,
        k=actual_k,
        payload_length=cfg.payload_length,
        placement=placement,
        config=cfg,
        spanning_tree=SpanningTreeFactory(protocol=spanning_tree, root=root),
    )
    bounds = {
        "theorem4": tag_upper_bound(
            actual_n, actual_k, 2 * diameter_value, brr_broadcast_upper_bound(actual_n)
        ),
        "lower": k_dissemination_lower_bound(
            actual_k, diameter_value, synchronous=cfg.is_synchronous
        ),
        "tag_brr": tag_with_brr_upper_bound(actual_n, actual_k),
        "lemma1": lemma1_tree_gossip_bound(actual_n, actual_k, diameter_value),
    }
    return SweepCase(
        label=label or f"TAG+{spanning_tree} {topology}(n={actual_n}, k={actual_k})",
        value=float(value if value is not None else actual_n),
        graph=graph,
        protocol_factory=factory,
        config=cfg,
        bounds=bounds,
    )


@dataclass(frozen=True)
class Experiment:
    """A named experiment: an id, a description and a case builder."""

    experiment_id: str
    description: str
    build_cases: Callable[[], Sequence[SweepCase]]
    bound_names: tuple[str, ...] = ()
    trials: int = 3
    value_header: str = "value"


@dataclass(frozen=True)
class ExperimentResult:
    """The outcome of running a named experiment."""

    experiment: Experiment
    points: list[SweepPoint]
    rows: list[dict[str, Any]] = field(default_factory=list)


#: Registry of named experiments (populated below and extendable by users).
EXPERIMENTS: dict[str, Experiment] = {}


def register_experiment(experiment: Experiment) -> Experiment:
    """Add an experiment to the registry (overwriting an existing id)."""
    EXPERIMENTS[experiment.experiment_id] = experiment
    return experiment


def run_experiment(
    experiment_id: str,
    *,
    trials: int | None = None,
    seed: int = 0,
    jobs: int | None = None,
    batch: bool = True,
) -> ExperimentResult:
    """Run a registered experiment and return its sweep points and table rows.

    ``jobs`` and ``batch`` are forwarded to
    :func:`~repro.analysis.sweep.run_sweep`: ``batch`` (default on) routes
    rank-only cases through the vectorised batch engine, ``jobs`` spreads the
    trials of each case over that many worker processes.  Neither changes the
    results — same seeds, same stopping times.
    """
    try:
        experiment = EXPERIMENTS[experiment_id]
    except KeyError:
        raise AnalysisError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    cases = list(experiment.build_cases())
    points = run_sweep(
        cases, trials=trials or experiment.trials, seed=seed, jobs=jobs, batch=batch
    )
    rows = scaling_table(
        points, bound_names=experiment.bound_names, value_header=experiment.value_header
    )
    return ExperimentResult(experiment=experiment, points=points, rows=rows)


# ----------------------------------------------------------------------
# Built-in experiment definitions (small sizes: they must run in CI time).
# ----------------------------------------------------------------------
register_experiment(
    Experiment(
        experiment_id="E1-uniform-ag",
        description="Theorem 1: uniform AG vs O((k + log n + D)Δ) on several topologies",
        build_cases=lambda: [
            uniform_ag_case("line", 16, 8),
            uniform_ag_case("grid", 16, 8),
            uniform_ag_case("complete", 16, 8),
            uniform_ag_case("binary_tree", 16, 8),
        ],
        bound_names=("theorem1", "lower"),
        value_header="n",
    )
)

register_experiment(
    Experiment(
        experiment_id="E2-constant-degree",
        description="Theorem 3: Θ(k + D) scaling on constant-degree graphs (k sweep)",
        build_cases=lambda: [
            uniform_ag_case("ring", 16, k, label=f"ring k={k}", value=k) for k in (2, 4, 8, 16)
        ],
        bound_names=("theorem3", "lower"),
        value_header="k",
    )
)

register_experiment(
    Experiment(
        experiment_id="E3-tag",
        description="Theorem 4: TAG with broadcast spanning trees on bottleneck graphs",
        build_cases=lambda: [
            tag_case("barbell", 16, 16, spanning_tree="brr"),
            tag_case("barbell", 16, 16, spanning_tree="uniform_broadcast"),
            tag_case("grid", 16, 16, spanning_tree="brr"),
        ],
        bound_names=("theorem4", "lower"),
        value_header="n",
    )
)

register_experiment(
    Experiment(
        experiment_id="E4-tag-omega-n",
        description="Section 5: TAG + B_RR is Θ(n) for k = n on any graph",
        build_cases=lambda: [
            tag_case("barbell", n, n, spanning_tree="brr", value=n) for n in (8, 16, 24)
        ],
        bound_names=("tag_brr", "lower"),
        value_header="n",
    )
)

register_experiment(
    Experiment(
        experiment_id="E5-tag-is",
        description="Theorems 7/8: TAG + IS on large-weak-conductance graphs",
        build_cases=lambda: [
            tag_case("barbell", 16, 16, spanning_tree="is"),
            tag_case("clique_chain", 16, 16, spanning_tree="is", cliques=4),
        ],
        bound_names=("lower",),
        value_header="n",
    )
)

register_experiment(
    Experiment(
        experiment_id="E8-barbell",
        description="Barbell worst case: uniform AG (slow) vs TAG + B_RR (Θ(n))",
        build_cases=lambda: [
            uniform_ag_case(
                "barbell",
                12,
                12,
                label="uniform AG barbell",
                config=default_config(max_rounds=200_000),
            ),
            tag_case("barbell", 12, 12, spanning_tree="brr", label="TAG+BRR barbell"),
        ],
        bound_names=("lower",),
        value_header="n",
    )
)
