"""Named experiments, workloads, parallel trial runners and reporting."""

from .parallel import (
    default_jobs,
    measure_protocol_batched,
    measure_protocol_parallel,
    run_trials_batched,
    run_trials_parallel,
    shared_process_pool,
)
from .reporting import format_comparison, format_experiment_report, format_markdown_table
from .runner import (
    EXPERIMENTS,
    Experiment,
    ExperimentResult,
    SpanningTreeFactory,
    TagFactory,
    UniformGossipFactory,
    default_config,
    register_experiment,
    run_experiment,
    tag_case,
    uniform_ag_case,
)
# Re-exported from the scenario layer (their home since the placements move);
# the deprecated repro.experiments.workloads shim is *not* imported here, so
# its DeprecationWarning only fires for code still using the old module path.
from ..scenarios.placements import (
    Placement,
    adversarial_far_placement,
    all_to_all_placement,
    random_placement,
    single_source_placement,
    spread_placement,
    validate_placement,
)

__all__ = [
    "default_jobs",
    "measure_protocol_batched",
    "measure_protocol_parallel",
    "run_trials_batched",
    "run_trials_parallel",
    "shared_process_pool",
    "SpanningTreeFactory",
    "TagFactory",
    "UniformGossipFactory",
    "format_comparison",
    "format_experiment_report",
    "format_markdown_table",
    "EXPERIMENTS",
    "Experiment",
    "ExperimentResult",
    "default_config",
    "register_experiment",
    "run_experiment",
    "tag_case",
    "uniform_ag_case",
    "Placement",
    "adversarial_far_placement",
    "all_to_all_placement",
    "random_placement",
    "single_source_placement",
    "spread_placement",
    "validate_placement",
]
