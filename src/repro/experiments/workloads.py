"""Back-compat shim: placements moved to :mod:`repro.scenarios.placements`.

The placement vocabulary is part of the scenario layer (a
:class:`~repro.scenarios.ScenarioSpec` names its placement declaratively),
which sits *below* ``repro.experiments`` in the dependency stack.  Importing
from here keeps existing code and documentation working.
"""

from __future__ import annotations

from ..scenarios.placements import (
    Placement,
    adversarial_far_placement,
    all_to_all_placement,
    random_placement,
    single_source_placement,
    spread_placement,
    validate_placement,
)

__all__ = [
    "Placement",
    "adversarial_far_placement",
    "all_to_all_placement",
    "random_placement",
    "single_source_placement",
    "spread_placement",
    "validate_placement",
]
