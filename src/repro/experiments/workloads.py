"""Deprecated back-compat shim: placements live in :mod:`repro.scenarios.placements`.

The placement vocabulary is part of the scenario layer (a
:class:`~repro.scenarios.ScenarioSpec` names its placement declaratively),
which sits *below* ``repro.experiments`` in the dependency stack.  This module
only re-exports the moved names for old imports; every internal caller was
routed to :mod:`repro.scenarios.placements` directly, and importing this shim
emits a :class:`DeprecationWarning`.  It will be removed in a future release.
"""

from __future__ import annotations

import warnings

from ..scenarios.placements import (
    Placement,
    adversarial_far_placement,
    all_to_all_placement,
    random_placement,
    single_source_placement,
    spread_placement,
    validate_placement,
)

warnings.warn(
    "repro.experiments.workloads is deprecated; import placements from "
    "repro.scenarios.placements (or repro.scenarios) instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "Placement",
    "adversarial_far_placement",
    "all_to_all_placement",
    "random_placement",
    "single_source_placement",
    "spread_placement",
    "validate_placement",
]
