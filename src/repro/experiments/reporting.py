"""Reporting helpers: render experiment results as text or Markdown.

EXPERIMENTS.md and the benchmark harness both print the same structures —
lists of row dictionaries coming from :mod:`repro.analysis.sweep` and
:mod:`repro.analysis.tables` — so the renderers live in one place.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..analysis.tables import format_table
from ..errors import AnalysisError

__all__ = ["format_markdown_table", "format_experiment_report", "format_comparison"]


def format_markdown_table(rows: Sequence[Mapping[str, Any]]) -> str:
    """Render rows (dicts sharing the same keys) as a GitHub-flavoured Markdown table."""
    if not rows:
        raise AnalysisError("format_markdown_table requires at least one row")
    headers = list(rows[0].keys())
    for row in rows:
        if list(row.keys()) != headers:
            raise AnalysisError("all rows must share the same columns, in the same order")
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(row[header]) for header in headers) + " |")
    return "\n".join(lines)


def format_experiment_report(
    title: str,
    rows: Sequence[Mapping[str, Any]],
    *,
    notes: Sequence[str] = (),
    markdown: bool = False,
) -> str:
    """A titled table plus optional bullet notes, in text or Markdown form."""
    if markdown:
        parts = [f"### {title}", "", format_markdown_table(rows)]
        if notes:
            parts.append("")
            parts.extend(f"- {note}" for note in notes)
        return "\n".join(parts)
    parts = [format_table(rows, title=title)]
    if notes:
        parts.append("")
        parts.extend(f"* {note}" for note in notes)
    return "\n".join(parts)


def format_comparison(
    label_a: str, value_a: float, label_b: str, value_b: float, *, unit: str = "rounds"
) -> str:
    """One-line comparison with the speed-up factor, used by examples."""
    if value_a <= 0 or value_b <= 0:
        raise AnalysisError("comparison values must be positive")
    faster, slower = (label_a, label_b) if value_a <= value_b else (label_b, label_a)
    ratio = max(value_a, value_b) / min(value_a, value_b)
    return (
        f"{label_a}: {value_a:.1f} {unit}; {label_b}: {value_b:.1f} {unit} — "
        f"{faster} is {ratio:.1f}x faster than {slower}"
    )
