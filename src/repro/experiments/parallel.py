"""Batched and multi-process Monte Carlo trial runners.

The stopping-time statistics everywhere in this repository are Monte Carlo
estimates over independent seeded trials.  This module provides three
increasingly aggressive — but **bit-identical** — ways of running them:

* :func:`~repro.analysis.stopping_time.measure_protocol` (sequential, in
  :mod:`repro.analysis.stopping_time`): one
  :class:`~repro.gossip.engine.GossipEngine` per trial, scalar decoders.
* :func:`measure_protocol_batched` / :func:`run_trials_batched`: all trials
  in one vectorised batch engine when the protocol declares one through
  :meth:`~repro.gossip.engine.GossipProcess.batch_strategy` (uniform
  algebraic gossip, TAG with every built-in spanning-tree protocol, and
  standalone spanning-tree broadcasts all do), falling back to the
  sequential engine otherwise.
* :func:`measure_protocol_parallel` / :func:`run_trials_parallel`: the trial
  set split across worker processes with a ``ProcessPoolExecutor``, each
  worker running the batched engine on its chunk.

Reproducibility is anchored in :mod:`repro.core.rng`: trial ``i`` always uses
the generator ``derive_rng(seed, f"trial-{i}")`` regardless of which runner
executes it, which worker process it lands on, or how trials are chunked — so
all three runners return the same results trial-for-trial.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

import networkx as nx

from ..core.config import SimulationConfig
from ..core.results import RunResult, StoppingTimeStats, aggregate_results
from ..core.rng import derive_rng
from ..errors import AnalysisError
from ..analysis.stopping_time import ProtocolFactory
from ..gossip.engine import GossipEngine

__all__ = [
    "measure_protocol_batched",
    "run_trials_batched",
    "measure_protocol_parallel",
    "run_trials_parallel",
    "default_jobs",
]


def default_jobs() -> int:
    """Worker-process count used when ``jobs`` is not given: the CPU count."""
    return max(1, os.cpu_count() or 1)


def _measure_trial_indices(
    graph: nx.Graph,
    protocol_factory: ProtocolFactory,
    config: SimulationConfig,
    seed: int,
    trial_indices: Sequence[int],
    batch: bool,
) -> list[RunResult]:
    """Run the selected trial streams, batched when allowed and possible.

    The sequential fallback builds each trial's process lazily, one at a
    time, so a long non-batchable run never holds more than one set of
    scalar decoders in memory.  Only the batch engine — which needs every
    trial's state simultaneously by design — constructs all processes.
    """
    rngs = [derive_rng(seed, f"trial-{index}") for index in trial_indices]
    results: list[RunResult] = []
    remaining = list(rngs)
    if batch and remaining:
        first = protocol_factory(graph, remaining[0])
        strategy = first.batch_strategy()
        if strategy is not None:
            processes = [first] + [protocol_factory(graph, rng) for rng in remaining[1:]]
            return strategy(graph, processes, config, rngs)
        results.append(GossipEngine(graph, first, config, remaining[0]).run())
        remaining = remaining[1:]
    for rng in remaining:
        process = protocol_factory(graph, rng)
        results.append(GossipEngine(graph, process, config, rng).run())
    return results


def measure_protocol_batched(
    graph: nx.Graph,
    protocol_factory: ProtocolFactory,
    config: SimulationConfig,
    *,
    trials: int = 5,
    seed: int = 0,
    trial_indices: Sequence[int] | None = None,
) -> list[RunResult]:
    """Run seeded trials through the vectorised batch engine when possible.

    Each trial's process is built with its own derived generator (so
    setup-time draws are consumed exactly as in the sequential runner); if
    the protocol opts in to the rank-only fast path the whole set runs in
    one :class:`~repro.gossip.batch.BatchGossipEngine`, otherwise the trials
    run sequentially with the same generators.  Either way the returned
    results are identical to :func:`~repro.analysis.stopping_time.measure_protocol`.

    ``trial_indices`` selects which trial streams to run (default
    ``0 .. trials-1``); the parallel runner uses it to assign disjoint chunks
    to workers without perturbing any trial's randomness.
    """
    if trial_indices is None:
        if trials < 1:
            raise AnalysisError(f"trials must be positive, got {trials}")
        trial_indices = range(trials)
    return _measure_trial_indices(
        graph, protocol_factory, config, seed, trial_indices, batch=True
    )


def run_trials_batched(
    graph: nx.Graph,
    protocol_factory: ProtocolFactory,
    config: SimulationConfig,
    *,
    trials: int = 5,
    seed: int = 0,
) -> StoppingTimeStats:
    """Like :func:`~repro.analysis.stopping_time.run_trials`, batched."""
    return aggregate_results(
        measure_protocol_batched(
            graph, protocol_factory, config, trials=trials, seed=seed
        )
    )


def _run_chunk(payload: bytes) -> list[RunResult]:
    """Worker entry point: unpickle one chunk description and run it."""
    graph, protocol_factory, config, seed, indices, batch = pickle.loads(payload)
    return _measure_trial_indices(
        graph, protocol_factory, config, seed, indices, batch
    )


def _chunks(indices: Sequence[int], jobs: int) -> list[list[int]]:
    """Split trial indices into at most ``jobs`` contiguous, balanced chunks."""
    jobs = max(1, min(jobs, len(indices)))
    size, remainder = divmod(len(indices), jobs)
    chunks: list[list[int]] = []
    start = 0
    for j in range(jobs):
        stop = start + size + (1 if j < remainder else 0)
        chunks.append(list(indices[start:stop]))
        start = stop
    return chunks


def measure_protocol_parallel(
    graph: nx.Graph,
    protocol_factory: ProtocolFactory,
    config: SimulationConfig,
    *,
    trials: int = 5,
    seed: int = 0,
    jobs: int | None = None,
    batch: bool = True,
) -> list[RunResult]:
    """Run seeded trials across worker processes; results stay in trial order.

    The trial set is split into contiguous chunks, one worker process per
    chunk, and every worker runs its indices — through the batch engine when
    ``batch`` is true and the protocol allows it, sequentially otherwise.
    Because trial ``i`` derives its generator from the root seed alone
    (``derive_rng(seed, f"trial-{i}")`` — the spawned-child-seed scheme of
    :mod:`repro.core.rng`), the partitioning has no effect on any trial's
    randomness and the concatenated results equal the sequential runner's
    trial-for-trial.

    Falls back to in-process execution when only one job is needed or when
    the factory cannot be pickled (e.g. a locally defined closure).
    """
    if trials < 1:
        raise AnalysisError(f"trials must be positive, got {trials}")
    jobs = default_jobs() if jobs is None else jobs
    if jobs < 1:
        raise AnalysisError(f"jobs must be positive, got {jobs}")
    jobs = min(jobs, trials)
    if jobs == 1:
        return _measure_trial_indices(
            graph, protocol_factory, config, seed, range(trials), batch
        )
    chunks = _chunks(range(trials), jobs)
    try:
        payloads = [
            pickle.dumps((graph, protocol_factory, config, seed, chunk, batch))
            for chunk in chunks
        ]
    except Exception:
        # Unpicklable factories (lambdas, local closures) cannot cross a
        # process boundary; run them in-process instead — the results are
        # identical, only the wall-clock differs.
        return _measure_trial_indices(
            graph, protocol_factory, config, seed, range(trials), batch
        )
    with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
        chunk_results = list(pool.map(_run_chunk, payloads))
    results: list[RunResult] = []
    for chunk_result in chunk_results:
        results.extend(chunk_result)
    return results


def run_trials_parallel(
    graph: nx.Graph,
    protocol_factory: ProtocolFactory,
    config: SimulationConfig,
    *,
    trials: int = 5,
    seed: int = 0,
    jobs: int | None = None,
    batch: bool = True,
) -> StoppingTimeStats:
    """Like :func:`~repro.analysis.stopping_time.run_trials`, multi-process."""
    return aggregate_results(
        measure_protocol_parallel(
            graph, protocol_factory, config,
            trials=trials, seed=seed, jobs=jobs, batch=batch,
        )
    )
