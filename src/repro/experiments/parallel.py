"""Batched and multi-process Monte Carlo trial runners.

The stopping-time statistics everywhere in this repository are Monte Carlo
estimates over independent seeded trials.  This module provides three
increasingly aggressive — but **bit-identical** — ways of running them:

* :func:`~repro.analysis.stopping_time.measure_protocol` (sequential, in
  :mod:`repro.analysis.stopping_time`): one
  :class:`~repro.gossip.engine.GossipEngine` per trial, scalar decoders.
* :func:`measure_protocol_batched` / :func:`run_trials_batched`: all trials
  in one vectorised batch engine when the protocol declares one through
  :meth:`~repro.gossip.engine.GossipProcess.batch_strategy` (uniform
  algebraic gossip, TAG with every built-in spanning-tree protocol, and
  standalone spanning-tree broadcasts all do), falling back to the
  sequential engine otherwise.
* :func:`measure_protocol_parallel` / :func:`run_trials_parallel`: the trial
  set split across worker processes with a ``ProcessPoolExecutor``, each
  worker running the batched engine on its chunk.

Reproducibility is anchored in :mod:`repro.core.rng`: trial ``i`` always uses
the generator ``derive_rng(seed, f"trial-{i}")`` regardless of which runner
executes it, which worker process it lands on, or how trials are chunked — so
all three runners return the same results trial-for-trial.

Every runner also accepts a :class:`~repro.scenarios.ScenarioSpec` (or an
already-materialised :class:`~repro.scenarios.MaterializedScenario`) in place
of the ``(graph, protocol_factory, config)`` triple; the spec's trial/seed
plan fills in ``trials``/``seed`` when those are not given explicitly::

    run_trials_batched(get_scenario("tag/brr-barbell"))
"""

from __future__ import annotations

import contextlib
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Iterator, Sequence

import networkx as nx

from ..core.config import SimulationConfig
from ..core.results import RunResult, StoppingTimeStats, aggregate_results
from ..core.rng import derive_rng
from ..errors import AnalysisError
from ..analysis.stopping_time import ProtocolFactory
from ..gossip.batch import batch_supports_config
from ..gossip.engine import BatchRunner, GossipEngine

__all__ = [
    "measure_protocol_batched",
    "run_trials_batched",
    "measure_protocol_parallel",
    "run_trials_parallel",
    "scenario_batch_strategy",
    "shared_process_pool",
    "default_jobs",
]


def default_jobs() -> int:
    """Worker-process count used when ``jobs`` is not given: the CPU count."""
    return max(1, os.cpu_count() or 1)


#: The process pool installed by :func:`shared_process_pool`, if any.
_SHARED_POOL: "ProcessPoolExecutor | None" = None


@contextlib.contextmanager
def shared_process_pool(jobs: int | None = None) -> Iterator[ProcessPoolExecutor]:
    """Share one worker pool across every parallel runner call in the block.

    By default each :func:`measure_protocol_parallel` call creates (and tears
    down) its own ``ProcessPoolExecutor`` — fine for a single sweep, wasteful
    for a campaign of many sweeps, where worker startup (process fork plus
    per-worker GF table priming) would be paid once per unit.  Inside this
    context every chunked run reuses the same executor::

        with shared_process_pool(jobs=4):
            for spec in specs:
                run_trials_parallel(spec, jobs=4, store=store)

    Results are unchanged — trial generators depend only on the root seed and
    trial index, never on the executing process.  The pool is process-wide
    (one campaign at a time drives it); nesting is rejected.
    """
    global _SHARED_POOL
    if _SHARED_POOL is not None:
        raise AnalysisError("shared_process_pool does not nest")
    jobs = default_jobs() if jobs is None else jobs
    if jobs < 1:
        raise AnalysisError(f"jobs must be positive, got {jobs}")
    pool = ProcessPoolExecutor(max_workers=jobs)
    _SHARED_POOL = pool
    try:
        yield pool
    finally:
        _SHARED_POOL = None
        pool.shutdown()


def _resolve_workload(
    graph: Any,
    protocol_factory: ProtocolFactory | None,
    config: SimulationConfig | None,
    trials: int | None,
    seed: int | None,
    spec: Any = None,
) -> tuple[nx.Graph, ProtocolFactory, SimulationConfig, int, int, Any]:
    """Normalise the ``(graph | spec | materialized, ...)`` calling conventions.

    The returned sixth element is the :class:`~repro.scenarios.ScenarioSpec`
    identifying the workload for content addressing: the one the scenario
    argument carried, or the explicit ``spec`` keyword (used by callers like
    :func:`repro.analysis.sweep.run_sweep` that hold a materialised case's
    graph/factory/config alongside the spec they came from), or ``None``.
    """
    # Imported lazily: the scenario layer imports repro.analysis, which is a
    # sibling of this package in the stack.
    from ..scenarios.spec import MaterializedScenario, ScenarioSpec

    if isinstance(graph, ScenarioSpec):
        graph = graph.materialize()
    if isinstance(graph, MaterializedScenario):
        if protocol_factory is not None or config is not None:
            raise AnalysisError(
                "pass either a scenario or an explicit "
                "(graph, protocol_factory, config) triple, not both — a "
                "scenario always runs its own factory and config"
            )
        scenario = graph
        graph = scenario.graph
        protocol_factory = scenario.protocol_factory
        config = scenario.config
        trials = scenario.spec.trials if trials is None else trials
        seed = scenario.spec.seed if seed is None else seed
        spec = scenario.spec
    if protocol_factory is None or config is None:
        raise AnalysisError(
            "protocol_factory and config are required unless a ScenarioSpec "
            "(or MaterializedScenario) is passed in place of the graph"
        )
    return (
        graph,
        protocol_factory,
        config,
        5 if trials is None else trials,
        0 if seed is None else seed,
        spec,
    )


def _run_through_store(
    store: Any,
    spec: Any,
    seed: int,
    trial_indices: Sequence[int],
    fresh: bool,
    compute: "Any",
) -> list[RunResult]:
    """Serve trials from the store, compute the rest, persist, merge in order.

    The one cache-aware code path shared by the batched and the parallel
    runner: ``compute(missing_indices)`` runs only the trial streams the
    store does not hold, the fresh results are persisted, and the merged
    list comes back in ``trial_indices`` order — bit-identical to computing
    everything, because trial ``i`` derives its generator from the root seed
    alone.

    ``fresh`` bypasses the read side (every trial recomputes) without
    touching the write side: :meth:`~repro.store.ResultStore.put_many` skips
    keys whose recomputed payload matches the archive and raises
    ``StoreError`` on divergence, so a fresh run is an actual
    re-verification of the stored records.
    """
    if spec is None:
        raise AnalysisError(
            "a result store needs a content address: pass the workload as a "
            "ScenarioSpec/MaterializedScenario, or supply spec=... alongside "
            "the explicit (graph, protocol_factory, config) triple"
        )
    cached: dict[int, RunResult] = {}
    if not fresh:
        for index in trial_indices:
            result = store.get(spec, index, seed=seed)
            if result is not None:
                cached[index] = result
    to_run = [index for index in trial_indices if index not in cached]
    computed: dict[int, RunResult] = {}
    if to_run:
        computed = dict(zip(to_run, compute(to_run)))
        store.put_many(spec, computed, seed=seed)
    return [
        cached[index] if index in cached else computed[index]
        for index in trial_indices
    ]


def scenario_batch_strategy(scenario: Any) -> BatchRunner | None:
    """The batch executor a materialised scenario's trials would use, or ``None``.

    Combines the protocol's own declaration
    (:meth:`~repro.gossip.engine.GossipProcess.batch_strategy`, probed on a
    throwaway process) with the config support matrix
    (:func:`~repro.gossip.batch.batch_supports_config`): ``None`` means the
    trial runners will use the sequential engine.
    """
    if not batch_supports_config(scenario.config):
        return None
    from ..gossip.batch import run_rank_only_batch
    from ..gossip.batch_tag import run_spanning_tree_batch, run_tag_batch
    from ..scenarios.spec import SpanningTreeFactory, TagFactory, UniformGossipFactory

    # The scenario factories produce exactly the protocols these runners
    # support (every TREE_PROTOCOLS entry has a batch tree state), so the
    # strategy is known from the factory type without building a process.
    factory = scenario.protocol_factory
    if isinstance(factory, UniformGossipFactory):
        return run_rank_only_batch
    if isinstance(factory, TagFactory):
        return run_tag_batch
    if isinstance(factory, SpanningTreeFactory):
        return run_spanning_tree_batch
    # Unknown factory (user-supplied): probe a throwaway process.
    probe = scenario.build_process(derive_rng(scenario.spec.seed, "strategy-probe"))
    return probe.batch_strategy()


def _measure_trial_indices(
    graph: nx.Graph,
    protocol_factory: ProtocolFactory,
    config: SimulationConfig,
    seed: int,
    trial_indices: Sequence[int],
    batch: bool,
    backend: str = "",
    engine: str = "",
) -> list[RunResult]:
    """Run the selected trial streams, batched when allowed and possible.

    The sequential fallback builds each trial's process lazily, one at a
    time, so a long non-batchable run never holds more than one set of
    scalar decoders in memory.  Only the batch engine — which needs every
    trial's state simultaneously by design — constructs all processes.

    ``backend`` installs a compute backend for the duration of the runs
    (``""`` keeps the ambient one); since backends are bit-identical by
    contract, it affects wall-clock only, never the results.

    ``engine`` pins the engine family: ``""`` (default) auto-selects as
    described above, ``"scalar"`` forces the sequential engine, ``"batch"``
    requires the batch fast path and ``"event"`` requires the event-driven
    sparse engine.  Engines are bit-identical per trial stream, so pinning
    affects wall-clock only; a pinned engine that cannot run the workload
    raises :class:`~repro.errors.EngineError` — never a silent fallback.
    """
    from ..backends import use_backend
    from ..errors import EngineError

    rngs = [derive_rng(seed, f"trial-{index}") for index in trial_indices]
    if engine == "event":
        from ..gossip.event import build_event_process, run_event_trials

        with use_backend(backend):
            processes = [
                build_event_process(graph, protocol_factory, rng) for rng in rngs
            ]
            return run_event_trials(graph, processes, config, rngs)
    from ..graphs.csr import CSRGraph

    if isinstance(graph, CSRGraph):
        raise EngineError(
            "a CSR-materialised scenario runs on the event-driven engine "
            "only; pin engine='event' (or materialise through the networkx "
            "pipeline for the scalar/batch engines)"
        )
    if engine == "scalar":
        batch = False
    require_batch = engine == "batch"
    if require_batch:
        if not batch_supports_config(config):
            raise EngineError(
                "the batch engines do not support this configuration "
                "(reset-mode churn); drop engine='batch' or pick "
                "'scalar'/'event'"
            )
        batch = True
    # Reset-mode churn is outside the batch support matrix: fall back to the
    # scalar engine explicitly rather than letting a strategy fail mid-run.
    if not batch_supports_config(config):
        batch = False
    results: list[RunResult] = []
    remaining = list(rngs)
    with use_backend(backend):
        if batch and remaining:
            first = protocol_factory(graph, remaining[0])
            strategy = first.batch_strategy()
            if strategy is not None:
                processes = [first] + [
                    protocol_factory(graph, rng) for rng in remaining[1:]
                ]
                return strategy(graph, processes, config, rngs)
            if require_batch:
                raise EngineError(
                    f"{type(first).__name__} declares no batch strategy; "
                    "drop engine='batch' or pick 'scalar'"
                )
            results.append(GossipEngine(graph, first, config, remaining[0]).run())
            remaining = remaining[1:]
        for rng in remaining:
            process = protocol_factory(graph, rng)
            results.append(GossipEngine(graph, process, config, rng).run())
    return results


def measure_protocol_batched(
    graph: "nx.Graph | Any",
    protocol_factory: ProtocolFactory | None = None,
    config: SimulationConfig | None = None,
    *,
    trials: int | None = None,
    seed: int | None = None,
    trial_indices: Sequence[int] | None = None,
    store: Any = None,
    fresh: bool = False,
    spec: Any = None,
) -> list[RunResult]:
    """Run seeded trials through the vectorised batch engine when possible.

    Each trial's process is built with its own derived generator (so
    setup-time draws are consumed exactly as in the sequential runner); if
    the protocol opts in to the rank-only fast path the whole set runs in
    one :class:`~repro.gossip.batch.BatchGossipEngine`, otherwise the trials
    run sequentially with the same generators.  Either way the returned
    results are identical to :func:`~repro.analysis.stopping_time.measure_protocol`.

    ``graph`` may also be a :class:`~repro.scenarios.ScenarioSpec` or
    :class:`~repro.scenarios.MaterializedScenario`, in which case the
    factory/config (and, when not given, the trial/seed plan) come from it.

    ``trial_indices`` selects which trial streams to run (default
    ``0 .. trials-1``); the parallel runner uses it to assign disjoint chunks
    to workers without perturbing any trial's randomness.

    ``store`` (a :class:`~repro.store.ResultStore`) makes the call
    cache-aware: only the ``(fingerprint, seed, trial)`` keys not already
    present are computed, and newly computed results are persisted.  Because
    trial ``i`` derives its generator from the root seed alone, running just
    the missing indices is bit-identical to running them all — so a resumed
    or fully-cached call returns exactly what a cold call would.  Caching
    needs a content address: when the workload arrives as a bare
    ``(graph, protocol_factory, config)`` triple, pass the ``spec`` it came
    from (``fresh=True`` bypasses cache reads but still persists).
    """
    graph, protocol_factory, config, trials, seed, spec = _resolve_workload(
        graph, protocol_factory, config, trials, seed, spec
    )
    backend = getattr(spec, "backend", "") or ""
    engine = getattr(spec, "engine", "") or ""
    if trial_indices is None:
        if trials < 1:
            raise AnalysisError(f"trials must be positive, got {trials}")
        trial_indices = range(trials)
    if store is None:
        return _measure_trial_indices(
            graph, protocol_factory, config, seed, trial_indices, True, backend,
            engine,
        )
    return _run_through_store(
        store, spec, seed, trial_indices, fresh,
        lambda missing: _measure_trial_indices(
            graph, protocol_factory, config, seed, missing, True, backend, engine
        ),
    )


def run_trials_batched(
    graph: "nx.Graph | Any",
    protocol_factory: ProtocolFactory | None = None,
    config: SimulationConfig | None = None,
    *,
    trials: int | None = None,
    seed: int | None = None,
    store: Any = None,
    fresh: bool = False,
    spec: Any = None,
) -> StoppingTimeStats:
    """Like :func:`~repro.analysis.stopping_time.run_trials`, batched.

    Also accepts a :class:`~repro.scenarios.ScenarioSpec` in place of the
    ``(graph, protocol_factory, config)`` triple, and a
    :class:`~repro.store.ResultStore` through which cached trials are reused
    (see :func:`measure_protocol_batched`).
    """
    return aggregate_results(
        measure_protocol_batched(
            graph, protocol_factory, config, trials=trials, seed=seed,
            store=store, fresh=fresh, spec=spec,
        )
    )


def _run_chunk(payload: bytes) -> list[RunResult]:
    """Worker entry point: unpickle one chunk description and run it."""
    (
        graph, protocol_factory, config, seed, indices, batch, backend, engine,
    ) = pickle.loads(payload)
    return _measure_trial_indices(
        graph, protocol_factory, config, seed, indices, batch, backend, engine
    )


def _chunks(indices: Sequence[int], jobs: int) -> list[list[int]]:
    """Split trial indices into at most ``jobs`` contiguous, balanced chunks."""
    jobs = max(1, min(jobs, len(indices)))
    size, remainder = divmod(len(indices), jobs)
    chunks: list[list[int]] = []
    start = 0
    for j in range(jobs):
        stop = start + size + (1 if j < remainder else 0)
        chunks.append(list(indices[start:stop]))
        start = stop
    return chunks


def _measure_indices_chunked(
    graph: nx.Graph,
    protocol_factory: ProtocolFactory,
    config: SimulationConfig,
    seed: int,
    trial_indices: Sequence[int],
    jobs: int,
    batch: bool,
    backend: str = "",
    engine: str = "",
) -> list[RunResult]:
    """Run the given trial streams over up to ``jobs`` worker processes.

    The backend and engine names travel inside each pickled chunk so worker
    processes install the same compute backend and run the same engine family
    the parent would use.
    """
    if not trial_indices:
        return []
    jobs = min(jobs, len(trial_indices))
    if jobs == 1:
        return _measure_trial_indices(
            graph, protocol_factory, config, seed, trial_indices, batch, backend,
            engine,
        )
    chunks = _chunks(trial_indices, jobs)
    try:
        payloads = [
            pickle.dumps(
                (graph, protocol_factory, config, seed, chunk, batch, backend,
                 engine)
            )
            for chunk in chunks
        ]
    except Exception:
        # Unpicklable factories (lambdas, local closures) cannot cross a
        # process boundary; run them in-process instead — the results are
        # identical, only the wall-clock differs.
        return _measure_trial_indices(
            graph, protocol_factory, config, seed, trial_indices, batch, backend,
            engine,
        )
    if _SHARED_POOL is not None:
        # Inside a shared_process_pool() block: reuse the long-lived workers
        # (the executor queues chunks beyond its worker count).
        chunk_results = list(_SHARED_POOL.map(_run_chunk, payloads))
    else:
        with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
            chunk_results = list(pool.map(_run_chunk, payloads))
    results: list[RunResult] = []
    for chunk_result in chunk_results:
        results.extend(chunk_result)
    return results


def measure_protocol_parallel(
    graph: "nx.Graph | Any",
    protocol_factory: ProtocolFactory | None = None,
    config: SimulationConfig | None = None,
    *,
    trials: int | None = None,
    seed: int | None = None,
    jobs: int | None = None,
    batch: bool = True,
    store: Any = None,
    fresh: bool = False,
    spec: Any = None,
) -> list[RunResult]:
    """Run seeded trials across worker processes; results stay in trial order.

    ``graph`` may also be a :class:`~repro.scenarios.ScenarioSpec` or
    :class:`~repro.scenarios.MaterializedScenario`.

    The trial set is split into contiguous chunks, one worker process per
    chunk, and every worker runs its indices — through the batch engine when
    ``batch`` is true and the protocol allows it, sequentially otherwise.
    Because trial ``i`` derives its generator from the root seed alone
    (``derive_rng(seed, f"trial-{i}")`` — the spawned-child-seed scheme of
    :mod:`repro.core.rng`), the partitioning has no effect on any trial's
    randomness and the concatenated results equal the sequential runner's
    trial-for-trial.

    ``store`` makes the call cache-aware exactly as in
    :func:`measure_protocol_batched`: cached trials are read back, only the
    missing indices are chunked over workers, and the freshly computed
    results are persisted (in the parent process — workers never touch the
    store).

    Falls back to in-process execution when only one job is needed or when
    the factory cannot be pickled (e.g. a locally defined closure).
    """
    graph, protocol_factory, config, trials, seed, spec = _resolve_workload(
        graph, protocol_factory, config, trials, seed, spec
    )
    backend = getattr(spec, "backend", "") or ""
    engine = getattr(spec, "engine", "") or ""
    if trials < 1:
        raise AnalysisError(f"trials must be positive, got {trials}")
    jobs = default_jobs() if jobs is None else jobs
    if jobs < 1:
        raise AnalysisError(f"jobs must be positive, got {jobs}")
    if store is None:
        return _measure_indices_chunked(
            graph, protocol_factory, config, seed, range(trials), jobs, batch,
            backend, engine,
        )
    return _run_through_store(
        store, spec, seed, range(trials), fresh,
        lambda missing: _measure_indices_chunked(
            graph, protocol_factory, config, seed, missing, jobs, batch, backend,
            engine,
        ),
    )


def run_trials_parallel(
    graph: "nx.Graph | Any",
    protocol_factory: ProtocolFactory | None = None,
    config: SimulationConfig | None = None,
    *,
    trials: int | None = None,
    seed: int | None = None,
    jobs: int | None = None,
    batch: bool = True,
    store: Any = None,
    fresh: bool = False,
    spec: Any = None,
) -> StoppingTimeStats:
    """Like :func:`~repro.analysis.stopping_time.run_trials`, multi-process.

    Also accepts a :class:`~repro.scenarios.ScenarioSpec` in place of the
    ``(graph, protocol_factory, config)`` triple, and a
    :class:`~repro.store.ResultStore` through which cached trials are reused
    (see :func:`measure_protocol_parallel`).
    """
    return aggregate_results(
        measure_protocol_parallel(
            graph, protocol_factory, config,
            trials=trials, seed=seed, jobs=jobs, batch=batch,
            store=store, fresh=fresh, spec=spec,
        )
    )
