"""Generators for the paper's Table 1 and Table 2.

The paper's evaluation artefacts are two tables:

* **Table 1** — the overview of the main results: for each (protocol, graph
  family, time model) the proven bound, with the order-optimal entries marked.
  :func:`table1_rows` reproduces the table's *analytic* content for concrete
  ``(n, k)`` values, and the benchmark harness augments each row with the
  measured stopping time of the corresponding simulation.
* **Table 2** — the comparison against Haeupler's bound
  ``O(k/γ + log²n / λ)`` on the line, the grid and the binary tree, with the
  improvement factor of this paper's bound ``O((k + log n + D) Δ)``.
  :func:`table2_rows` evaluates both expressions on real graphs (measuring
  ``γ`` and ``λ`` from the graph itself) and reports the ratio.

Both functions return plain lists of dictionaries so benchmarks, tests and the
EXPERIMENTS.md generator can render them however they like;
:func:`format_table` renders rows as a fixed-width text table.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Mapping, Sequence

import networkx as nx

from ..errors import AnalysisError
from ..graphs.properties import (
    diameter as graph_diameter,
)
from ..graphs.properties import (
    max_degree as graph_max_degree,
)
from ..graphs.properties import (
    min_cut_gamma,
    spectral_gap,
)
from ..graphs.topologies import binary_tree_graph, grid_graph, line_graph
from .bounds import (
    constant_degree_upper_bound,
    haeupler_upper_bound,
    k_dissemination_lower_bound,
    tag_upper_bound,
    tag_with_brr_upper_bound,
    tag_with_is_upper_bound,
    uniform_ag_upper_bound,
)

__all__ = ["table1_rows", "table2_rows", "measured_rows", "format_table", "rows_to_csv"]


def measured_rows(
    specs: Sequence[Any],
    *,
    trials: int | None = None,
    seed: int | None = None,
    jobs: int | None = None,
    batch: bool = True,
    store: Any = None,
    fresh: bool = False,
) -> list[dict[str, Any]]:
    """Measured stopping-time rows for a set of scenarios, read through the store.

    The companion of the analytic :func:`table1_rows` / :func:`table2_rows`:
    each entry of ``specs`` (a :class:`~repro.scenarios.ScenarioSpec` or a
    registered scenario name) is simulated for its Monte Carlo plan — or for
    the overriding ``trials``/``seed`` — and reported as one row with the
    mean/p95 stopping time.  With a :class:`~repro.store.ResultStore`, every
    already-cached ``(fingerprint, seed, trial)`` record is reused, so adding
    one new topology to a table re-simulates only that topology's trials.
    """
    # Imported lazily: the scenario layer sits above repro.analysis in the
    # dependency stack, so a top-level import would be circular.
    from ..scenarios.registry import get_scenario

    rows: list[dict[str, Any]] = []
    for entry in specs:
        spec = get_scenario(entry) if isinstance(entry, str) else entry
        scenario = spec.materialize()
        stats = scenario.run(
            trials=trials, seed=seed, jobs=jobs, batch=batch, store=store, fresh=fresh
        )
        rows.append(
            {
                "label": scenario.label,
                "n": scenario.n,
                "k": scenario.k,
                "trials": stats.trials,
                "mean_rounds": round(stats.mean, 2),
                "p95_rounds": round(stats.whp, 2),
            }
        )
    return rows


def table1_rows(
    n: int,
    k: int,
    *,
    graphs: Mapping[str, nx.Graph],
    tree_diameter: int | None = None,
    tree_time: float | None = None,
    weak_conductance_value: float = 0.5,
    weak_conductance_c: float = 2.0,
) -> list[dict[str, Any]]:
    """Analytic reproduction of Table 1 for concrete ``n`` and ``k``.

    ``graphs`` maps a family name (``"any"`` entries use the first graph) to a
    concrete graph so that ``D`` and ``Δ`` can be measured rather than quoted.
    ``tree_diameter`` / ``tree_time`` parameterise the generic TAG row (they
    default to the measured BFS-tree diameter and a ``3n`` broadcast time).
    """
    if not graphs:
        raise AnalysisError("table1_rows requires at least one graph")
    first = next(iter(graphs.values()))
    d_s = tree_diameter if tree_diameter is not None else graph_diameter(first)
    t_s = tree_time if tree_time is not None else 3.0 * n
    rows: list[dict[str, Any]] = []
    for name, graph in graphs.items():
        diameter_value = graph_diameter(graph)
        delta = graph_max_degree(graph)
        rows.append(
            {
                "protocol": "Uniform AG",
                "graph": name,
                "bound": "O((k + log n + D) Δ)",
                "bound_value": round(uniform_ag_upper_bound(n, k, diameter_value, delta), 1),
                "lower_bound_value": round(
                    k_dissemination_lower_bound(k, diameter_value, synchronous=True), 1
                ),
                "order_optimal": delta <= 8,
            }
        )
        if delta <= 8:
            rows.append(
                {
                    "protocol": "Uniform AG",
                    "graph": f"{name} (constant Δ)",
                    "bound": "Θ(k + D)",
                    "bound_value": round(constant_degree_upper_bound(k, diameter_value), 1),
                    "lower_bound_value": round(
                        k_dissemination_lower_bound(k, diameter_value, synchronous=True), 1
                    ),
                    "order_optimal": True,
                }
            )
    rows.append(
        {
            "protocol": "TAG",
            "graph": "any graph",
            "bound": "O(k + log n + d(S) + t(S))",
            "bound_value": round(tag_upper_bound(n, k, d_s, t_s), 1),
            "lower_bound_value": round(k / 2.0, 1),
            "order_optimal": False,
        }
    )
    rows.append(
        {
            "protocol": "TAG + B_RR",
            "graph": "any graph, k = Ω(n)",
            "bound": "Θ(n)",
            "bound_value": round(tag_with_brr_upper_bound(n, k), 1),
            "lower_bound_value": round(max(k, n) / 2.0, 1),
            "order_optimal": True,
        }
    )
    rows.append(
        {
            "protocol": "TAG + IS",
            "graph": "large weak conductance, k = Ω(polylog n)",
            "bound": "Θ(k)",
            "bound_value": round(
                tag_with_is_upper_bound(n, k, weak_conductance_c, weak_conductance_value), 1
            ),
            "lower_bound_value": round(k / 2.0, 1),
            "order_optimal": True,
        }
    )
    return rows


_TABLE2_FAMILIES: dict[str, Callable[[int], nx.Graph]] = {
    "line": line_graph,
    "grid": grid_graph,
    "binary_tree": binary_tree_graph,
}


def table2_rows(n: int, k: int) -> list[dict[str, Any]]:
    """Reproduce Table 2: this paper's bound versus Haeupler's on three families.

    For every family the graph parameters (``D``, ``Δ``, ``γ``, ``λ``) are
    *measured on the constructed graph*, the two bound expressions are
    evaluated, and the improvement factor (Haeupler / here) is reported.  The
    paper's asymptotic improvement factors (``log² n`` for the line and grid,
    ``Ω(n log n / k)`` for the binary tree) appear as the expected column.
    """
    if n < 8:
        raise AnalysisError(f"table2_rows needs n >= 8, got {n}")
    rows: list[dict[str, Any]] = []
    for name, builder in _TABLE2_FAMILIES.items():
        graph = builder(n)
        actual_n = graph.number_of_nodes()
        diameter_value = graph_diameter(graph)
        delta = graph_max_degree(graph)
        gamma = min_cut_gamma(graph)
        lam = spectral_gap(graph)
        ours = uniform_ag_upper_bound(actual_n, k, diameter_value, delta)
        haeupler = haeupler_upper_bound(k, gamma, lam, actual_n)
        if name in ("line", "grid"):
            expected = math.log(actual_n) ** 2
        else:
            expected = actual_n * math.log(actual_n) / k
        rows.append(
            {
                "graph": name,
                "n": actual_n,
                "k": k,
                "D": diameter_value,
                "max_degree": delta,
                "gamma": round(gamma, 6),
                "lambda": round(lam, 6),
                "haeupler_bound": round(haeupler, 1),
                "our_bound": round(ours, 1),
                "improvement_factor": round(haeupler / ours, 2),
                "paper_expected_factor": round(expected, 2),
            }
        )
    return rows


def rows_to_csv(rows: Sequence[Mapping[str, Any]]) -> str:
    """Render table rows (dicts sharing the same keys) as an RFC-4180 CSV string.

    The campaign report's CSV extracts go through here: deterministic column
    order (the rows' own key order), ``\\n`` line endings, quoting only where
    needed — so a re-rendered extract of cached results is byte-identical.

    >>> rows_to_csv([{"n": 8, "mean": 12.5}, {"n": 16, "mean": 30.0}])
    'n,mean\\n8,12.5\\n16,30.0\\n'
    """
    if not rows:
        raise AnalysisError("rows_to_csv requires at least one row")
    headers = list(rows[0].keys())
    for row in rows:
        if list(row.keys()) != headers:
            raise AnalysisError("all rows must share the same columns, in the same order")

    def cell(value: Any) -> str:
        text = str(value)
        if any(ch in text for ch in (",", '"', "\n")):
            escaped = text.replace('"', '""')
            return f'"{escaped}"'
        return text

    lines = [",".join(cell(header) for header in headers)]
    lines.extend(",".join(cell(row[header]) for header in headers) for row in rows)
    return "\n".join(lines) + "\n"


def format_table(rows: Sequence[Mapping[str, Any]], *, title: str | None = None) -> str:
    """Render rows (list of dicts sharing keys) as a fixed-width text table."""
    if not rows:
        raise AnalysisError("format_table requires at least one row")
    headers = list(rows[0].keys())
    for row in rows:
        if list(row.keys()) != headers:
            raise AnalysisError("all rows must share the same columns, in the same order")
    columns = {header: [str(row[header]) for row in rows] for header in headers}
    widths = {
        header: max(len(header), *(len(value) for value in values))
        for header, values in columns.items()
    }
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(header.ljust(widths[header]) for header in headers)
    lines.append(header_line)
    lines.append("-+-".join("-" * widths[header] for header in headers))
    for row in rows:
        lines.append(
            " | ".join(str(row[header]).ljust(widths[header]) for header in headers)
        )
    return "\n".join(lines)
