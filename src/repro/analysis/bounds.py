"""Closed-form bound evaluators for every theorem in the paper.

Each function evaluates the *expression inside the O(·)* of a theorem, with
all constants set to 1 unless the paper gives explicit constants.  Benchmarks
and tests compare the measured stopping times against these expressions in
terms of shape: the measured time divided by the bound should stay bounded as
``n`` and ``k`` grow, and order-optimality claims (``Θ``) additionally need
the matching lower bound to scale the same way.
"""

from __future__ import annotations

import math

from ..errors import AnalysisError

__all__ = [
    "log2ceil",
    "uniform_ag_upper_bound",
    "constant_degree_upper_bound",
    "k_dissemination_lower_bound",
    "tag_upper_bound",
    "tag_broadcast_upper_bound",
    "brr_broadcast_upper_bound",
    "tag_with_brr_upper_bound",
    "is_protocol_upper_bound",
    "tag_with_is_upper_bound",
    "haeupler_upper_bound",
    "theorem2_bound_rounds",
    "lemma1_tree_gossip_bound",
    "claim1_min_diameter",
    "lemma2_path_degree_bound",
]


def _require_positive(**values: float) -> None:
    for name, value in values.items():
        if value <= 0:
            raise AnalysisError(f"{name} must be positive, got {value}")


def log2ceil(n: int) -> int:
    """``ceil(log2 n)`` with ``log2ceil(1) = 1`` (the bounds treat log n as ≥ 1)."""
    if n < 1:
        raise AnalysisError(f"n must be at least 1, got {n}")
    return max(1, math.ceil(math.log2(n)))


def uniform_ag_upper_bound(n: int, k: int, diameter: int, max_degree: int) -> float:
    """Theorem 1: uniform algebraic gossip finishes in ``O((k + log n + D) Δ)`` rounds."""
    _require_positive(n=n, k=k, diameter=diameter, max_degree=max_degree)
    return (k + math.log(n) + diameter) * max_degree


def constant_degree_upper_bound(k: int, diameter: int) -> float:
    """Theorem 3 (upper part): ``O(k + D)`` for constant-maximum-degree graphs.

    Claim 1 gives ``D = Ω(log n)`` for such graphs, so the ``log n`` term of
    Theorem 1 is absorbed into ``D``.
    """
    _require_positive(k=k, diameter=diameter)
    return float(k + diameter)


def k_dissemination_lower_bound(k: int, diameter: int, *, synchronous: bool) -> float:
    """Theorem 3 (lower part): every gossip k-dissemination needs ``Ω(k)`` rounds,
    and additionally ``Ω(D)`` in the synchronous model (``Ω(k + D)`` overall)."""
    _require_positive(k=k, diameter=diameter)
    if synchronous:
        return k / 2.0 + diameter / 2.0
    return k / 2.0


def tag_upper_bound(n: int, k: int, tree_diameter: int, tree_time: float) -> float:
    """Theorem 4: ``t(TAG) = O(k + log n + d(S) + t(S))`` rounds."""
    _require_positive(n=n, k=k)
    if tree_diameter < 0 or tree_time < 0:
        raise AnalysisError("tree_diameter and tree_time must be non-negative")
    return k + math.log(n) + tree_diameter + tree_time


def tag_broadcast_upper_bound(n: int, k: int, broadcast_time: float) -> float:
    """Equation (3): with a broadcast protocol B in the synchronous model,
    ``t(TAG) = O(k + log n + t(B))`` because ``d(B) ≤ t(B)``."""
    _require_positive(n=n, k=k)
    if broadcast_time < 0:
        raise AnalysisError("broadcast_time must be non-negative")
    return k + math.log(n) + broadcast_time


def brr_broadcast_upper_bound(n: int) -> float:
    """Theorem 5: the round-robin broadcast ``B_RR`` finishes in ``O(n)`` rounds
    (at most ``3n`` rounds deterministically in the synchronous model)."""
    _require_positive(n=n)
    return 3.0 * n


def tag_with_brr_upper_bound(n: int, k: int) -> float:
    """Section 5: TAG with ``B_RR`` — ``O(k + log n + n)``, which is ``Θ(n)`` for ``k = Ω(n)``."""
    return tag_broadcast_upper_bound(n, k, brr_broadcast_upper_bound(n))


def is_protocol_upper_bound(n: int, c: float, weak_conductance: float, delta: float = 0.1) -> float:
    """Theorem 6 ([5, Thm 4.1]): the IS protocol completes in
    ``O(c ((log n + log δ⁻¹) / Φ_c + c))`` rounds with probability ≥ 1 − 3cδ."""
    _require_positive(n=n, c=c, weak_conductance=weak_conductance, delta=delta)
    return c * ((math.log(n) + math.log(1.0 / delta)) / weak_conductance + c)


def tag_with_is_upper_bound(
    n: int, k: int, c: float, weak_conductance: float, delta: float = 0.1
) -> float:
    """Theorems 7/8: TAG with the IS protocol — ``O(k + log n + t(IS) (+ d(IS)))``.

    Theorem 7 states that for ``c = O(log^p n)``, ``Φ_c = Ω(1/log^p n)`` and
    ``k = Ω(log^{2p+1} n)`` the total is ``Θ(k)``; this function returns the
    upper-bound expression so callers can check that the ``k`` term dominates.
    """
    t_is = is_protocol_upper_bound(n, c, weak_conductance, delta)
    return tag_broadcast_upper_bound(n, k, t_is)


def haeupler_upper_bound(k: int, gamma: float, lam: float, n: int) -> float:
    """Haeupler's bound from Table 2: ``O(k / γ + log² n / λ)`` rounds.

    ``γ`` is the min-cut probability measure and ``λ`` a conductance measure of
    the gossip graph; Table 2 of the paper evaluates this expression on the
    line, grid and binary tree to compare against Theorem 1.
    """
    _require_positive(k=k, gamma=gamma, lam=lam, n=n)
    return k / gamma + (math.log(n) ** 2) / lam


def theorem2_bound_rounds(k: int, depth: int, n: int, mu_per_round: float) -> float:
    """Theorem 2 restated in rounds: ``O((k + l_max + log n) / μ)`` with ``μ`` per round."""
    _require_positive(k=k, n=n, mu_per_round=mu_per_round)
    if depth < 0:
        raise AnalysisError("depth must be non-negative")
    return (k + depth + math.log(n)) / mu_per_round


def lemma1_tree_gossip_bound(n: int, k: int, depth: int) -> float:
    """Lemma 1: algebraic gossip on a tree with fixed parent partners finishes in
    ``O(k + log n + l_max)`` rounds."""
    _require_positive(n=n, k=k)
    if depth < 0:
        raise AnalysisError("depth must be non-negative")
    return k + math.log(n) + depth


def claim1_min_diameter(n: int, max_degree: int) -> float:
    """Claim 1: a connected graph with maximum degree Δ has ``D ≥ log_Δ(n) − 2``."""
    _require_positive(n=n, max_degree=max_degree)
    if max_degree < 2:
        # A connected graph with Δ ≤ 1 has at most 2 nodes; its diameter is n - 1.
        return float(n - 1)
    return math.log(n, max_degree) - 2.0


def lemma2_path_degree_bound(n: int) -> int:
    """Lemma 2: the sum of degrees along any shortest path is at most ``3n``."""
    _require_positive(n=n)
    return 3 * n
