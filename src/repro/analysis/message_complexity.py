"""Message and bit complexity accounting.

Besides round complexity, the paper's lower-bound argument (Theorem 3) counts
*messages*: to disseminate ``k`` messages to ``n`` nodes at least ``k·n``
packet receptions are necessary because every node must receive at least ``k``
helpful packets of bounded size.  This module turns a :class:`RunResult` (plus
the protocol's field/packet parameters) into the corresponding accounting:

* how many packets were sent, how many were helpful, and how close the run was
  to the information-theoretic minimum of ``n·k`` helpful receptions;
* the total traffic in bits, using the packet format of Section 2
  (``(k + r)·log2 q`` bits per packet);
* the paper's lower bounds as closed forms, for comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.results import RunResult
from ..errors import AnalysisError

__all__ = [
    "packet_size_bits",
    "minimum_helpful_receptions",
    "minimum_rounds_from_messages",
    "MessageComplexity",
    "message_complexity",
]


def packet_size_bits(k: int, payload_length: int, field_size: int) -> int:
    """Size of one coded packet: ``(k + r) · ceil(log2 q)`` bits (Section 2)."""
    if k < 1 or payload_length < 1:
        raise AnalysisError("k and payload_length must be positive")
    if field_size < 2:
        raise AnalysisError(f"field_size must be at least 2, got {field_size}")
    symbol_bits = max(1, math.ceil(math.log2(field_size)))
    return (k + payload_length) * symbol_bits


def minimum_helpful_receptions(n: int, k: int, seeded: int = 0) -> int:
    """Every node must accumulate rank ``k``: at least ``n·k − seeded`` helpful receptions.

    ``seeded`` is the total rank the initial placement provides for free (one
    per source message copy placed at a node).
    """
    if n < 1 or k < 1:
        raise AnalysisError("n and k must be positive")
    if seeded < 0:
        raise AnalysisError("seeded must be non-negative")
    return max(0, n * k - seeded)


def minimum_rounds_from_messages(n: int, k: int, *, synchronous: bool) -> float:
    """The message-counting lower bound of Theorem 3 re-derived from receptions.

    Synchronous: at most ``2n`` packets per round (each communicating pair
    exchanges two), so at least ``k/2`` rounds.  Asynchronous: at most 2
    packets per timeslot, so at least ``n·k/2`` timeslots = ``k/2`` rounds.
    """
    if n < 1 or k < 1:
        raise AnalysisError("n and k must be positive")
    return k / 2.0


@dataclass(frozen=True)
class MessageComplexity:
    """Message/bit accounting of one run, next to the information-theoretic minima."""

    n: int
    k: int
    packets_sent: int
    helpful_packets: int
    packet_bits: int
    total_bits: int
    minimum_helpful: int

    @property
    def helpful_fraction(self) -> float:
        """Fraction of transmitted packets that increased someone's rank."""
        if self.packets_sent == 0:
            return 0.0
        return self.helpful_packets / self.packets_sent

    @property
    def overhead_factor(self) -> float:
        """Packets sent divided by the minimum number of helpful receptions.

        An overhead of ``c`` means the protocol transmitted ``c`` packets per
        strictly necessary packet; uniform algebraic gossip on well-connected
        graphs typically sits in the low single digits.
        """
        if self.minimum_helpful == 0:
            return float("inf")
        return self.packets_sent / self.minimum_helpful

    def as_dict(self) -> dict[str, float]:
        return {
            "n": self.n,
            "k": self.k,
            "packets_sent": self.packets_sent,
            "helpful_packets": self.helpful_packets,
            "helpful_fraction": round(self.helpful_fraction, 4),
            "packet_bits": self.packet_bits,
            "total_megabits": round(self.total_bits / 1e6, 4),
            "minimum_helpful": self.minimum_helpful,
            "overhead_factor": round(self.overhead_factor, 3),
        }


def message_complexity(
    result: RunResult,
    *,
    payload_length: int,
    field_size: int,
    seeded: int = 0,
) -> MessageComplexity:
    """Build the :class:`MessageComplexity` accounting for a finished run."""
    if result.k < 1:
        raise AnalysisError("the run result does not record k (k < 1)")
    bits = packet_size_bits(result.k, payload_length, field_size)
    return MessageComplexity(
        n=result.n,
        k=result.k,
        packets_sent=result.messages_sent,
        helpful_packets=result.helpful_messages,
        packet_bits=bits,
        total_bits=bits * result.messages_sent,
        minimum_helpful=minimum_helpful_receptions(result.n, result.k, seeded),
    )
