"""Parameter sweeps: measure how the stopping time scales with ``n`` or ``k``.

A sweep is a list of *cases*.  Each case carries its graph, its protocol
factory and its configuration; the sweep runner executes every case for a
number of independent trials and returns one :class:`SweepPoint` per case,
carrying the stopping-time statistics plus whatever bound values the case
attaches.  The benchmark harness prints sweeps as the rows/series of the
paper's tables.

Cases are built from the scenario layer: a
:class:`~repro.scenarios.ScenarioSpec` materialises into a :class:`SweepCase`
(via :func:`repro.scenarios.scenario_case` or
:meth:`~repro.scenarios.MaterializedScenario.sweep_case`), and
:func:`run_sweep` also accepts bare specs and materialises them itself.  A
case built that way keeps a reference to its spec, so sweep results stay
traceable to a declarative, serialisable description.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import networkx as nx

from ..core.config import SimulationConfig
from ..core.results import StoppingTimeStats
from ..errors import AnalysisError
from .stopping_time import ProtocolFactory, run_trials

__all__ = ["SweepCase", "SweepPoint", "run_sweep", "scaling_table"]


@dataclass(frozen=True)
class SweepCase:
    """One point of a parameter sweep.

    Attributes
    ----------
    label:
        Human-readable identifier (e.g. ``"n=64"`` or ``"k=32"``).
    value:
        The swept parameter's numeric value (used for scaling fits).
    graph:
        The communication graph for this case.
    protocol_factory:
        Builds a fresh protocol per trial.
    config:
        Simulation configuration for this case.
    bounds:
        Named bound values evaluated for this case (e.g.
        ``{"theorem1": 412.0, "lower": 36.0}``); copied into the sweep point.
    spec:
        The :class:`~repro.scenarios.ScenarioSpec` this case was materialised
        from, when it came through the scenario layer (``None`` for
        hand-assembled cases).  Typed loosely because the scenario layer
        sits above this module in the dependency stack.
    """

    label: str
    value: float
    graph: nx.Graph
    protocol_factory: ProtocolFactory
    config: SimulationConfig
    bounds: dict[str, float] = field(default_factory=dict)
    spec: Any = None


@dataclass(frozen=True)
class SweepPoint:
    """Result of one sweep case: the measured statistics plus the attached bounds."""

    label: str
    value: float
    stats: StoppingTimeStats
    bounds: dict[str, float]

    @property
    def mean(self) -> float:
        return self.stats.mean

    @property
    def whp(self) -> float:
        return self.stats.whp

    def ratio_to(self, bound_name: str) -> float:
        """``measured (p95) / bound`` — should stay O(1) across the sweep if the bound holds."""
        try:
            bound = self.bounds[bound_name]
        except KeyError:
            raise AnalysisError(
                f"no bound named {bound_name!r}; available: {sorted(self.bounds)}"
            ) from None
        if bound <= 0:
            raise AnalysisError(f"bound {bound_name!r} must be positive, got {bound}")
        return self.stats.whp / bound


def run_sweep(
    cases: Sequence[Any],
    *,
    trials: int = 5,
    seed: int = 0,
    jobs: int | None = None,
    batch: bool = True,
    store: Any = None,
    fresh: bool = False,
) -> list[SweepPoint]:
    """Execute every case of a sweep and return one point per case.

    Parameters
    ----------
    cases:
        :class:`SweepCase` values, or bare
        :class:`~repro.scenarios.ScenarioSpec` values (materialised here
        with their default label/value/bounds) — mixing both is fine.
        A sweep is a *comparative* experiment, so the sweep-level ``trials``
        and ``seed`` below apply uniformly to every case; a bare spec's own
        trial/seed plan is deliberately not consulted here (it drives the
        single-scenario runners:
        :meth:`~repro.scenarios.MaterializedScenario.run`,
        :func:`~repro.experiments.parallel.run_trials_batched`, the CLI).
    trials, seed:
        Monte Carlo repetitions per case and the root seed; case ``i`` uses
        ``seed + i * 10_007`` so cases stay independent.
    jobs:
        When set (> 1), each case's trials are spread over that many worker
        processes via :func:`repro.experiments.parallel.run_trials_parallel`.
    batch:
        When ``True`` (default), cases whose protocol supports the rank-only
        fast path run through the vectorised
        :class:`~repro.gossip.batch.BatchGossipEngine`; others fall back to
        the sequential engine automatically.  Results are bit-identical
        either way — same seeds, same stopping times — so this is purely a
        wall-clock knob.
    store, fresh:
        A :class:`~repro.store.ResultStore` makes the sweep cache-aware and
        resumable: for every case that carries a scenario spec (all cases
        built through the scenario layer do) only the
        ``(fingerprint, case seed, trial)`` records not already stored are
        simulated; the rest are read back, bit-identical.  An interrupted
        sweep rerun against the same store finishes only the remaining
        trials; a fully cached rerun computes nothing.  Hand-assembled cases
        without a spec have no content address and always compute.
        ``fresh=True`` bypasses the cache reads (results are still
        persisted).  Note that each case's root seed derives from its
        *position* (``seed + index * 10_007``), so extending a cached sweep
        keeps existing cases cached only when new cases are **appended**;
        inserting or reordering shifts the later cases' seeds and they
        recompute (correctly, just not from cache).
    """
    if not cases:
        raise AnalysisError("run_sweep requires at least one case")
    if jobs is not None and jobs < 1:
        raise AnalysisError(f"jobs must be positive, got {jobs}")
    # Imported lazily: these modules sit above repro.analysis in the
    # dependency stack, so top-level imports would be circular.
    from ..experiments.parallel import run_trials_batched, run_trials_parallel
    from ..scenarios.spec import ScenarioSpec

    cases = [
        case.materialize().sweep_case() if isinstance(case, ScenarioSpec) else case
        for case in cases
    ]

    points: list[SweepPoint] = []
    for index, case in enumerate(cases):
        case_seed = seed + index * 10_007
        case_store = store if case.spec is not None else None
        if (jobs is not None and jobs > 1) or case_store is not None:
            # The parallel runner handles jobs=1 in-process and is the one
            # store-aware entry point covering both the batch and the
            # sequential (batch=False) execution paths.
            stats = run_trials_parallel(
                case.graph, case.protocol_factory, case.config,
                trials=trials, seed=case_seed, jobs=jobs or 1, batch=batch,
                store=case_store, fresh=fresh, spec=case.spec,
            )
        elif batch:
            stats = run_trials_batched(
                case.graph, case.protocol_factory, case.config,
                trials=trials, seed=case_seed,
            )
        else:
            stats = run_trials(
                case.graph, case.protocol_factory, case.config,
                trials=trials, seed=case_seed,
            )
        points.append(
            SweepPoint(
                label=case.label,
                value=case.value,
                stats=stats,
                bounds=dict(case.bounds),
            )
        )
    return points


def scaling_table(
    points: Sequence[SweepPoint],
    *,
    bound_names: Sequence[str] = (),
    value_header: str = "value",
) -> list[dict[str, Any]]:
    """Turn sweep points into table rows (list of dicts) for reporting.

    Each row carries the swept value, the mean / p95 stopping times, and one
    ``<bound>`` plus ``ratio(<bound>)`` column per requested bound name.
    """
    rows: list[dict[str, Any]] = []
    for point in points:
        row: dict[str, Any] = {
            value_header: point.value,
            "label": point.label,
            "mean_rounds": round(point.mean, 2),
            "p95_rounds": round(point.whp, 2),
            "trials": point.stats.trials,
        }
        for name in bound_names:
            row[name] = round(point.bounds.get(name, float("nan")), 2)
            if name in point.bounds:
                row[f"ratio({name})"] = round(point.ratio_to(name), 3)
        rows.append(row)
    return rows
