"""Per-round progress metrics: rank evolution and dissemination curves.

The paper's theorems only talk about the final stopping time, but the standard
way to *look* at an algebraic-gossip run is the rank-evolution curve: how the
minimum / median / maximum decoder rank across nodes grows round by round.
The curve makes the two regimes of the analysis visible — an initial spreading
phase (distance-limited, the ``D`` term) followed by a linear draining phase
(one helpful packet per node per constant number of rounds, the ``k`` term).

:class:`ProgressRecorder` wraps any rank-reporting protocol (uniform AG or
TAG) and samples the per-round statistics through the engine's
``on_round_end`` hook, without changing the wrapped protocol's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import AnalysisError
from ..gossip.engine import GossipProcess, Transmission

__all__ = ["RoundSnapshot", "ProgressRecorder", "rounds_to_fraction_complete"]


@dataclass(frozen=True)
class RoundSnapshot:
    """Rank statistics across all nodes at the end of one round."""

    round_index: int
    min_rank: int
    median_rank: float
    max_rank: int
    completed_nodes: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "round": self.round_index,
            "min_rank": self.min_rank,
            "median_rank": self.median_rank,
            "max_rank": self.max_rank,
            "completed_nodes": self.completed_nodes,
        }


class ProgressRecorder(GossipProcess):
    """Transparent wrapper recording a :class:`RoundSnapshot` per round.

    The wrapped protocol must expose ``rank_of(node)`` and iterate its nodes
    via its ``graph`` attribute — both :class:`~repro.protocols.AlgebraicGossip`
    and :class:`~repro.protocols.TagProtocol` do.
    """

    def __init__(self, inner: GossipProcess) -> None:
        if not hasattr(inner, "rank_of") or not hasattr(inner, "graph"):
            raise AnalysisError(
                "ProgressRecorder requires a protocol exposing rank_of() and graph "
                f"(got {type(inner).__name__})"
            )
        self.inner = inner
        self.snapshots: list[RoundSnapshot] = []

    # -- delegation ------------------------------------------------------
    def on_wakeup(self, node: int, rng: np.random.Generator) -> list[Transmission]:
        return self.inner.on_wakeup(node, rng)

    def on_deliver(self, receiver: int, sender: int, payload: Any) -> bool | None:
        return self.inner.on_deliver(receiver, sender, payload)

    def is_complete(self) -> bool:
        return self.inner.is_complete()

    def finished_nodes(self) -> set[int]:
        return self.inner.finished_nodes()

    def metadata(self) -> dict[str, Any]:
        data = dict(self.inner.metadata())
        data["progress_snapshots"] = len(self.snapshots)
        return data

    # -- recording --------------------------------------------------------
    def on_round_end(self, round_index: int) -> None:
        ranks = np.array(
            [self.inner.rank_of(node) for node in self.inner.graph.nodes()], dtype=float
        )
        self.snapshots.append(
            RoundSnapshot(
                round_index=round_index,
                min_rank=int(ranks.min()),
                median_rank=float(np.median(ranks)),
                max_rank=int(ranks.max()),
                completed_nodes=len(self.inner.finished_nodes()),
            )
        )
        self.inner.on_round_end(round_index)

    # -- analysis helpers -------------------------------------------------
    def rank_curve(self, statistic: str = "min") -> list[tuple[int, float]]:
        """The (round, rank) series for ``statistic`` in {min, median, max}."""
        attribute = {
            "min": "min_rank",
            "median": "median_rank",
            "max": "max_rank",
        }.get(statistic)
        if attribute is None:
            raise AnalysisError(f"unknown statistic {statistic!r}; use min/median/max")
        return [(snap.round_index, float(getattr(snap, attribute))) for snap in self.snapshots]

    def completion_curve(self) -> list[tuple[int, int]]:
        """The (round, number of completed nodes) series."""
        return [(snap.round_index, snap.completed_nodes) for snap in self.snapshots]

    def as_rows(self) -> list[dict[str, Any]]:
        """All snapshots as table rows (for reports)."""
        return [snap.as_dict() for snap in self.snapshots]


def rounds_to_fraction_complete(
    recorder: ProgressRecorder, fraction: float
) -> int | None:
    """First round at which at least ``fraction`` of the nodes had finished.

    Useful for partial-dissemination questions (e.g. "when did 90% of the
    nodes know everything?"); returns ``None`` if the fraction was never
    reached within the recorded rounds.
    """
    if not 0.0 < fraction <= 1.0:
        raise AnalysisError(f"fraction must lie in (0, 1], got {fraction}")
    if not recorder.snapshots:
        raise AnalysisError("the recorder has no snapshots (was the run executed?)")
    total = recorder.inner.graph.number_of_nodes()
    needed = fraction * total
    for snap in recorder.snapshots:
        if snap.completed_nodes >= needed:
            return snap.round_index
    return None
