"""Asymptotic stopping-time analysis: exponent fits over decade sweeps.

The paper's headline results are *order-of-growth* statements — Theorem 2's
O(n) bound for uniform algebraic gossip on good expanders, the Ω(n²) barbell
regime, TAG's O(n) guarantee — but the published evaluation stops at finite-n
tables.  With the event-driven engine and the graph-free CSR pipeline the
repository completes uniform AG at ``n = 10^6`` on one core, which makes the
asymptotic question empirically answerable: sweep ``n`` over decades, record
only the stopping times (the streaming-summary store path), and fit

    ``T(n) ≈ c · n^a``

by least squares on the log-log means.  :func:`fit_decades` is that fit,
with a deterministic bootstrap confidence interval on the exponent ``a`` so
a report can state "measured exponent 1.02 ± [0.97, 1.08]" rather than a
bare point estimate.  The ``asymptotics`` campaign
(:mod:`repro.campaigns.registry`) and ``python -m repro analyze fit`` drive
it end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.rng import derive_rng
from ..errors import AnalysisError
from .stopping_time import fit_power_law

__all__ = ["ExponentFit", "fit_decades"]


@dataclass(frozen=True)
class ExponentFit:
    """A power-law exponent fit with a bootstrap confidence interval.

    The point estimate comes from least squares on the log-log per-size
    means (:func:`~repro.analysis.stopping_time.fit_power_law`); the
    interval ``[ci_low, ci_high]`` holds the empirical
    ``confidence``-quantile range of the exponent over ``bootstrap``
    resampled replicates.  Everything is deterministic given the fit seed,
    so two runs over the same samples produce byte-identical reports.
    """

    exponent: float
    coefficient: float
    r_squared: float
    ci_low: float
    ci_high: float
    confidence: float
    points: int
    bootstrap: int

    def predict(self, n: float) -> float:
        """The fitted stopping time at size ``n``."""
        return self.coefficient * n**self.exponent

    def summary(self) -> str:
        """One-line human-readable form used by reports and the CLI."""
        return (
            f"exponent {self.exponent:.3f} "
            f"[{self.ci_low:.3f}, {self.ci_high:.3f}] "
            f"({self.confidence:.0%} bootstrap CI, {self.bootstrap} replicates), "
            f"r²={self.r_squared:.4f} over {self.points} sizes"
        )


def fit_decades(
    samples_by_n: Mapping[int, Sequence[float]],
    *,
    bootstrap: int = 200,
    seed: int = 0,
    confidence: float = 0.95,
) -> ExponentFit:
    """Fit the stopping-time exponent over a decade sweep.

    Parameters
    ----------
    samples_by_n:
        Per-size stopping-time samples, e.g. ``{1000: [...], 10000: [...]}``
        — the ``StoppingTimeStats.samples`` of each decade's unit.
    bootstrap:
        Number of resampled replicates behind the confidence interval.
        Replicate ``i`` resamples every size's samples with replacement
        using ``derive_rng(seed, f"bootstrap-{i}")``, so the interval is a
        pure function of the inputs and the seed.
    seed:
        Root seed of the bootstrap streams (fit randomness is independent
        of simulation randomness by construction).
    confidence:
        Two-sided coverage of the interval, strictly between 0 and 1.

    Degenerate inputs raise :class:`~repro.errors.AnalysisError`: fewer
    than two distinct sizes (a single decade cannot identify an exponent),
    a size with no samples, non-positive sizes or samples, and zero
    variance across sizes (every mean equal — the log-log slope is then
    unidentifiable noise, not evidence of an exponent).

    The fit runs in log space, so the recovered exponent is invariant (up
    to floating-point roundoff) under rescaling every sample by a positive
    constant — e.g. quoting timeslots instead of rounds at fixed ``n`` —
    and only the coefficient changes.
    """
    if bootstrap < 1:
        raise AnalysisError(
            f"fit_decades needs at least one bootstrap replicate, got {bootstrap}"
        )
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(
            f"confidence must lie strictly between 0 and 1, got {confidence}"
        )
    sizes = sorted(int(n) for n in samples_by_n)
    if len(sizes) < 2:
        raise AnalysisError(
            "fit_decades needs at least two distinct sizes — a single "
            f"decade cannot identify an exponent; got sizes {sizes}"
        )
    if sizes[0] <= 0:
        raise AnalysisError(f"sizes must be strictly positive, got {sizes[0]}")
    arrays: list[np.ndarray] = []
    for n in sizes:
        samples = np.asarray(list(samples_by_n[n]), dtype=float)
        if samples.size == 0:
            raise AnalysisError(f"fit_decades got no samples for n={n}")
        if np.any(samples <= 0):
            raise AnalysisError(
                f"stopping-time samples must be strictly positive; n={n} "
                "carries a non-positive sample"
            )
        arrays.append(samples)
    means = [float(np.mean(samples)) for samples in arrays]
    if len(set(means)) == 1:
        raise AnalysisError(
            "zero variance across sizes: every mean stopping time equals "
            f"{means[0]}, so the log-log slope is unidentifiable"
        )
    point = fit_power_law(sizes, means)
    replicates = np.empty(bootstrap, dtype=float)
    for i in range(bootstrap):
        rng = derive_rng(seed, f"bootstrap-{i}")
        resampled = [
            float(np.mean(samples[rng.integers(0, samples.size, size=samples.size)]))
            for samples in arrays
        ]
        log_x = np.log(np.asarray(sizes, dtype=float))
        log_y = np.log(np.asarray(resampled, dtype=float))
        replicates[i] = float(np.polyfit(log_x, log_y, 1)[0])
    alpha = (1.0 - confidence) / 2.0
    ci_low, ci_high = np.quantile(replicates, [alpha, 1.0 - alpha])
    return ExponentFit(
        exponent=point.exponent,
        coefficient=point.coefficient,
        r_squared=point.r_squared,
        ci_low=float(ci_low),
        ci_high=float(ci_high),
        confidence=float(confidence),
        points=len(sizes),
        bootstrap=int(bootstrap),
    )
