"""Empirical stopping-time measurement and scaling fits.

The theorems are asymptotic statements; validating them empirically means

1. running a protocol many times with independent seeds and summarising the
   stopping-time distribution (:func:`run_trials`), and
2. sweeping a parameter (``n`` or ``k``) and fitting how the stopping time
   scales with it (:func:`fit_power_law`, :func:`fit_linear`), so that e.g.
   "Θ(k + D)" can be checked as "the measured time grows linearly in k with
   slope O(1)".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import networkx as nx
import numpy as np

from ..core.config import SimulationConfig
from ..core.results import RunResult, StoppingTimeStats, aggregate_results
from ..core.rng import derive_rng
from ..errors import AnalysisError
from ..gossip.engine import GossipEngine, GossipProcess

__all__ = [
    "ProtocolFactory",
    "run_trials",
    "measure_protocol",
    "PowerLawFit",
    "LinearFit",
    "fit_power_law",
    "fit_linear",
    "ratio_is_bounded",
]

#: A factory building a fresh protocol instance for one trial.  It receives
#: the trial's random generator so that message contents, coding coefficients
#: and any protocol-internal randomness are independent across trials.
ProtocolFactory = Callable[[nx.Graph, np.random.Generator], GossipProcess]


def measure_protocol(
    graph: nx.Graph,
    protocol_factory: ProtocolFactory,
    config: SimulationConfig,
    *,
    trials: int = 5,
    seed: int = 0,
) -> list[RunResult]:
    """Run ``trials`` independent simulations and return every :class:`RunResult`.

    This is the sequential reference runner.
    :func:`repro.experiments.parallel.measure_protocol_batched` and
    :func:`~repro.experiments.parallel.measure_protocol_parallel` produce the
    same results (same seeds → same stopping times) through the vectorised
    batch engine and worker processes respectively; prefer them for large
    trial counts.
    """
    if trials < 1:
        raise AnalysisError(f"trials must be positive, got {trials}")
    results: list[RunResult] = []
    for trial in range(trials):
        rng = derive_rng(seed, f"trial-{trial}")
        process = protocol_factory(graph, rng)
        engine = GossipEngine(graph, process, config, rng)
        results.append(engine.run())
    return results


def run_trials(
    graph: nx.Graph,
    protocol_factory: ProtocolFactory,
    config: SimulationConfig,
    *,
    trials: int = 5,
    seed: int = 0,
) -> StoppingTimeStats:
    """Like :func:`measure_protocol` but collapse the results into statistics."""
    return aggregate_results(
        measure_protocol(graph, protocol_factory, config, trials=trials, seed=seed)
    )


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``y ≈ coefficient * x ** exponent`` on a log-log scale."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.coefficient * x**self.exponent


@dataclass(frozen=True)
class LinearFit:
    """Least-squares fit of ``y ≈ slope * x + intercept``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def _r_squared(observed: np.ndarray, predicted: np.ndarray) -> float:
    residual = float(np.sum((observed - predicted) ** 2))
    total = float(np.sum((observed - np.mean(observed)) ** 2))
    if total == 0.0:
        return 1.0
    return 1.0 - residual / total


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y = c * x^a`` by linear regression in log-log space.

    Used to check claims like "the stopping time on the barbell grows
    quadratically in n" (exponent ≈ 2) or "TAG grows linearly" (exponent ≈ 1).
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.size != ys.size or xs.size < 2:
        raise AnalysisError("fit_power_law needs at least two matching points")
    if np.any(xs <= 0) or np.any(ys <= 0):
        raise AnalysisError("fit_power_law requires strictly positive data")
    log_x, log_y = np.log(xs), np.log(ys)
    exponent, log_coefficient = np.polyfit(log_x, log_y, 1)
    predicted = exponent * log_x + log_coefficient
    return PowerLawFit(
        exponent=float(exponent),
        coefficient=float(np.exp(log_coefficient)),
        r_squared=_r_squared(log_y, predicted),
    )


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Fit ``y = a x + b``; used to check Θ(k) / Θ(n) linear-growth claims."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.size != ys.size or xs.size < 2:
        raise AnalysisError("fit_linear needs at least two matching points")
    slope, intercept = np.polyfit(xs, ys, 1)
    predicted = slope * xs + intercept
    return LinearFit(
        slope=float(slope),
        intercept=float(intercept),
        r_squared=_r_squared(ys, predicted),
    )


def ratio_is_bounded(
    measured: Sequence[float], bounds: Sequence[float], *, max_ratio: float
) -> bool:
    """Check ``measured[i] <= max_ratio * bounds[i]`` for every point.

    This is how "the measured stopping time is O(bound)" is validated: the
    ratio must stay below a fixed constant across the entire sweep.
    """
    measured = np.asarray(measured, dtype=float)
    bounds = np.asarray(bounds, dtype=float)
    if measured.shape != bounds.shape:
        raise AnalysisError("measured and bounds must have the same length")
    if np.any(bounds <= 0):
        raise AnalysisError("bounds must be strictly positive")
    return bool(np.all(measured <= max_ratio * bounds))
