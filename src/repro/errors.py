"""Exception hierarchy for the algebraic-gossip reproduction library.

Every error raised intentionally by the library derives from
:class:`ReproError` so that callers can distinguish library failures from
programming errors (``TypeError``, ``ValueError`` raised by numpy, etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class FieldError(ReproError):
    """Raised for invalid finite-field construction or arithmetic.

    Examples include requesting a field whose order is not a prime power,
    or attempting to invert / divide by the zero element.
    """


class DecodingError(ReproError):
    """Raised when an RLNC decoder cannot complete a requested operation.

    The most common cause is calling :meth:`RlncDecoder.decode` before the
    decoder has accumulated ``k`` linearly independent equations.
    """


class TopologyError(ReproError):
    """Raised for invalid graph-construction parameters.

    Examples: a barbell graph with fewer than two nodes per clique, a grid
    whose side length is not positive, or a spanning-tree request on a
    disconnected graph.
    """


class SimulationError(ReproError):
    """Raised when a gossip or queueing simulation is mis-configured.

    Examples: a workload referencing nodes that do not exist in the graph,
    a protocol driven past its configured ``max_rounds`` safety limit, or a
    spanning-tree protocol asked for a parent before the tree exists.
    """


class ConfigurationError(ReproError):
    """Raised when a :class:`SimulationConfig` contains inconsistent values."""


class EngineError(ReproError):
    """Raised when an explicitly requested engine cannot run a workload.

    The engine axis (``scalar`` / ``batch`` / ``event``) never falls back
    silently: asking the batch engines for reset-mode churn, or the
    event-driven engine for a protocol outside rank-only uniform algebraic
    gossip, refuses with this error so a run always executes on exactly the
    engine it named.
    """


class BackendError(ReproError):
    """Raised when a compute backend cannot honour a request.

    Examples: asking for an unregistered backend name, or handing the
    bit-packed ``gf2bit`` backend a field other than ``GF(2)`` — backends
    never fall back silently, they refuse loudly so that a scenario always
    runs on exactly the arithmetic it named.
    """


class StoreError(ReproError):
    """Raised when the persistent result store cannot honour a request.

    Examples: a corrupt shard file (malformed JSON on a committed line, or a
    record whose fingerprint does not match its shard), an aggregate request
    for trials the store does not hold, or an export/import of an unreadable
    file.
    """


class CampaignError(ReproError):
    """Raised when an experiment campaign cannot be compiled or executed.

    Examples: a campaign file naming an unknown scenario or artifact kind,
    duplicate unit names, a dependency cycle in the unit DAG, or an offline
    report request against a store that does not hold every trial.
    """


class AnalysisError(ReproError):
    """Raised when an analysis routine receives data it cannot work with.

    Examples: fitting a scaling exponent to fewer than two data points or
    building a results table with mismatched column counts.
    """
