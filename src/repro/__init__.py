"""Reproduction of "Order Optimal Information Spreading Using Algebraic Gossip".

(Avin, Borokhovich, Censor-Hillel, Lotker — PODC 2011, arXiv:1101.4372.)

The package is organised bottom-up:

* :mod:`repro.gf` — finite-field arithmetic,
* :mod:`repro.rlnc` — random linear network coding (encoder / decoder /
  helpfulness, Section 2 of the paper),
* :mod:`repro.graphs` — topologies, structural properties and spanning trees,
* :mod:`repro.gossip` — time models, communication models and the
  discrete-event engine,
* :mod:`repro.protocols` — uniform algebraic gossip (Theorem 1), TAG
  (Theorem 4), the spanning-tree protocols it composes with (round-robin
  broadcast of Theorem 5, the simulated IS protocol of Section 6) and uncoded
  baselines,
* :mod:`repro.queueing` — the queueing-network substrate of Theorem 2 and the
  gossip→queueing reduction of Theorem 1,
* :mod:`repro.analysis` — bound evaluators, stopping-time statistics, sweeps
  and the Table 1 / Table 2 generators,
* :mod:`repro.scenarios` — the declarative scenario layer: one immutable,
  JSON-round-trippable :class:`ScenarioSpec` (topology + placement +
  protocol + config + trial plan, including churn schedules and
  heterogeneous activation rates) drives the CLI, the sweep runner and the
  benchmarks with identical seeded results,
* :mod:`repro.store` — the persistent content-addressed result store:
  per-trial results keyed by ``(spec fingerprint, seed, trial)`` in
  append-only JSONL shards; every runner reads through it, making sweeps
  resumable and re-runs free,
* :mod:`repro.experiments` — named experiments, trial runners and reporting,
* :mod:`repro.campaigns` — declarative experiment campaigns: named sets of
  scenario sweeps (``table1`` ... ``full-paper``) compiled to a DAG,
  executed incrementally through the result store, and rendered as
  self-documenting Markdown/HTML reports.

Quickstart
----------
>>> from repro import quick_run
>>> result = quick_run("ring", n=12, k=6, seed=1)
>>> result.completed
True
"""

from __future__ import annotations

import numpy as np

from .campaigns import (
    CAMPAIGNS,
    ArtifactSpec,
    CampaignResult,
    CampaignSpec,
    CampaignUnit,
    campaign_names,
    get_campaign,
    load_campaign_file,
    register_campaign,
    run_campaign,
    write_report,
)
from .core import (
    DEFAULT_SEED,
    GossipAction,
    RunResult,
    SimulationConfig,
    StoppingTimeStats,
    TimeModel,
    aggregate_results,
)
from .errors import (
    AnalysisError,
    ConfigurationError,
    DecodingError,
    FieldError,
    ReproError,
    SimulationError,
    StoreError,
    TopologyError,
)
from .gf import GF
from .gossip import BatchGossipEngine, EventTrace, GossipEngine, run_protocol
from .graphs import build_topology
from .protocols import (
    AlgebraicGossip,
    ISSpanningTree,
    RoundRobinBroadcastTree,
    TagProtocol,
    UniformBroadcastTree,
)
from .rlnc import BatchDecoder, CodedPacket, Generation, RlncDecoder, RlncEncoder
from .scenarios import (
    SCENARIOS,
    MaterializedScenario,
    ScenarioSpec,
    get_scenario,
    register_scenario,
    scenario_case,
    scenario_names,
)
from .store import ResultStore

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "DEFAULT_SEED",
    "GossipAction",
    "RunResult",
    "SimulationConfig",
    "StoppingTimeStats",
    "TimeModel",
    "aggregate_results",
    "AnalysisError",
    "ConfigurationError",
    "DecodingError",
    "FieldError",
    "ReproError",
    "SimulationError",
    "StoreError",
    "TopologyError",
    "GF",
    "EventTrace",
    "BatchGossipEngine",
    "GossipEngine",
    "run_protocol",
    "build_topology",
    "AlgebraicGossip",
    "ISSpanningTree",
    "RoundRobinBroadcastTree",
    "TagProtocol",
    "UniformBroadcastTree",
    "BatchDecoder",
    "CodedPacket",
    "Generation",
    "RlncDecoder",
    "RlncEncoder",
    "SCENARIOS",
    "MaterializedScenario",
    "ScenarioSpec",
    "get_scenario",
    "register_scenario",
    "scenario_case",
    "scenario_names",
    "ResultStore",
    "CAMPAIGNS",
    "ArtifactSpec",
    "CampaignResult",
    "CampaignSpec",
    "CampaignUnit",
    "campaign_names",
    "get_campaign",
    "load_campaign_file",
    "register_campaign",
    "run_campaign",
    "write_report",
    "quick_run",
]


def quick_run(
    topology: str,
    *,
    n: int = 16,
    k: int | None = None,
    protocol: str = "uniform",
    time_model: TimeModel = TimeModel.SYNCHRONOUS,
    field_size: int = 16,
    seed: int = DEFAULT_SEED,
    trace: EventTrace | None = None,
    **topology_kwargs,
) -> RunResult:
    """Run one gossip dissemination on a named topology with sensible defaults.

    Parameters
    ----------
    topology:
        Any name from :data:`repro.graphs.TOPOLOGY_BUILDERS`
        (``"line"``, ``"grid"``, ``"complete"``, ``"barbell"``, ...).
    n:
        Requested number of nodes (some topologies round it, e.g. grids).
    k:
        Number of messages; defaults to ``n`` (all-to-all).
    protocol:
        ``"uniform"`` for uniform algebraic gossip, ``"tag"`` for TAG with the
        round-robin broadcast spanning tree, ``"tag-is"`` for TAG with the
        simulated IS protocol.
    time_model, field_size, seed:
        Standard knobs; see :class:`~repro.core.SimulationConfig`.
    trace:
        Optional :class:`EventTrace` to record every delivered message.

    Returns
    -------
    RunResult
        Stopping time (rounds / timeslots), completion data and counters.
    """
    from .scenarios.placements import all_to_all_placement, spread_placement

    graph = build_topology(topology, n, **topology_kwargs)
    actual_n = graph.number_of_nodes()
    actual_k = actual_n if k is None else min(k, actual_n)
    config = SimulationConfig(
        field_size=field_size,
        payload_length=2,
        time_model=time_model,
        action=GossipAction.EXCHANGE,
        max_rounds=200_000,
        seed=seed,
    )
    rng = np.random.default_rng(seed)
    field = GF(field_size)
    generation = Generation.random(field, actual_k, config.payload_length, rng)
    placement = (
        all_to_all_placement(graph)
        if actual_k >= actual_n
        else spread_placement(graph, actual_k)
    )
    if protocol == "uniform":
        process = AlgebraicGossip(graph, generation, placement, config, rng)
    elif protocol == "tag":
        root = sorted(graph.nodes())[0]
        process = TagProtocol(
            graph,
            generation,
            placement,
            config,
            rng,
            lambda g, r: RoundRobinBroadcastTree(g, root, r),
        )
    elif protocol == "tag-is":
        process = TagProtocol(
            graph,
            generation,
            placement,
            config,
            rng,
            lambda g, r: ISSpanningTree(g, r),
        )
    else:
        raise SimulationError(
            f"unknown protocol {protocol!r}; expected 'uniform', 'tag' or 'tag-is'"
        )
    return run_protocol(graph, process, config, rng, trace)
