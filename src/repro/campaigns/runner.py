"""Incremental campaign execution through the persistent result store.

:func:`run_campaign` is the execution engine of the campaign layer: it takes
a :class:`~repro.campaigns.CampaignSpec`, compiles the units into their DAG
order, and runs each unit's Monte Carlo plan **through** a
:class:`~repro.store.ResultStore` — per unit, only the
``(fingerprint, seed, trial)`` records the store does not already hold are
simulated, so

* an interrupted campaign resumes where it stopped (completed units are
  served from cache, the interrupted unit finishes its missing trials),
* a repeated campaign simulates nothing (``store.puts == 0``), and
* a campaign extended with new units computes only those.

Execution reuses one worker pool across all units
(:func:`~repro.experiments.parallel.shared_process_pool`) when ``jobs > 1``,
instead of forking a fresh pool per sweep.  The outcome —
:class:`CampaignResult` with per-unit cached/computed counts, timings,
store counters and evaluated artifacts — is what
:mod:`repro.campaigns.report` renders.
"""

from __future__ import annotations

import contextlib
import math
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from ..analysis.tables import table1_rows, table2_rows
from ..core.results import RunResult, StoppingTimeStats, aggregate_results
from ..core.rng import derive_rng
from ..errors import AnalysisError, CampaignError
from ..experiments.parallel import (
    _measure_trial_indices,
    measure_protocol_parallel,
    shared_process_pool,
)
from ..graphs.topologies import build_topology
from ..scenarios.spec import ScenarioSpec
from .spec import ArtifactSpec, CampaignSpec, CampaignUnit

__all__ = ["UnitOutcome", "ArtifactResult", "CampaignResult", "run_campaign"]


def _peak_rss_mib() -> "float | None":
    """This process's lifetime peak RSS in MiB, or ``None`` where unavailable.

    Mirrors ``benchmarks/_utils.peak_rss_mib``: ``ru_maxrss`` is KiB on
    Linux, bytes on macOS.  The high-water mark only grows, so per-unit
    values in a campaign are cumulative — useful as a budget check for the
    largest decade, not as a per-unit delta.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is bytes there
        return peak / (1024 * 1024)
    return peak / 1024


@dataclass(frozen=True)
class UnitOutcome:
    """What happened to one campaign unit: plan, cache split, statistics.

    ``cached_trials`` / ``computed_trials`` partition the unit's trial plan:
    a fully warm unit is *cached* (nothing simulated), a cold one *computed*,
    an interrupted-and-resumed one *partial*.  ``seconds`` and
    ``peak_rss_mib`` are wall-clock/rusage observations and therefore
    excluded from the deterministic report body.  Units executed through
    the streaming-summary path (``record == "summary"``) carry no full
    ``results`` tuple — only ``stats``.
    """

    unit: CampaignUnit
    spec: ScenarioSpec
    fingerprint: str
    trials: int
    seed: int
    cached_trials: int
    computed_trials: int
    stats: StoppingTimeStats
    results: tuple[RunResult, ...]
    n: int
    k: int
    seconds: float
    peak_rss_mib: "float | None" = None

    @property
    def status(self) -> str:
        """``cached`` | ``computed`` | ``partial`` — the unit's cache verdict."""
        if self.computed_trials == 0:
            return "cached"
        if self.cached_trials == 0:
            return "computed"
        return "partial"


@dataclass(frozen=True)
class ArtifactResult:
    """One evaluated report artifact: table rows, CSV text and/or curves."""

    artifact: ArtifactSpec
    rows: tuple[Mapping[str, Any], ...] = ()
    csv: str = ""
    #: ``rank-evolution``: unit name → (round, min, median, max) tuples.
    #: ``asymptotic-fit``: annotated family label →
    #: (log10 n, log10 mean, log10 fitted, log10 p95) tuples.
    curves: tuple[tuple[str, tuple[tuple[float, float, float, float], ...]], ...] = ()


@dataclass(frozen=True)
class CampaignResult:
    """The full outcome of :func:`run_campaign`, ready for report rendering."""

    campaign: CampaignSpec
    outcomes: tuple[UnitOutcome, ...]
    artifacts: tuple[ArtifactResult, ...]
    store_root: str
    store_hits: int
    store_puts: int
    trials_override: "int | None"
    seed_override: "int | None"
    jobs: "int | None"
    seconds: float

    @property
    def total_trials(self) -> int:
        return sum(outcome.trials for outcome in self.outcomes)

    @property
    def cached_trials(self) -> int:
        return sum(outcome.cached_trials for outcome in self.outcomes)

    @property
    def computed_trials(self) -> int:
        return sum(outcome.computed_trials for outcome in self.outcomes)

    def outcome(self, unit_name: str) -> UnitOutcome:
        """Look one unit's outcome up by name."""
        for outcome in self.outcomes:
            if outcome.unit.name == unit_name:
                return outcome
        raise CampaignError(
            f"campaign {self.campaign.name!r} has no outcome for unit {unit_name!r}"
        )


def _run_unit(
    unit: CampaignUnit,
    spec: ScenarioSpec,
    *,
    store: Any,
    jobs: "int | None",
    batch: bool,
    fresh: bool,
    offline: bool,
) -> UnitOutcome:
    """Execute one unit's Monte Carlo plan through the store."""
    if unit.record == "summary":
        return _run_summary_unit(
            unit, spec, store=store, batch=batch, fresh=fresh, offline=offline
        )
    scenario = spec.materialize()
    missing_before = store.missing_trials(spec)
    if offline and missing_before:
        raise CampaignError(
            f"unit {unit.name!r} is not fully cached in {store.root}: "
            f"{len(missing_before)}/{spec.trials} trial(s) missing "
            f"(indices {missing_before[:8]}"
            f"{'...' if len(missing_before) > 8 else ''}) — execute it first "
            "('campaign run'), then render the report"
        )
    started = time.perf_counter()
    results = measure_protocol_parallel(
        scenario,
        trials=spec.trials,
        seed=spec.seed,
        jobs=1 if jobs is None else jobs,
        batch=batch,
        store=store,
        fresh=fresh,
    )
    seconds = time.perf_counter() - started
    computed = spec.trials if fresh else len(missing_before)
    return UnitOutcome(
        unit=unit,
        spec=spec,
        fingerprint=spec.fingerprint(),
        trials=spec.trials,
        seed=spec.seed,
        cached_trials=spec.trials - computed,
        computed_trials=computed,
        stats=aggregate_results(results),
        results=tuple(results),
        n=scenario.n,
        k=scenario.k,
        seconds=seconds,
        peak_rss_mib=_peak_rss_mib(),
    )


def _run_summary_unit(
    unit: CampaignUnit,
    spec: ScenarioSpec,
    *,
    store: Any,
    batch: bool,
    fresh: bool,
    offline: bool,
) -> UnitOutcome:
    """Execute one unit through the streaming-summary store path.

    The asymptotic campaigns run decades up to ``n = 10^6``, where archiving
    full :class:`~repro.core.results.RunResult` payloads (per-node completion
    rounds included) would dwarf the statistics they exist to support.  This
    path differs from :func:`_run_unit` in three deliberate ways:

    * the scenario materializes through
      :meth:`~repro.scenarios.ScenarioSpec.materialize_preferred`, so
      event-engine units take the graph-free CSR pipeline when the topology
      has a CSR builder;
    * missing trials are computed **in-process** with
      :func:`~repro.experiments.parallel._measure_trial_indices` — the trial
      results stream straight into :meth:`~repro.store.ResultStore.put_summaries`
      without the parallel runner's full-record archival; and
    * statistics come from :meth:`~repro.store.ResultStore.aggregate`, which
      consumes summary and full records interchangeably — so a summary unit
      over a store already holding full records is served from cache,
      bit-identically.
    """
    scenario = spec.materialize_preferred()
    missing_before = store.missing_summary_trials(spec)
    if offline and missing_before:
        raise CampaignError(
            f"unit {unit.name!r} is not fully cached in {store.root}: "
            f"{len(missing_before)}/{spec.trials} trial(s) missing "
            f"(indices {missing_before[:8]}"
            f"{'...' if len(missing_before) > 8 else ''}) — execute it first "
            "('campaign run'), then render the report"
        )
    started = time.perf_counter()
    to_compute = list(range(spec.trials)) if fresh else list(missing_before)
    if to_compute:
        results = _measure_trial_indices(
            scenario.graph,
            scenario.protocol_factory,
            scenario.config,
            spec.seed,
            to_compute,
            batch,
            spec.backend,
            spec.engine,
        )
        store.put_summaries(spec, dict(zip(to_compute, results)))
    stats = store.aggregate(spec)
    seconds = time.perf_counter() - started
    computed = len(to_compute)
    return UnitOutcome(
        unit=unit,
        spec=spec,
        fingerprint=spec.fingerprint(),
        trials=spec.trials,
        seed=spec.seed,
        cached_trials=spec.trials - computed,
        computed_trials=computed,
        stats=stats,
        results=(),
        n=scenario.n,
        k=scenario.k,
        seconds=seconds,
        peak_rss_mib=_peak_rss_mib(),
    )


# ----------------------------------------------------------------------
# Artifact evaluation
# ----------------------------------------------------------------------
def _selected(
    artifact: ArtifactSpec, outcomes: Sequence[UnitOutcome]
) -> list[UnitOutcome]:
    """The outcomes an artifact covers (its unit list, or every unit)."""
    if not artifact.units:
        return list(outcomes)
    by_name = {outcome.unit.name: outcome for outcome in outcomes}
    return [by_name[name] for name in artifact.units]


def _measured_table(
    artifact: ArtifactSpec, outcomes: Sequence[UnitOutcome]
) -> ArtifactResult:
    rows = []
    for outcome in _selected(artifact, outcomes):
        scenario_label = outcome.unit.scenario or outcome.spec.name or "(inline)"
        rows.append(
            {
                "unit": outcome.unit.name,
                "scenario": scenario_label,
                "topology": outcome.spec.topology,
                "n": outcome.n,
                "k": outcome.k,
                "trials": outcome.trials,
                "mean_rounds": round(outcome.stats.mean, 2),
                "p95_rounds": round(outcome.stats.whp, 2),
            }
        )
    return ArtifactResult(artifact=artifact, rows=tuple(rows))


def _table1_analytic(artifact: ArtifactSpec, _: Sequence[UnitOutcome]) -> ArtifactResult:
    params = dict(artifact.params)
    n = int(params.get("n", 16))
    k = int(params.get("k", 8))
    topologies = params.get("topologies", ("ring", "grid", "barbell"))
    graphs = {name: build_topology(name, n) for name in topologies}
    return ArtifactResult(artifact=artifact, rows=tuple(table1_rows(n, k, graphs=graphs)))


def _table2_analytic(artifact: ArtifactSpec, _: Sequence[UnitOutcome]) -> ArtifactResult:
    params = dict(artifact.params)
    n = int(params.get("n", 32))
    k = int(params.get("k", n))
    return ArtifactResult(artifact=artifact, rows=tuple(table2_rows(n, k)))


def _csv_extract(
    artifact: ArtifactSpec, outcomes: Sequence[UnitOutcome]
) -> ArtifactResult:
    from ..analysis.tables import rows_to_csv

    rows = []
    for outcome in _selected(artifact, outcomes):
        for trial, result in enumerate(outcome.results):
            rows.append(
                {
                    "unit": outcome.unit.name,
                    "fingerprint": outcome.fingerprint[:12],
                    "seed": outcome.seed,
                    "trial": trial,
                    "rounds": result.rounds,
                    "timeslots": result.timeslots,
                    "completed": result.completed,
                    "messages_sent": result.messages_sent,
                    "helpful_messages": result.helpful_messages,
                }
            )
    return ArtifactResult(artifact=artifact, csv=rows_to_csv(rows))


def _rank_evolution(
    artifact: ArtifactSpec, outcomes: Sequence[UnitOutcome]
) -> ArtifactResult:
    """Per-round rank curve of each selected unit's trial 0.

    Recomputed sequentially with a :class:`~repro.analysis.ProgressRecorder`
    (the batch engines do not record per-round snapshots); one trial per
    unit, derived from the same ``trial-0`` stream as
    :meth:`~repro.scenarios.MaterializedScenario.run_single`, so the curve's
    endpoint matches the stored trial-0 stopping time.
    """
    from ..analysis.progress import ProgressRecorder
    from ..gossip.engine import GossipEngine

    curves = []
    for outcome in _selected(artifact, outcomes):
        if outcome.spec.protocol not in ("uniform", "tag"):
            raise CampaignError(
                f"rank-evolution artifact {artifact.label!r}: unit "
                f"{outcome.unit.name!r} runs protocol "
                f"{outcome.spec.protocol!r}, which reports no decoder ranks "
                "(uniform/tag only)"
            )
        scenario = outcome.spec.materialize()
        rng = derive_rng(outcome.seed, "trial-0")
        recorder = ProgressRecorder(scenario.build_process(rng))
        GossipEngine(scenario.graph, recorder, scenario.config, rng).run()
        points = tuple(
            (
                float(snap.round_index),
                float(snap.min_rank),
                float(snap.median_rank),
                float(snap.max_rank),
            )
            for snap in recorder.snapshots
        )
        curves.append((outcome.unit.name, points))
    rows = [
        {
            "unit": name,
            "round": int(point[0]),
            "min_rank": point[1],
            "median_rank": point[2],
            "max_rank": point[3],
        }
        for name, points in curves
        for point in points
    ]
    from ..analysis.tables import rows_to_csv

    return ArtifactResult(
        artifact=artifact,
        csv=rows_to_csv(rows) if rows else "",
        curves=tuple(curves),
    )


def _asymptotic_fit(
    artifact: ArtifactSpec, outcomes: Sequence[UnitOutcome]
) -> ArtifactResult:
    """Exponent fits over the selected units' decade sweeps.

    Units are grouped into families by their ``group`` label (a group-less
    unit forms its own family).  Per family the artifact yields one fit
    row, per-decade CSV rows (measured mean/p95 next to the fitted
    prediction), and one log-log curve whose points are
    ``(log10 n, log10 mean, log10 fitted, log10 p95)`` — the shape
    :func:`repro.campaigns.report._svg_loglog` plots.

    A family whose data cannot identify an exponent (one size only, zero
    variance across sizes — degenerate cases :func:`fit_decades` rejects
    with a typed error) degrades to a row carrying the error text in its
    ``note`` column instead of failing the whole campaign: the trials are
    already archived and the report must still document them.  The strict
    behaviour lives in ``python -m repro analyze fit``.

    ``params`` tunes the fit: ``bootstrap`` (default 200), ``confidence``
    (default 0.95) and ``seed`` (default 0) pass straight through to
    :func:`~repro.analysis.fit_decades`.
    """
    from ..analysis.asymptotics import fit_decades
    from ..analysis.tables import rows_to_csv

    params = dict(artifact.params)
    bootstrap = int(params.get("bootstrap", 200))
    confidence = float(params.get("confidence", 0.95))
    fit_seed = int(params.get("seed", 0))
    families: dict[str, list[UnitOutcome]] = {}
    for outcome in _selected(artifact, outcomes):
        families.setdefault(outcome.unit.group or outcome.unit.name, []).append(
            outcome
        )
    rows: list[dict[str, Any]] = []
    csv_rows: list[dict[str, Any]] = []
    curves: list[tuple[str, tuple[tuple[float, float, float, float], ...]]] = []
    for family in sorted(families):
        members = sorted(families[family], key=lambda member: member.n)
        samples_by_n = {member.n: member.stats.samples for member in members}
        try:
            fit = fit_decades(
                samples_by_n,
                bootstrap=bootstrap,
                seed=fit_seed,
                confidence=confidence,
            )
        except AnalysisError as error:
            fit = None
            note = str(error)
        else:
            note = ""
        rows.append(
            {
                "family": family,
                "sizes": len(samples_by_n),
                "n_min": members[0].n,
                "n_max": members[-1].n,
                "exponent": round(fit.exponent, 4) if fit else "-",
                "ci_low": round(fit.ci_low, 4) if fit else "-",
                "ci_high": round(fit.ci_high, 4) if fit else "-",
                "r_squared": round(fit.r_squared, 4) if fit else "-",
                "coefficient": round(fit.coefficient, 4) if fit else "-",
                "note": note,
            }
        )
        points = []
        for member in members:
            csv_rows.append(
                {
                    "family": family,
                    "unit": member.unit.name,
                    "n": member.n,
                    "trials": member.trials,
                    "mean_rounds": member.stats.mean,
                    "p95_rounds": member.stats.whp,
                    "fitted_rounds": fit.predict(member.n) if fit else "",
                }
            )
            if fit is not None:
                points.append(
                    (
                        math.log10(member.n),
                        math.log10(member.stats.mean),
                        math.log10(fit.predict(member.n)),
                        math.log10(member.stats.whp),
                    )
                )
        if fit is not None:
            curves.append((f"{family} — {fit.summary()}", tuple(points)))
    return ArtifactResult(
        artifact=artifact,
        rows=tuple(rows),
        csv=rows_to_csv(csv_rows) if csv_rows else "",
        curves=tuple(curves),
    )


_ARTIFACT_BUILDERS: dict[
    str, Callable[[ArtifactSpec, Sequence[UnitOutcome]], ArtifactResult]
] = {
    "measured-table": _measured_table,
    "table1-analytic": _table1_analytic,
    "table2-analytic": _table2_analytic,
    "csv": _csv_extract,
    "rank-evolution": _rank_evolution,
    "asymptotic-fit": _asymptotic_fit,
}


def run_campaign(
    campaign: CampaignSpec,
    *,
    store: Any,
    trials: "int | None" = None,
    seed: "int | None" = None,
    jobs: "int | None" = None,
    batch: bool = True,
    fresh: bool = False,
    offline: bool = False,
    progress: "Callable[[str], None] | None" = None,
) -> CampaignResult:
    """Execute a campaign incrementally through ``store`` and evaluate artifacts.

    Parameters
    ----------
    campaign:
        The :class:`~repro.campaigns.CampaignSpec` to execute.
    store:
        A :class:`~repro.store.ResultStore`; required, because incremental
        execution *is* the campaign contract (pass a throwaway directory to
        run cold).
    trials, seed:
        Campaign-wide plan overrides applied to every unit (e.g. the CLI's
        smoke-scale ``--trials 2``); ``None`` keeps each unit's own plan.
    jobs:
        Worker processes.  With ``jobs > 1`` one process pool is shared by
        every unit (:func:`~repro.experiments.parallel.shared_process_pool`)
        rather than forked per sweep.
    batch:
        Route units through their vectorised batch engines (bit-identical;
        wall-clock only).
    fresh:
        Recompute every trial, bypassing cache reads; recomputed results are
        verified against the archive (see
        :meth:`~repro.store.ResultStore.put_many`).
    offline:
        Report-only mode: raise :class:`~repro.errors.CampaignError` instead
        of simulating when any unit has missing Monte Carlo trials.
        ``python -m repro campaign report`` uses this to render reports
        without executing any unit's trial plan.  Rank-evolution artifacts
        are the one exception in either mode: they replay one trial per
        named unit sequentially (the store archives stopping times, not
        per-round rank snapshots).
    progress:
        Optional callback receiving one human-readable line per unit as it
        completes (the CLI passes ``print``).
    """
    if store is None:
        raise CampaignError(
            "run_campaign requires a ResultStore: incremental, resumable "
            "execution is the campaign contract (point it at a fresh "
            "directory for a cold run)"
        )
    ordered = campaign.execution_order()
    specs = campaign.resolved_specs(trials=trials, seed=seed)
    started = time.perf_counter()
    outcomes: list[UnitOutcome] = []
    pool_context = (
        shared_process_pool(jobs)
        if jobs is not None and jobs > 1
        else contextlib.nullcontext()
    )
    with pool_context:
        for index, unit in enumerate(ordered):
            outcome = _run_unit(
                unit,
                specs[unit.name],
                store=store,
                jobs=jobs,
                batch=batch,
                fresh=fresh,
                offline=offline,
            )
            outcomes.append(outcome)
            if progress is not None:
                progress(
                    f"[{index + 1}/{len(ordered)}] {unit.name}: "
                    f"{outcome.status} ({outcome.cached_trials} cached, "
                    f"{outcome.computed_trials} computed) — "
                    f"mean {outcome.stats.mean:.1f} rounds"
                )
    artifacts = tuple(
        _ARTIFACT_BUILDERS[artifact.kind](artifact, outcomes)
        for artifact in campaign.artifacts
    )
    return CampaignResult(
        campaign=campaign,
        outcomes=tuple(outcomes),
        artifacts=artifacts,
        store_root=str(store.root),
        store_hits=store.hits,
        store_puts=store.puts,
        trials_override=trials,
        seed_override=seed,
        jobs=jobs,
        seconds=time.perf_counter() - started,
    )
