"""Self-documenting campaign reports: Markdown and static HTML.

A report is the durable face of a campaign run.  It embeds everything needed
to audit and regenerate the numbers it shows:

* the campaign spec itself (canonical JSON — feed it back through
  ``python -m repro campaign run --file``),
* one row per unit with its workload, cache verdict (``cached`` /
  ``computed`` / ``partial``) and measured statistics,
* the store cache statistics (trials read back vs newly simulated),
* every declared artifact — regenerated paper tables, CSV extracts,
  rank-evolution curves and asymptotic log-log fits (inline SVG in the
  HTML report), and
* per-unit wall-clock timings and peak-RSS high-water marks.

Determinism contract
--------------------
Everything above the :data:`TIMINGS_MARKER` line — the *report body* — is a
pure function of the campaign spec and the store contents: a fully-cached
re-run renders a byte-identical body (``tests/test_campaigns_resume.py``
asserts this).  Only the timings section below the marker carries wall-clock
values.  :func:`report_body` strips a rendered report back to its body.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..analysis.tables import format_table
from ..errors import CampaignError
from ..experiments.reporting import format_markdown_table
from .runner import ArtifactResult, CampaignResult
from .spec import artifact_slug as _artifact_slug

__all__ = [
    "TIMINGS_MARKER",
    "render_markdown",
    "render_html",
    "render_text_summary",
    "report_body",
    "write_report",
]

#: Separator between the deterministic report body and the wall-clock
#: timings section.  Present verbatim in both the Markdown and HTML output.
TIMINGS_MARKER = "<!-- repro-campaign: timings below (non-deterministic) -->"


def report_body(rendered: str) -> str:
    """The deterministic part of a rendered report (above the timings marker)."""
    return rendered.split(TIMINGS_MARKER, 1)[0]


def _regenerate_command(result: CampaignResult) -> str:
    """The command that reproduces this report.

    Registered campaigns regenerate by name; a campaign that came from a
    file (or was registered only in the producing process) is addressed via
    ``--file`` against the spec embedded at the bottom of the report —
    ``campaign run <unregistered-name>`` would exit with an unknown-name
    error.
    """
    from .registry import CAMPAIGNS

    campaign = result.campaign
    if CAMPAIGNS.get(campaign.name) == campaign:
        return (
            f"python -m repro campaign run {campaign.name} "
            f"--store {result.store_root}"
        )
    return (
        "python -m repro campaign run --file <this report's embedded "
        f"campaign spec, saved as JSON> --store {result.store_root}"
    )


def _unit_rows(result: CampaignResult) -> list[dict[str, Any]]:
    """The per-unit summary table shared by both renderers."""
    rows = []
    for outcome in result.outcomes:
        rows.append(
            {
                "unit": outcome.unit.name,
                "workload": outcome.unit.scenario or outcome.spec.name or "(inline)",
                "fingerprint": outcome.fingerprint[:12],
                "n": outcome.n,
                "k": outcome.k,
                "trials": outcome.trials,
                "seed": outcome.seed,
                "status": outcome.status,
                "cached": outcome.cached_trials,
                "computed": outcome.computed_trials,
                "mean_rounds": round(outcome.stats.mean, 2),
                "p95_rounds": round(outcome.stats.whp, 2),
            }
        )
    return rows


def _cache_lines(result: CampaignResult) -> list[str]:
    """The cache-statistics bullet list (deterministic)."""
    return [
        f"result store: `{result.store_root}`",
        f"trial plan: {result.total_trials} trial(s) across "
        f"{len(result.outcomes)} unit(s)",
        f"served from cache: {result.cached_trials} trial(s)",
        f"newly computed and archived: {result.computed_trials} trial(s) "
        f"(store puts: {result.store_puts})",
    ]


def _override_lines(result: CampaignResult) -> list[str]:
    lines = []
    if result.trials_override is not None:
        lines.append(f"campaign-wide trials override: {result.trials_override}")
    if result.seed_override is not None:
        lines.append(f"campaign-wide seed override: {result.seed_override}")
    return lines


def _timing_rows(result: CampaignResult) -> list[dict[str, Any]]:
    rows = [
        {
            "unit": outcome.unit.name,
            "status": outcome.status,
            "seconds": round(outcome.seconds, 3),
            # Process-lifetime high-water mark at unit completion (rusage):
            # cumulative, so the largest decade's row is the run's budget.
            "peak_rss_mib": (
                "-"
                if outcome.peak_rss_mib is None
                else round(outcome.peak_rss_mib, 1)
            ),
        }
        for outcome in result.outcomes
    ]
    rows.append(
        {
            "unit": "TOTAL",
            "status": "-",
            "seconds": round(result.seconds, 3),
            "peak_rss_mib": rows[-1]["peak_rss_mib"] if rows else "-",
        }
    )
    return rows


# ----------------------------------------------------------------------
# Markdown
# ----------------------------------------------------------------------
def render_markdown(result: CampaignResult) -> str:
    """The full Markdown report: deterministic body, marker, timings."""
    campaign = result.campaign
    parts: list[str] = [f"# Campaign report: {campaign.title or campaign.name}", ""]
    if campaign.description:
        parts += [campaign.description, ""]
    parts += [
        f"Regenerate with `{_regenerate_command(result)}` — a fully cached "
        "re-run simulates nothing and renders this body byte-for-byte.",
        "",
        "## Units",
        "",
        format_markdown_table(_unit_rows(result)),
        "",
        "## Cache statistics",
        "",
    ]
    parts += [f"- {line}" for line in _cache_lines(result) + _override_lines(result)]
    parts.append("")
    for artifact_result in result.artifacts:
        parts += _markdown_artifact(artifact_result)
    parts += [
        "## Campaign spec",
        "",
        "The exact campaign this report documents "
        "(`python -m repro campaign run --file <saved.json>` re-runs it):",
        "",
        "```json",
        campaign.to_json(),
        "```",
        "",
        TIMINGS_MARKER,
        "",
        "## Execution timings (wall clock)",
        "",
        format_markdown_table(_timing_rows(result)),
        "",
    ]
    return "\n".join(parts)


def _markdown_artifact(artifact_result: ArtifactResult) -> list[str]:
    artifact = artifact_result.artifact
    parts = [f"## {artifact.label}", ""]
    if artifact_result.rows:
        parts += [format_markdown_table(list(artifact_result.rows)), ""]
    if (
        artifact.kind in ("csv", "rank-evolution", "asymptotic-fit")
        and artifact_result.csv
    ):
        slug = _artifact_slug(artifact.label)
        parts += [
            f"CSV extract written alongside this report as `{slug}.csv` "
            f"({artifact_result.csv.count(chr(10)) - 1} data row(s)).",
            "",
        ]
    if artifact_result.curves:
        for name, points in artifact_result.curves:
            if not points:
                continue
            final = points[-1]
            if artifact.kind == "asymptotic-fit":
                parts.append(
                    f"- {name} (log-log curve in the HTML report / CSV extract)"
                )
            else:
                parts.append(
                    f"- `{name}`: min rank reaches {final[1]:.0f} at round "
                    f"{final[0]:.0f} (curve in the HTML report / CSV extract)"
                )
        parts.append("")
    return parts


# ----------------------------------------------------------------------
# HTML
# ----------------------------------------------------------------------
_CSS = """
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 60rem;
       padding: 0 1rem; color: #1a1a1a; }
h1 { border-bottom: 2px solid #444; padding-bottom: .3rem; }
table { border-collapse: collapse; margin: 1rem 0; font-size: .9rem; }
th, td { border: 1px solid #bbb; padding: .3rem .6rem; text-align: left; }
th { background: #f0f0f0; }
td.num { text-align: right; }
code, pre { background: #f6f6f6; }
pre { padding: .8rem; overflow-x: auto; border: 1px solid #ddd; }
.status-cached { color: #11691e; font-weight: 600; }
.status-computed { color: #8a4b00; font-weight: 600; }
.status-partial { color: #00568a; font-weight: 600; }
svg.curve { border: 1px solid #ddd; background: #fcfcfc; margin: .5rem 0; }
""".strip()


def _html_table(rows: Sequence[Mapping[str, Any]]) -> str:
    if not rows:
        return "<p>(empty)</p>"
    headers = list(rows[0].keys())
    out = ["<table>", "<tr>" + "".join(f"<th>{html.escape(h)}</th>" for h in headers) + "</tr>"]
    for row in rows:
        cells = []
        for header in headers:
            value = row[header]
            css = ' class="num"' if isinstance(value, (int, float)) else ""
            if header == "status":
                css = f' class="status-{html.escape(str(value))}"'
            cells.append(f"<td{css}>{html.escape(str(value))}</td>")
        out.append("<tr>" + "".join(cells) + "</tr>")
    out.append("</table>")
    return "\n".join(out)


def _svg_curve(
    name: str, points: Sequence[tuple[float, float, float, float]]
) -> str:
    """A dependency-free inline SVG of one rank-evolution curve.

    Three polylines (min / median / max rank per round) on a fixed 560x220
    canvas; coordinates are rounded to 2 decimals so the markup is
    deterministic across runs.
    """
    if not points:
        return ""
    width, height, pad = 560.0, 220.0, 30.0
    max_round = max(point[0] for point in points) or 1.0
    max_rank = max(point[3] for point in points) or 1.0

    def coords(series_index: int) -> str:
        return " ".join(
            f"{pad + (point[0] / max_round) * (width - 2 * pad):.2f},"
            f"{height - pad - (point[series_index] / max_rank) * (height - 2 * pad):.2f}"
            for point in points
        )

    series = [
        ("min rank", "#b2182b", 1),
        ("median rank", "#5b5b5b", 2),
        ("max rank", "#2166ac", 3),
    ]
    lines = [
        f'<svg class="curve" viewBox="0 0 {width:.0f} {height:.0f}" '
        f'width="{width:.0f}" height="{height:.0f}" role="img" '
        f'aria-label="rank evolution of {html.escape(name)}">',
        f'<text x="{pad:.0f}" y="16" font-size="12">'
        f"{html.escape(name)} — decoder rank per round (max {max_rank:.0f}, "
        f"{max_round:.0f} rounds)</text>",
        f'<line x1="{pad:.0f}" y1="{height - pad:.0f}" x2="{width - pad:.0f}" '
        f'y2="{height - pad:.0f}" stroke="#999"/>',
        f'<line x1="{pad:.0f}" y1="{pad:.0f}" x2="{pad:.0f}" '
        f'y2="{height - pad:.0f}" stroke="#999"/>',
    ]
    for label, color, series_index in series:
        lines.append(
            f'<polyline fill="none" stroke="{color}" stroke-width="1.5" '
            f'points="{coords(series_index)}"><title>{label}</title></polyline>'
        )
    for offset, (label, color, _) in enumerate(series):
        lines.append(
            f'<text x="{width - pad - 150:.0f}" y="{pad + 14 * offset:.0f}" '
            f'font-size="11" fill="{color}">{label}</text>'
        )
    lines.append("</svg>")
    return "\n".join(lines)


def _svg_loglog(
    name: str, points: Sequence[tuple[float, float, float, float]]
) -> str:
    """A dependency-free inline SVG of one asymptotic log-log curve.

    Points are ``(log10 n, log10 mean, log10 fitted, log10 p95)`` (see the
    ``asymptotic-fit`` builder); the measured mean is drawn with point
    markers, the fitted power law as a line through them, the p95 curve
    dimly above.  The fitted slope and its CI ride in ``name``.  Same
    determinism contract as :func:`_svg_curve`: fixed canvas, coordinates
    rounded to 2 decimals.
    """
    if not points:
        return ""
    width, height, pad = 560.0, 220.0, 30.0
    xs = [point[0] for point in points]
    ys = [value for point in points for value in point[1:]]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    def x_at(value: float) -> float:
        return pad + ((value - x_lo) / x_span) * (width - 2 * pad)

    def y_at(value: float) -> float:
        return height - pad - ((value - y_lo) / y_span) * (height - 2 * pad)

    def coords(series_index: int) -> str:
        return " ".join(
            f"{x_at(point[0]):.2f},{y_at(point[series_index]):.2f}"
            for point in points
        )

    lines = [
        f'<svg class="curve" viewBox="0 0 {width:.0f} {height:.0f}" '
        f'width="{width:.0f}" height="{height:.0f}" role="img" '
        f'aria-label="log-log stopping time of {html.escape(name)}">',
        f'<text x="{pad:.0f}" y="16" font-size="12">'
        f"{html.escape(name)}</text>",
        f'<text x="{pad:.0f}" y="{height - 8:.0f}" font-size="11" fill="#555">'
        f"log10 n: {x_lo:.1f} … {x_hi:.1f}; log10 rounds: "
        f"{y_lo:.1f} … {y_hi:.1f}</text>",
        f'<line x1="{pad:.0f}" y1="{height - pad:.0f}" x2="{width - pad:.0f}" '
        f'y2="{height - pad:.0f}" stroke="#999"/>',
        f'<line x1="{pad:.0f}" y1="{pad:.0f}" x2="{pad:.0f}" '
        f'y2="{height - pad:.0f}" stroke="#999"/>',
        f'<polyline fill="none" stroke="#bbb" stroke-width="1" '
        f'stroke-dasharray="4 3" points="{coords(3)}">'
        "<title>p95 (measured)</title></polyline>",
        f'<polyline fill="none" stroke="#2166ac" stroke-width="1.5" '
        f'points="{coords(2)}"><title>fitted power law</title></polyline>',
        f'<polyline fill="none" stroke="#b2182b" stroke-width="1.5" '
        f'points="{coords(1)}"><title>mean (measured)</title></polyline>',
    ]
    for point in points:
        lines.append(
            f'<circle cx="{x_at(point[0]):.2f}" cy="{y_at(point[1]):.2f}" '
            'r="3" fill="#b2182b"/>'
        )
    for offset, (label, color) in enumerate(
        (("mean (measured)", "#b2182b"), ("fit", "#2166ac"), ("p95", "#999"))
    ):
        lines.append(
            f'<text x="{width - pad - 150:.0f}" y="{pad + 14 * offset:.0f}" '
            f'font-size="11" fill="{color}">{label}</text>'
        )
    lines.append("</svg>")
    return "\n".join(lines)


def render_html(result: CampaignResult) -> str:
    """The full static-HTML report: deterministic body, marker, timings."""
    campaign = result.campaign
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>Campaign report: {html.escape(campaign.title or campaign.name)}</title>",
        f"<style>{_CSS}</style>",
        "</head><body>",
        f"<h1>Campaign report: {html.escape(campaign.title or campaign.name)}</h1>",
    ]
    if campaign.description:
        parts.append(f"<p>{html.escape(campaign.description)}</p>")
    parts += [
        f"<p>Regenerate with <code>{html.escape(_regenerate_command(result))}"
        "</code> — a fully cached re-run simulates nothing and renders this "
        "body byte-for-byte.</p>",
        "<h2>Units</h2>",
        _html_table(_unit_rows(result)),
        "<h2>Cache statistics</h2>",
        "<ul>",
    ]
    for line in _cache_lines(result) + _override_lines(result):
        parts.append(f"<li>{html.escape(line).replace('`', '')}</li>")
    parts.append("</ul>")
    for artifact_result in result.artifacts:
        artifact = artifact_result.artifact
        parts.append(f"<h2>{html.escape(artifact.label)}</h2>")
        if artifact_result.rows:
            parts.append(_html_table(list(artifact_result.rows)))
        if (
            artifact.kind in ("csv", "rank-evolution", "asymptotic-fit")
            and artifact_result.csv
        ):
            slug = _artifact_slug(artifact.label)
            parts.append(
                f"<p>CSV extract: <a href=\"{html.escape(slug)}.csv\">"
                f"{html.escape(slug)}.csv</a></p>"
            )
        curve_renderer = (
            _svg_loglog if artifact.kind == "asymptotic-fit" else _svg_curve
        )
        for name, points in artifact_result.curves:
            parts.append(curve_renderer(name, points))
    parts += [
        "<h2>Campaign spec</h2>",
        "<p>The exact campaign this report documents "
        "(<code>python -m repro campaign run --file &lt;saved.json&gt;</code> "
        "re-runs it):</p>",
        f"<pre>{html.escape(campaign.to_json())}</pre>",
        TIMINGS_MARKER,
        "<h2>Execution timings (wall clock)</h2>",
        _html_table(_timing_rows(result)),
        "</body></html>",
        "",
    ]
    return "\n".join(parts)


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------
def write_report(
    result: CampaignResult,
    directory: "str | Path",
    *,
    formats: Sequence[str] = ("md", "html"),
) -> dict[str, Path]:
    """Write ``report.md`` / ``report.html`` plus CSV side files.

    Returns a mapping from output kind (``"md"``, ``"html"``, or the CSV
    slug) to the written path.  Side files are deterministic, so a cached
    re-run rewrites every file byte-identically.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    renderers = {"md": render_markdown, "html": render_html}
    unknown = [fmt for fmt in formats if fmt not in renderers]
    if unknown:
        raise CampaignError(
            f"unknown report format(s) {unknown}; known: {sorted(renderers)}"
        )
    written: dict[str, Path] = {}
    for fmt in formats:
        path = directory / f"report.{fmt}"
        path.write_text(renderers[fmt](result), encoding="utf-8")
        written[fmt] = path
    slugs: set[str] = set()
    for artifact_result in result.artifacts:
        if not artifact_result.csv:
            continue
        slug = _artifact_slug(artifact_result.artifact.label)
        if slug in slugs:
            raise CampaignError(
                f"two CSV-producing artifacts share the slug {slug!r}; "
                "give them distinct titles"
            )
        slugs.add(slug)
        path = directory / f"{slug}.csv"
        path.write_text(artifact_result.csv, encoding="utf-8")
        written[slug] = path
    return written


def render_text_summary(result: CampaignResult) -> str:
    """A terminal-friendly summary (the CLI prints this after a run)."""
    lines = [
        format_table(
            _unit_rows(result),
            title=f"Campaign {result.campaign.name!r} — "
            f"{len(result.outcomes)} unit(s)",
        ),
        "",
        f"campaign: {result.cached_trials} trial(s) read from cache, "
        f"{result.computed_trials} newly computed and saved "
        f"({result.store_root})",
    ]
    return "\n".join(lines)
