"""Built-in campaign registry: the paper's evaluation as named campaigns.

Each entry reproduces one coordinated piece of the paper's evidence —
``table1`` and ``table2`` for the two tables, ``theorem2`` and ``theorem5``
for the queueing-reduction and broadcast-tree experiments — and
``full-paper`` strings them together into the one-command reproduction
behind ``docs/reproducing_results.md``::

    python -m repro campaign list
    python -m repro campaign run table1 --trials 2
    python -m repro campaign run full-paper

The benchmark scripts that render the same tables
(``benchmarks/bench_table2_comparison.py``,
``benchmarks/bench_theorem5_brr.py``) pull their workload specs *from this
registry*, so a campaign run, a benchmark run and a CLI scenario run of the
same unit are the same seeded trials — and share store records.

Registering is open: :func:`register_campaign` makes a user-built
:class:`~repro.campaigns.CampaignSpec` addressable by name, exactly like
:func:`repro.scenarios.register_scenario` does for scenarios.
"""

from __future__ import annotations

from ..core.config import SimulationConfig, TimeModel
from ..errors import CampaignError
from ..scenarios.registry import get_scenario, suggest_names
from ..scenarios.spec import ScenarioSpec, default_scenario_config
from ..scenarios.sweeps import decade_sweep, log_sized_cliques
from .spec import ArtifactSpec, CampaignSpec, CampaignUnit

__all__ = [
    "CAMPAIGNS",
    "register_campaign",
    "get_campaign",
    "campaign_names",
    "asymptotics_campaign",
]

#: Name → campaign.  Populated below; extendable through :func:`register_campaign`.
CAMPAIGNS: dict[str, CampaignSpec] = {}


def register_campaign(campaign: CampaignSpec, *, overwrite: bool = False) -> CampaignSpec:
    """Add a campaign to the registry and return it."""
    if campaign.name in CAMPAIGNS and not overwrite:
        raise CampaignError(
            f"campaign {campaign.name!r} is already registered (pass overwrite=True)"
        )
    CAMPAIGNS[campaign.name] = campaign
    return campaign


def get_campaign(name: str) -> CampaignSpec:
    """Look a campaign up by name.

    An unknown name raises :class:`~repro.errors.CampaignError` with a
    close-match suggestion (mirroring
    :func:`repro.scenarios.get_scenario`), so CLI typos exit cleanly.

    >>> get_campaign("table1").units[0].scenario
    'uniform/line'
    """
    try:
        return CAMPAIGNS[name]
    except KeyError:
        raise CampaignError(
            f"unknown campaign {name!r}{suggest_names(name, CAMPAIGNS)} "
            f"(known: {sorted(CAMPAIGNS)})"
        ) from None


def campaign_names() -> list[str]:
    """Sorted names of every registered campaign."""
    return sorted(CAMPAIGNS)


# ----------------------------------------------------------------------
# Built-in campaigns.
#
# Unit sizes follow the sources they reproduce: the table1 units are the
# registered CI-sized scenarios; the table2 / theorem2 / theorem5 units are
# the exact workloads (topology, n, config, trials, seed) of the benchmark
# scripts, so campaign runs and benchmark runs share store records.
# ----------------------------------------------------------------------

_TABLE1_UNIFORM = ("line", "ring", "grid", "complete", "binary_tree", "barbell")
_TABLE1_TAG = (
    "tag/brr-barbell",
    "tag/uniform-broadcast-barbell",
    "tag/brr-grid",
    "tag/brr-barbell-async",
    "tag/is-barbell",
    "tag/is-clique-chain",
)

register_campaign(
    CampaignSpec(
        name="table1",
        title="Table 1 — protocol comparison (Theorems 1, 3, 4, 7-8)",
        description=(
            "The paper's headline table: uniform algebraic gossip on every "
            "topology family next to TAG composed with each spanning-tree "
            "protocol, with the analytic bounds alongside the measured "
            "stopping times."
        ),
        units=tuple(
            CampaignUnit(
                name=f"uniform-{topology}",
                scenario=f"uniform/{topology}",
                group="uniform",
            )
            for topology in _TABLE1_UNIFORM
        )
        + (
            CampaignUnit(
                name="uniform-ring-all-to-all",
                scenario="uniform/ring-all-to-all",
                group="uniform",
            ),
        )
        + tuple(
            CampaignUnit(
                name=scenario.split("/", 1)[1],
                scenario=scenario,
                group="tag",
            )
            for scenario in _TABLE1_TAG
        ),
        artifacts=(
            ArtifactSpec(
                kind="table1-analytic",
                title="Table 1 (analytic bounds)",
                params={"n": 16, "k": 8, "topologies": ["ring", "grid", "barbell"]},
            ),
            ArtifactSpec(
                kind="measured-table",
                title="Table 1 rows — measured stopping times (uniform AG)",
                units=tuple(f"uniform-{t}" for t in _TABLE1_UNIFORM)
                + ("uniform-ring-all-to-all",),
            ),
            ArtifactSpec(
                kind="measured-table",
                title="Table 1 rows — measured stopping times (TAG)",
                units=tuple(s.split("/", 1)[1] for s in _TABLE1_TAG),
            ),
            ArtifactSpec(
                kind="rank-evolution",
                title="Rank evolution on the barbell (uniform vs TAG)",
                units=("uniform-barbell", "brr-barbell"),
            ),
        ),
    )
)

# The measured column of Table 2 — the same specs
# benchmarks/bench_table2_comparison.py runs (n=32, trials=3, seed=606).
_TABLE2_N = 32
_TABLE2_TRIALS = 3
_TABLE2_SEED = 606
_TABLE2_FAMILIES = ("line", "grid", "binary_tree")

register_campaign(
    CampaignSpec(
        name="table2",
        title="Table 2 — this paper's bound vs Haeupler's, with measured times",
        description=(
            "Both bound expressions evaluated on real constructed graphs "
            "(gamma and lambda measured), plus the measured uniform-AG "
            "stopping time per family — the same seeded workloads as "
            "benchmarks/bench_table2_comparison.py."
        ),
        units=tuple(
            CampaignUnit(
                name=f"uniform-{topology}",
                spec=ScenarioSpec(
                    topology=topology,
                    n=_TABLE2_N,
                    config=default_scenario_config(max_rounds=500_000),
                    trials=_TABLE2_TRIALS,
                    seed=_TABLE2_SEED,
                ),
                group="measured",
            )
            for topology in _TABLE2_FAMILIES
        ),
        artifacts=(
            ArtifactSpec(
                kind="table2-analytic",
                title="Table 2 (analytic, measured graph parameters)",
                params={"n": _TABLE2_N, "k": _TABLE2_N},
            ),
            ArtifactSpec(
                kind="measured-table",
                title="Table 2 measured stopping times",
            ),
            ArtifactSpec(kind="csv", title="Per-trial stopping times"),
        ),
    )
)

# The gossip side of the Theorem 2 reduction — the same specs
# benchmarks/bench_theorem2_queueing.py measures (n=16, GF(2), seed=708).
_THEOREM2_TRIALS = 3
_THEOREM2_SEED = 708

register_campaign(
    CampaignSpec(
        name="theorem2",
        title="Theorem 2 — gossip side of the queueing reduction",
        description=(
            "The measured uniform-AG stopping times the queueing-network "
            "prediction must upper-bound (the dominance chain itself is "
            "analytic; see benchmarks/bench_theorem2_queueing.py), plus the "
            "Theorem 3 all-to-all regime on the ring."
        ),
        units=tuple(
            CampaignUnit(
                name=f"uniform-{topology}-gf2",
                spec=ScenarioSpec(
                    topology=topology,
                    n=16,
                    config=SimulationConfig(
                        field_size=2,
                        payload_length=2,
                        time_model=TimeModel.SYNCHRONOUS,
                        max_rounds=500_000,
                    ),
                    trials=_THEOREM2_TRIALS,
                    seed=_THEOREM2_SEED,
                ),
                group="reduction",
            )
            for topology in ("ring", "grid")
        )
        + (
            CampaignUnit(
                name="ring-all-to-all",
                scenario="uniform/ring-all-to-all",
                group="reduction",
            ),
        ),
        artifacts=(
            ArtifactSpec(
                kind="measured-table",
                title="Measured gossip stopping times (queueing bound must sit above)",
            ),
            ArtifactSpec(kind="csv", title="Per-trial stopping times"),
        ),
    )
)

# Theorem 5 — standalone B_RR broadcast, one unit per (topology, time model);
# the same specs benchmarks/bench_theorem5_brr.py sweeps (n=32, seed=0).
_THEOREM5_N = 32
_THEOREM5_TRIALS = 3
_THEOREM5_TOPOLOGIES = ("line", "grid", "barbell", "complete", "binary_tree")


def _theorem5_spec(topology: str, time_model: TimeModel) -> ScenarioSpec:
    """One standalone-B_RR broadcast workload of the Theorem 5 sweep."""
    return ScenarioSpec(
        topology=topology,
        n=_THEOREM5_N,
        protocol="spanning_tree",
        spanning_tree="brr",
        config=SimulationConfig(
            time_model=time_model, max_rounds=100 * _THEOREM5_N
        ),
        trials=_THEOREM5_TRIALS,
        seed=0,
    )


register_campaign(
    CampaignSpec(
        name="theorem5",
        title="Theorem 5 — round-robin broadcast B_RR finishes in O(n) rounds",
        description=(
            "Standalone B_RR spanning-tree broadcast on five topologies in "
            "both time models (the 3n bound), plus the Section 6 IS tree "
            "construction — the same seeded workloads as "
            "benchmarks/bench_theorem5_brr.py."
        ),
        units=tuple(
            CampaignUnit(
                name=f"brr-{topology}-{time_model.value}",
                spec=_theorem5_spec(topology, time_model),
                group=time_model.value,
            )
            for time_model in (TimeModel.SYNCHRONOUS, TimeModel.ASYNCHRONOUS)
            for topology in _THEOREM5_TOPOLOGIES
        )
        + (
            CampaignUnit(
                name="is-clique-chain",
                scenario="tree/is-clique-chain",
                group="is",
            ),
        ),
        artifacts=(
            ArtifactSpec(
                kind="measured-table",
                title="B_RR broadcast rounds, synchronous (bound: 3n)",
                units=tuple(
                    f"brr-{t}-synchronous" for t in _THEOREM5_TOPOLOGIES
                ),
            ),
            ArtifactSpec(
                kind="measured-table",
                title="B_RR broadcast rounds, asynchronous (bound: O(n) w.h.p.)",
                units=tuple(
                    f"brr-{t}-asynchronous" for t in _THEOREM5_TOPOLOGIES
                ),
            ),
        ),
    )
)


# ----------------------------------------------------------------------
# Asymptotics — the order-of-growth campaign behind docs/reproducing_results.md
# chapter "Measuring the asymptotic stopping-time exponent".
# ----------------------------------------------------------------------

#: Family label → (base scenario name, topology_params policy, scale
#: divisor).  Both bases run uniform AG through the event engine on the
#: gf2bit backend, and both topologies have graph-free CSR builders, so
#: every decade takes the CSR pipeline
#: (:meth:`~repro.scenarios.ScenarioSpec.materialize_preferred`).
#:
#: The divisor equalises *event cost* across families rather than node
#: count: per trial the event engine pays ``T(n)·n`` timeslots, which grows
#: ~``n^1.15`` on the expanders (near-constant stopping time at fixed
#: ``k``) but ~``n^1.9`` on the conductance-limited ring of cliques
#: (``T(n) ≈ n^0.93``).  Walking the ring family one decade lower
#: (``n / 10``) makes its decades cost roughly what the expander decades
#: cost (``10^0.9 ≈ 8×``), which is what keeps the CI-sized campaign in
#: minutes and the full-scale one in hours instead of weeks.
_ASYMPTOTICS_FAMILIES = (
    ("er-logn", "event/er-logn", None, 1),
    ("ring-of-cliques", "event/ring-of-cliques", log_sized_cliques, 10),
)


def asymptotics_campaign(
    *,
    min_n: int = 1_000,
    max_n: int = 10_000,
    points_per_decade: int = 1,
    trials: "int | None" = None,
) -> CampaignSpec:
    """The decade-sweep stopping-time campaign, at a configurable scale.

    Two families walk ``n`` up the decades: the ``c·log n / n``
    Erdős–Rényi expanders (Theorem 2's O(n) regime) from ``min_n`` to
    ``max_n``, and the ring of log-sized cliques (conductance-limited;
    clique count scales as ``Θ(n / log n)`` via
    :func:`~repro.scenarios.log_sized_cliques`) one decade lower
    (``min_n/10 .. max_n/10`` — see ``_ASYMPTOTICS_FAMILIES`` for why that
    equalises per-decade event cost).  Every unit records through the
    streaming-summary store path (``record="summary"``) and each family's
    decades chain ``after`` one another small-to-large, so an interrupted
    run resumes exactly at the decade it stopped in.  One
    ``asymptotic-fit`` artifact fits both families' exponents with
    bootstrap CIs.

    The registered ``asymptotics`` campaign is this builder at its CI-sized
    defaults (``10^3..10^4``).  The CLI rebuilds it on demand:
    ``python -m repro campaign run asymptotics --max-n 1000000`` is the
    full-scale (n = 10^6) measurement — see docs/reproducing_results.md for
    the runtime/RSS budget.
    """
    units: list[CampaignUnit] = []
    for family, scenario_name, params, divisor in _ASYMPTOTICS_FAMILIES:
        base = get_scenario(scenario_name)
        if min_n // divisor < 2 * base.k:
            raise CampaignError(
                f"family {family!r} walks decades from n = min_n/{divisor} "
                f"= {min_n // divisor}, too small to place its k = {base.k} "
                f"messages comfortably — raise --min-n to at least "
                f"{2 * base.k * divisor}"
            )
        previous = ""
        for spec in decade_sweep(
            base,
            min_n=min_n // divisor,
            max_n=max_n // divisor,
            points_per_decade=points_per_decade,
            trials=trials,
            topology_params=params,
        ):
            name = f"{family}-n{spec.n}"
            units.append(
                CampaignUnit(
                    name=name,
                    spec=spec,
                    group=family,
                    after=(previous,) if previous else (),
                    record="summary",
                )
            )
            previous = name
    return CampaignSpec(
        name="asymptotics",
        title="Asymptotic stopping-time exponents over decade sweeps",
        description=(
            "Uniform algebraic gossip swept over decades of n on two "
            "families — c·log n/n Erdős–Rényi expanders (the Theorem 2 "
            "O(n) regime) and rings of log-sized cliques, the latter one "
            "decade lower to equalise per-decade event cost — through the "
            "event-driven CSR pipeline with streaming summary records, "
            "then fitted to T(n) = c·n^a with bootstrap confidence "
            "intervals.  Rebuild at full scale with --min-n/--max-n "
            "(e.g. --max-n 1000000)."
        ),
        units=tuple(units),
        artifacts=(
            ArtifactSpec(
                kind="measured-table",
                title="Per-decade stopping times",
            ),
            ArtifactSpec(
                kind="asymptotic-fit",
                title="Stopping-time exponent fits",
            ),
        ),
    )


register_campaign(asymptotics_campaign())


def _prefixed(campaign: CampaignSpec, prefix: str) -> tuple[CampaignUnit, ...]:
    """The campaign's units renamed ``<prefix>/<unit>`` (deps rewritten too)."""
    return tuple(
        CampaignUnit(
            name=f"{prefix}/{unit.name}",
            scenario=unit.scenario,
            spec=unit.spec,
            trials=unit.trials,
            seed=unit.seed,
            group=unit.group or prefix,
            after=tuple(f"{prefix}/{dep}" for dep in unit.after),
            record=unit.record,
        )
        for unit in campaign.units
    )


def _prefixed_artifacts(
    campaign: CampaignSpec, prefix: str
) -> tuple[ArtifactSpec, ...]:
    """The campaign's artifacts with unit references rewritten to the prefix.

    An empty ``units`` selection means "every unit of *this* campaign", so in
    the combined campaign it must become the explicit prefixed list.
    """
    return tuple(
        ArtifactSpec(
            kind=artifact.kind,
            # Titles are prefixed too: CSV-producing artifact labels must stay
            # unique across the union (they name the report's side files).
            title=f"{prefix}: {artifact.label}",
            units=tuple(
                f"{prefix}/{ref}"
                for ref in (artifact.units or tuple(u.name for u in campaign.units))
            ),
            params=artifact.params,
        )
        for artifact in campaign.artifacts
    )


def _full_paper() -> CampaignSpec:
    """Every built-in campaign in one DAG: the whole-paper reproduction."""
    parts = [CAMPAIGNS[name] for name in ("table1", "table2", "theorem2", "theorem5")]
    units: tuple[CampaignUnit, ...] = ()
    artifacts: tuple[ArtifactSpec, ...] = ()
    for part in parts:
        units += _prefixed(part, part.name)
        artifacts += _prefixed_artifacts(part, part.name)
    return CampaignSpec(
        name="full-paper",
        title="Full paper reproduction (Tables 1-2, Theorems 2 and 5)",
        description=(
            "The union of the table1, table2, theorem2 and theorem5 "
            "campaigns: every simulated number behind the paper's evaluation "
            "in one resumable, store-backed run.  Unit names are prefixed "
            "with their source campaign."
        ),
        units=units,
        artifacts=artifacts,
    )


register_campaign(_full_paper())
