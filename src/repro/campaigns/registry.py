"""Built-in campaign registry: the paper's evaluation as named campaigns.

Each entry reproduces one coordinated piece of the paper's evidence —
``table1`` and ``table2`` for the two tables, ``theorem2`` and ``theorem5``
for the queueing-reduction and broadcast-tree experiments — and
``full-paper`` strings them together into the one-command reproduction
behind ``docs/reproducing_results.md``::

    python -m repro campaign list
    python -m repro campaign run table1 --trials 2
    python -m repro campaign run full-paper

The benchmark scripts that render the same tables
(``benchmarks/bench_table2_comparison.py``,
``benchmarks/bench_theorem5_brr.py``) pull their workload specs *from this
registry*, so a campaign run, a benchmark run and a CLI scenario run of the
same unit are the same seeded trials — and share store records.

Registering is open: :func:`register_campaign` makes a user-built
:class:`~repro.campaigns.CampaignSpec` addressable by name, exactly like
:func:`repro.scenarios.register_scenario` does for scenarios.
"""

from __future__ import annotations

from ..core.config import SimulationConfig, TimeModel
from ..errors import CampaignError
from ..scenarios.registry import suggest_names
from ..scenarios.spec import ScenarioSpec, default_scenario_config
from .spec import ArtifactSpec, CampaignSpec, CampaignUnit

__all__ = [
    "CAMPAIGNS",
    "register_campaign",
    "get_campaign",
    "campaign_names",
]

#: Name → campaign.  Populated below; extendable through :func:`register_campaign`.
CAMPAIGNS: dict[str, CampaignSpec] = {}


def register_campaign(campaign: CampaignSpec, *, overwrite: bool = False) -> CampaignSpec:
    """Add a campaign to the registry and return it."""
    if campaign.name in CAMPAIGNS and not overwrite:
        raise CampaignError(
            f"campaign {campaign.name!r} is already registered (pass overwrite=True)"
        )
    CAMPAIGNS[campaign.name] = campaign
    return campaign


def get_campaign(name: str) -> CampaignSpec:
    """Look a campaign up by name.

    An unknown name raises :class:`~repro.errors.CampaignError` with a
    close-match suggestion (mirroring
    :func:`repro.scenarios.get_scenario`), so CLI typos exit cleanly.

    >>> get_campaign("table1").units[0].scenario
    'uniform/line'
    """
    try:
        return CAMPAIGNS[name]
    except KeyError:
        raise CampaignError(
            f"unknown campaign {name!r}{suggest_names(name, CAMPAIGNS)} "
            f"(known: {sorted(CAMPAIGNS)})"
        ) from None


def campaign_names() -> list[str]:
    """Sorted names of every registered campaign."""
    return sorted(CAMPAIGNS)


# ----------------------------------------------------------------------
# Built-in campaigns.
#
# Unit sizes follow the sources they reproduce: the table1 units are the
# registered CI-sized scenarios; the table2 / theorem2 / theorem5 units are
# the exact workloads (topology, n, config, trials, seed) of the benchmark
# scripts, so campaign runs and benchmark runs share store records.
# ----------------------------------------------------------------------

_TABLE1_UNIFORM = ("line", "ring", "grid", "complete", "binary_tree", "barbell")
_TABLE1_TAG = (
    "tag/brr-barbell",
    "tag/uniform-broadcast-barbell",
    "tag/brr-grid",
    "tag/brr-barbell-async",
    "tag/is-barbell",
    "tag/is-clique-chain",
)

register_campaign(
    CampaignSpec(
        name="table1",
        title="Table 1 — protocol comparison (Theorems 1, 3, 4, 7-8)",
        description=(
            "The paper's headline table: uniform algebraic gossip on every "
            "topology family next to TAG composed with each spanning-tree "
            "protocol, with the analytic bounds alongside the measured "
            "stopping times."
        ),
        units=tuple(
            CampaignUnit(
                name=f"uniform-{topology}",
                scenario=f"uniform/{topology}",
                group="uniform",
            )
            for topology in _TABLE1_UNIFORM
        )
        + (
            CampaignUnit(
                name="uniform-ring-all-to-all",
                scenario="uniform/ring-all-to-all",
                group="uniform",
            ),
        )
        + tuple(
            CampaignUnit(
                name=scenario.split("/", 1)[1],
                scenario=scenario,
                group="tag",
            )
            for scenario in _TABLE1_TAG
        ),
        artifacts=(
            ArtifactSpec(
                kind="table1-analytic",
                title="Table 1 (analytic bounds)",
                params={"n": 16, "k": 8, "topologies": ["ring", "grid", "barbell"]},
            ),
            ArtifactSpec(
                kind="measured-table",
                title="Table 1 rows — measured stopping times (uniform AG)",
                units=tuple(f"uniform-{t}" for t in _TABLE1_UNIFORM)
                + ("uniform-ring-all-to-all",),
            ),
            ArtifactSpec(
                kind="measured-table",
                title="Table 1 rows — measured stopping times (TAG)",
                units=tuple(s.split("/", 1)[1] for s in _TABLE1_TAG),
            ),
            ArtifactSpec(
                kind="rank-evolution",
                title="Rank evolution on the barbell (uniform vs TAG)",
                units=("uniform-barbell", "brr-barbell"),
            ),
        ),
    )
)

# The measured column of Table 2 — the same specs
# benchmarks/bench_table2_comparison.py runs (n=32, trials=3, seed=606).
_TABLE2_N = 32
_TABLE2_TRIALS = 3
_TABLE2_SEED = 606
_TABLE2_FAMILIES = ("line", "grid", "binary_tree")

register_campaign(
    CampaignSpec(
        name="table2",
        title="Table 2 — this paper's bound vs Haeupler's, with measured times",
        description=(
            "Both bound expressions evaluated on real constructed graphs "
            "(gamma and lambda measured), plus the measured uniform-AG "
            "stopping time per family — the same seeded workloads as "
            "benchmarks/bench_table2_comparison.py."
        ),
        units=tuple(
            CampaignUnit(
                name=f"uniform-{topology}",
                spec=ScenarioSpec(
                    topology=topology,
                    n=_TABLE2_N,
                    config=default_scenario_config(max_rounds=500_000),
                    trials=_TABLE2_TRIALS,
                    seed=_TABLE2_SEED,
                ),
                group="measured",
            )
            for topology in _TABLE2_FAMILIES
        ),
        artifacts=(
            ArtifactSpec(
                kind="table2-analytic",
                title="Table 2 (analytic, measured graph parameters)",
                params={"n": _TABLE2_N, "k": _TABLE2_N},
            ),
            ArtifactSpec(
                kind="measured-table",
                title="Table 2 measured stopping times",
            ),
            ArtifactSpec(kind="csv", title="Per-trial stopping times"),
        ),
    )
)

# The gossip side of the Theorem 2 reduction — the same specs
# benchmarks/bench_theorem2_queueing.py measures (n=16, GF(2), seed=708).
_THEOREM2_TRIALS = 3
_THEOREM2_SEED = 708

register_campaign(
    CampaignSpec(
        name="theorem2",
        title="Theorem 2 — gossip side of the queueing reduction",
        description=(
            "The measured uniform-AG stopping times the queueing-network "
            "prediction must upper-bound (the dominance chain itself is "
            "analytic; see benchmarks/bench_theorem2_queueing.py), plus the "
            "Theorem 3 all-to-all regime on the ring."
        ),
        units=tuple(
            CampaignUnit(
                name=f"uniform-{topology}-gf2",
                spec=ScenarioSpec(
                    topology=topology,
                    n=16,
                    config=SimulationConfig(
                        field_size=2,
                        payload_length=2,
                        time_model=TimeModel.SYNCHRONOUS,
                        max_rounds=500_000,
                    ),
                    trials=_THEOREM2_TRIALS,
                    seed=_THEOREM2_SEED,
                ),
                group="reduction",
            )
            for topology in ("ring", "grid")
        )
        + (
            CampaignUnit(
                name="ring-all-to-all",
                scenario="uniform/ring-all-to-all",
                group="reduction",
            ),
        ),
        artifacts=(
            ArtifactSpec(
                kind="measured-table",
                title="Measured gossip stopping times (queueing bound must sit above)",
            ),
            ArtifactSpec(kind="csv", title="Per-trial stopping times"),
        ),
    )
)

# Theorem 5 — standalone B_RR broadcast, one unit per (topology, time model);
# the same specs benchmarks/bench_theorem5_brr.py sweeps (n=32, seed=0).
_THEOREM5_N = 32
_THEOREM5_TRIALS = 3
_THEOREM5_TOPOLOGIES = ("line", "grid", "barbell", "complete", "binary_tree")


def _theorem5_spec(topology: str, time_model: TimeModel) -> ScenarioSpec:
    """One standalone-B_RR broadcast workload of the Theorem 5 sweep."""
    return ScenarioSpec(
        topology=topology,
        n=_THEOREM5_N,
        protocol="spanning_tree",
        spanning_tree="brr",
        config=SimulationConfig(
            time_model=time_model, max_rounds=100 * _THEOREM5_N
        ),
        trials=_THEOREM5_TRIALS,
        seed=0,
    )


register_campaign(
    CampaignSpec(
        name="theorem5",
        title="Theorem 5 — round-robin broadcast B_RR finishes in O(n) rounds",
        description=(
            "Standalone B_RR spanning-tree broadcast on five topologies in "
            "both time models (the 3n bound), plus the Section 6 IS tree "
            "construction — the same seeded workloads as "
            "benchmarks/bench_theorem5_brr.py."
        ),
        units=tuple(
            CampaignUnit(
                name=f"brr-{topology}-{time_model.value}",
                spec=_theorem5_spec(topology, time_model),
                group=time_model.value,
            )
            for time_model in (TimeModel.SYNCHRONOUS, TimeModel.ASYNCHRONOUS)
            for topology in _THEOREM5_TOPOLOGIES
        )
        + (
            CampaignUnit(
                name="is-clique-chain",
                scenario="tree/is-clique-chain",
                group="is",
            ),
        ),
        artifacts=(
            ArtifactSpec(
                kind="measured-table",
                title="B_RR broadcast rounds, synchronous (bound: 3n)",
                units=tuple(
                    f"brr-{t}-synchronous" for t in _THEOREM5_TOPOLOGIES
                ),
            ),
            ArtifactSpec(
                kind="measured-table",
                title="B_RR broadcast rounds, asynchronous (bound: O(n) w.h.p.)",
                units=tuple(
                    f"brr-{t}-asynchronous" for t in _THEOREM5_TOPOLOGIES
                ),
            ),
        ),
    )
)


def _prefixed(campaign: CampaignSpec, prefix: str) -> tuple[CampaignUnit, ...]:
    """The campaign's units renamed ``<prefix>/<unit>`` (deps rewritten too)."""
    return tuple(
        CampaignUnit(
            name=f"{prefix}/{unit.name}",
            scenario=unit.scenario,
            spec=unit.spec,
            trials=unit.trials,
            seed=unit.seed,
            group=unit.group or prefix,
            after=tuple(f"{prefix}/{dep}" for dep in unit.after),
        )
        for unit in campaign.units
    )


def _prefixed_artifacts(
    campaign: CampaignSpec, prefix: str
) -> tuple[ArtifactSpec, ...]:
    """The campaign's artifacts with unit references rewritten to the prefix.

    An empty ``units`` selection means "every unit of *this* campaign", so in
    the combined campaign it must become the explicit prefixed list.
    """
    return tuple(
        ArtifactSpec(
            kind=artifact.kind,
            # Titles are prefixed too: CSV-producing artifact labels must stay
            # unique across the union (they name the report's side files).
            title=f"{prefix}: {artifact.label}",
            units=tuple(
                f"{prefix}/{ref}"
                for ref in (artifact.units or tuple(u.name for u in campaign.units))
            ),
            params=artifact.params,
        )
        for artifact in campaign.artifacts
    )


def _full_paper() -> CampaignSpec:
    """Every built-in campaign in one DAG: the whole-paper reproduction."""
    parts = [CAMPAIGNS[name] for name in ("table1", "table2", "theorem2", "theorem5")]
    units: tuple[CampaignUnit, ...] = ()
    artifacts: tuple[ArtifactSpec, ...] = ()
    for part in parts:
        units += _prefixed(part, part.name)
        artifacts += _prefixed_artifacts(part, part.name)
    return CampaignSpec(
        name="full-paper",
        title="Full paper reproduction (Tables 1-2, Theorems 2 and 5)",
        description=(
            "The union of the table1, table2, theorem2 and theorem5 "
            "campaigns: every simulated number behind the paper's evaluation "
            "in one resumable, store-backed run.  Unit names are prefixed "
            "with their source campaign."
        ),
        units=units,
        artifacts=artifacts,
    )


register_campaign(_full_paper())
