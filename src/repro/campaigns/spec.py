"""Declarative experiment campaigns: named sets of scenario sweeps + artifacts.

A *campaign* is the unit of paper reproduction: where a
:class:`~repro.scenarios.ScenarioSpec` describes one workload, a
:class:`CampaignSpec` names a coordinated set of them — the sweeps behind
Table 1, Table 2, the Theorem 2/5 experiments, or the whole paper — together
with the derived artifacts (tables, CSV extracts, rank-evolution curves) its
report should carry.

A campaign is pure data: JSON/TOML-round-trippable, validated at
construction, executable by :func:`repro.campaigns.run_campaign`.  Execution
compiles the units into a DAG (declaration order refined by explicit
``after`` dependencies), runs every unit *through* a
:class:`~repro.store.ResultStore` — so interrupted campaigns resume and
repeated campaigns simulate nothing — and renders a self-documenting
Markdown + HTML report (:mod:`repro.campaigns.report`).

Campaign files
--------------
``python -m repro campaign run --file my.toml`` accepts TOML (preferred for
hand-written files) or JSON (the exact :meth:`CampaignSpec.to_dict` shape)::

    name = "my-campaign"
    title = "Uniform AG on two topologies"

    [[units]]
    name = "line"
    scenario = "uniform/line"     # a registered scenario name...
    trials = 8                    # ...with optional plan overrides

    [[units]]
    name = "adhoc-ring"
    after = ["line"]              # DAG edge: runs after "line"
    [units.spec]                  # ...or an inline ScenarioSpec document
    topology = "ring"
    n = 16
    k = 8

    [[artifacts]]
    kind = "measured-table"
    title = "Stopping times"
    units = ["line", "adhoc-ring"]

Doctest — the round trip every campaign file relies on:

>>> from repro.campaigns import CampaignSpec
>>> campaign = CampaignSpec.from_dict({
...     "name": "demo",
...     "units": [{"name": "ring", "spec": {"topology": "ring", "n": 8}}],
...     "artifacts": [{"kind": "measured-table", "units": ["ring"]}],
... })
>>> CampaignSpec.from_dict(campaign.to_dict()) == campaign
True
>>> campaign.units[0].resolve().topology
'ring'
"""

from __future__ import annotations

import json
import tomllib
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Mapping

from ..errors import CampaignError
from ..scenarios.registry import get_scenario
from ..scenarios.spec import ScenarioSpec

__all__ = [
    "ARTIFACT_KINDS",
    "ArtifactSpec",
    "CampaignUnit",
    "CampaignSpec",
    "artifact_slug",
    "load_campaign_file",
]

#: Artifact kinds a campaign can declare (see :mod:`repro.campaigns.report`):
#:
#: ``measured-table``
#:     One row per named unit with its measured stopping-time statistics.
#: ``table1-analytic`` / ``table2-analytic``
#:     The paper's analytic tables, evaluated at the artifact's ``n``/``k``
#:     params (:func:`repro.analysis.table1_rows` / ``table2_rows``).
#: ``csv``
#:     Per-trial CSV extract (unit, trial, rounds, timeslots, ...) of the
#:     named units, written next to the report.
#: ``rank-evolution``
#:     Per-round min/median/max decoder-rank curve of each named unit's
#:     trial 0 (uniform/tag protocols only), as CSV plus an inline SVG plot
#:     in the HTML report.
#: ``asymptotic-fit``
#:     Stopping-time exponent fits over decade sweeps
#:     (:func:`repro.analysis.fit_decades`): units are grouped by their
#:     ``group`` label into families, each family's per-size stopping times
#:     are fitted to ``T(n) = c·n^a`` with a bootstrap CI, and the report
#:     carries one fit row per family, a per-decade CSV extract and a
#:     log-log SVG plot with the fitted slope annotated.
ARTIFACT_KINDS = (
    "measured-table",
    "table1-analytic",
    "table2-analytic",
    "csv",
    "rank-evolution",
    "asymptotic-fit",
)


def artifact_slug(label: str) -> str:
    """A filesystem-safe slug for an artifact's CSV side file.

    >>> artifact_slug("Per-trial stopping times")
    'per-trial-stopping-times'
    """
    cleaned = "".join(ch.lower() if ch.isalnum() else "-" for ch in label)
    while "--" in cleaned:
        cleaned = cleaned.replace("--", "-")
    return cleaned.strip("-") or "artifact"


def _as_params(value: Any) -> tuple[tuple[str, Any], ...]:
    """Normalise a params mapping/sequence to a sorted hashable tuple."""
    if isinstance(value, Mapping):
        items = value.items()
    else:
        items = [tuple(pair) for pair in value]
    normalised = []
    for key, item in sorted(items):
        if isinstance(item, list):
            item = tuple(item)
        normalised.append((str(key), item))
    return tuple(normalised)


@dataclass(frozen=True)
class CampaignUnit:
    """One sweep unit of a campaign: a scenario plus its Monte Carlo plan.

    Exactly one of ``scenario`` (a registered scenario name) or ``spec`` (an
    inline :class:`~repro.scenarios.ScenarioSpec`) identifies the workload;
    ``trials`` / ``seed`` override the scenario's own plan when given.
    ``after`` names units that must execute first (the campaign DAG);
    ``group`` is a free-form label artifacts and reports can select on.
    ``record`` picks what the store archives per trial: ``""`` (the default)
    keeps full :class:`~repro.core.results.RunResult` records, ``"summary"``
    streams only the stopping-time projection
    (:func:`repro.store.summarize_result`) — the constant-size record path
    large asymptotic sweeps need.
    """

    name: str
    scenario: str = ""
    spec: "ScenarioSpec | None" = None
    trials: "int | None" = None
    seed: "int | None" = None
    group: str = ""
    after: tuple[str, ...] = ()
    record: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("a campaign unit needs a non-empty name")
        if bool(self.scenario) == (self.spec is not None):
            raise CampaignError(
                f"unit {self.name!r} must give exactly one of 'scenario' "
                "(a registered name) or 'spec' (an inline scenario document)"
            )
        if self.trials is not None and self.trials < 1:
            raise CampaignError(
                f"unit {self.name!r}: trials must be positive, got {self.trials}"
            )
        if self.record not in ("", "summary"):
            raise CampaignError(
                f"unit {self.name!r}: record must be '' (full results) or "
                f"'summary' (streaming stopping-time records), got {self.record!r}"
            )
        object.__setattr__(self, "after", tuple(self.after))

    def resolve(
        self, *, trials: "int | None" = None, seed: "int | None" = None
    ) -> ScenarioSpec:
        """The concrete :class:`~repro.scenarios.ScenarioSpec` this unit runs.

        Precedence for the Monte Carlo plan: the call's ``trials``/``seed``
        (a campaign-wide override, e.g. the CLI's smoke-scale ``--trials 2``)
        beats the unit's own override, which beats the scenario's plan.
        """
        spec = get_scenario(self.scenario) if self.scenario else self.spec
        changes: dict[str, Any] = {}
        effective_trials = trials if trials is not None else self.trials
        effective_seed = seed if seed is not None else self.seed
        if effective_trials is not None:
            changes["trials"] = effective_trials
        if effective_seed is not None:
            changes["seed"] = effective_seed
        return spec.replace(**changes) if changes else spec

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation; inverse of :meth:`from_dict`."""
        data: dict[str, Any] = {"name": self.name}
        if self.scenario:
            data["scenario"] = self.scenario
        if self.spec is not None:
            data["spec"] = self.spec.to_dict()
        for key in ("trials", "seed"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        if self.group:
            data["group"] = self.group
        if self.after:
            data["after"] = list(self.after)
        if self.record:
            data["record"] = self.record
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignUnit":
        """Rebuild a unit from :meth:`to_dict` output (extra keys rejected)."""
        known = {unit_field.name for unit_field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise CampaignError(
                f"unknown campaign unit fields {sorted(unknown)}; known: {sorted(known)}"
            )
        kwargs = dict(data)
        if "spec" in kwargs and isinstance(kwargs["spec"], Mapping):
            kwargs["spec"] = ScenarioSpec.from_dict(kwargs["spec"])
        return cls(**kwargs)


@dataclass(frozen=True)
class ArtifactSpec:
    """One derived output of a campaign report (see :data:`ARTIFACT_KINDS`).

    ``units`` names the units the artifact covers (empty = every unit, in
    execution order); ``params`` holds kind-specific settings (e.g. ``n``,
    ``k`` and ``topologies`` for the analytic tables).
    """

    kind: str
    title: str = ""
    units: tuple[str, ...] = ()
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ARTIFACT_KINDS:
            raise CampaignError(
                f"unknown artifact kind {self.kind!r}; known: {sorted(ARTIFACT_KINDS)}"
            )
        object.__setattr__(self, "units", tuple(self.units))
        object.__setattr__(self, "params", _as_params(self.params))

    @property
    def label(self) -> str:
        """The heading the report uses (title, or a kind-derived default)."""
        return self.title or self.kind

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation; inverse of :meth:`from_dict`."""
        data: dict[str, Any] = {"kind": self.kind}
        if self.title:
            data["title"] = self.title
        if self.units:
            data["units"] = list(self.units)
        if self.params:
            data["params"] = {
                key: list(item) if isinstance(item, tuple) else item
                for key, item in self.params
            }
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ArtifactSpec":
        """Rebuild an artifact spec from :meth:`to_dict` output."""
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise CampaignError(
                f"unknown artifact fields {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**dict(data))


@dataclass(frozen=True)
class CampaignSpec:
    """A named, declarative set of scenario sweeps plus report artifacts.

    Validated eagerly: unit names must be unique, ``after`` edges and
    artifact unit references must name existing units, and (for units
    referencing registered scenarios) the scenario must resolve.  The DAG is
    checked for cycles by :meth:`execution_order`.
    """

    name: str
    title: str = ""
    description: str = ""
    units: tuple[CampaignUnit, ...] = ()
    artifacts: tuple[ArtifactSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("a campaign needs a non-empty name")
        object.__setattr__(self, "units", tuple(self.units))
        object.__setattr__(self, "artifacts", tuple(self.artifacts))
        if not self.units:
            raise CampaignError(f"campaign {self.name!r} declares no units")
        names = [unit.name for unit in self.units]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise CampaignError(
                f"campaign {self.name!r} has duplicate unit names: {duplicates}"
            )
        known = set(names)
        for unit in self.units:
            missing = [dep for dep in unit.after if dep not in known]
            if missing:
                raise CampaignError(
                    f"campaign {self.name!r} unit {unit.name!r} depends on "
                    f"unknown unit(s) {missing}"
                )
            if unit.scenario:
                # Eager resolution: a campaign naming an unregistered
                # scenario must fail when the campaign is built (with the
                # registry's did-you-mean message), not mid-execution.
                try:
                    get_scenario(unit.scenario)
                except Exception as error:
                    raise CampaignError(
                        f"campaign {self.name!r} unit {unit.name!r}: {error}"
                    ) from None
        slugs: dict[str, str] = {}
        for artifact in self.artifacts:
            missing = [ref for ref in artifact.units if ref not in known]
            if missing:
                raise CampaignError(
                    f"campaign {self.name!r} artifact {artifact.label!r} "
                    f"references unknown unit(s) {missing}"
                )
            if artifact.kind in ("csv", "rank-evolution", "asymptotic-fit"):
                # These artifacts write `<slug>.csv` next to the report, so
                # their labels must slug uniquely — checked here, at load
                # time, not after the whole campaign has executed.
                slug = artifact_slug(artifact.label)
                if slug in slugs:
                    raise CampaignError(
                        f"campaign {self.name!r}: artifacts "
                        f"{slugs[slug]!r} and {artifact.label!r} would both "
                        f"write {slug}.csv; give them distinct titles"
                    )
                slugs[slug] = artifact.label
        # The execution order doubles as the cycle check; computing it here
        # makes an unrunnable campaign fail at construction, not at run time.
        self.execution_order()

    def unit(self, name: str) -> CampaignUnit:
        """Look a unit up by name."""
        for unit in self.units:
            if unit.name == name:
                return unit
        raise CampaignError(f"campaign {self.name!r} has no unit {name!r}")

    def execution_order(self) -> list[CampaignUnit]:
        """Topological order of the unit DAG, stable in declaration order.

        Kahn's algorithm over the ``after`` edges; ties resolve to the order
        units were declared in, so a campaign without dependencies executes
        exactly as written.  A cycle raises :class:`CampaignError`.
        """
        remaining = {unit.name: set(unit.after) for unit in self.units}
        by_name = {unit.name: unit for unit in self.units}
        order: list[CampaignUnit] = []
        done: set[str] = set()
        while remaining:
            ready = [
                unit.name
                for unit in self.units
                if unit.name in remaining and not (remaining[unit.name] - done)
            ]
            if not ready:
                cycle = sorted(remaining)
                raise CampaignError(
                    f"campaign {self.name!r} has a dependency cycle among "
                    f"unit(s) {cycle}"
                )
            for name in ready:
                order.append(by_name[name])
                done.add(name)
                del remaining[name]
        return order

    def resolved_specs(
        self, *, trials: "int | None" = None, seed: "int | None" = None
    ) -> "dict[str, ScenarioSpec]":
        """Unit name → concrete scenario spec, in execution order."""
        return {
            unit.name: unit.resolve(trials=trials, seed=seed)
            for unit in self.execution_order()
        }

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation; inverse of :meth:`from_dict`."""
        data: dict[str, Any] = {"name": self.name}
        if self.title:
            data["title"] = self.title
        if self.description:
            data["description"] = self.description
        data["units"] = [unit.to_dict() for unit in self.units]
        if self.artifacts:
            data["artifacts"] = [artifact.to_dict() for artifact in self.artifacts]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Rebuild a campaign from :meth:`to_dict` output (extra keys rejected)."""
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise CampaignError(
                f"unknown campaign fields {sorted(unknown)}; known: {sorted(known)}"
            )
        kwargs = dict(data)
        kwargs["units"] = tuple(
            CampaignUnit.from_dict(unit) if isinstance(unit, Mapping) else unit
            for unit in kwargs.get("units", ())
        )
        kwargs["artifacts"] = tuple(
            ArtifactSpec.from_dict(artifact) if isinstance(artifact, Mapping) else artifact
            for artifact in kwargs.get("artifacts", ())
        )
        return cls(**kwargs)

    def to_json(self, *, indent: "int | None" = 2) -> str:
        """Serialise to a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        """Rebuild a campaign from :meth:`to_json` output."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise CampaignError("a campaign JSON document must be an object")
        return cls.from_dict(data)

    def replace(self, **changes: Any) -> "CampaignSpec":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


def load_campaign_file(path: "str | Path") -> CampaignSpec:
    """Load a campaign from a ``.toml`` or ``.json`` file.

    The suffix picks the parser (anything other than ``.toml`` is treated as
    JSON — the :meth:`CampaignSpec.to_json` shape); both decode to the same
    :meth:`CampaignSpec.from_dict` document.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as error:
        raise CampaignError(f"cannot read campaign file {path}: {error}") from None
    if path.suffix.lower() == ".toml":
        try:
            data = tomllib.loads(raw.decode("utf-8"))
        except (tomllib.TOMLDecodeError, UnicodeDecodeError) as error:
            raise CampaignError(f"{path} is not valid TOML: {error}") from None
    else:
        try:
            data = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise CampaignError(f"{path} is not valid JSON: {error}") from None
    if not isinstance(data, dict):
        raise CampaignError(f"{path} must hold a campaign object/table at top level")
    return CampaignSpec.from_dict(data)
