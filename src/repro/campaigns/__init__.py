"""Declarative experiment campaigns with incremental execution and reports.

A :class:`CampaignSpec` names a coordinated set of scenario sweeps (the
units), their dependency DAG and the derived artifacts its report carries;
:func:`run_campaign` executes it incrementally through a
:class:`~repro.store.ResultStore` (cached units are skipped, interrupted
campaigns resume); :func:`write_report` renders the outcome as a
self-documenting Markdown + static-HTML report.  Built-in campaigns
(``table1``, ``table2``, ``theorem2``, ``theorem5``, ``full-paper``,
``asymptotics``) live in the :mod:`~repro.campaigns.registry`;
``python -m repro campaign --help`` drives everything from the CLI.  See
``docs/campaigns.md``.
"""

from .registry import (
    CAMPAIGNS,
    asymptotics_campaign,
    campaign_names,
    get_campaign,
    register_campaign,
)
from .report import (
    TIMINGS_MARKER,
    render_html,
    render_markdown,
    render_text_summary,
    report_body,
    write_report,
)
from .runner import ArtifactResult, CampaignResult, UnitOutcome, run_campaign
from .spec import (
    ARTIFACT_KINDS,
    ArtifactSpec,
    CampaignSpec,
    CampaignUnit,
    load_campaign_file,
)

__all__ = [
    "ARTIFACT_KINDS",
    "ArtifactSpec",
    "CampaignSpec",
    "CampaignUnit",
    "load_campaign_file",
    "CAMPAIGNS",
    "asymptotics_campaign",
    "campaign_names",
    "get_campaign",
    "register_campaign",
    "ArtifactResult",
    "CampaignResult",
    "UnitOutcome",
    "run_campaign",
    "TIMINGS_MARKER",
    "render_html",
    "render_markdown",
    "render_text_summary",
    "report_body",
    "write_report",
]
