"""Polynomial helpers used to construct finite fields.

Two kinds of fields appear in the library:

* prime fields ``GF(p)``, which only need a primality test, and
* binary extension fields ``GF(2^m)``, which need an irreducible polynomial
  of degree ``m`` over ``GF(2)`` to define multiplication.

Polynomials over ``GF(2)`` are represented as Python integers whose binary
expansion lists the coefficients: bit ``i`` is the coefficient of ``x**i``.
For example ``0b10011`` is ``x^4 + x + 1``, the usual generator of ``GF(16)``.

The module also supports general prime-power fields ``GF(p^m)`` through
:func:`find_irreducible`, which searches for a monic irreducible polynomial
over ``GF(p)`` represented as a tuple of coefficients (lowest degree first).
Only small fields are ever used by the gossip simulations, so brute-force
searches are more than fast enough.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from ..errors import FieldError

__all__ = [
    "is_prime",
    "factor_prime_power",
    "CONWAY_BINARY_POLYNOMIALS",
    "gf2_poly_degree",
    "gf2_poly_mulmod",
    "gf2_poly_is_irreducible",
    "find_binary_irreducible",
    "find_irreducible",
]


def is_prime(value: int) -> bool:
    """Return ``True`` if ``value`` is a prime number.

    Deterministic trial division; the library only constructs fields of order
    at most a few hundred, so no probabilistic test is needed.
    """
    if value < 2:
        return False
    if value < 4:
        return True
    if value % 2 == 0:
        return False
    divisor = 3
    while divisor * divisor <= value:
        if value % divisor == 0:
            return False
        divisor += 2
    return True


def factor_prime_power(order: int) -> tuple[int, int]:
    """Factor ``order`` as ``p ** m`` with ``p`` prime, or raise.

    Returns
    -------
    (p, m):
        The characteristic and the extension degree.

    Raises
    ------
    FieldError:
        If ``order`` is not a prime power (e.g. 6, 12, 100).
    """
    if order < 2:
        raise FieldError(f"field order must be at least 2, got {order}")
    for p in range(2, order + 1):
        if not is_prime(p):
            continue
        if order % p != 0:
            continue
        m = 0
        remaining = order
        while remaining % p == 0:
            remaining //= p
            m += 1
        if remaining == 1:
            return p, m
        raise FieldError(f"{order} is not a prime power")
    raise FieldError(f"{order} is not a prime power")  # pragma: no cover


#: Standard irreducible (Conway-style) polynomials for the binary fields the
#: simulations use most.  Keys are the extension degree ``m``; values are the
#: integer bit representation described in the module docstring.
CONWAY_BINARY_POLYNOMIALS: dict[int, int] = {
    1: 0b11,           # x + 1 (GF(2) itself; unused but kept for completeness)
    2: 0b111,          # x^2 + x + 1
    3: 0b1011,         # x^3 + x + 1
    4: 0b10011,        # x^4 + x + 1
    5: 0b100101,       # x^5 + x^2 + 1
    6: 0b1011011,      # x^6 + x^4 + x^3 + x + 1
    7: 0b10000011,     # x^7 + x + 1
    8: 0b100011011,    # x^8 + x^4 + x^3 + x + 1 (AES polynomial)
}


def gf2_poly_degree(poly: int) -> int:
    """Degree of a ``GF(2)`` polynomial in integer-bit representation."""
    if poly == 0:
        return -1
    return poly.bit_length() - 1


def gf2_poly_mulmod(a: int, b: int, modulus: int) -> int:
    """Multiply two ``GF(2)`` polynomials modulo ``modulus``.

    Standard carry-less multiplication followed by polynomial reduction.
    """
    if modulus == 0:
        raise FieldError("modulus polynomial must be non-zero")
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
    # Reduce.
    mod_degree = gf2_poly_degree(modulus)
    while gf2_poly_degree(result) >= mod_degree:
        shift = gf2_poly_degree(result) - mod_degree
        result ^= modulus << shift
    return result


def _gf2_poly_powmod(base: int, exponent: int, modulus: int) -> int:
    """Compute ``base ** exponent`` modulo ``modulus`` over ``GF(2)``."""
    result = 1
    base = gf2_poly_mulmod(base, 1, modulus)
    while exponent:
        if exponent & 1:
            result = gf2_poly_mulmod(result, base, modulus)
        base = gf2_poly_mulmod(base, base, modulus)
        exponent >>= 1
    return result


def gf2_poly_is_irreducible(poly: int) -> bool:
    """Test irreducibility of a ``GF(2)`` polynomial via Rabin's test.

    A degree-``m`` polynomial ``f`` is irreducible over ``GF(2)`` iff
    ``x^(2^m) == x (mod f)`` and for every prime divisor ``d`` of ``m``,
    ``gcd(x^(2^(m/d)) - x, f) == 1``.
    """
    m = gf2_poly_degree(poly)
    if m <= 0:
        return False
    if m == 1:
        return True
    x = 0b10
    # x^(2^m) mod poly must equal x.
    power = x
    for _ in range(m):
        power = gf2_poly_mulmod(power, power, poly)
    if power != x:
        return False
    # For each prime divisor d of m, gcd(x^(2^(m/d)) + x, poly) must be 1.
    for d in _prime_divisors(m):
        power = x
        for _ in range(m // d):
            power = gf2_poly_mulmod(power, power, poly)
        if _gf2_poly_gcd(power ^ x, poly) != 1:
            return False
    return True


def _prime_divisors(value: int) -> list[int]:
    divisors = []
    candidate = 2
    remaining = value
    while candidate * candidate <= remaining:
        if remaining % candidate == 0:
            divisors.append(candidate)
            while remaining % candidate == 0:
                remaining //= candidate
        candidate += 1
    if remaining > 1:
        divisors.append(remaining)
    return divisors


def _gf2_poly_mod(a: int, b: int) -> int:
    """Remainder of polynomial division of ``a`` by ``b`` over ``GF(2)``."""
    db = gf2_poly_degree(b)
    while gf2_poly_degree(a) >= db:
        a ^= b << (gf2_poly_degree(a) - db)
    return a


def _gf2_poly_gcd(a: int, b: int) -> int:
    while b:
        a, b = b, _gf2_poly_mod(a, b)
    return a


@lru_cache(maxsize=None)
def find_binary_irreducible(degree: int) -> int:
    """Return an irreducible polynomial of the given ``degree`` over ``GF(2)``.

    Known standard polynomials are used when available; otherwise the smallest
    irreducible polynomial (by integer value) is found by brute force.
    """
    if degree < 1:
        raise FieldError(f"extension degree must be positive, got {degree}")
    if degree in CONWAY_BINARY_POLYNOMIALS:
        return CONWAY_BINARY_POLYNOMIALS[degree]
    start = 1 << degree
    for candidate in range(start + 1, start << 1, 2):  # constant term must be 1
        if gf2_poly_is_irreducible(candidate):
            return candidate
    raise FieldError(f"no irreducible polynomial of degree {degree} found")  # pragma: no cover


def _poly_eval_mod(coeffs: Sequence[int], x: int, p: int) -> int:
    """Evaluate a polynomial with coefficients mod ``p`` at ``x`` (Horner)."""
    result = 0
    for coeff in reversed(coeffs):
        result = (result * x + coeff) % p
    return result


@lru_cache(maxsize=None)
def find_irreducible(p: int, m: int) -> tuple[int, ...]:
    """Find a monic irreducible polynomial of degree ``m`` over ``GF(p)``.

    The polynomial is returned as a tuple of coefficients, lowest degree
    first, with the leading coefficient equal to 1.  For ``m <= 3`` a
    polynomial is irreducible iff it has no roots in ``GF(p)``, which is the
    only case the library needs for non-binary extension fields (GF(9),
    GF(25), GF(27), GF(121), ...).  Larger non-binary extensions are rejected.
    """
    if not is_prime(p):
        raise FieldError(f"characteristic must be prime, got {p}")
    if m < 1:
        raise FieldError(f"extension degree must be positive, got {m}")
    if m == 1:
        return (0, 1)
    if m > 3:
        raise FieldError(
            "non-binary extension fields are only supported up to degree 3; "
            f"requested GF({p}^{m})"
        )
    # Enumerate monic polynomials x^m + a_{m-1} x^{m-1} + ... + a_0 and keep
    # the first with no root in GF(p).  Degree 2 and 3 polynomials without
    # roots are irreducible.
    for code in range(p**m):
        coeffs = []
        value = code
        for _ in range(m):
            coeffs.append(value % p)
            value //= p
        coeffs.append(1)  # monic
        if coeffs[0] == 0:
            continue
        if all(_poly_eval_mod(coeffs, x, p) != 0 for x in range(p)):
            return tuple(coeffs)
    raise FieldError(f"no irreducible polynomial found for GF({p}^{m})")  # pragma: no cover
