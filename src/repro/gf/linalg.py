"""Linear algebra over finite fields.

The RLNC decoder needs exactly four operations on matrices over ``GF(q)``:

* reduced row-echelon form (Gaussian elimination),
* rank computation,
* membership of a vector in a row space, and
* solving a full-rank linear system (to recover the original messages).

All routines operate on integer numpy arrays whose entries are field elements
in ``[0, q)`` and take the :class:`~repro.gf.field.GaloisField` instance as an
explicit argument, mirroring how a mathematician would write "over ``F_q``".

Since the compute-backend seam (:mod:`repro.backends`) the public
:func:`row_reduce` / :func:`rank` / :func:`is_in_row_space` entry points
dispatch to the *active* backend (default ``numpy``, overridable per run);
the ``_reference_*`` functions below are the dense numpy implementations the
default backend wraps, and :class:`BatchEliminator` is its eliminator state.
Every backend is bit-identical by contract, so callers never observe the
difference — a non-default backend is purely a speed choice.
"""

from __future__ import annotations

import numpy as np

from ..errors import FieldError
from .field import GaloisField

__all__ = [
    "row_reduce",
    "rank",
    "is_in_row_space",
    "solve",
    "invert_matrix",
    "identity",
    "matmul",
    "BatchEliminator",
]


def identity(field: GaloisField, size: int) -> np.ndarray:
    """The ``size x size`` identity matrix over ``field``."""
    matrix = field.zeros((size, size))
    for i in range(size):
        matrix[i, i] = 1
    return matrix


def matmul(field: GaloisField, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over the field.

    Shapes follow numpy conventions: ``(m, k) @ (k, n) -> (m, n)``.  The
    implementation iterates over rows and uses the field's vectorised
    :meth:`~repro.gf.field.GaloisField.dot`, which is fast enough for the
    small systems (``k`` up to a few hundred) that gossip simulations solve.
    """
    a = field.validate(a)
    b = field.validate(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise FieldError(f"incompatible shapes for matmul: {a.shape} and {b.shape}")
    result = field.zeros((a.shape[0], b.shape[1]))
    for i in range(a.shape[0]):
        result[i] = field.dot(a[i], b)
    return result


def row_reduce(
    field: GaloisField, matrix: np.ndarray, *, augmented_columns: int = 0
) -> tuple[np.ndarray, list[int]]:
    """Bring ``matrix`` to reduced row-echelon form over ``field``.

    Parameters
    ----------
    matrix:
        A 2-D array of field elements.  It is copied, never modified.
    augmented_columns:
        Number of trailing columns that are carried along but never chosen as
        pivots (use this to row-reduce ``[A | b]`` while only pivoting in
        ``A``).

    Returns
    -------
    (rref, pivot_columns):
        The reduced matrix and the list of pivot column indices in order.

    Dispatches to the active :mod:`repro.backends` backend (identical results
    on every backend; a backend that does not support ``field`` raises
    :class:`~repro.errors.BackendError`).
    """
    from ..backends import current_backend

    return current_backend().row_reduce(
        field, matrix, augmented_columns=augmented_columns
    )


def _reference_row_reduce(
    field: GaloisField, matrix: np.ndarray, *, augmented_columns: int = 0
) -> tuple[np.ndarray, list[int]]:
    """Dense-numpy :func:`row_reduce` (the ``numpy`` backend's kernel)."""
    work = field.validate(matrix).copy()
    if work.ndim != 2:
        raise FieldError(f"row_reduce expects a 2-D matrix, got shape {work.shape}")
    rows, cols = work.shape
    pivot_limit = cols - augmented_columns
    if pivot_limit < 0:
        raise FieldError(
            f"augmented_columns={augmented_columns} exceeds column count {cols}"
        )
    pivot_columns: list[int] = []
    pivot_row = 0
    for col in range(pivot_limit):
        if pivot_row >= rows:
            break
        # Find a row at or below pivot_row with a non-zero entry in this column.
        candidates = np.nonzero(work[pivot_row:, col])[0]
        if candidates.size == 0:
            continue
        source = pivot_row + int(candidates[0])
        if source != pivot_row:
            work[[pivot_row, source]] = work[[source, pivot_row]]
        # Normalise the pivot to 1.
        pivot_value = int(work[pivot_row, col])
        if pivot_value != 1:
            inv = int(field.inv(pivot_value))
            work[pivot_row] = field.scalar_mul(inv, work[pivot_row])
        # Eliminate the column from every other row.
        for other in range(rows):
            if other == pivot_row:
                continue
            factor = int(work[other, col])
            if factor == 0:
                continue
            work[other] = field.sub(
                work[other], field.scalar_mul(factor, work[pivot_row])
            )
        pivot_columns.append(col)
        pivot_row += 1
    return work, pivot_columns


def rank(field: GaloisField, matrix: np.ndarray) -> int:
    """Rank of ``matrix`` over ``field`` (computed by the active backend)."""
    from ..backends import current_backend

    return current_backend().rank(field, matrix)


def _reference_rank(field: GaloisField, matrix: np.ndarray) -> int:
    """Dense-numpy :func:`rank` (the ``numpy`` backend's kernel)."""
    matrix = field.validate(matrix)
    if matrix.size == 0:
        return 0
    _, pivots = _reference_row_reduce(field, matrix)
    return len(pivots)


def is_in_row_space(field: GaloisField, matrix: np.ndarray, vector: np.ndarray) -> bool:
    """Return ``True`` if ``vector`` lies in the row space of ``matrix``.

    Used to decide whether a received coded packet is *helpful* (Definition 3
    of the paper): a packet is helpful exactly when its coefficient vector is
    **not** already in the row space of the receiver's coefficient matrix.
    Computed by the active :mod:`repro.backends` backend.
    """
    from ..backends import current_backend

    return current_backend().is_in_row_space(field, matrix, vector)


def _reference_is_in_row_space(
    field: GaloisField, matrix: np.ndarray, vector: np.ndarray
) -> bool:
    """Dense-numpy :func:`is_in_row_space` (the ``numpy`` backend's kernel)."""
    matrix = field.validate(matrix)
    vector = field.validate(vector)
    if matrix.size == 0:
        return not np.any(vector)
    if vector.ndim != 1 or vector.shape[0] != matrix.shape[1]:
        raise FieldError(
            f"vector of length {vector.shape} does not match matrix with "
            f"{matrix.shape[1]} columns"
        )
    base_rank = _reference_rank(field, matrix)
    stacked = np.vstack([matrix, vector[np.newaxis, :]])
    return _reference_rank(field, stacked) == base_rank


def solve(field: GaloisField, matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` over the field for a full-column-rank matrix.

    ``rhs`` may be a vector or a matrix of stacked right-hand sides (one per
    column... here: one per *row* of the solution, matching the decoder's
    ``[coefficients | payloads]`` layout: we solve ``C X = P`` where ``C`` is
    ``(m, k)``, ``P`` is ``(m, r)`` and the result ``X`` is ``(k, r)``).

    Raises
    ------
    FieldError:
        If the system is inconsistent or the coefficient matrix does not have
        full column rank (the decoder checks rank before calling this).
    """
    matrix = field.validate(matrix)
    rhs = field.validate(rhs)
    if rhs.ndim == 1:
        rhs = rhs[:, np.newaxis]
        squeeze = True
    else:
        squeeze = False
    if matrix.shape[0] != rhs.shape[0]:
        raise FieldError(
            f"matrix has {matrix.shape[0]} rows but rhs has {rhs.shape[0]}"
        )
    k = matrix.shape[1]
    augmented = np.hstack([matrix, rhs])
    reduced, pivots = row_reduce(field, augmented, augmented_columns=rhs.shape[1])
    if len(pivots) < k:
        raise FieldError(
            f"system is under-determined: rank {len(pivots)} < {k} unknowns"
        )
    # Check consistency: any row that is zero in the coefficient part must be
    # zero in the augmented part as well.
    for row_index in range(len(pivots), reduced.shape[0]):
        if np.any(reduced[row_index, k:]):
            raise FieldError("system is inconsistent")
    solution = field.zeros((k, rhs.shape[1]))
    for row_index, col in enumerate(pivots):
        solution[col] = reduced[row_index, k:]
    return solution[:, 0] if squeeze else solution


class BatchEliminator:
    """Incremental Gaussian elimination over many independent problems at once.

    The scalar :class:`~repro.rlnc.decoder.RlncDecoder` reduces one incoming
    row against one node's stored pivots, which makes a Monte Carlo sweep of
    ``T`` trials pay ``T`` separate Python-level elimination loops per event.
    ``BatchEliminator`` instead carries the row-reduction state of ``batch``
    independent problems (for gossip: trials x nodes) as stacked numpy arrays
    and absorbs one new row *per problem* in a single vectorised ``GF(q)``
    sweep — the add/mul/inverse lookup tables are applied to whole
    ``(batch, columns)`` slabs instead of one short row at a time.

    Representation: for every problem the stored rows form the *canonical*
    reduced row-echelon basis of the absorbed row space, kept keyed by pivot
    column (``rows[b, p]`` is the row whose pivot is column ``p``, if
    ``pivot_mask[b, p]``).  Because the RREF basis of a subspace is unique,
    this state matches the scalar decoder's stored rows exactly — which is
    what makes the batched simulation fast path bit-identical to the
    sequential one.

    With ``augmented_columns = r > 0`` the trailing ``r`` columns ride along
    through every row operation but are never chosen as pivots and never make
    a row helpful — the ``[coefficients | payload]`` layout of the scalar
    :class:`~repro.rlnc.decoder.RlncDecoder`, which runs on one of these with
    ``batch=1``.
    """

    def __init__(
        self,
        field: GaloisField,
        batch: int,
        columns: int,
        *,
        augmented_columns: int = 0,
    ) -> None:
        if batch < 1:
            raise FieldError(f"batch size must be positive, got {batch}")
        if columns < 1:
            raise FieldError(f"column count must be positive, got {columns}")
        if not 0 <= augmented_columns < columns:
            raise FieldError(
                f"augmented_columns must lie in [0, {columns}), "
                f"got {augmented_columns}"
            )
        self.field = field
        self.batch = batch
        self.columns = columns
        #: Pivots (and helpfulness) live in the first ``pivot_limit`` columns.
        self.pivot_limit = columns - augmented_columns
        #: ``rows[b, p]`` is the stored row of problem ``b`` with pivot column
        #: ``p`` (all-zero when that pivot is absent).
        self.rows = field.zeros((batch, self.pivot_limit, columns))
        #: ``pivot_mask[b, p]`` — does problem ``b`` have a pivot in column ``p``?
        self.pivot_mask = np.zeros((batch, self.pivot_limit), dtype=bool)
        #: Current rank of every problem.
        self.ranks = np.zeros(batch, dtype=np.int64)

    # ------------------------------------------------------------------
    # Absorbing rows
    # ------------------------------------------------------------------
    def eliminate(
        self, incoming: np.ndarray, indices: np.ndarray | None = None
    ) -> np.ndarray:
        """Absorb one row per selected problem; return the per-row rank gains.

        Parameters
        ----------
        incoming:
            ``(m, columns)`` array of field elements — row ``j`` is reduced
            into problem ``indices[j]``.
        indices:
            ``(m,)`` array of **distinct** problem indices (default:
            ``0 .. m-1``).  Distinctness is required because every selected
            problem absorbs exactly one row in this sweep.

        Returns
        -------
        numpy.ndarray
            Boolean ``(m,)`` mask: ``True`` where the row was linearly
            independent of its problem's stored rows (rank increased).
        """
        field = self.field
        work = np.ascontiguousarray(incoming, dtype=field.dtype).copy()
        if work.ndim != 2 or work.shape[1] != self.columns:
            raise FieldError(
                f"expected incoming rows of shape (m, {self.columns}), got {work.shape}"
            )
        if indices is None:
            indices = np.arange(work.shape[0])
        else:
            indices = np.asarray(indices, dtype=np.int64)
            if indices.shape != (work.shape[0],):
                raise FieldError(
                    f"indices shape {indices.shape} does not match {work.shape[0]} rows"
                )
            if indices.size > 1 and np.unique(indices).size != indices.size:
                # A duplicated problem would silently lose one of its rows in
                # the fancy-indexed writes below; feed such rows in separate
                # sweeps instead.
                raise FieldError(
                    "eliminate requires distinct problem indices "
                    "(one row per problem per sweep)"
                )
        # Forward sweep: one pass over the stored pivot columns eliminates
        # every stored pivot from every incoming row (RREF ⇒ a pivot row is
        # zero in all *other* pivot columns, so earlier columns are never
        # re-polluted).  Only columns some selected problem actually pivots
        # on are visited, which keeps a nearly-empty eliminator (the scalar
        # decoder's early life) cheap.
        selected_mask = self.pivot_mask[indices]
        for col in np.nonzero(selected_mask.any(axis=0))[0]:
            factor = work[:, col]
            live = selected_mask[:, col] & (factor != 0)
            if not live.any():
                continue
            sel = np.nonzero(live)[0]
            pivot_rows = self.rows[indices[sel], col]
            work[sel] = field.raw_sub(
                work[sel], field.raw_mul(factor[sel, np.newaxis], pivot_rows)
            )
        # Helpfulness and the new pivot are decided on the pivot-eligible
        # columns only: a row whose coefficient part cancels is dependent and
        # is dropped, whatever its augmented part holds.
        nonzero = work[:, : self.pivot_limit] != 0
        helpful = nonzero.any(axis=1)
        sel = np.nonzero(helpful)[0]
        if sel.size:
            # After a full reduction the first non-zero entry sits in a
            # non-pivot column: that column becomes the new pivot.
            new_pivots = np.argmax(nonzero[sel], axis=1)
            problems = indices[sel]
            pivot_values = work[sel, new_pivots]
            work[sel] = field.raw_mul(
                field.raw_inv(pivot_values)[:, np.newaxis], work[sel]
            )
            # Back-substitute: clear the new pivot column from every stored
            # row (absent rows are all-zero, so their factor is zero too).
            stored = self.rows[problems]
            factors = np.take_along_axis(
                stored, new_pivots[:, np.newaxis, np.newaxis], axis=2
            )[:, :, 0]
            self.rows[problems] = field.raw_sub(
                stored,
                field.raw_mul(factors[:, :, np.newaxis], work[sel][:, np.newaxis, :]),
            )
            self.rows[problems, new_pivots] = work[sel]
            self.pivot_mask[problems, new_pivots] = True
            self.ranks[problems] += 1
        return helpful

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    def rank_of(self, index: int) -> int:
        """Current rank of one problem."""
        return int(self.ranks[index])

    def basis(self, index: int) -> np.ndarray:
        """Stored RREF rows of one problem, ordered by pivot column (a copy).

        This ordering matches the scalar decoder's row order, so random
        linear combinations drawn against it coincide coefficient-for-
        coefficient with the scalar encoder's packets.
        """
        pivots = np.nonzero(self.pivot_mask[index])[0]
        return self.rows[index, pivots].copy()

    def combine(self, index: int, coefficients: np.ndarray) -> np.ndarray:
        """Linear combination of one problem's stored rows (the encode step)."""
        pivots = np.nonzero(self.pivot_mask[index])[0]
        if coefficients.shape != pivots.shape:
            raise FieldError(
                f"expected {pivots.size} coefficients for problem {index}, "
                f"got {coefficients.shape}"
            )
        return self.field.raw_combine(
            np.asarray(coefficients, dtype=self.field.dtype), self.rows[index, pivots]
        )

    def combine_one(self, index: int, coefficients: np.ndarray) -> np.ndarray:
        """Single-problem encode; the dense payload twin of :meth:`combine`.

        Part of the :class:`~repro.backends.base.EliminatorState` hot-path
        contract (``BatchEliminator`` is a virtual subclass, so the base
        defaults do not apply).  The payload feeds :meth:`eliminate_one`.
        """
        return self.combine(index, coefficients)

    def eliminate_one(self, index: int, payload: np.ndarray) -> bool:
        """Absorb one dense row into one problem; return the helpfulness flag.

        Bit-identical to ``eliminate(payload[np.newaxis], [index])`` with the
        batch-wide machinery (index validation, fancy batch indexing)
        stripped, which keeps the event-driven engine's per-delivery cost on
        this backend proportional to one problem instead of the whole slab.
        """
        field = self.field
        work = np.array(payload, dtype=field.dtype)
        mask = self.pivot_mask[index]
        rows = self.rows[index]
        # Forward sweep over this problem's stored pivots (RREF ⇒ one pass).
        for col in np.nonzero(mask)[0]:
            factor = work[col]
            if factor:
                work = field.raw_sub(work, field.raw_mul(factor, rows[col]))
        nonzero = np.nonzero(work[: self.pivot_limit])[0]
        if nonzero.size == 0:
            return False
        new_pivot = int(nonzero[0])
        work = field.raw_mul(field.raw_inv(work[new_pivot]), work)
        # Back-substitute: clear the new pivot column from every stored row
        # (absent rows are all-zero, so their factor is zero too).
        factors = rows[:, new_pivot]
        self.rows[index] = field.raw_sub(
            rows, field.raw_mul(factors[:, np.newaxis], work[np.newaxis, :])
        )
        self.rows[index, new_pivot] = work
        self.pivot_mask[index, new_pivot] = True
        self.ranks[index] += 1
        return True

    def reset_problems(self, indices: np.ndarray) -> None:
        """Wipe the selected problems back to the empty (rank-zero) state.

        Reset-mode churn support for the event-driven engine: the cleared
        problems are indistinguishable from freshly constructed ones, so
        re-seeding them with unit rows reproduces a scalar decoder rebuilt
        from its initial placement.
        """
        indices = np.asarray(indices, dtype=np.int64)
        self.rows[indices] = 0
        self.pivot_mask[indices] = False
        self.ranks[indices] = 0


def invert_matrix(field: GaloisField, matrix: np.ndarray) -> np.ndarray:
    """Inverse of a square, full-rank matrix over the field."""
    matrix = field.validate(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise FieldError(f"invert_matrix expects a square matrix, got {matrix.shape}")
    size = matrix.shape[0]
    return solve(field, matrix, identity(field, size))
