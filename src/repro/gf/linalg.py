"""Linear algebra over finite fields.

The RLNC decoder needs exactly four operations on matrices over ``GF(q)``:

* reduced row-echelon form (Gaussian elimination),
* rank computation,
* membership of a vector in a row space, and
* solving a full-rank linear system (to recover the original messages).

All routines operate on integer numpy arrays whose entries are field elements
in ``[0, q)`` and take the :class:`~repro.gf.field.GaloisField` instance as an
explicit argument, mirroring how a mathematician would write "over ``F_q``".
"""

from __future__ import annotations

import numpy as np

from ..errors import FieldError
from .field import GaloisField

__all__ = [
    "row_reduce",
    "rank",
    "is_in_row_space",
    "solve",
    "invert_matrix",
    "identity",
    "matmul",
]


def identity(field: GaloisField, size: int) -> np.ndarray:
    """The ``size x size`` identity matrix over ``field``."""
    matrix = field.zeros((size, size))
    for i in range(size):
        matrix[i, i] = 1
    return matrix


def matmul(field: GaloisField, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over the field.

    Shapes follow numpy conventions: ``(m, k) @ (k, n) -> (m, n)``.  The
    implementation iterates over rows and uses the field's vectorised
    :meth:`~repro.gf.field.GaloisField.dot`, which is fast enough for the
    small systems (``k`` up to a few hundred) that gossip simulations solve.
    """
    a = field.validate(a)
    b = field.validate(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise FieldError(f"incompatible shapes for matmul: {a.shape} and {b.shape}")
    result = field.zeros((a.shape[0], b.shape[1]))
    for i in range(a.shape[0]):
        result[i] = field.dot(a[i], b)
    return result


def row_reduce(
    field: GaloisField, matrix: np.ndarray, *, augmented_columns: int = 0
) -> tuple[np.ndarray, list[int]]:
    """Bring ``matrix`` to reduced row-echelon form over ``field``.

    Parameters
    ----------
    matrix:
        A 2-D array of field elements.  It is copied, never modified.
    augmented_columns:
        Number of trailing columns that are carried along but never chosen as
        pivots (use this to row-reduce ``[A | b]`` while only pivoting in
        ``A``).

    Returns
    -------
    (rref, pivot_columns):
        The reduced matrix and the list of pivot column indices in order.
    """
    work = field.validate(matrix).copy()
    if work.ndim != 2:
        raise FieldError(f"row_reduce expects a 2-D matrix, got shape {work.shape}")
    rows, cols = work.shape
    pivot_limit = cols - augmented_columns
    if pivot_limit < 0:
        raise FieldError(
            f"augmented_columns={augmented_columns} exceeds column count {cols}"
        )
    pivot_columns: list[int] = []
    pivot_row = 0
    for col in range(pivot_limit):
        if pivot_row >= rows:
            break
        # Find a row at or below pivot_row with a non-zero entry in this column.
        candidates = np.nonzero(work[pivot_row:, col])[0]
        if candidates.size == 0:
            continue
        source = pivot_row + int(candidates[0])
        if source != pivot_row:
            work[[pivot_row, source]] = work[[source, pivot_row]]
        # Normalise the pivot to 1.
        pivot_value = int(work[pivot_row, col])
        if pivot_value != 1:
            inv = int(field.inv(pivot_value))
            work[pivot_row] = field.scalar_mul(inv, work[pivot_row])
        # Eliminate the column from every other row.
        for other in range(rows):
            if other == pivot_row:
                continue
            factor = int(work[other, col])
            if factor == 0:
                continue
            work[other] = field.sub(
                work[other], field.scalar_mul(factor, work[pivot_row])
            )
        pivot_columns.append(col)
        pivot_row += 1
    return work, pivot_columns


def rank(field: GaloisField, matrix: np.ndarray) -> int:
    """Rank of ``matrix`` over ``field``."""
    matrix = field.validate(matrix)
    if matrix.size == 0:
        return 0
    _, pivots = row_reduce(field, matrix)
    return len(pivots)


def is_in_row_space(field: GaloisField, matrix: np.ndarray, vector: np.ndarray) -> bool:
    """Return ``True`` if ``vector`` lies in the row space of ``matrix``.

    Used to decide whether a received coded packet is *helpful* (Definition 3
    of the paper): a packet is helpful exactly when its coefficient vector is
    **not** already in the row space of the receiver's coefficient matrix.
    """
    matrix = field.validate(matrix)
    vector = field.validate(vector)
    if matrix.size == 0:
        return not np.any(vector)
    if vector.ndim != 1 or vector.shape[0] != matrix.shape[1]:
        raise FieldError(
            f"vector of length {vector.shape} does not match matrix with "
            f"{matrix.shape[1]} columns"
        )
    base_rank = rank(field, matrix)
    stacked = np.vstack([matrix, vector[np.newaxis, :]])
    return rank(field, stacked) == base_rank


def solve(field: GaloisField, matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` over the field for a full-column-rank matrix.

    ``rhs`` may be a vector or a matrix of stacked right-hand sides (one per
    column... here: one per *row* of the solution, matching the decoder's
    ``[coefficients | payloads]`` layout: we solve ``C X = P`` where ``C`` is
    ``(m, k)``, ``P`` is ``(m, r)`` and the result ``X`` is ``(k, r)``).

    Raises
    ------
    FieldError:
        If the system is inconsistent or the coefficient matrix does not have
        full column rank (the decoder checks rank before calling this).
    """
    matrix = field.validate(matrix)
    rhs = field.validate(rhs)
    if rhs.ndim == 1:
        rhs = rhs[:, np.newaxis]
        squeeze = True
    else:
        squeeze = False
    if matrix.shape[0] != rhs.shape[0]:
        raise FieldError(
            f"matrix has {matrix.shape[0]} rows but rhs has {rhs.shape[0]}"
        )
    k = matrix.shape[1]
    augmented = np.hstack([matrix, rhs])
    reduced, pivots = row_reduce(field, augmented, augmented_columns=rhs.shape[1])
    if len(pivots) < k:
        raise FieldError(
            f"system is under-determined: rank {len(pivots)} < {k} unknowns"
        )
    # Check consistency: any row that is zero in the coefficient part must be
    # zero in the augmented part as well.
    for row_index in range(len(pivots), reduced.shape[0]):
        if np.any(reduced[row_index, k:]):
            raise FieldError("system is inconsistent")
    solution = field.zeros((k, rhs.shape[1]))
    for row_index, col in enumerate(pivots):
        solution[col] = reduced[row_index, k:]
    return solution[:, 0] if squeeze else solution


def invert_matrix(field: GaloisField, matrix: np.ndarray) -> np.ndarray:
    """Inverse of a square, full-rank matrix over the field."""
    matrix = field.validate(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise FieldError(f"invert_matrix expects a square matrix, got {matrix.shape}")
    size = matrix.shape[0]
    return solve(field, matrix, identity(field, size))
