"""Finite (Galois) field arithmetic vectorised over numpy arrays.

Random linear network coding (Section 2 of the paper) works over a field
``F_q``.  The paper's analysis needs nothing more than ``q >= 2`` — the
probability that a random combination from a *helpful* node is itself helpful
is at least ``1 - 1/q`` — but an executable reproduction needs real field
arithmetic so that encoded packets can actually be decoded.

Two element representations are used, both mapping elements to the integers
``0 .. q-1``:

* :class:`PrimeField` — ``GF(p)`` with ordinary modular arithmetic.
* :class:`ExtensionField` — ``GF(p^m)``; an element's base-``p`` digits are
  the coefficients of its polynomial representation.  Multiplication and
  addition are implemented with precomputed ``q x q`` lookup tables, which for
  the small fields used by gossip simulations (``q <= 256``) is both simple
  and fast when combined with numpy fancy indexing.

All operations accept scalars or numpy arrays and broadcast like numpy ufuncs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import FieldError
from .polynomial import factor_prime_power, find_binary_irreducible, find_irreducible

__all__ = ["GaloisField", "PrimeField", "ExtensionField"]

#: Module-level cache of extension-field lookup tables, keyed by field order:
#: ``order -> (add, mul, neg, inverse)``.  Building the ``q x q`` tables costs
#: ``O(q^2)`` polynomial multiplications — noticeable for ``GF(256)`` — and the
#: tables are immutable, so every :class:`ExtensionField` instance of the same
#: order (however constructed: the cached :func:`repro.gf.GF` factory, direct
#: instantiation in tests, or unpickling in worker processes, which re-enters
#: ``__init__`` via ``GaloisField.__reduce__``) shares one set instead of
#: rebuilding them from scratch.
_EXTENSION_TABLE_CACHE: dict[
    int, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
] = {}


def _as_array(values: object, order: int) -> np.ndarray:
    """Convert ``values`` to an integer numpy array and range-check it."""
    array = np.asarray(values)
    if array.dtype.kind == "b":
        # Booleans are deliberately rejected rather than silently promoted to
        # 0/1: a mask passed where field elements were expected is almost
        # always a bug (e.g. ``matrix != 0`` instead of ``matrix``).
        raise FieldError(
            "field elements must be integers, got a boolean array; "
            "cast explicitly (e.g. values.astype(np.uint8)) if 0/1 was intended"
        )
    if array.dtype.kind not in "iu":
        if array.dtype.kind == "f" and np.all(array == np.floor(array)):
            array = array.astype(np.int64)
        else:
            raise FieldError(f"field elements must be integers, got dtype {array.dtype}")
    if array.size and (array.min() < 0 or array.max() >= order):
        raise FieldError(
            f"element out of range for GF({order}): "
            f"min={array.min()}, max={array.max()}"
        )
    return array


class GaloisField(ABC):
    """Abstract interface shared by all field implementations.

    Subclasses provide :meth:`add`, :meth:`mul` and :meth:`inv`; the remaining
    operations (subtraction, division, powers, dot products) are derived here.
    Elements are plain integers / integer numpy arrays in ``[0, order)``.
    """

    def __init__(self, order: int, characteristic: int, degree: int) -> None:
        self.order = order
        self.characteristic = characteristic
        self.degree = degree
        self.dtype = np.uint8 if order <= 256 else np.int64

    # -- primitive operations -----------------------------------------
    @abstractmethod
    def add(self, a, b) -> np.ndarray:
        """Element-wise field addition."""

    @abstractmethod
    def neg(self, a) -> np.ndarray:
        """Element-wise additive inverse."""

    @abstractmethod
    def mul(self, a, b) -> np.ndarray:
        """Element-wise field multiplication."""

    @abstractmethod
    def inv(self, a) -> np.ndarray:
        """Element-wise multiplicative inverse; raises on zero."""

    # -- derived operations -------------------------------------------
    def sub(self, a, b) -> np.ndarray:
        """Element-wise field subtraction ``a - b``."""
        return self.add(a, self.neg(b))

    def div(self, a, b) -> np.ndarray:
        """Element-wise field division ``a / b``; raises when ``b`` has zeros."""
        return self.mul(a, self.inv(b))

    def power(self, a, exponent: int) -> np.ndarray:
        """Raise every element of ``a`` to the integer ``exponent``.

        Negative exponents are supported via inversion.  ``0 ** 0`` is defined
        as ``1`` to match the usual polynomial-evaluation convention.
        """
        a = self.validate(a)
        if exponent < 0:
            a = self.inv(a)
            exponent = -exponent
        result = np.ones_like(np.atleast_1d(a))
        base = np.atleast_1d(a).copy()
        e = exponent
        while e:
            if e & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            e >>= 1
        if np.shape(a):
            return np.asarray(result).reshape(np.shape(a))
        return np.asarray(result).reshape(-1)[0]

    def dot(self, coefficients, vectors) -> np.ndarray:
        """Linear combination ``sum_i coefficients[i] * vectors[i]`` over the field.

        ``coefficients`` has shape ``(m,)`` and ``vectors`` shape ``(m, r)``;
        the result has shape ``(r,)``.  This is the core operation of RLNC
        encoding.
        """
        coefficients = self.validate(coefficients)
        vectors = self.validate(vectors)
        if vectors.ndim != 2 or coefficients.ndim != 1:
            raise FieldError("dot expects a coefficient vector and a matrix of row vectors")
        if coefficients.shape[0] != vectors.shape[0]:
            raise FieldError(
                f"shape mismatch: {coefficients.shape[0]} coefficients for "
                f"{vectors.shape[0]} vectors"
            )
        result = np.zeros(vectors.shape[1], dtype=self.dtype)
        for coeff, row in zip(coefficients, vectors):
            if coeff == 0:
                continue
            result = self.add(result, self.scalar_mul(int(coeff), row))
        return result

    def scalar_mul(self, scalar: int, vector) -> np.ndarray:
        """Multiply every entry of ``vector`` by the field element ``scalar``."""
        vector = self.validate(vector)
        scalars = np.full(vector.shape, scalar, dtype=self.dtype)
        return self.mul(scalars, vector)

    # -- raw (unchecked) vectorised operations --------------------------
    #
    # The ``raw_*`` family skips validation and dtype conversion entirely:
    # inputs must already be arrays of this field's dtype with in-range
    # entries, and broadcasting follows plain numpy rules.  These exist for
    # hot loops — the batched eliminator sweeps millions of elements per call
    # and cannot afford a min/max range check per operation.  Everything else
    # should use the checked ``add``/``mul``/... methods above.

    @abstractmethod
    def raw_add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Unchecked element-wise addition of in-range arrays of :attr:`dtype`."""

    @abstractmethod
    def raw_sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Unchecked element-wise subtraction ``a - b``."""

    @abstractmethod
    def raw_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Unchecked element-wise multiplication."""

    @abstractmethod
    def raw_inv(self, a: np.ndarray) -> np.ndarray:
        """Unchecked element-wise inverse; behaviour on zeros is undefined."""

    def raw_combine(self, coefficients: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Unchecked linear combination ``sum_i coefficients[i] * rows[i]``.

        ``coefficients`` has shape ``(m,)`` and ``rows`` shape ``(m, r)``; the
        result has shape ``(r,)``.  This is the vectorised counterpart of
        :meth:`dot` used by the batch encoder fast path.
        """
        products = self.raw_mul(coefficients[:, np.newaxis], rows)
        result = np.zeros(rows.shape[1], dtype=self.dtype)
        for row in products:
            result = self.raw_add(result, row)
        return result

    # -- utilities ------------------------------------------------------
    def validate(self, values) -> np.ndarray:
        """Return ``values`` as a range-checked array of this field's dtype."""
        return _as_array(values, self.order).astype(self.dtype)

    def zeros(self, shape) -> np.ndarray:
        """An all-zero array of field elements."""
        return np.zeros(shape, dtype=self.dtype)

    def ones(self, shape) -> np.ndarray:
        """An all-one array of field elements."""
        return np.ones(shape, dtype=self.dtype)

    def random_elements(
        self, rng: np.random.Generator, size, *, nonzero: bool = False
    ) -> np.ndarray:
        """Draw uniform random field elements.

        With ``nonzero=True`` the elements are uniform over the multiplicative
        group ``F_q^*`` instead of the whole field.
        """
        low = 1 if nonzero else 0
        return rng.integers(low, self.order, size=size, dtype=np.int64).astype(self.dtype)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GaloisField) and other.order == self.order

    def __hash__(self) -> int:
        return hash(("GaloisField", self.order))

    def __reduce__(self):
        # A field is fully determined by its order, so pickle just that:
        # unpickling re-runs __init__, which routes extension fields through
        # the module-level table cache instead of shipping (and then holding)
        # four private q x q table copies per instance, and keeps pickled
        # payloads that embed a field small.
        return (type(self), (self.order,))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(order={self.order})"


class PrimeField(GaloisField):
    """``GF(p)`` for a prime ``p``, implemented with modular arithmetic."""

    def __init__(self, p: int) -> None:
        characteristic, degree = factor_prime_power(p)
        if degree != 1:
            raise FieldError(f"PrimeField requires a prime order, got {p}")
        super().__init__(order=p, characteristic=characteristic, degree=1)
        # Precompute the inverse table once; p <= 256 in practice.
        inverses = np.zeros(p, dtype=self.dtype)
        for value in range(1, p):
            inverses[value] = pow(value, p - 2, p)
        self._inverse_table = inverses

    def add(self, a, b) -> np.ndarray:
        a = self.validate(a).astype(np.int64)
        b = self.validate(b).astype(np.int64)
        return ((a + b) % self.order).astype(self.dtype)

    def neg(self, a) -> np.ndarray:
        a = self.validate(a).astype(np.int64)
        return ((-a) % self.order).astype(self.dtype)

    def mul(self, a, b) -> np.ndarray:
        a = self.validate(a).astype(np.int64)
        b = self.validate(b).astype(np.int64)
        return ((a * b) % self.order).astype(self.dtype)

    def inv(self, a) -> np.ndarray:
        a = self.validate(a)
        if np.any(np.asarray(a) == 0):
            raise FieldError("cannot invert the zero element")
        return self._inverse_table[np.asarray(a, dtype=np.int64)]

    # -- raw operations (no validation; see GaloisField.raw_add) --------
    def raw_add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return ((a.astype(np.int64) + b) % self.order).astype(self.dtype)

    def raw_sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return ((a.astype(np.int64) - b) % self.order).astype(self.dtype)

    def raw_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return ((a.astype(np.int64) * b) % self.order).astype(self.dtype)

    def raw_inv(self, a: np.ndarray) -> np.ndarray:
        return self._inverse_table[np.asarray(a, dtype=np.int64)]

    def raw_combine(self, coefficients: np.ndarray, rows: np.ndarray) -> np.ndarray:
        # Modular arithmetic sums exactly in int64 (m * (p-1)^2 stays far
        # below 2^63 for every supported field), so one matvec suffices.
        total = coefficients.astype(np.int64) @ rows.astype(np.int64)
        return (total % self.order).astype(self.dtype)


class ExtensionField(GaloisField):
    """``GF(p^m)`` with ``m >= 2``, implemented with lookup tables.

    Elements are integers whose base-``p`` digits are polynomial coefficients
    (least-significant digit = constant term).  For ``p = 2`` this is the
    familiar bit-vector representation, and the reduction polynomial is the
    standard one from :data:`~repro.gf.polynomial.CONWAY_BINARY_POLYNOMIALS`.
    """

    def __init__(self, order: int) -> None:
        characteristic, degree = factor_prime_power(order)
        if degree < 2:
            raise FieldError(
                f"ExtensionField requires a proper prime power, got {order}; use PrimeField"
            )
        super().__init__(order=order, characteristic=characteristic, degree=degree)
        if characteristic == 2:
            self.modulus_bits = find_binary_irreducible(degree)
            self.modulus_coeffs: tuple[int, ...] | None = None
        else:
            self.modulus_bits = None
            self.modulus_coeffs = find_irreducible(characteristic, degree)
        cached = _EXTENSION_TABLE_CACHE.get(order)
        if cached is None:
            self._add_table, self._mul_table = self._build_tables()
            self._neg_table = self._build_neg_table()
            self._inverse_table = self._build_inverse_table()
            tables = (
                self._add_table,
                self._mul_table,
                self._neg_table,
                self._inverse_table,
            )
            for table in tables:
                table.setflags(write=False)  # shared between instances
            _EXTENSION_TABLE_CACHE[order] = tables
        else:
            (
                self._add_table,
                self._mul_table,
                self._neg_table,
                self._inverse_table,
            ) = cached

    # -- table construction --------------------------------------------
    def _digits(self, value: int) -> list[int]:
        p = self.characteristic
        digits = []
        for _ in range(self.degree):
            digits.append(value % p)
            value //= p
        return digits

    def _from_digits(self, digits: list[int]) -> int:
        p = self.characteristic
        value = 0
        for digit in reversed(digits):
            value = value * p + (digit % p)
        return value

    def _poly_add(self, a: int, b: int) -> int:
        da, db = self._digits(a), self._digits(b)
        return self._from_digits([(x + y) % self.characteristic for x, y in zip(da, db)])

    def _poly_neg(self, a: int) -> int:
        return self._from_digits([(-x) % self.characteristic for x in self._digits(a)])

    def _poly_mul(self, a: int, b: int) -> int:
        p = self.characteristic
        if p == 2:
            from .polynomial import gf2_poly_mulmod

            return gf2_poly_mulmod(a, b, self.modulus_bits)
        # General characteristic: schoolbook multiply then reduce by the monic
        # modulus polynomial of degree m.
        da, db = self._digits(a), self._digits(b)
        product = [0] * (2 * self.degree - 1)
        for i, x in enumerate(da):
            if x == 0:
                continue
            for j, y in enumerate(db):
                product[i + j] = (product[i + j] + x * y) % p
        # Reduce: x^m = -(c_{m-1} x^{m-1} + ... + c_0) where modulus is
        # x^m + c_{m-1} x^{m-1} + ... + c_0.
        assert self.modulus_coeffs is not None
        mod = list(self.modulus_coeffs)
        for deg in range(len(product) - 1, self.degree - 1, -1):
            coeff = product[deg]
            if coeff == 0:
                continue
            product[deg] = 0
            for j in range(self.degree):
                product[deg - self.degree + j] = (
                    product[deg - self.degree + j] - coeff * mod[j]
                ) % p
        return self._from_digits(product[: self.degree])

    def _build_tables(self) -> tuple[np.ndarray, np.ndarray]:
        q = self.order
        add_table = np.zeros((q, q), dtype=self.dtype)
        mul_table = np.zeros((q, q), dtype=self.dtype)
        for a in range(q):
            for b in range(a, q):
                s = self._poly_add(a, b)
                m = self._poly_mul(a, b)
                add_table[a, b] = add_table[b, a] = s
                mul_table[a, b] = mul_table[b, a] = m
        return add_table, mul_table

    def _build_neg_table(self) -> np.ndarray:
        return np.array([self._poly_neg(a) for a in range(self.order)], dtype=self.dtype)

    def _build_inverse_table(self) -> np.ndarray:
        q = self.order
        inverses = np.zeros(q, dtype=self.dtype)
        for a in range(1, q):
            row = self._mul_table[a]
            ones = np.nonzero(row == 1)[0]
            if ones.size != 1:
                raise FieldError(
                    f"internal error building GF({q}): element {a} has "
                    f"{ones.size} inverses"
                )  # pragma: no cover - table construction sanity check
            inverses[a] = ones[0]
        return inverses

    # -- field operations ------------------------------------------------
    def add(self, a, b) -> np.ndarray:
        a = np.asarray(self.validate(a), dtype=np.int64)
        b = np.asarray(self.validate(b), dtype=np.int64)
        return self._add_table[a, b]

    def neg(self, a) -> np.ndarray:
        a = np.asarray(self.validate(a), dtype=np.int64)
        return self._neg_table[a]

    def mul(self, a, b) -> np.ndarray:
        a = np.asarray(self.validate(a), dtype=np.int64)
        b = np.asarray(self.validate(b), dtype=np.int64)
        return self._mul_table[a, b]

    def inv(self, a) -> np.ndarray:
        a = np.asarray(self.validate(a), dtype=np.int64)
        if np.any(a == 0):
            raise FieldError("cannot invert the zero element")
        return self._inverse_table[a]

    # -- raw operations (no validation; see GaloisField.raw_add) --------
    def raw_add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._add_table[a, b]

    def raw_sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._add_table[a, self._neg_table[b]]

    def raw_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._mul_table[a, b]

    def raw_inv(self, a: np.ndarray) -> np.ndarray:
        return self._inverse_table[a]

    def raw_combine(self, coefficients: np.ndarray, rows: np.ndarray) -> np.ndarray:
        products = self._mul_table[coefficients[:, np.newaxis], rows]
        if self.characteristic == 2:
            # Characteristic 2: addition is XOR of the bit-vector elements.
            return np.bitwise_xor.reduce(products, axis=0).astype(self.dtype)
        result = np.zeros(rows.shape[1], dtype=self.dtype)
        for row in products:
            result = self._add_table[result, row]
        return result
