"""Finite-field arithmetic substrate for random linear network coding.

The public entry point is :func:`GF`, a cached factory returning a
:class:`~repro.gf.field.GaloisField` for any supported prime-power order::

    >>> from repro.gf import GF
    >>> gf16 = GF(16)
    >>> int(gf16.mul(7, 9))
    10

Prime orders yield :class:`~repro.gf.field.PrimeField` (modular arithmetic),
prime powers yield :class:`~repro.gf.field.ExtensionField` (lookup tables).
"""

from __future__ import annotations

from functools import lru_cache

from .field import ExtensionField, GaloisField, PrimeField
from .linalg import (
    BatchEliminator,
    identity,
    invert_matrix,
    is_in_row_space,
    matmul,
    rank,
    row_reduce,
    solve,
)
from .polynomial import factor_prime_power, find_binary_irreducible, is_prime

__all__ = [
    "GF",
    "GaloisField",
    "PrimeField",
    "ExtensionField",
    "BatchEliminator",
    "identity",
    "invert_matrix",
    "is_in_row_space",
    "matmul",
    "rank",
    "row_reduce",
    "solve",
    "factor_prime_power",
    "find_binary_irreducible",
    "is_prime",
]


@lru_cache(maxsize=None)
def GF(order: int) -> GaloisField:
    """Return the finite field of the given prime-power ``order``.

    Instances are cached, so ``GF(16) is GF(16)`` — field objects can be
    compared by identity and their lookup tables are built only once per
    process.
    """
    _, degree = factor_prime_power(order)
    if degree == 1:
        return PrimeField(order)
    return ExtensionField(order)
