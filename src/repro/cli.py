"""Command-line interface.

Seven subcommands cover the common workflows (run ``python -m repro <cmd>
--help`` for the full flag reference of each):

``run``
    Gossip dissemination on a named topology with a chosen protocol.  One
    run by default; with ``--trials`` it becomes a Monte Carlo measurement
    that reports stopping-time statistics, using the vectorised batch engine
    and (with ``--jobs``) worker processes::

        python -m repro run --topology barbell --n 24 --protocol tag --seed 3
        python -m repro run --topology complete --n 64 --trials 32 --jobs 4

    The flags assemble a :class:`~repro.scenarios.ScenarioSpec` under the
    hood; ``--show-spec`` prints it as JSON instead of running, and the
    printed document can be fed back through ``scenario run --file``.

``scenario``
    The named-scenario registry: ``list`` the built-in scenarios, ``show``
    one as JSON, ``run`` one by name (or any spec from a JSON file), and
    ``check`` that every registered scenario materialises and completes::

        python -m repro scenario list
        python -m repro scenario show churn/ring-crash-restart --json
        python -m repro scenario run tag/brr-barbell --trials 8
        python -m repro scenario run --file my_scenario.json

``campaign``
    Declarative experiment campaigns: coordinated sets of scenario sweeps
    (Table 1, Table 2, the Theorem 2/5 experiments, or the whole paper)
    executed incrementally through the result store and rendered as a
    self-documenting Markdown + HTML report.  ``list`` the built-in
    campaigns, ``show`` one, ``run`` one (resumable; a repeated run
    simulates nothing), or ``report`` from an already-filled store without
    simulating::

        python -m repro campaign list
        python -m repro campaign run table1 --trials 2
        python -m repro campaign run full-paper --jobs 4
        python -m repro campaign report table1 --report-dir reports/table1

    The built-in ``asymptotics`` campaign sweeps ``n`` over decades through
    the streaming-summary store path and fits the stopping-time exponent;
    ``--min-n`` / ``--max-n`` / ``--points-per-decade`` rebuild it at any
    scale (``--max-n 1000000`` is the full-scale measurement)::

        python -m repro campaign run asymptotics --max-n 10000 --trials 5
        python -m repro campaign run asymptotics --max-n 1000000

``analyze``
    Post-hoc analysis over an already-filled store.  ``fit`` takes two or
    more cached workloads (fingerprint prefixes) forming a size sweep and
    fits the stopping-time exponent ``T(n) = c·n^a`` with a bootstrap
    confidence interval (:func:`repro.analysis.fit_decades`)::

        python -m repro analyze fit 3f1c 9a2e c07d --store .repro-store
        python -m repro analyze fit 3f1c 9a2e --bootstrap 500 --json

``experiment``
    Execute a registered experiment (E1–E8 or a user-registered one) and
    print its table::

        python -m repro experiment E2-constant-degree --trials 2

``store``
    The persistent content-addressed result store.  ``run``, ``scenario run``
    and ``experiment`` accept ``--store [PATH]`` (or the ``REPRO_STORE``
    environment variable; ``--no-store`` disables, ``--fresh`` recomputes):
    cached trials of the same workload/seed are read back bit-identically and
    new trials are appended, so interrupted commands resume and repeated
    commands cost nothing.  The subcommands inspect and maintain a store::

        python -m repro run --topology barbell --n 24 --trials 32 --store
        python -m repro store ls
        python -m repro store show 3f1c --json
        python -m repro store export snapshot.jsonl
        python -m repro store diff .repro-store snapshot.jsonl

``tables``
    Print the analytic reproduction of the paper's Table 1 and Table 2 for a
    chosen ``n`` and ``k``, on any set of registered topologies::

        python -m repro tables --n 32 --k 16 --topologies ring grid barbell

Every stochastic quantity derives from ``--seed`` (see
:mod:`repro.core.rng`), so any reported number can be reproduced exactly by
re-running the same command — including under ``--jobs``, because each trial's
generator depends only on the root seed and the trial index, never on the
process that executes it.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from pathlib import Path
from typing import Iterator, Sequence

from .analysis import format_table, table1_rows, table2_rows
from .backends import all_backends
from .campaigns import (
    CAMPAIGNS,
    campaign_names,
    get_campaign,
    load_campaign_file,
    render_text_summary,
    run_campaign,
    write_report,
)
from .core import TimeModel
from .errors import ReproError
from .experiments import EXPERIMENTS, default_config, run_experiment
from .graphs import TOPOLOGY_BUILDERS, build_topology
from .scenarios import SCENARIOS, ScenarioSpec, get_scenario, scenario_names
from .store import ResultStore, diff_snapshots, load_snapshot

__all__ = ["main", "build_parser"]

#: CLI protocol choice → (spec protocol, spanning tree).
_PROTOCOL_CHOICES = {
    "uniform": ("uniform", "brr"),
    "tag": ("tag", "brr"),
    "tag-is": ("tag", "is"),
}

#: Environment override and fallback location for the persistent result store.
_STORE_ENV = "REPRO_STORE"
_DEFAULT_STORE = ".repro-store"


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``--store / --no-store / --fresh`` trio shared by the run commands."""
    parser.add_argument(
        "--store", nargs="?", const=_DEFAULT_STORE, default=None, metavar="PATH",
        help=(
            "persistent content-addressed result store: cached trials of the "
            "same workload/seed are reused, newly computed trials are saved.  "
            f"PATH defaults to {_DEFAULT_STORE}; the {_STORE_ENV} environment "
            "variable enables a store without the flag"
        ),
    )
    parser.add_argument(
        "--no-store", action="store_true",
        help=f"disable the result store even when {_STORE_ENV} is set",
    )
    parser.add_argument(
        "--fresh", action="store_true",
        help=(
            "recompute every trial instead of reading the store (results are "
            "still saved; deterministic trials make this a pure re-verification)"
        ),
    )


def _open_store(args: argparse.Namespace) -> ResultStore | None:
    """The store the run flags select, or ``None`` when storing is off."""
    if getattr(args, "no_store", False):
        return None
    path = getattr(args, "store", None)
    if path is None:
        path = os.environ.get(_STORE_ENV) or None
    if path is None:
        return None
    return ResultStore(path)


def _existing_store(path: "str | None") -> ResultStore:
    """Open a store for the management commands (missing directory is an error).

    Opened without load-time repair: ``ls``/``show``/``export`` must not
    modify the files they read, and ``gc``'s atomic rewrite drops interrupted
    fragments anyway.
    """
    resolved = path or os.environ.get(_STORE_ENV) or _DEFAULT_STORE
    return ResultStore(resolved, create=False, repair=False)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Order Optimal Information Spreading Using "
            "Algebraic Gossip' (Avin et al., PODC 2011)."
        ),
        epilog=(
            "All randomness derives from --seed; identical commands print "
            "identical numbers."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run",
        help="run gossip dissemination (one run, or --trials N for statistics)",
        description=(
            "Disseminate k messages over a named topology and report the "
            "stopping time.  With --trials 1 (the default) prints the single "
            "run's summary and protocol metadata; with --trials N runs N "
            "independently seeded trials — through the vectorised batch "
            "engine, and across --jobs worker processes if requested — and "
            "prints the aggregate stopping-time statistics."
        ),
    )
    run_parser.add_argument(
        "--topology", choices=sorted(TOPOLOGY_BUILDERS), default="ring",
        help="communication graph family (default: %(default)s)",
    )
    run_parser.add_argument(
        "--n", type=int, default=16,
        help="number of nodes; some families round it, e.g. grids (default: %(default)s)",
    )
    run_parser.add_argument(
        "--k", type=int, default=None,
        help="number of source messages (default: n, i.e. all-to-all)",
    )
    run_parser.add_argument(
        "--protocol", choices=sorted(_PROTOCOL_CHOICES), default="uniform",
        help=(
            "uniform = uniform algebraic gossip (Theorem 1); tag = TAG with "
            "the round-robin broadcast tree (Theorem 4); tag-is = TAG with "
            "the simulated IS protocol (Section 6) (default: %(default)s)"
        ),
    )
    run_parser.add_argument(
        "--time-model", choices=[m.value for m in TimeModel],
        default=TimeModel.SYNCHRONOUS.value,
        help="synchronous rounds or asynchronous timeslots (default: %(default)s)",
    )
    run_parser.add_argument(
        "--field-size", type=int, default=16,
        help="RLNC field order q, any supported prime power (default: %(default)s)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=0,
        help="root seed for all randomness (default: %(default)s)",
    )
    run_parser.add_argument(
        "--trials", type=int, default=1,
        help=(
            "number of independently seeded trials; values > 1 switch to the "
            "Monte Carlo statistics mode (default: %(default)s)"
        ),
    )
    run_parser.add_argument(
        "--jobs", type=int, default=None,
        help=(
            "worker processes for --trials > 1; results are identical for "
            "any value (default: run in-process)"
        ),
    )
    run_parser.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=True,
        help=(
            "run all trials through the protocol's vectorised batch engine "
            "(uniform gossip, tag and tag-is all declare one — see "
            "GossipProcess.batch_strategy); --no-batch forces the sequential "
            "scalar engine (same results, slower)"
        ),
    )
    run_parser.add_argument(
        "--backend", choices=sorted(all_backends()), default="",
        help=(
            "compute backend for the linear algebra: numpy (dense reference, "
            "any field) or gf2bit (word-packed XOR kernels, GF(2) only); "
            "backends are bit-identical, so this changes wall-clock only "
            "(default: $REPRO_BACKEND or numpy)"
        ),
    )
    run_parser.add_argument(
        "--engine", choices=["scalar", "batch", "event"], default="",
        help=(
            "pin the engine family: scalar (sequential reference), batch "
            "(lockstep vectorised trials) or event (event-driven sparse "
            "engine for large n); engines are bit-identical, so this changes "
            "wall-clock only — an engine that cannot run the workload "
            "refuses instead of falling back (default: auto-select)"
        ),
    )
    run_parser.add_argument(
        "--profile", type=Path, nargs="?", const=Path("repro-run.prof"),
        default=None, metavar="PROF",
        help=(
            "profile the simulation loop with cProfile (any engine family): "
            "dump the stats to PROF (default: %(const)s) and print the top "
            "20 functions by cumulative time"
        ),
    )
    run_parser.add_argument(
        "--show-spec", action="store_true",
        help=(
            "print the ScenarioSpec JSON these flags describe instead of "
            "running it (feed it back through 'scenario run --file')"
        ),
    )
    _add_store_arguments(run_parser)

    scenario_parser = subparsers.add_parser(
        "scenario",
        help="list, inspect, run and smoke-check declarative scenarios",
        description=(
            "The scenario registry: every workload in this repository is a "
            "declarative, JSON-round-trippable ScenarioSpec (topology, size, "
            "placement, protocol, config — including churn schedules and "
            "heterogeneous activation rates — plus the trial/seed plan).  "
            "The same spec drives the CLI, run_sweep and the benchmarks "
            "with identical seeded results."
        ),
    )
    scenario_actions = scenario_parser.add_subparsers(dest="action", required=True)

    scenario_actions.add_parser(
        "list", help="list every registered scenario with its description"
    )

    show_parser = scenario_actions.add_parser(
        "show", help="print one registered scenario"
    )
    # Resolved dynamically via get_scenario (not argparse choices) so
    # user-registered scenarios work here exactly as in 'scenario run'.
    show_parser.add_argument("name", metavar="NAME",
                             help="registered scenario name (see 'scenario list')")
    show_parser.add_argument(
        "--json", action="store_true",
        help="print the spec as its canonical JSON document (default: summary)",
    )

    scenario_run_parser = scenario_actions.add_parser(
        "run",
        help="run a registered scenario (or a spec from a JSON file)",
        description=(
            "Runs the scenario's Monte Carlo plan and prints the "
            "stopping-time statistics.  --trials/--seed override the spec's "
            "plan; --jobs/--batch control execution only (results are "
            "identical for any value)."
        ),
    )
    scenario_run_parser.add_argument(
        "name", nargs="?", default=None, metavar="NAME",
        help="registered scenario name (omit when using --file)",
    )
    scenario_run_parser.add_argument(
        "--file", type=Path, default=None,
        help="load the ScenarioSpec from a JSON document instead",
    )
    scenario_run_parser.add_argument(
        "--trials", type=int, default=None,
        help="override the spec's trial count",
    )
    scenario_run_parser.add_argument(
        "--seed", type=int, default=None,
        help="override the spec's root seed",
    )
    scenario_run_parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: run in-process)",
    )
    scenario_run_parser.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=True,
        help="use the scenario's vectorised batch engine when it declares one",
    )
    scenario_run_parser.add_argument(
        "--backend", choices=sorted(all_backends()), default="",
        help=(
            "override the spec's compute backend (bit-identical results, "
            "different wall-clock; default: the spec's own choice)"
        ),
    )
    scenario_run_parser.add_argument(
        "--engine", choices=["scalar", "batch", "event"], default="",
        help=(
            "override the spec's engine family (scalar / batch / event; "
            "bit-identical results, different wall-clock; default: the "
            "spec's own choice)"
        ),
    )
    scenario_run_parser.add_argument(
        "--profile", type=Path, nargs="?", const=Path("repro-run.prof"),
        default=None, metavar="PROF",
        help=(
            "profile the simulation loop with cProfile: dump the stats to "
            "PROF (default: %(const)s) and print the top 20 functions by "
            "cumulative time"
        ),
    )
    _add_store_arguments(scenario_run_parser)

    stats_parser = scenario_actions.add_parser(
        "stats",
        help="print topology statistics and materialisation cost of a scenario",
        description=(
            "Builds the scenario's topology cold (no cache) through the "
            "pipeline that would serve its runs — direct-CSR for eligible "
            "event-engine scenarios, networkx + CSR conversion otherwise — "
            "and prints node/edge counts, the degree profile and the "
            "materialisation time."
        ),
    )
    stats_parser.add_argument(
        "name", metavar="NAME",
        help="registered scenario name (see 'scenario list')",
    )
    stats_parser.add_argument(
        "--json", action="store_true",
        help="print the statistics as a JSON object (default: summary lines)",
    )

    check_parser = scenario_actions.add_parser(
        "check",
        help="materialise and smoke-run every registered scenario",
        description=(
            "The registry health check behind 'make scenarios-check': every "
            "registered scenario is materialised and run for a single trial; "
            "any failure is reported and the exit code is non-zero."
        ),
    )
    check_parser.add_argument(
        "--trials", type=int, default=1,
        help="trials per scenario (default: %(default)s)",
    )

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="run declarative experiment campaigns with incremental execution",
        description=(
            "A campaign names a coordinated set of scenario sweeps plus the "
            "derived artifacts (regenerated paper tables, CSV extracts, rank-"
            "evolution curves) of its report.  Campaigns execute through the "
            "persistent result store: interrupted runs resume, repeated runs "
            "simulate nothing, and every run renders a self-documenting "
            "Markdown + HTML report whose body is byte-identical across "
            "fully-cached re-runs."
        ),
    )
    campaign_actions = campaign_parser.add_subparsers(dest="action", required=True)

    campaign_actions.add_parser(
        "list", help="list every registered campaign with its title"
    )

    campaign_show_parser = campaign_actions.add_parser(
        "show", help="print one campaign (units, DAG order, artifacts)"
    )
    campaign_show_parser.add_argument(
        "name", metavar="NAME", help="registered campaign name (see 'campaign list')"
    )
    campaign_show_parser.add_argument(
        "--json", action="store_true",
        help="print the campaign as its canonical JSON document (default: summary)",
    )

    def _campaign_run_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "name", nargs="?", default=None, metavar="NAME",
            help="registered campaign name (omit when using --file)",
        )
        sub.add_argument(
            "--file", type=Path, default=None,
            help="load the campaign from a TOML or JSON file instead",
        )
        sub.add_argument(
            "--store", default=None, metavar="PATH",
            help=(
                "result store the campaign executes through (default: "
                f"${_STORE_ENV} or {_DEFAULT_STORE}; campaigns always use a "
                "store — that is what makes them incremental and resumable)"
            ),
        )
        sub.add_argument(
            "--report-dir", type=Path, default=None, metavar="DIR",
            help="where to write report.md / report.html and the CSV extracts "
                 "(default: reports/<campaign-name>)",
        )
        sub.add_argument(
            "--format", choices=["md", "html", "both"], default="both",
            help="report format(s) to write (default: %(default)s)",
        )
        sub.add_argument(
            "--min-n", type=int, default=None, metavar="N",
            help=(
                "asymptotics campaign only: rebuild the decade sweep starting "
                "at this size (default: the registered campaign's 1000)"
            ),
        )
        sub.add_argument(
            "--max-n", type=int, default=None, metavar="N",
            help=(
                "asymptotics campaign only: rebuild the decade sweep up to "
                "this size — 1000000 is the full-scale measurement "
                "(default: the registered campaign's 10000)"
            ),
        )
        sub.add_argument(
            "--points-per-decade", type=int, default=None, metavar="P",
            help=(
                "asymptotics campaign only: geometric steps per decade of the "
                "rebuilt sweep (default: 1)"
            ),
        )

    campaign_run_parser = campaign_actions.add_parser(
        "run",
        help="execute a campaign incrementally and write its report",
        description=(
            "Executes every unit of the campaign DAG through the result "
            "store — only trials the store does not hold are simulated — "
            "then writes the Markdown/HTML report.  Re-running a completed "
            "campaign computes nothing (store puts == 0)."
        ),
    )
    _campaign_run_arguments(campaign_run_parser)
    campaign_run_parser.add_argument(
        "--trials", type=int, default=None,
        help="campaign-wide override of every unit's trial count (smoke scale)",
    )
    campaign_run_parser.add_argument(
        "--seed", type=int, default=None,
        help="campaign-wide override of every unit's root seed",
    )
    campaign_run_parser.add_argument(
        "--jobs", type=int, default=None,
        help=(
            "worker processes, shared across all units of the campaign "
            "(default: run in-process)"
        ),
    )
    campaign_run_parser.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=True,
        help="use each unit's vectorised batch engine when it declares one",
    )
    campaign_run_parser.add_argument(
        "--fresh", action="store_true",
        help=(
            "recompute every trial instead of reading the store (results are "
            "verified against the archive and any divergence fails loudly)"
        ),
    )

    campaign_report_parser = campaign_actions.add_parser(
        "report",
        help="render a campaign's report from an already-filled store",
        description=(
            "Report-only mode: reads every unit's Monte Carlo trials from "
            "the store and renders the Markdown/HTML report without "
            "simulating any of them.  Fails (exit 2) naming the missing "
            "units when the store is incomplete — run the campaign first.  "
            "(Exception: a rank-evolution artifact replays one trial per "
            "named unit to record per-round rank curves, which the store "
            "does not hold.)"
        ),
    )
    _campaign_run_arguments(campaign_report_parser)
    campaign_report_parser.add_argument(
        "--trials", type=int, default=None,
        help="campaign-wide trials override (must match the executed run)",
    )
    campaign_report_parser.add_argument(
        "--seed", type=int, default=None,
        help="campaign-wide seed override (must match the executed run)",
    )

    analyze_parser = subparsers.add_parser(
        "analyze",
        help="post-hoc analysis over an already-filled result store",
        description=(
            "Analyses that consume cached trials without simulating "
            "anything.  'fit' takes two or more cached workloads forming a "
            "size sweep and fits the stopping-time exponent T(n) = c*n^a by "
            "least squares on the log-log means, with a deterministic "
            "bootstrap confidence interval."
        ),
    )
    analyze_actions = analyze_parser.add_subparsers(dest="action", required=True)

    fit_parser = analyze_actions.add_parser(
        "fit",
        help="fit the stopping-time exponent over cached workloads",
        description=(
            "Each FINGERPRINT (any unambiguous prefix) names a cached "
            "workload whose spec provides its size n and trial plan; the "
            "fit runs over the per-size stopping-time samples the store "
            "holds (full results and streaming summaries alike).  At least "
            "two distinct sizes are required."
        ),
    )
    fit_parser.add_argument(
        "fingerprints", nargs="+", metavar="FINGERPRINT",
        help="cached workload fingerprints (unambiguous prefixes), one per size",
    )
    fit_parser.add_argument(
        "--bootstrap", type=int, default=200,
        help="bootstrap replicates behind the confidence interval (default: %(default)s)",
    )
    fit_parser.add_argument(
        "--confidence", type=float, default=0.95,
        help="two-sided CI coverage, strictly between 0 and 1 (default: %(default)s)",
    )
    fit_parser.add_argument(
        "--fit-seed", type=int, default=0,
        help="root seed of the bootstrap streams (default: %(default)s)",
    )
    fit_parser.add_argument(
        "--json", action="store_true",
        help="print the fit as a JSON object (default: one summary line)",
    )
    fit_parser.add_argument(
        "--store", default=None, metavar="PATH",
        help=f"store directory (default: ${_STORE_ENV} or {_DEFAULT_STORE})",
    )

    experiment_parser = subparsers.add_parser(
        "experiment",
        help="run a registered experiment and print its table",
        description=(
            "Run one of the named experiments (each reproduces a row or "
            "figure of the paper at CI-friendly sizes) and print its "
            "measured-vs-bound table."
        ),
    )
    experiment_parser.add_argument(
        "experiment_id", choices=sorted(EXPERIMENTS),
        help="registered experiment id",
    )
    experiment_parser.add_argument(
        "--trials", type=int, default=None,
        help="override the experiment's per-case trial count",
    )
    experiment_parser.add_argument(
        "--seed", type=int, default=0,
        help="root seed for all randomness (default: %(default)s)",
    )
    experiment_parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes per sweep case (default: run in-process)",
    )
    experiment_parser.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=True,
        help=(
            "use each case's vectorised batch engine (uniform AG and every "
            "TAG variant have one); --no-batch forces the sequential path "
            "(same results, slower)"
        ),
    )
    _add_store_arguments(experiment_parser)

    store_parser = subparsers.add_parser(
        "store",
        help="inspect and maintain the persistent result store",
        description=(
            "The content-addressed result store archives every computed "
            "trial as an append-only (workload fingerprint, seed, trial) "
            "record.  'ls' lists the cached workloads, 'show' inspects one, "
            "'gc' compacts / prunes, 'export' writes a portable single-file "
            "snapshot, and 'diff' compares two stores or exports "
            "record-for-record (identical seeded trials must never differ).  "
            f"The store path defaults to $" + _STORE_ENV + f" or {_DEFAULT_STORE}."
        ),
    )
    store_actions = store_parser.add_subparsers(dest="action", required=True)

    def _store_path_option(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--store", default=None, metavar="PATH",
            help=f"store directory (default: ${_STORE_ENV} or {_DEFAULT_STORE})",
        )

    ls_parser = store_actions.add_parser(
        "ls", help="list every cached workload with its trial count"
    )
    _store_path_option(ls_parser)

    store_show_parser = store_actions.add_parser(
        "show", help="show one cached workload (spec + aggregate statistics)"
    )
    store_show_parser.add_argument(
        "fingerprint", metavar="FINGERPRINT",
        help="workload fingerprint (any unambiguous prefix)",
    )
    store_show_parser.add_argument(
        "--json", action="store_true",
        help="print the stored spec as its canonical JSON document",
    )
    _store_path_option(store_show_parser)

    gc_parser = store_actions.add_parser(
        "gc",
        help="compact shards (drop duplicate records); --keep prunes workloads",
    )
    gc_parser.add_argument(
        "--keep", nargs="+", default=None, metavar="FINGERPRINT",
        help=(
            "keep only these workloads (unambiguous fingerprint prefixes) and "
            "delete every other shard; default keeps everything and only compacts"
        ),
    )
    _store_path_option(gc_parser)

    export_parser = store_actions.add_parser(
        "export", help="write the store (or selected workloads) as one JSONL file"
    )
    export_parser.add_argument("output", type=Path, metavar="OUTPUT",
                               help="path of the export file to write")
    export_parser.add_argument(
        "--fingerprint", nargs="+", default=None, metavar="FINGERPRINT",
        help="export only these workloads (default: the whole store)",
    )
    _store_path_option(export_parser)

    diff_parser = store_actions.add_parser(
        "diff",
        help="compare two stores (directories) or exports (files) record-for-record",
    )
    diff_parser.add_argument("left", type=Path, metavar="LEFT",
                             help="store directory or export file")
    diff_parser.add_argument("right", type=Path, metavar="RIGHT",
                             help="store directory or export file")

    tables_parser = subparsers.add_parser(
        "tables",
        help="print the analytic Table 1 and Table 2 reproductions",
        description=(
            "Evaluate the paper's Table 1 (protocol comparison bounds) and "
            "Table 2 (per-topology graph parameters and bounds) analytically "
            "for the given n and k — no simulation involved."
        ),
    )
    tables_parser.add_argument(
        "--n", type=int, default=32,
        help="number of nodes to evaluate the bounds at (default: %(default)s)",
    )
    tables_parser.add_argument(
        "--k", type=int, default=16,
        help="number of messages to evaluate the bounds at (default: %(default)s)",
    )
    tables_parser.add_argument(
        "--topologies", nargs="+", choices=sorted(TOPOLOGY_BUILDERS),
        default=["ring", "grid", "complete"], metavar="TOPOLOGY",
        help=(
            "topology families Table 1 measures D and Δ on — any registered "
            "builder (default: %(default)s)"
        ),
    )

    return parser


def _spec_from_run_args(args: argparse.Namespace) -> ScenarioSpec:
    """Assemble the declarative scenario the ``run`` flags describe."""
    protocol, spanning_tree = _PROTOCOL_CHOICES[args.protocol]
    return ScenarioSpec(
        topology=args.topology,
        n=args.n,
        k=args.k,
        protocol=protocol,
        spanning_tree=spanning_tree,
        config=default_config(
            time_model=TimeModel(args.time_model),
            field_size=args.field_size,
            max_rounds=200_000,
        ),
        trials=args.trials,
        seed=args.seed,
        backend=args.backend,
        engine=args.engine,
    )


@contextlib.contextmanager
def _profiled(path: "Path | None") -> Iterator[None]:
    """cProfile the enclosed block: dump stats to ``path``, print the top 20.

    A ``None`` path is a no-op passthrough so the run commands can wrap their
    simulation loop unconditionally.  The profile brackets exactly the engine
    execution — materialisation (graph building, placement resolution) stays
    outside, so the printed hotspots are the simulation's own.
    """
    if path is None:
        yield
        return
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        profiler.dump_stats(path)
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)
        print(f"profile: full stats written to {path}")


def _run_scenario_spec(
    spec: ScenarioSpec,
    *,
    trials: int | None,
    seed: int | None,
    jobs: int | None,
    batch: bool,
    store: ResultStore | None = None,
    fresh: bool = False,
    title_prefix: str | None = None,
    profile: "Path | None" = None,
) -> int:
    """Shared execution path of ``run`` and ``scenario run``.

    A ``seed`` override replaces the spec's root seed *before*
    materialisation, so every stochastic ingredient — including a
    ``random`` placement — re-derives from it.
    """
    if seed is not None:
        spec = spec.replace(seed=seed)
    scenario = spec.materialize_preferred()
    # Title uses the materialised n/k (topology rounding / k clamping applied).
    title = spec.name or f"{scenario.spec.topology}(n={scenario.n}, k={scenario.k})"
    if title_prefix is not None:
        title = f"{title_prefix} {scenario.spec.topology}(n={scenario.n}, k={scenario.k})"
    trials = spec.trials if trials is None else trials
    if trials < 1:
        print(f"error: --trials must be positive, got {trials}", file=sys.stderr)
        return 2
    if trials == 1:
        with _profiled(profile):
            result = scenario.run_single(store=store, fresh=fresh)
        print(f"{title}: {result.summary()}")
        for key, value in sorted(result.metadata.items()):
            print(f"  {key}: {value}")
        _print_store_summary(store)
        return 0 if result.completed else 1
    with _profiled(profile):
        stats = scenario.run(
            trials=trials, jobs=jobs, batch=batch, store=store, fresh=fresh
        )
    print(f"{title}: {stats.summary()}")
    _print_store_summary(store)
    return 0


def _print_store_summary(store: ResultStore | None) -> None:
    if store is None:
        return
    print(
        f"store: {store.hits} trial(s) read from cache, "
        f"{store.puts} newly computed and saved ({store.root})"
    )


def _command_run(args: argparse.Namespace) -> int:
    spec = _spec_from_run_args(args)
    if args.show_spec:
        print(spec.to_json())
        return 0
    return _run_scenario_spec(
        spec,
        trials=args.trials,
        seed=None,  # args.seed is already the spec's root seed
        jobs=1 if args.jobs is None else args.jobs,
        batch=args.batch,
        store=_open_store(args),
        fresh=args.fresh,
        title_prefix=f"{args.protocol} on",
        profile=args.profile,
    )


def _command_scenario(args: argparse.Namespace) -> int:
    if args.action == "list":
        rows = [
            {"name": name, "description": SCENARIOS[name].description or "-"}
            for name in scenario_names()
        ]
        print(format_table(rows, title=f"Registered scenarios ({len(rows)})"))
        return 0
    if args.action == "show":
        spec = get_scenario(args.name)
        if args.json:
            print(spec.to_json())
            return 0
        print(f"{spec.name}: {spec.description}")
        protocol = spec.protocol
        if protocol in ("tag", "spanning_tree"):
            protocol += f" ({spec.spanning_tree})"
        print(f"  workload:  {protocol} on {spec.topology}(n={spec.n}), "
              f"k={spec.k if spec.k is not None else 'n'}, placement={spec.placement}")
        print(f"  config:    {spec.config.time_model.value}, q={spec.config.field_size}, "
              f"loss={spec.config.loss_probability}")
        if spec.config.churn:
            mode = "reset" if spec.config.churn_reset else "pause"
            print(f"  churn:     {len(spec.config.churn)} event(s), {mode} mode")
        activation = dict(spec.activation)
        kind = activation.pop("kind", "uniform")
        if kind != "uniform":
            suffix = f" {activation}" if activation else ""
            print(f"  activation: {kind}{suffix}")
        print(f"  plan:      {spec.trials} trial(s), seed {spec.seed}")
        print("  (use --json for the exact machine-readable spec)")
        return 0
    if args.action == "run":
        if (args.name is None) == (args.file is None):
            print("error: give exactly one of NAME or --file", file=sys.stderr)
            return 2
        if args.file is not None:
            try:
                spec = ScenarioSpec.from_json(args.file.read_text(encoding="utf-8"))
            except OSError as error:
                print(f"error: cannot read {args.file}: {error}", file=sys.stderr)
                return 2
            except json.JSONDecodeError as error:
                print(f"error: {args.file} is not valid JSON: {error}", file=sys.stderr)
                return 2
        else:
            spec = get_scenario(args.name)
        if args.backend:
            spec = spec.replace(backend=args.backend)
        if args.engine:
            spec = spec.replace(engine=args.engine)
        return _run_scenario_spec(
            spec,
            trials=args.trials,
            seed=args.seed,
            jobs=args.jobs,
            batch=args.batch,
            store=_open_store(args),
            fresh=args.fresh,
            profile=args.profile,
        )
    if args.action == "stats":
        return _command_scenario_stats(args)
    return _command_scenario_check(args)


def _command_scenario_stats(args: argparse.Namespace) -> int:
    """Cold-build a scenario's topology and print its structural statistics."""
    import time

    import numpy as np

    from .graphs import build_csr_topology
    from .graphs.topologies import csr_adjacency

    spec = get_scenario(args.name)
    kwargs = dict(spec.topology_params)
    start = time.perf_counter()
    if spec.uses_csr_pipeline():
        pipeline = "csr"
        graph = build_csr_topology(spec.topology, spec.n, use_cache=False, **kwargs)
        indptr, indices = graph.indptr, graph.indices
    else:
        # Raw builder call: bypasses build_topology's cache-key stamp so the
        # CSR conversion below is genuinely cold, like the direct path.
        pipeline = "networkx"
        graph = TOPOLOGY_BUILDERS[spec.topology](spec.n, **kwargs)
        indptr, indices = csr_adjacency(graph)
    elapsed = time.perf_counter() - start
    degrees = np.diff(indptr)
    stats = {
        "scenario": spec.name or args.name,
        "topology": spec.topology,
        "pipeline": pipeline,
        "n": int(len(indptr) - 1),
        "m": int(len(indices) // 2),
        "degree_min": int(degrees.min()),
        "degree_mean": round(float(degrees.mean()), 3),
        "degree_max": int(degrees.max()),
        "materialize_seconds": round(elapsed, 6),
    }
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(f"{stats['scenario']}: {stats['topology']} via the {pipeline} pipeline")
    print(f"  n:           {stats['n']}")
    print(f"  m:           {stats['m']} edges")
    print(
        f"  degree:      min {stats['degree_min']} / "
        f"mean {stats['degree_mean']} / max {stats['degree_max']}"
    )
    print(f"  materialize: {stats['materialize_seconds']:.3f} s (cold, no cache)")
    return 0


def _command_scenario_check(args: argparse.Namespace) -> int:
    """Materialise and smoke-run every registered scenario."""
    if args.trials < 1:
        print(f"error: --trials must be positive, got {args.trials}", file=sys.stderr)
        return 2
    failures = 0
    rows = []
    for name in scenario_names():
        spec = SCENARIOS[name]
        try:
            stats = spec.materialize().run(trials=args.trials)
            rows.append(
                {"scenario": name, "mean_rounds": round(stats.mean, 1), "status": "ok"}
            )
        # Broad on purpose: the registry is open to user scenarios, and the
        # check's job is to isolate the broken entry, not die on it.
        except Exception as error:  # noqa: BLE001
            failures += 1
            rows.append(
                {
                    "scenario": name,
                    "mean_rounds": float("nan"),
                    "status": f"FAIL: {type(error).__name__}: {error}",
                }
            )
    print(format_table(rows, title=f"Scenario check ({len(rows)} scenarios, trials={args.trials})"))
    if failures:
        print(f"error: {failures} scenario(s) failed", file=sys.stderr)
        return 1
    return 0


def _resolve_campaign(args: argparse.Namespace):
    """The campaign a ``campaign run`` / ``campaign report`` invocation names."""
    if (args.name is None) == (args.file is None):
        raise ReproError("give exactly one of NAME or --file")
    if args.file is not None:
        return load_campaign_file(args.file)
    return get_campaign(args.name)


def _command_campaign(args: argparse.Namespace) -> int:
    if args.action == "list":
        rows = [
            {
                "name": name,
                "units": len(CAMPAIGNS[name].units),
                "title": CAMPAIGNS[name].title or "-",
            }
            for name in campaign_names()
        ]
        print(format_table(rows, title=f"Registered campaigns ({len(rows)})"))
        return 0
    if args.action == "show":
        campaign = get_campaign(args.name)
        if args.json:
            print(campaign.to_json())
            return 0
        print(f"{campaign.name}: {campaign.title or '-'}")
        if campaign.description:
            print(f"  {campaign.description}")
        print(f"  units ({len(campaign.units)}, in execution order):")
        for unit in campaign.execution_order():
            spec = unit.resolve()
            suffix = f" [after: {', '.join(unit.after)}]" if unit.after else ""
            print(
                f"    {unit.name}: {unit.scenario or '(inline spec)'} — "
                f"{spec.protocol} on {spec.topology}(n={spec.n}), "
                f"{spec.trials} trial(s), seed {spec.seed}{suffix}"
            )
        if campaign.artifacts:
            print(f"  artifacts ({len(campaign.artifacts)}):")
            for artifact in campaign.artifacts:
                print(f"    [{artifact.kind}] {artifact.label}")
        print("  (use --json for the exact machine-readable campaign)")
        return 0
    # run / report
    campaign = _resolve_campaign(args)
    scale = {
        key: getattr(args, key)
        for key in ("min_n", "max_n", "points_per_decade")
        if getattr(args, key) is not None
    }
    if scale:
        if campaign.name != "asymptotics":
            raise ReproError(
                "--min-n/--max-n/--points-per-decade rebuild the "
                f"'asymptotics' decade sweep and are not valid for campaign "
                f"{campaign.name!r}"
            )
        from .campaigns import asymptotics_campaign

        campaign = asymptotics_campaign(**scale)
    store_path = args.store or os.environ.get(_STORE_ENV) or _DEFAULT_STORE
    offline = args.action == "report"
    # Report-only mode must not create an empty store just to fail against it.
    store = ResultStore(store_path, create=not offline)
    result = run_campaign(
        campaign,
        store=store,
        trials=args.trials,
        seed=args.seed,
        jobs=getattr(args, "jobs", None),
        batch=getattr(args, "batch", True),
        fresh=getattr(args, "fresh", False),
        offline=offline,
        progress=print if not offline else None,
    )
    print()
    print(render_text_summary(result))
    report_dir = args.report_dir or Path("reports") / campaign.name
    formats = ("md", "html") if args.format == "both" else (args.format,)
    written = write_report(result, report_dir, formats=formats)
    for kind in formats:
        print(f"report ({kind}): {written[kind]}")
    for kind, path in written.items():
        if kind not in formats:
            print(f"artifact: {path}")
    return 0


def _command_analyze(args: argparse.Namespace) -> int:
    """``analyze fit`` — exponent fit over cached workloads of a size sweep."""
    import dataclasses

    from .analysis import fit_decades

    store = _existing_store(args.store)
    samples_by_n: dict[int, list[float]] = {}
    for prefix in args.fingerprints:
        fingerprint = store.resolve_fingerprint(prefix)
        spec = store.spec(fingerprint)
        stats = store.aggregate(spec)
        # Two workloads of the same size (e.g. different seeds) pool their
        # samples — more trials per size, same fit contract.
        samples_by_n.setdefault(spec.n, []).extend(stats.samples)
        print(
            f"n={spec.n}: {fingerprint[:12]}... — {spec.trials} trial(s), "
            f"mean {stats.mean:.2f} rounds",
            file=sys.stderr,
        )
    fit = fit_decades(
        samples_by_n,
        bootstrap=args.bootstrap,
        seed=args.fit_seed,
        confidence=args.confidence,
    )
    if args.json:
        payload = dataclasses.asdict(fit)
        payload["sizes"] = sorted(samples_by_n)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"T(n) = {fit.coefficient:.4g} * n^{fit.exponent:.4f}")
    print(fit.summary())
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    store = _open_store(args)
    result = run_experiment(
        args.experiment_id,
        trials=args.trials,
        seed=args.seed,
        jobs=args.jobs,
        batch=args.batch,
        store=store,
        fresh=args.fresh,
    )
    print(result.experiment.description)
    print(format_table(result.rows, title=args.experiment_id))
    _print_store_summary(store)
    return 0


def _command_store(args: argparse.Namespace) -> int:
    if args.action == "diff":
        report = diff_snapshots(load_snapshot(args.left), load_snapshot(args.right))
        for side, only in (("left", "only_left"), ("right", "only_right")):
            for fingerprint, count in sorted(report[only].items()):
                print(f"only in {side}: {fingerprint[:12]}... ({count} trial record(s))")
        for side, key in (("left", "trials_only_left"), ("right", "trials_only_right")):
            for fingerprint, seed, trial in report[key]:
                print(f"only in {side}: {fingerprint[:12]}... seed={seed} trial={trial}")
        for fingerprint, seed, trial in report["differing"]:
            print(f"DIFFERS: {fingerprint[:12]}... seed={seed} trial={trial}")
        print(
            f"{report['identical']} shared record(s) identical, "
            f"{len(report['differing'])} differing"
        )
        # Differing records for the same (fingerprint, seed, trial) signal
        # non-determinism or corruption — that, not mere asymmetry, fails.
        return 1 if report["differing"] else 0
    store = _existing_store(args.store)
    if args.action == "ls":
        fingerprints = store.fingerprints()
        if not fingerprints:
            print(f"store {store.root} is empty")
            return 0
        rows = []
        for fingerprint in fingerprints:
            # Rebuild the real spec so defaulted fields print their actual
            # values; a header written by a newer/older schema falls back to
            # placeholders rather than guessed defaults.
            try:
                spec = store.spec(fingerprint)
                workload = {
                    "protocol": spec.protocol,
                    "topology": spec.topology,
                    "n": spec.n,
                    "k": spec.k if spec.k is not None else "n",
                    "name": spec.name or "-",
                }
            except ReproError:
                workload = {"protocol": "?", "topology": "?", "n": "?", "k": "?", "name": "-"}
            keys = store.trial_keys(fingerprint)
            rows.append(
                {
                    "fingerprint": fingerprint[:12],
                    **{key: workload[key] for key in ("protocol", "topology", "n", "k")},
                    "seeds": len({seed for seed, _ in keys}),
                    "trials": len(keys),
                    "name": workload["name"],
                }
            )
        print(format_table(rows, title=f"Result store {store.root} ({len(rows)} workload(s))"))
        return 0
    if args.action == "show":
        fingerprint = store.resolve_fingerprint(args.fingerprint)
        spec_data = store.spec_dict(fingerprint)
        if args.json:
            if spec_data is None:
                # Fail like ResultStore.spec() would: piping `null` into a
                # spec consumer is worse than a loud error.
                print(
                    f"error: shard {fingerprint[:12]}... has no spec header",
                    file=sys.stderr,
                )
                return 2
            print(json.dumps(spec_data, indent=2, sort_keys=True))
            return 0
        print(f"fingerprint: {fingerprint}")
        if spec_data is not None:
            print(f"spec:        {json.dumps(spec_data, sort_keys=True)}")
        keys = store.trial_keys(fingerprint)
        by_seed: dict[int, list[int]] = {}
        for seed, trial in keys:
            by_seed.setdefault(seed, []).append(trial)
        for seed, trials in sorted(by_seed.items()):
            contiguous = max(trials) + 1 == len(trials) and min(trials) == 0
            stats_note = ""
            if contiguous:
                stats = store.aggregate(fingerprint, len(trials), seed=seed)
                stats_note = f" — {stats.summary()}"
            print(f"  seed {seed}: {len(trials)} trial(s){stats_note}")
        return 0
    if args.action == "gc":
        keep = (
            None
            if args.keep is None
            else [store.resolve_fingerprint(prefix) for prefix in args.keep]
        )
        stats = store.gc(keep=keep)
        print(
            f"gc: kept {stats['kept_shards']} shard(s) "
            f"({stats['kept_records']} record(s)), removed "
            f"{stats['removed_shards']} shard(s), dropped "
            f"{stats['dropped_records']} redundant record(s)"
        )
        return 0
    # export
    exported = store.export(args.output, fingerprints=args.fingerprint)
    print(f"exported {exported} trial record(s) to {args.output}")
    return 0


def _command_tables(args: argparse.Namespace) -> int:
    # The topology set comes from the registry (via the parser choices), not
    # a hardcoded dict: any registered builder works.
    graphs = {name: build_topology(name, args.n) for name in args.topologies}
    print(format_table(table1_rows(args.n, args.k, graphs=graphs),
                       title=f"Table 1 (analytic), n={args.n}, k={args.k}"))
    print()
    print(format_table(table2_rows(args.n, args.k),
                       title=f"Table 2 (analytic + measured graph parameters), n={args.n}, k={args.k}"))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": _command_run,
        "scenario": _command_scenario,
        "campaign": _command_campaign,
        "analyze": _command_analyze,
        "experiment": _command_experiment,
        "store": _command_store,
        "tables": _command_tables,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
