"""Command-line interface.

Three subcommands cover the common workflows:

``run``
    One dissemination run on a named topology with a chosen protocol::

        python -m repro run --topology barbell --n 24 --protocol tag --seed 3

``experiment``
    Execute a registered experiment (E1–E8 or a user-registered one) and print
    its table::

        python -m repro experiment E2-constant-degree --trials 2

``tables``
    Print the analytic reproduction of the paper's Table 1 and Table 2 for a
    chosen ``n`` and ``k``::

        python -m repro tables --n 32 --k 16
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis import format_table, table1_rows, table2_rows
from .core import TimeModel
from .errors import ReproError
from .experiments import EXPERIMENTS, run_experiment
from .graphs import TOPOLOGY_BUILDERS, build_topology
from . import quick_run

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Order Optimal Information Spreading Using "
            "Algebraic Gossip' (Avin et al., PODC 2011)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one gossip dissemination")
    run_parser.add_argument("--topology", choices=sorted(TOPOLOGY_BUILDERS), default="ring")
    run_parser.add_argument("--n", type=int, default=16, help="number of nodes (approximate)")
    run_parser.add_argument("--k", type=int, default=None,
                            help="number of messages (default: n, i.e. all-to-all)")
    run_parser.add_argument("--protocol", choices=["uniform", "tag", "tag-is"],
                            default="uniform")
    run_parser.add_argument("--time-model", choices=[m.value for m in TimeModel],
                            default=TimeModel.SYNCHRONOUS.value)
    run_parser.add_argument("--field-size", type=int, default=16)
    run_parser.add_argument("--seed", type=int, default=0)

    experiment_parser = subparsers.add_parser(
        "experiment", help="run a registered experiment and print its table"
    )
    experiment_parser.add_argument("experiment_id", choices=sorted(EXPERIMENTS))
    experiment_parser.add_argument("--trials", type=int, default=None)
    experiment_parser.add_argument("--seed", type=int, default=0)

    tables_parser = subparsers.add_parser(
        "tables", help="print the analytic Table 1 and Table 2 reproductions"
    )
    tables_parser.add_argument("--n", type=int, default=32)
    tables_parser.add_argument("--k", type=int, default=16)

    return parser


def _command_run(args: argparse.Namespace) -> int:
    result = quick_run(
        args.topology,
        n=args.n,
        k=args.k,
        protocol=args.protocol,
        time_model=TimeModel(args.time_model),
        field_size=args.field_size,
        seed=args.seed,
    )
    print(f"{args.protocol} on {args.topology}: {result.summary()}")
    for key, value in sorted(result.metadata.items()):
        print(f"  {key}: {value}")
    return 0 if result.completed else 1


def _command_experiment(args: argparse.Namespace) -> int:
    result = run_experiment(args.experiment_id, trials=args.trials, seed=args.seed)
    print(result.experiment.description)
    print(format_table(result.rows, title=args.experiment_id))
    return 0


def _command_tables(args: argparse.Namespace) -> int:
    graphs = {
        "ring": build_topology("ring", args.n),
        "grid": build_topology("grid", args.n),
        "complete": build_topology("complete", args.n),
    }
    print(format_table(table1_rows(args.n, args.k, graphs=graphs),
                       title=f"Table 1 (analytic), n={args.n}, k={args.k}"))
    print()
    print(format_table(table2_rows(args.n, args.k),
                       title=f"Table 2 (analytic + measured graph parameters), n={args.n}, k={args.k}"))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": _command_run,
        "experiment": _command_experiment,
        "tables": _command_tables,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
