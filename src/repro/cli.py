"""Command-line interface.

Three subcommands cover the common workflows (run ``python -m repro <cmd>
--help`` for the full flag reference of each):

``run``
    Gossip dissemination on a named topology with a chosen protocol.  One
    run by default; with ``--trials`` it becomes a Monte Carlo measurement
    that reports stopping-time statistics, using the vectorised batch engine
    and (with ``--jobs``) worker processes::

        python -m repro run --topology barbell --n 24 --protocol tag --seed 3
        python -m repro run --topology complete --n 64 --trials 32 --jobs 4

``experiment``
    Execute a registered experiment (E1–E8 or a user-registered one) and
    print its table::

        python -m repro experiment E2-constant-degree --trials 2

``tables``
    Print the analytic reproduction of the paper's Table 1 and Table 2 for a
    chosen ``n`` and ``k``::

        python -m repro tables --n 32 --k 16

Every stochastic quantity derives from ``--seed`` (see
:mod:`repro.core.rng`), so any reported number can be reproduced exactly by
re-running the same command — including under ``--jobs``, because each trial's
generator depends only on the root seed and the trial index, never on the
process that executes it.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis import format_table, table1_rows, table2_rows
from .core import TimeModel
from .errors import ReproError
from .experiments import (
    EXPERIMENTS,
    default_config,
    run_experiment,
    run_trials_parallel,
    tag_case,
    uniform_ag_case,
)
from .graphs import TOPOLOGY_BUILDERS, build_topology
from . import quick_run

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Order Optimal Information Spreading Using "
            "Algebraic Gossip' (Avin et al., PODC 2011)."
        ),
        epilog=(
            "All randomness derives from --seed; identical commands print "
            "identical numbers."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run",
        help="run gossip dissemination (one run, or --trials N for statistics)",
        description=(
            "Disseminate k messages over a named topology and report the "
            "stopping time.  With --trials 1 (the default) prints the single "
            "run's summary and protocol metadata; with --trials N runs N "
            "independently seeded trials — through the vectorised batch "
            "engine, and across --jobs worker processes if requested — and "
            "prints the aggregate stopping-time statistics."
        ),
    )
    run_parser.add_argument(
        "--topology", choices=sorted(TOPOLOGY_BUILDERS), default="ring",
        help="communication graph family (default: %(default)s)",
    )
    run_parser.add_argument(
        "--n", type=int, default=16,
        help="number of nodes; some families round it, e.g. grids (default: %(default)s)",
    )
    run_parser.add_argument(
        "--k", type=int, default=None,
        help="number of source messages (default: n, i.e. all-to-all)",
    )
    run_parser.add_argument(
        "--protocol", choices=["uniform", "tag", "tag-is"], default="uniform",
        help=(
            "uniform = uniform algebraic gossip (Theorem 1); tag = TAG with "
            "the round-robin broadcast tree (Theorem 4); tag-is = TAG with "
            "the simulated IS protocol (Section 6) (default: %(default)s)"
        ),
    )
    run_parser.add_argument(
        "--time-model", choices=[m.value for m in TimeModel],
        default=TimeModel.SYNCHRONOUS.value,
        help="synchronous rounds or asynchronous timeslots (default: %(default)s)",
    )
    run_parser.add_argument(
        "--field-size", type=int, default=16,
        help="RLNC field order q, any supported prime power (default: %(default)s)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=0,
        help="root seed for all randomness (default: %(default)s)",
    )
    run_parser.add_argument(
        "--trials", type=int, default=1,
        help=(
            "number of independently seeded trials; values > 1 switch to the "
            "Monte Carlo statistics mode (default: %(default)s)"
        ),
    )
    run_parser.add_argument(
        "--jobs", type=int, default=None,
        help=(
            "worker processes for --trials > 1; results are identical for "
            "any value (default: run in-process)"
        ),
    )
    run_parser.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=True,
        help=(
            "run all trials through the protocol's vectorised batch engine "
            "(uniform gossip, tag and tag-is all declare one — see "
            "GossipProcess.batch_strategy); --no-batch forces the sequential "
            "scalar engine (same results, slower)"
        ),
    )

    experiment_parser = subparsers.add_parser(
        "experiment",
        help="run a registered experiment and print its table",
        description=(
            "Run one of the named experiments (each reproduces a row or "
            "figure of the paper at CI-friendly sizes) and print its "
            "measured-vs-bound table."
        ),
    )
    experiment_parser.add_argument(
        "experiment_id", choices=sorted(EXPERIMENTS),
        help="registered experiment id",
    )
    experiment_parser.add_argument(
        "--trials", type=int, default=None,
        help="override the experiment's per-case trial count",
    )
    experiment_parser.add_argument(
        "--seed", type=int, default=0,
        help="root seed for all randomness (default: %(default)s)",
    )
    experiment_parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes per sweep case (default: run in-process)",
    )
    experiment_parser.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=True,
        help=(
            "use each case's vectorised batch engine (uniform AG and every "
            "TAG variant have one); --no-batch forces the sequential path "
            "(same results, slower)"
        ),
    )

    tables_parser = subparsers.add_parser(
        "tables",
        help="print the analytic Table 1 and Table 2 reproductions",
        description=(
            "Evaluate the paper's Table 1 (protocol comparison bounds) and "
            "Table 2 (per-topology graph parameters and bounds) analytically "
            "for the given n and k — no simulation involved."
        ),
    )
    tables_parser.add_argument(
        "--n", type=int, default=32,
        help="number of nodes to evaluate the bounds at (default: %(default)s)",
    )
    tables_parser.add_argument(
        "--k", type=int, default=16,
        help="number of messages to evaluate the bounds at (default: %(default)s)",
    )

    return parser


def _command_run(args: argparse.Namespace) -> int:
    if args.trials < 1:
        print(f"error: --trials must be positive, got {args.trials}", file=sys.stderr)
        return 2
    if args.trials > 1:
        return _command_run_trials(args)
    result = quick_run(
        args.topology,
        n=args.n,
        k=args.k,
        protocol=args.protocol,
        time_model=TimeModel(args.time_model),
        field_size=args.field_size,
        seed=args.seed,
    )
    print(f"{args.protocol} on {args.topology}: {result.summary()}")
    for key, value in sorted(result.metadata.items()):
        print(f"  {key}: {value}")
    return 0 if result.completed else 1


def _command_run_trials(args: argparse.Namespace) -> int:
    """Monte Carlo mode of ``run``: aggregate statistics over seeded trials."""
    config = default_config(
        time_model=TimeModel(args.time_model),
        field_size=args.field_size,
        max_rounds=200_000,
    )
    k = args.k if args.k is not None else args.n
    if args.protocol == "uniform":
        case = uniform_ag_case(args.topology, args.n, k, config=config)
    elif args.protocol == "tag":
        case = tag_case(args.topology, args.n, k, spanning_tree="brr", config=config)
    else:
        case = tag_case(args.topology, args.n, k, spanning_tree="is", config=config)
    stats = run_trials_parallel(
        case.graph, case.protocol_factory, case.config,
        trials=args.trials, seed=args.seed,
        jobs=1 if args.jobs is None else args.jobs,
        batch=args.batch,
    )
    print(f"{args.protocol} on {case.label}: {stats.summary()}")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    result = run_experiment(
        args.experiment_id,
        trials=args.trials,
        seed=args.seed,
        jobs=args.jobs,
        batch=args.batch,
    )
    print(result.experiment.description)
    print(format_table(result.rows, title=args.experiment_id))
    return 0


def _command_tables(args: argparse.Namespace) -> int:
    graphs = {
        "ring": build_topology("ring", args.n),
        "grid": build_topology("grid", args.n),
        "complete": build_topology("complete", args.n),
    }
    print(format_table(table1_rows(args.n, args.k, graphs=graphs),
                       title=f"Table 1 (analytic), n={args.n}, k={args.k}"))
    print()
    print(format_table(table2_rows(args.n, args.k),
                       title=f"Table 2 (analytic + measured graph parameters), n={args.n}, k={args.k}"))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": _command_run,
        "experiment": _command_experiment,
        "tables": _command_tables,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
