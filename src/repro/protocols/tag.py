"""TAG — Tree-based Algebraic Gossip (Section 4 of the paper).

TAG interleaves two phases, exactly as the pseudocode in the paper does:

* **Phase 1** (odd wakeups): run a gossip spanning-tree protocol ``S``.  Once
  a node becomes part of the tree it knows its parent.
* **Phase 2** (even wakeups): a node that already has a parent performs an
  EXCHANGE of RLNC-coded packets with that parent; a node without a parent is
  idle.  The root never obtains a parent and therefore never *initiates* a
  phase-2 exchange, but it still participates whenever a child contacts it
  (EXCHANGE sends packets in both directions).

Theorem 4 bounds the stopping time by ``O(k + log n + d(S) + t(S))`` for both
time models.  The spanning-tree protocol is pluggable — any
:class:`~repro.protocols.spanning_tree_protocols.SpanningTreeProtocol` works,
including the round-robin broadcast of Theorem 5 and the simulated IS protocol
of Section 6.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

import networkx as nx
import numpy as np

from ..core.config import SimulationConfig
from ..errors import SimulationError
from ..gossip.engine import GossipProcess, Transmission
from ..rlnc.message import Generation
from ..rlnc.packet import CodedPacket
from .algebraic_gossip import build_node_decoders, reset_node_to_initial_knowledge
from .spanning_tree_protocols import SpanningTreeProtocol

__all__ = ["TagProtocol"]

#: Factory signature expected for the ``spanning_tree_factory`` argument: it
#: receives the graph and a random generator and returns a fresh protocol
#: instance (a fresh instance per run keeps trials independent).
SpanningTreeFactory = Callable[[nx.Graph, np.random.Generator], SpanningTreeProtocol]


class TagProtocol(GossipProcess):
    """The TAG k-dissemination protocol.

    Parameters
    ----------
    graph:
        The communication graph.
    generation:
        The ``k`` source messages.
    placement:
        Initial placement of source messages at nodes.
    config:
        Simulation configuration (time model, action, field size, ...).
        TAG always uses EXCHANGE in both phases, as in the paper's pseudocode;
        the configured action is ignored for phase semantics but kept in the
        metadata for bookkeeping.
    rng:
        Random stream for coding coefficients and tree-protocol randomness.
    spanning_tree:
        Either an already-constructed spanning-tree protocol instance or a
        factory ``(graph, rng) -> SpanningTreeProtocol``.
    keep_phase1_after_tree:
        When ``True`` (the default, faithful to the pseudocode) nodes keep
        performing phase-1 steps on odd wakeups even after the tree is
        complete.  Setting it to ``False`` lets every wakeup run phase 2 once
        the tree exists — an ablation that only changes constants.
    """

    def __init__(
        self,
        graph: nx.Graph,
        generation: Generation,
        placement: Mapping[int, Sequence[int]],
        config: SimulationConfig,
        rng: np.random.Generator,
        spanning_tree: SpanningTreeProtocol | SpanningTreeFactory,
        *,
        keep_phase1_after_tree: bool = True,
    ) -> None:
        if generation.field.order != config.field_size:
            raise SimulationError(
                f"generation field GF({generation.field.order}) does not match "
                f"config field_size {config.field_size}"
            )
        self.graph = graph
        self.generation = generation
        self.config = config
        self.keep_phase1_after_tree = keep_phase1_after_tree
        if callable(spanning_tree) and not isinstance(spanning_tree, SpanningTreeProtocol):
            self.stp: SpanningTreeProtocol = spanning_tree(graph, rng)
        else:
            self.stp = spanning_tree  # type: ignore[assignment]
        if not isinstance(self.stp, SpanningTreeProtocol):
            raise SimulationError(
                "spanning_tree must be a SpanningTreeProtocol or a factory returning one"
            )
        self.decoders, self.encoders = build_node_decoders(graph, generation, placement, rng)
        # Kept for reset-churn crashes (on_crash rebuilds a node from these).
        self._placement = {n: tuple(int(i) for i in idx) for n, idx in placement.items()}
        self._rng = rng
        self._wakeups: dict[int, int] = {node: 0 for node in graph.nodes()}
        self._total_wakeups = 0
        self._tree_complete_at_wakeup: int | None = None
        self._n = graph.number_of_nodes()

    # ------------------------------------------------------------------
    # GossipProcess interface
    # ------------------------------------------------------------------
    def on_wakeup(self, node: int, rng: np.random.Generator) -> list[Transmission]:
        self._wakeups[node] += 1
        self._total_wakeups += 1
        wakeup_count = self._wakeups[node]
        phase1 = wakeup_count % 2 == 1
        if phase1 and not self.keep_phase1_after_tree and self.stp.tree_complete():
            phase1 = False
        if phase1:
            return self._phase1_step(node, rng)
        return self._phase2_step(node)

    def _phase1_step(self, node: int, rng: np.random.Generator) -> list[Transmission]:
        """EXCHANGE of spanning-tree protocol messages with a partner chosen by S."""
        partner = self.stp.choose_partner(node, rng)
        return [
            Transmission(node, partner, self.stp.tree_payload(node), kind="stp"),
            Transmission(partner, node, self.stp.tree_payload(partner), kind="stp"),
        ]

    def _phase2_step(self, node: int) -> list[Transmission]:
        """EXCHANGE of RLNC packets with the node's parent, if it has one yet."""
        parent = self.stp.parent_of(node)
        if parent is None:
            return []
        transmissions: list[Transmission] = []
        packet_out = self.encoders[node].next_packet()
        if packet_out is not None:
            transmissions.append(Transmission(node, parent, packet_out, kind="rlnc"))
        packet_back = self.encoders[parent].next_packet()
        if packet_back is not None:
            transmissions.append(Transmission(parent, node, packet_back, kind="rlnc"))
        return transmissions

    def on_deliver(self, receiver: int, sender: int, payload: Any) -> bool:
        if isinstance(payload, CodedPacket):
            return self.decoders[receiver].receive(payload)
        changed = self.stp.handle_tree_payload(receiver, sender, payload)
        if self._tree_complete_at_wakeup is None and self.stp.tree_complete():
            self._tree_complete_at_wakeup = self._total_wakeups
        return changed

    def is_complete(self) -> bool:
        return all(decoder.is_complete for decoder in self.decoders.values())

    def on_crash(self, node: int) -> None:
        """Reset-churn crash: the node's decoder falls back to its initial messages.

        The spanning-tree state survives the crash — the tree is shared
        infrastructure (parents, informed bits) that the restarted node can
        keep using, whereas its coded knowledge is lost with its memory.
        """
        self.decoders[node], self.encoders[node] = reset_node_to_initial_knowledge(
            self.generation, self._placement, node, self._rng
        )

    def finished_nodes(self) -> set[int]:
        return {node for node, decoder in self.decoders.items() if decoder.is_complete}

    def batch_strategy(self):
        """TAG declares the two-phase lockstep executor of the batch fast path.

        Eligible when this is exactly :class:`TagProtocol` (a subclass could
        carry state the batch engine does not replicate) composed with one of
        the supported spanning-tree protocol types; see
        :mod:`repro.gossip.batch_tag`.  TAG's observable behaviour —
        transmissions, helpfulness, completion — depends only on tree state,
        decoder ranks and the random stream, never on packet payloads, which
        is what makes the rank-only lockstep replication exact.
        """
        from ..gossip.batch_tag import tag_batch_runner

        return tag_batch_runner(self)

    def load_batch_outcome(
        self,
        *,
        wakeups: Mapping[int, int],
        total_wakeups: int,
        tree_complete_at_wakeup: int | None,
    ) -> None:
        """Install a batch run's wakeup bookkeeping (the batch restore hook).

        :class:`~repro.gossip.batch_tag.BatchTagEngine` advances the wakeup
        counters as arrays and writes them back here (after restoring the
        spanning-tree protocol's own state), so :meth:`metadata` — including
        ``phase1_rounds`` — is produced by exactly the same code as in a
        sequential run.
        """
        self._wakeups = {node: int(count) for node, count in wakeups.items()}
        self._total_wakeups = int(total_wakeups)
        self._tree_complete_at_wakeup = tree_complete_at_wakeup

    def metadata(self) -> dict[str, Any]:
        tree = self.stp.current_tree()
        phase1_rounds = (
            None
            if self._tree_complete_at_wakeup is None
            else -(-self._tree_complete_at_wakeup // self._n)  # ceil
        )
        return {
            "k": self.generation.k,
            "protocol": "TAG",
            "spanning_tree_protocol": type(self.stp).__name__,
            "tree_complete": self.stp.tree_complete(),
            "tree_depth": tree.depth if tree is not None else None,
            "tree_diameter": tree.tree_diameter if tree is not None else None,
            "phase1_rounds": phase1_rounds,
        }

    # ------------------------------------------------------------------
    # Convenience inspection helpers
    # ------------------------------------------------------------------
    def rank_of(self, node: int) -> int:
        """Current decoder rank of ``node``."""
        return self.decoders[node].rank

    def all_nodes_decoded_correctly(self) -> bool:
        """Check every finished node against the generation's ground truth."""
        return all(
            decoder.matches_generation(self.generation)
            for decoder in self.decoders.values()
        )
