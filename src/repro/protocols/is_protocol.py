"""Simulated IS protocol (Censor-Hillel & Shachnai) as a spanning-tree protocol.

Section 6 of the paper plugs the information-spreading protocol of [5]
(Censor-Hillel & Shachnai, SODA 2011) into TAG as the spanning-tree protocol,
because it completes in ``O(c (log n + log δ⁻¹) / Φ_c + c²)`` rounds on graphs
with large *weak conductance* ``Φ_c`` — a family that includes graphs with a
few severe bottlenecks, such as the barbell, where uniform gossip is slow.

The original protocol interleaves randomized uniform exchanges with
deterministic exchanges driven by internal neighbour lists.  Reproducing those
lists exactly is out of scope (they belong to [5], not to this paper); as
documented in DESIGN.md we simulate the protocol with the structure this paper
actually relies on:

* every node ``v`` maintains a **monotone n-bit string** recording the nodes
  it has heard from (directly or indirectly), initialised to the unit vector
  ``e_v`` — exactly the description in Section 6;
* on every wakeup the node alternates between a **uniform random** EXCHANGE
  and a **round-robin** EXCHANGE of its bit string (randomized even steps,
  deterministic odd steps, mirroring the original's two step types);
* the spanning tree is built by the rule quoted in Section 6: a node's parent
  is "the first node u from which it received a message that caused its most
  significant bit to change from zero to one".  The tree is therefore rooted
  at the node owning the most significant bit (the highest-numbered node).

On large-weak-conductance graphs the bit strings fill up in polylogarithmically
many rounds (each clique floods internally fast; the deterministic round-robin
steps force traffic across bottleneck edges), which is the property Theorem 7
and Theorem 8 need.  The benchmark ``bench_table1_tag_is.py`` verifies this
empirically on the barbell and clique-chain families.
"""

from __future__ import annotations

from typing import Any

import networkx as nx
import numpy as np

from ..errors import SimulationError
from ..gossip.communication import RoundRobinSelector, UniformSelector
from .spanning_tree_protocols import SpanningTreeProtocol

__all__ = ["BitStringMessage", "ISSpanningTree"]


class BitStringMessage:
    """Payload of the simulated IS protocol: the sender's heard-from bit string."""

    __slots__ = ("bits",)

    def __init__(self, bits: np.ndarray) -> None:
        self.bits = bits

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"BitStringMessage(count={int(self.bits.sum())}/{self.bits.size})"


class ISSpanningTree(SpanningTreeProtocol):
    """Spanning-tree protocol driven by monotone heard-from bit strings.

    Parameters
    ----------
    graph:
        The communication graph.
    rng:
        Random stream used for the round-robin offsets (partner choices during
        the protocol use the engine-provided stream).
    root:
        Owner of the most significant bit.  Defaults to the highest-numbered
        node, matching the description in Section 6.
    """

    def __init__(
        self,
        graph: nx.Graph,
        rng: np.random.Generator,
        root: int | None = None,
    ) -> None:
        nodes = sorted(graph.nodes())
        if not nodes:
            raise SimulationError("IS protocol requires a non-empty graph")
        self.graph = graph
        self.root = nodes[-1] if root is None else root
        if self.root not in graph:
            raise SimulationError(f"IS root {self.root} is not a node of the graph")
        self._n = len(nodes)
        self._index_of = {node: index for index, node in enumerate(nodes)}
        self._root_bit = self._index_of[self.root]
        # Monotone n-bit strings, one per node, initialised to the unit vector.
        self._bits: dict[int, np.ndarray] = {}
        for node in nodes:
            bits = np.zeros(self._n, dtype=bool)
            bits[self._index_of[node]] = True
            self._bits[node] = bits
        self._parent: dict[int, int] = {}
        self._uniform = UniformSelector(graph)
        self._round_robin = RoundRobinSelector(graph, rng)
        self._step_count: dict[int, int] = {node: 0 for node in nodes}

    # ------------------------------------------------------------------
    # SpanningTreeProtocol hooks
    # ------------------------------------------------------------------
    def choose_partner(self, node: int, rng: np.random.Generator) -> int:
        """Alternate deterministic (round-robin) and randomized (uniform) steps."""
        step = self._step_count[node]
        self._step_count[node] = step + 1
        if step % 2 == 0:
            return self._round_robin.partner(node, rng)
        return self._uniform.partner(node, rng)

    def tree_payload(self, node: int) -> BitStringMessage:
        return BitStringMessage(self._bits[node].copy())

    def handle_tree_payload(self, node: int, sender: int, payload: Any) -> bool:
        if not isinstance(payload, BitStringMessage):
            raise SimulationError(
                f"IS protocol received unexpected payload type {type(payload)!r}"
            )
        before = self._bits[node]
        had_root_bit = bool(before[self._root_bit])
        merged = before | payload.bits
        changed = bool(np.any(merged != before))
        self._bits[node] = merged
        gained_root_bit = not had_root_bit and bool(merged[self._root_bit])
        if gained_root_bit and node != self.root and node not in self._parent:
            # Section 6: parent = first node whose message flipped the most
            # significant bit from zero to one.
            self._parent[node] = sender
        return changed

    def parent_of(self, node: int) -> int | None:
        return self._parent.get(node)

    def load_state(
        self,
        bits: dict[int, np.ndarray],
        parent: dict[int, int],
        step_count: dict[int, int],
        round_robin_positions: dict[int, int],
    ) -> None:
        """Install protocol state (the batch fast path's restore hook).

        :class:`~repro.gossip.batch_tag.BatchISState` advances many trials of
        this protocol as stacked arrays and writes each trial's final state
        back through this method, so metadata (including
        ``full_spreading_complete``) and inspection helpers read exactly what
        a sequential run would have produced.
        """
        self._bits = {node: np.asarray(b, dtype=bool).copy() for node, b in bits.items()}
        self._parent = dict(parent)
        self._step_count = {node: int(count) for node, count in step_count.items()}
        self._round_robin.load_positions(round_robin_positions)

    # ------------------------------------------------------------------
    # Full information spreading (used to measure the IS stopping time itself)
    # ------------------------------------------------------------------
    def bits_of(self, node: int) -> np.ndarray:
        """Copy of the heard-from bit string of ``node``."""
        return self._bits[node].copy()

    def heard_count(self, node: int) -> int:
        """Number of distinct nodes ``node`` has heard from so far."""
        return int(self._bits[node].sum())

    def full_spreading_complete(self) -> bool:
        """``True`` when every node has heard from every node (all-ones strings)."""
        return all(bool(bits.all()) for bits in self._bits.values())

    def metadata(self) -> dict[str, Any]:
        data = super().metadata()
        data["full_spreading_complete"] = self.full_spreading_complete()
        data["protocol"] = "ISSpanningTree"
        return data
