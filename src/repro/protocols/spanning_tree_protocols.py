"""Gossip spanning-tree protocols (the protocol ``S`` plugged into TAG).

Section 2 defines an *STP gossip* protocol: its goal is that every node except
a designated root ends up with a single parent.  Section 4.1 observes that any
gossip broadcast (1-dissemination) protocol ``B`` yields such a tree: a node's
parent is the neighbour from which it first received the broadcast message.

Three concrete protocols are provided:

* :class:`UniformBroadcastTree` — broadcast with the uniform communication
  model (Definition 1);
* :class:`RoundRobinBroadcastTree` — the ``B_RR`` protocol of Theorem 5:
  broadcast with the round-robin (quasirandom) communication model, whose
  stopping time is ``O(n)`` rounds on *any* graph;
* :class:`BfsOracleTree` — an idealised protocol that knows the BFS tree from
  the start (``t(S) = 0``); used to isolate phase 2 of TAG in experiments and
  ablations.

Every protocol implements two interfaces at once:

* the :class:`SpanningTreeProtocol` hooks TAG drives directly
  (:meth:`choose_partner` / :meth:`tree_payload` / :meth:`handle_tree_payload`
  / :meth:`parent_of`), and
* the generic :class:`~repro.gossip.engine.GossipProcess` interface, so the
  same object can be run standalone to measure ``t(S)`` and ``d(S)`` (this is
  what the Theorem 5 benchmark does).
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Any

import networkx as nx
import numpy as np

from ..errors import SimulationError
from ..gossip.communication import RoundRobinSelector, UniformSelector
from ..gossip.engine import GossipProcess, Transmission
from ..graphs.spanning_tree import SpanningTree, bfs_spanning_tree

__all__ = [
    "TreeToken",
    "SpanningTreeProtocol",
    "BroadcastSpanningTree",
    "UniformBroadcastTree",
    "RoundRobinBroadcastTree",
    "BfsOracleTree",
]


class TreeToken:
    """Payload exchanged by broadcast-based spanning-tree protocols.

    It only says whether the sender is already *informed* (has received the
    broadcast message, i.e. is part of the tree).  Using a tiny class instead
    of a bare bool keeps payload dispatch in TAG explicit.
    """

    __slots__ = ("informed",)

    def __init__(self, informed: bool) -> None:
        self.informed = informed

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"TreeToken(informed={self.informed})"


class SpanningTreeProtocol(GossipProcess):
    """Interface every spanning-tree protocol exposes to TAG.

    Subclasses must implement the four tree-specific hooks; the generic
    :class:`GossipProcess` methods are provided here in terms of those hooks
    (EXCHANGE semantics: the waking node and its chosen partner swap payloads).
    """

    #: Node at which the tree is rooted.
    root: int

    # -- hooks TAG drives directly ---------------------------------------
    @abstractmethod
    def choose_partner(self, node: int, rng: np.random.Generator) -> int:
        """The partner ``node`` contacts when it performs a phase-1 step."""

    @abstractmethod
    def tree_payload(self, node: int) -> Any:
        """The protocol message ``node`` sends during a phase-1 step."""

    @abstractmethod
    def handle_tree_payload(self, node: int, sender: int, payload: Any) -> bool:
        """Apply a received protocol message; return ``True`` if it changed state."""

    @abstractmethod
    def parent_of(self, node: int) -> int | None:
        """Parent of ``node`` in the (partially built) tree, or ``None``."""

    # -- derived helpers -----------------------------------------------------
    def tree_complete(self) -> bool:
        """``True`` when every non-root node has a parent."""
        return all(
            self.parent_of(node) is not None
            for node in self.graph.nodes()
            if node != self.root
        )

    def current_tree(self) -> SpanningTree | None:
        """The spanning tree built so far, or ``None`` if it is not complete."""
        if not self.tree_complete():
            return None
        parent = {
            node: self.parent_of(node)
            for node in self.graph.nodes()
            if node != self.root
        }
        return SpanningTree.from_parent_map(self.root, parent)  # type: ignore[arg-type]

    # -- GossipProcess interface (standalone runs) ----------------------------
    def on_wakeup(self, node: int, rng: np.random.Generator) -> list[Transmission]:
        partner = self.choose_partner(node, rng)
        return [
            Transmission(node, partner, self.tree_payload(node), kind="stp"),
            Transmission(partner, node, self.tree_payload(partner), kind="stp"),
        ]

    def on_deliver(self, receiver: int, sender: int, payload: Any) -> bool:
        return self.handle_tree_payload(receiver, sender, payload)

    def is_complete(self) -> bool:
        return self.tree_complete()

    def finished_nodes(self) -> set[int]:
        return {
            node
            for node in self.graph.nodes()
            if node == self.root or self.parent_of(node) is not None
        }

    def metadata(self) -> dict[str, Any]:
        tree = self.current_tree()
        return {
            "k": 1,
            "protocol": type(self).__name__,
            "root": self.root,
            "tree_depth": tree.depth if tree is not None else None,
            "tree_diameter": tree.tree_diameter if tree is not None else None,
        }

    def batch_strategy(self):
        """Standalone spanning-tree runs use the lockstep tree batch engine.

        Supported protocol types (exact match — subclasses may carry extra
        state) run through
        :class:`~repro.gossip.batch_tag.BatchSpanningTreeEngine`; anything
        else falls back to the sequential engine.
        """
        from ..gossip.batch_tag import spanning_tree_batch_runner

        return spanning_tree_batch_runner(self)


class BroadcastSpanningTree(SpanningTreeProtocol):
    """Spanning tree via gossip broadcast: parent = first informer (Section 4.1)."""

    def __init__(self, graph: nx.Graph, root: int, rng: np.random.Generator) -> None:
        if root not in graph:
            raise SimulationError(f"broadcast root {root} is not a node of the graph")
        self.graph = graph
        self.root = root
        self._informed: set[int] = {root}
        self._parent: dict[int, int] = {}
        self._selector = self._build_selector(graph, rng)

    @abstractmethod
    def _build_selector(self, graph: nx.Graph, rng: np.random.Generator):
        """Return the partner selector implementing the communication model."""

    # -- tree hooks -----------------------------------------------------------
    def choose_partner(self, node: int, rng: np.random.Generator) -> int:
        return self._selector.partner(node, rng)

    def tree_payload(self, node: int) -> TreeToken:
        return TreeToken(informed=node in self._informed)

    def handle_tree_payload(self, node: int, sender: int, payload: Any) -> bool:
        if not isinstance(payload, TreeToken):
            raise SimulationError(
                f"broadcast protocol received unexpected payload {type(payload)!r}"
            )
        if payload.informed and node not in self._informed:
            self._informed.add(node)
            if node != self.root:
                self._parent[node] = sender
            return True
        return False

    def parent_of(self, node: int) -> int | None:
        return self._parent.get(node)

    @property
    def informed_count(self) -> int:
        """Number of nodes that have received the broadcast so far."""
        return len(self._informed)

    def load_state(
        self,
        informed: set[int],
        parent: dict[int, int],
        selector_positions: dict[int, int] | None = None,
    ) -> None:
        """Install informed/parent state (the batch fast path's restore hook).

        :class:`~repro.gossip.batch_tag.BatchSpanningTreeState` advances many
        trials of this protocol as stacked arrays and writes each trial's
        final state back through this method, so metadata and inspection
        helpers read exactly what a sequential run would have produced.
        """
        self._informed = set(informed)
        self._parent = dict(parent)
        if selector_positions is not None:
            self._selector.load_positions(selector_positions)


class UniformBroadcastTree(BroadcastSpanningTree):
    """Broadcast with the uniform communication model (Definition 1)."""

    def _build_selector(self, graph: nx.Graph, rng: np.random.Generator):
        return UniformSelector(graph)


class RoundRobinBroadcastTree(BroadcastSpanningTree):
    """``B_RR`` of Theorem 5: broadcast with round-robin partner selection.

    Theorem 5 shows this finishes after ``O(n)`` rounds on any connected graph
    (deterministically in the synchronous model, with exponentially high
    probability in the asynchronous one), which makes TAG order optimal for
    ``k = Ω(n)`` on any topology.
    """

    def _build_selector(self, graph: nx.Graph, rng: np.random.Generator):
        return RoundRobinSelector(graph, rng)


class BfsOracleTree(SpanningTreeProtocol):
    """Idealised spanning-tree protocol: the BFS tree is known from the start.

    ``t(S) = 0`` and ``d(S) <= 2 D``; phase 1 of TAG has nothing to do, so
    experiments using this protocol isolate the ``O(k + log n + d(S))``
    algebraic-gossip-on-a-tree part of Theorem 4 (Lemma 1).
    """

    def __init__(self, graph: nx.Graph, root: int, rng: np.random.Generator | None = None) -> None:
        if root not in graph:
            raise SimulationError(f"tree root {root} is not a node of the graph")
        self.graph = graph
        self.root = root
        self._tree = bfs_spanning_tree(graph, root)
        self._selector = UniformSelector(graph)

    def choose_partner(self, node: int, rng: np.random.Generator) -> int:
        # Phase-1 steps are no-ops for the oracle; contacting the parent (or
        # any neighbour for the root) keeps the step well defined.
        parent = self._tree.parent.get(node)
        if parent is not None:
            return parent
        return self._selector.partner(node, rng)

    def tree_payload(self, node: int) -> TreeToken:
        return TreeToken(informed=True)

    def handle_tree_payload(self, node: int, sender: int, payload: Any) -> bool:
        return False

    def parent_of(self, node: int) -> int | None:
        return self._tree.parent.get(node)

    def current_tree(self) -> SpanningTree:
        return self._tree
