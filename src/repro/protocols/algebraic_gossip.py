"""Uniform (and round-robin) algebraic gossip — the protocol of Theorem 1.

Every node owns an :class:`~repro.rlnc.decoder.RlncDecoder` seeded with the
source messages initially placed at it.  On every wakeup the node selects a
communication partner according to the configured communication model
(uniform by default) and the configured action:

* ``PUSH``  — the waking node sends one freshly coded packet to the partner;
* ``PULL``  — the partner sends one packet to the waking node;
* ``EXCHANGE`` — both happen (this is the variant all the paper's theorems
  are stated for).

The protocol stops when every node's decoder reaches rank ``k``.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import networkx as nx
import numpy as np

from ..core.config import GossipAction, SimulationConfig
from ..errors import SimulationError
from ..gossip.communication import PartnerSelector, UniformSelector
from ..gossip.engine import GossipProcess, Transmission
from ..rlnc.decoder import RlncDecoder
from ..rlnc.encoder import RlncEncoder
from ..rlnc.message import Generation
from ..rlnc.packet import CodedPacket

__all__ = ["AlgebraicGossip", "build_node_decoders", "reset_node_to_initial_knowledge"]


def build_node_decoders(
    graph: nx.Graph,
    generation: Generation,
    placement: Mapping[int, Sequence[int]],
    rng: np.random.Generator,
) -> tuple[dict[int, RlncDecoder], dict[int, RlncEncoder]]:
    """Create one decoder + encoder per node, seeded with the initial placement.

    ``placement`` maps node id → indices of the source messages initially
    stored there.  A node may hold several messages or none; every message
    index must be placed at least once, otherwise no protocol could ever
    disseminate it.
    """
    nodes = set(graph.nodes())
    placed: set[int] = set()
    for node, indices in placement.items():
        if node not in nodes:
            raise SimulationError(f"placement references unknown node {node}")
        placed.update(int(i) for i in indices)
    missing = set(range(generation.k)) - placed
    if missing:
        raise SimulationError(
            f"source messages {sorted(missing)} are not placed at any node"
        )
    decoders: dict[int, RlncDecoder] = {}
    encoders: dict[int, RlncEncoder] = {}
    for node in sorted(nodes):
        decoder = RlncDecoder(generation.field, generation.k, generation.payload_length)
        for index in placement.get(node, ()):  # seed initial knowledge
            decoder.add_source_message(int(index), generation.payload_matrix[int(index)])
        decoders[node] = decoder
        encoders[node] = RlncEncoder(decoder, rng)
    return decoders, encoders


def reset_node_to_initial_knowledge(
    generation: Generation,
    placement: Mapping[int, Sequence[int]],
    node: int,
    rng: np.random.Generator,
) -> tuple[RlncDecoder, RlncEncoder]:
    """Fresh decoder/encoder for ``node`` holding only its initial messages.

    This is the reset-churn crash semantics shared by
    :meth:`AlgebraicGossip.on_crash` and
    :meth:`~repro.protocols.tag.TagProtocol.on_crash`: the node loses every
    coded row it accumulated and rejoins with exactly the source messages the
    placement originally stored at it.
    """
    decoder = RlncDecoder(generation.field, generation.k, generation.payload_length)
    for index in placement.get(node, ()):
        decoder.add_source_message(int(index), generation.payload_matrix[int(index)])
    return decoder, RlncEncoder(decoder, rng)


class AlgebraicGossip(GossipProcess):
    """Gossip process running RLNC dissemination with a pluggable partner selector.

    Parameters
    ----------
    graph:
        The communication graph ``G_n``.
    generation:
        The ``k`` source messages.
    placement:
        Initial placement of source messages at nodes (node → message indices).
    config:
        Simulation configuration (field size must match ``generation.field``).
    rng:
        Random stream used for coding coefficients.
    selector:
        Communication model; defaults to :class:`UniformSelector` (Definition 1).
    """

    def __init__(
        self,
        graph: nx.Graph,
        generation: Generation,
        placement: Mapping[int, Sequence[int]],
        config: SimulationConfig,
        rng: np.random.Generator,
        selector: PartnerSelector | None = None,
    ) -> None:
        if generation.field.order != config.field_size:
            raise SimulationError(
                f"generation field GF({generation.field.order}) does not match "
                f"config field_size {config.field_size}"
            )
        self.graph = graph
        self.generation = generation
        self.config = config
        self.action = config.action
        self.selector = selector if selector is not None else UniformSelector(graph)
        self.decoders, self.encoders = build_node_decoders(graph, generation, placement, rng)
        # Kept for reset-churn crashes (on_crash rebuilds a node from these).
        self._placement = {n: tuple(int(i) for i in idx) for n, idx in placement.items()}
        self._rng = rng

    # ------------------------------------------------------------------
    # GossipProcess interface
    # ------------------------------------------------------------------
    def on_wakeup(self, node: int, rng: np.random.Generator) -> list[Transmission]:
        partner = self.selector.partner(node, rng)
        if partner is None:
            return []
        transmissions: list[Transmission] = []
        if self.action in (GossipAction.PUSH, GossipAction.EXCHANGE):
            packet = self.encoders[node].next_packet()
            if packet is not None:
                transmissions.append(Transmission(node, partner, packet, kind="rlnc"))
        if self.action in (GossipAction.PULL, GossipAction.EXCHANGE):
            packet = self.encoders[partner].next_packet()
            if packet is not None:
                transmissions.append(Transmission(partner, node, packet, kind="rlnc"))
        return transmissions

    def on_deliver(self, receiver: int, sender: int, payload: Any) -> bool:
        if not isinstance(payload, CodedPacket):
            raise SimulationError(
                f"AlgebraicGossip received unexpected payload type {type(payload)!r}"
            )
        return self.decoders[receiver].receive(payload)

    def is_complete(self) -> bool:
        return all(decoder.is_complete for decoder in self.decoders.values())

    def on_crash(self, node: int) -> None:
        """Reset-churn crash: the node falls back to its initial messages."""
        self.decoders[node], self.encoders[node] = reset_node_to_initial_knowledge(
            self.generation, self._placement, node, self._rng
        )

    def supports_rank_only_batch(self) -> bool:
        """Uniform algebraic gossip is rank-only batchable.

        Everything the engine observes — who talks to whom, how many
        coefficients are drawn, whether a packet is helpful, when a node
        completes — depends only on decoder ranks and the random stream, so
        the stopping time is independent of the payloads.  Subclasses and
        non-uniform selectors (which may carry extra state) are excluded.
        """
        return type(self) is AlgebraicGossip and type(self.selector) is UniformSelector

    def finished_nodes(self) -> set[int]:
        return {node for node, decoder in self.decoders.items() if decoder.is_complete}

    def metadata(self) -> dict[str, Any]:
        ranks = {node: decoder.rank for node, decoder in self.decoders.items()}
        return {
            "k": self.generation.k,
            "protocol": "algebraic-gossip",
            "action": self.action.value,
            "min_rank": min(ranks.values()),
            "selector": type(self.selector).__name__,
        }

    # ------------------------------------------------------------------
    # Convenience inspection helpers (used by tests and examples)
    # ------------------------------------------------------------------
    def rank_of(self, node: int) -> int:
        """Current decoder rank of ``node``."""
        return self.decoders[node].rank

    def decoded_messages(self, node: int) -> np.ndarray:
        """Decoded payload matrix at ``node`` (raises if the node is not done)."""
        return self.decoders[node].decode()

    def all_nodes_decoded_correctly(self) -> bool:
        """Check every finished node against the generation's ground truth."""
        return all(
            decoder.matches_generation(self.generation)
            for decoder in self.decoders.values()
        )
