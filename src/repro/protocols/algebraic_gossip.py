"""Uniform (and round-robin) algebraic gossip — the protocol of Theorem 1.

Every node owns an :class:`~repro.rlnc.decoder.RlncDecoder` seeded with the
source messages initially placed at it.  On every wakeup the node selects a
communication partner according to the configured communication model
(uniform by default) and the configured action:

* ``PUSH``  — the waking node sends one freshly coded packet to the partner;
* ``PULL``  — the partner sends one packet to the waking node;
* ``EXCHANGE`` — both happen (this is the variant all the paper's theorems
  are stated for).

The protocol stops when every node's decoder reaches rank ``k``.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import networkx as nx
import numpy as np

from ..core.config import GossipAction, SimulationConfig
from ..errors import SimulationError
from ..gossip.communication import PartnerSelector, UniformSelector
from ..gossip.engine import GossipProcess, Transmission
from ..rlnc.decoder import RlncDecoder
from ..rlnc.encoder import RlncEncoder
from ..rlnc.message import Generation
from ..rlnc.packet import CodedPacket

__all__ = [
    "AlgebraicGossip",
    "RankOnlyUniformGossip",
    "build_node_decoders",
    "reset_node_to_initial_knowledge",
]


def build_node_decoders(
    graph: nx.Graph,
    generation: Generation,
    placement: Mapping[int, Sequence[int]],
    rng: np.random.Generator,
) -> tuple[dict[int, RlncDecoder], dict[int, RlncEncoder]]:
    """Create one decoder + encoder per node, seeded with the initial placement.

    ``placement`` maps node id → indices of the source messages initially
    stored there.  A node may hold several messages or none; every message
    index must be placed at least once, otherwise no protocol could ever
    disseminate it.
    """
    nodes = set(graph.nodes())
    placed: set[int] = set()
    for node, indices in placement.items():
        if node not in nodes:
            raise SimulationError(f"placement references unknown node {node}")
        placed.update(int(i) for i in indices)
    missing = set(range(generation.k)) - placed
    if missing:
        raise SimulationError(
            f"source messages {sorted(missing)} are not placed at any node"
        )
    decoders: dict[int, RlncDecoder] = {}
    encoders: dict[int, RlncEncoder] = {}
    for node in sorted(nodes):
        decoder = RlncDecoder(generation.field, generation.k, generation.payload_length)
        for index in placement.get(node, ()):  # seed initial knowledge
            decoder.add_source_message(int(index), generation.payload_matrix[int(index)])
        decoders[node] = decoder
        encoders[node] = RlncEncoder(decoder, rng)
    return decoders, encoders


def reset_node_to_initial_knowledge(
    generation: Generation,
    placement: Mapping[int, Sequence[int]],
    node: int,
    rng: np.random.Generator,
) -> tuple[RlncDecoder, RlncEncoder]:
    """Fresh decoder/encoder for ``node`` holding only its initial messages.

    This is the reset-churn crash semantics shared by
    :meth:`AlgebraicGossip.on_crash` and
    :meth:`~repro.protocols.tag.TagProtocol.on_crash`: the node loses every
    coded row it accumulated and rejoins with exactly the source messages the
    placement originally stored at it.
    """
    decoder = RlncDecoder(generation.field, generation.k, generation.payload_length)
    for index in placement.get(node, ()):
        decoder.add_source_message(int(index), generation.payload_matrix[int(index)])
    return decoder, RlncEncoder(decoder, rng)


class AlgebraicGossip(GossipProcess):
    """Gossip process running RLNC dissemination with a pluggable partner selector.

    Parameters
    ----------
    graph:
        The communication graph ``G_n``.
    generation:
        The ``k`` source messages.
    placement:
        Initial placement of source messages at nodes (node → message indices).
    config:
        Simulation configuration (field size must match ``generation.field``).
    rng:
        Random stream used for coding coefficients.
    selector:
        Communication model; defaults to :class:`UniformSelector` (Definition 1).
    """

    def __init__(
        self,
        graph: nx.Graph,
        generation: Generation,
        placement: Mapping[int, Sequence[int]],
        config: SimulationConfig,
        rng: np.random.Generator,
        selector: PartnerSelector | None = None,
    ) -> None:
        if generation.field.order != config.field_size:
            raise SimulationError(
                f"generation field GF({generation.field.order}) does not match "
                f"config field_size {config.field_size}"
            )
        self.graph = graph
        self.generation = generation
        self.config = config
        self.action = config.action
        self.selector = selector if selector is not None else UniformSelector(graph)
        self.decoders, self.encoders = build_node_decoders(graph, generation, placement, rng)
        # Kept for reset-churn crashes (on_crash rebuilds a node from these).
        self._placement = {n: tuple(int(i) for i in idx) for n, idx in placement.items()}
        self._rng = rng

    # ------------------------------------------------------------------
    # GossipProcess interface
    # ------------------------------------------------------------------
    def on_wakeup(self, node: int, rng: np.random.Generator) -> list[Transmission]:
        partner = self.selector.partner(node, rng)
        if partner is None:
            return []
        transmissions: list[Transmission] = []
        if self.action in (GossipAction.PUSH, GossipAction.EXCHANGE):
            packet = self.encoders[node].next_packet()
            if packet is not None:
                transmissions.append(Transmission(node, partner, packet, kind="rlnc"))
        if self.action in (GossipAction.PULL, GossipAction.EXCHANGE):
            packet = self.encoders[partner].next_packet()
            if packet is not None:
                transmissions.append(Transmission(partner, node, packet, kind="rlnc"))
        return transmissions

    def on_deliver(self, receiver: int, sender: int, payload: Any) -> bool:
        if not isinstance(payload, CodedPacket):
            raise SimulationError(
                f"AlgebraicGossip received unexpected payload type {type(payload)!r}"
            )
        return self.decoders[receiver].receive(payload)

    def is_complete(self) -> bool:
        return all(decoder.is_complete for decoder in self.decoders.values())

    def on_crash(self, node: int) -> None:
        """Reset-churn crash: the node falls back to its initial messages."""
        self.decoders[node], self.encoders[node] = reset_node_to_initial_knowledge(
            self.generation, self._placement, node, self._rng
        )

    def supports_rank_only_batch(self) -> bool:
        """Uniform algebraic gossip is rank-only batchable.

        Everything the engine observes — who talks to whom, how many
        coefficients are drawn, whether a packet is helpful, when a node
        completes — depends only on decoder ranks and the random stream, so
        the stopping time is independent of the payloads.  Subclasses and
        non-uniform selectors (which may carry extra state) are excluded.
        """
        return type(self) is AlgebraicGossip and type(self.selector) is UniformSelector

    def finished_nodes(self) -> set[int]:
        return {node for node, decoder in self.decoders.items() if decoder.is_complete}

    def metadata(self) -> dict[str, Any]:
        ranks = {node: decoder.rank for node, decoder in self.decoders.items()}
        return {
            "k": self.generation.k,
            "protocol": "algebraic-gossip",
            "action": self.action.value,
            "min_rank": min(ranks.values()),
            "selector": type(self.selector).__name__,
        }

    # ------------------------------------------------------------------
    # Convenience inspection helpers (used by tests and examples)
    # ------------------------------------------------------------------
    def rank_of(self, node: int) -> int:
        """Current decoder rank of ``node``."""
        return self.decoders[node].rank

    def decoded_messages(self, node: int) -> np.ndarray:
        """Decoded payload matrix at ``node`` (raises if the node is not done)."""
        return self.decoders[node].decode()

    def all_nodes_decoded_correctly(self) -> bool:
        """Check every finished node against the generation's ground truth."""
        return all(
            decoder.matches_generation(self.generation)
            for decoder in self.decoders.values()
        )


class RankOnlyUniformGossip(GossipProcess):
    """Uniform algebraic gossip without per-node decoders: the event engine's
    graph-free process.

    :class:`AlgebraicGossip` builds ``n`` scalar decoders/encoders up front —
    exactly the O(n) object graph the event-driven engine then ignores in
    favour of its batched rank-only eliminator.  At ``n = 10^6`` that setup is
    the dominant cost, so the CSR materialization path builds this process
    instead: it validates the same placement, stores the same
    :class:`~repro.rlnc.message.Generation` (drawn from the *same* ``rng``
    stream position, so per-seed results are bit-identical), and hands the
    engine the initial coefficient rows directly through
    :meth:`initial_coefficient_rows` — the unit rows a fresh
    :class:`~repro.rlnc.decoder.RlncDecoder` would report after
    ``add_source_message``.

    Only the event-driven engine can run it: the scalar entry points
    (``on_wakeup`` etc.) raise, because this process has no payload state to
    gossip scalar packets from.
    """

    def __init__(
        self,
        graph: Any,
        generation: Generation,
        placement: Mapping[int, Sequence[int]],
        config: SimulationConfig,
        rng: np.random.Generator,
    ) -> None:
        if generation.field.order != config.field_size:
            raise SimulationError(
                f"generation field GF({generation.field.order}) does not match "
                f"config field_size {config.field_size}"
            )
        # Same placement validation as build_node_decoders, without building
        # decoders (node membership is O(1) for both graph representations).
        placed: set[int] = set()
        for node, indices in placement.items():
            if node not in graph:
                raise SimulationError(f"placement references unknown node {node}")
            placed.update(int(i) for i in indices)
        missing = set(range(generation.k)) - placed
        if missing:
            raise SimulationError(
                f"source messages {sorted(missing)} are not placed at any node"
            )
        self.graph = graph
        self.generation = generation
        self.config = config
        self.action = config.action
        self._placement = {n: tuple(int(i) for i in idx) for n, idx in placement.items()}
        self._rng = rng

    def initial_coefficient_rows(self) -> dict[int, np.ndarray]:
        """Node → initial RREF coefficient rows (unit rows at placed indices).

        Exactly what ``RlncDecoder.coefficient_matrix()`` reports right after
        seeding: one unit row per *distinct* placed message index, pivots
        ascending.  The event engine eliminates these verbatim, so its state
        after seeding matches the decoder-built path bit for bit.
        """
        field = self.generation.field
        k = self.generation.k
        rows: dict[int, np.ndarray] = {}
        for node, indices in self._placement.items():
            distinct = sorted(set(indices))
            if not distinct:
                continue
            matrix = field.zeros((len(distinct), k))
            for row, message_index in enumerate(distinct):
                matrix[row, message_index] = 1
            rows[node] = matrix
        return rows

    def supports_rank_only_batch(self) -> bool:
        """Rank-only by construction (this is all the state there is)."""
        return True

    def metadata(self) -> dict[str, Any]:
        # Same shape as AlgebraicGossip.metadata(); min_rank is a placeholder
        # the event engine overwrites with the true post-run minimum.
        return {
            "k": self.generation.k,
            "protocol": "algebraic-gossip",
            "action": self.action.value,
            "min_rank": 0,
            "selector": "UniformSelector",
        }

    # -- scalar-engine entry points: unsupported by design ----------------
    def _refuse(self) -> SimulationError:
        return SimulationError(
            "RankOnlyUniformGossip has no per-node decoders; it runs on the "
            "event-driven engine only"
        )

    def on_wakeup(self, node: int, rng: np.random.Generator) -> list[Transmission]:
        raise self._refuse()

    def on_deliver(self, receiver: int, sender: int, payload: Any) -> bool:
        raise self._refuse()

    def is_complete(self) -> bool:
        raise self._refuse()

    def finished_nodes(self) -> set[int]:
        raise self._refuse()
