"""Gossip protocols: the paper's contributions and the baselines they are compared to."""

from .algebraic_gossip import AlgebraicGossip, build_node_decoders
from .baselines import FloodingDissemination, UncodedRandomGossip
from .is_protocol import BitStringMessage, ISSpanningTree
from .spanning_tree_protocols import (
    BfsOracleTree,
    BroadcastSpanningTree,
    RoundRobinBroadcastTree,
    SpanningTreeProtocol,
    TreeToken,
    UniformBroadcastTree,
)
from .tag import TagProtocol

__all__ = [
    "AlgebraicGossip",
    "build_node_decoders",
    "FloodingDissemination",
    "UncodedRandomGossip",
    "BitStringMessage",
    "ISSpanningTree",
    "BfsOracleTree",
    "BroadcastSpanningTree",
    "RoundRobinBroadcastTree",
    "SpanningTreeProtocol",
    "TreeToken",
    "UniformBroadcastTree",
    "TagProtocol",
]
