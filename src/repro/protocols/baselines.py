"""Uncoded baseline dissemination protocols.

The paper motivates algebraic gossip by contrasting it with *uncoded* rumor
mongering: when a node can only forward one of the raw messages it happens to
hold, choosing which one to forward becomes a coupon-collector problem and the
dissemination time picks up extra logarithmic (or worse) factors.  These
baselines make that comparison measurable:

* :class:`UncodedRandomGossip` — on every wakeup the node picks a partner
  (uniform or any other communication model) and forwards one uniformly random
  raw message it currently holds; with EXCHANGE the partner does the same in
  the opposite direction.  This is the classic "random useful-agnostic"
  baseline that RLNC is compared against in the network-coding literature.
* :class:`FloodingDissemination` — every node sends every message it knows to
  every neighbour each round.  This violates the bounded-message-size and
  single-partner constraints of gossip, so it is *not* a gossip protocol; it
  serves as an idealised lower envelope (essentially ``D`` rounds plus the
  time for messages to spread) in plots and sanity tests.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import networkx as nx
import numpy as np

from ..core.config import GossipAction, SimulationConfig
from ..errors import SimulationError
from ..gossip.communication import PartnerSelector, UniformSelector
from ..gossip.engine import GossipProcess, Transmission

__all__ = ["UncodedRandomGossip", "FloodingDissemination"]


class UncodedRandomGossip(GossipProcess):
    """Store-and-forward gossip that sends one random raw message per contact."""

    def __init__(
        self,
        graph: nx.Graph,
        k: int,
        placement: Mapping[int, Sequence[int]],
        config: SimulationConfig,
        rng: np.random.Generator,
        selector: PartnerSelector | None = None,
    ) -> None:
        if k < 1:
            raise SimulationError(f"k must be positive, got {k}")
        self.graph = graph
        self.k = k
        self.action = config.action
        self.selector = selector if selector is not None else UniformSelector(graph)
        self._rng = rng
        self._known: dict[int, set[int]] = {node: set() for node in graph.nodes()}
        placed: set[int] = set()
        for node, indices in placement.items():
            if node not in self._known:
                raise SimulationError(f"placement references unknown node {node}")
            for index in indices:
                if not 0 <= int(index) < k:
                    raise SimulationError(f"message index {index} out of range for k={k}")
                self._known[node].add(int(index))
                placed.add(int(index))
        missing = set(range(k)) - placed
        if missing:
            raise SimulationError(
                f"source messages {sorted(missing)} are not placed at any node"
            )

    # -- helpers -----------------------------------------------------------
    def _random_known_message(self, node: int) -> int | None:
        known = self._known[node]
        if not known:
            return None
        items = sorted(known)
        return items[int(self._rng.integers(0, len(items)))]

    # -- GossipProcess interface --------------------------------------------
    def on_wakeup(self, node: int, rng: np.random.Generator) -> list[Transmission]:
        partner = self.selector.partner(node, rng)
        if partner is None:
            return []
        transmissions: list[Transmission] = []
        if self.action in (GossipAction.PUSH, GossipAction.EXCHANGE):
            message = self._random_known_message(node)
            if message is not None:
                transmissions.append(Transmission(node, partner, message, kind="raw"))
        if self.action in (GossipAction.PULL, GossipAction.EXCHANGE):
            message = self._random_known_message(partner)
            if message is not None:
                transmissions.append(Transmission(partner, node, message, kind="raw"))
        return transmissions

    def on_deliver(self, receiver: int, sender: int, payload: Any) -> bool:
        message = int(payload)
        if message in self._known[receiver]:
            return False
        self._known[receiver].add(message)
        return True

    def is_complete(self) -> bool:
        return all(len(known) == self.k for known in self._known.values())

    def finished_nodes(self) -> set[int]:
        return {node for node, known in self._known.items() if len(known) == self.k}

    def metadata(self) -> dict[str, Any]:
        return {
            "k": self.k,
            "protocol": "uncoded-random-gossip",
            "action": self.action.value,
        }

    def messages_known(self, node: int) -> set[int]:
        """Copy of the raw message indices currently held by ``node``."""
        return set(self._known[node])


class FloodingDissemination(GossipProcess):
    """Idealised flooding: every round, every node tells every neighbour everything.

    Not a gossip protocol (unbounded messages, all neighbours at once); used
    only as a reference point — its synchronous stopping time equals the graph
    eccentricity structure of the placement and lower-bounds every gossip
    protocol that respects the same initial placement.
    """

    def __init__(
        self,
        graph: nx.Graph,
        k: int,
        placement: Mapping[int, Sequence[int]],
    ) -> None:
        if k < 1:
            raise SimulationError(f"k must be positive, got {k}")
        self.graph = graph
        self.k = k
        self._known: dict[int, set[int]] = {node: set() for node in graph.nodes()}
        for node, indices in placement.items():
            if node not in self._known:
                raise SimulationError(f"placement references unknown node {node}")
            self._known[node].update(int(i) for i in indices)

    def on_wakeup(self, node: int, rng: np.random.Generator) -> list[Transmission]:
        known = frozenset(self._known[node])
        if not known:
            return []
        return [
            Transmission(node, neighbor, known, kind="flood")
            for neighbor in sorted(self.graph.neighbors(node))
        ]

    def on_deliver(self, receiver: int, sender: int, payload: Any) -> bool:
        before = len(self._known[receiver])
        self._known[receiver].update(payload)
        return len(self._known[receiver]) > before

    def is_complete(self) -> bool:
        return all(len(known) == self.k for known in self._known.values())

    def finished_nodes(self) -> set[int]:
        return {node for node, known in self._known.items() if len(known) == self.k}

    def metadata(self) -> dict[str, Any]:
        return {"k": self.k, "protocol": "flooding"}
