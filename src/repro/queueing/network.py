"""Feed-forward queueing networks in tree and line topologies.

These are the systems of Theorem 2 and its proof (Figures 3 and 4 of the
paper): ``n`` identical queues with a single exponential server each, no
external arrivals, and ``k`` customers initially distributed in the network.
Customers move from a node to its parent when served; they leave the system
when served by the root.  The *stopping time* is the time the last customer
leaves.

The proof compares several systems:

* ``Q^tree_n``    — the original tree (all servers always on),
* ``Q̂^tree_n``   — the tree with only one active server per level,
* ``Q^line``      — the levels collapsed into a line of queues,
* ``Q̂^line``     — the line with all customers moved to the farthest queue,
* the open Jackson line of Lemma 7 (customers re-enter from outside at rate
  ``μ / 2``).

All of them are implemented here so the stochastic-dominance chain
``t(Q^tree) ⪯ t(Q̂^tree) ≈ t(Q^line) ⪯ t(Q̂^line)`` can be verified
empirically (see ``benchmarks/bench_theorem2_queueing.py`` and the tests).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..errors import SimulationError
from ..graphs.spanning_tree import SpanningTree
from .mm1 import departure_times, exponential_service_times

__all__ = [
    "TreeQueueNetwork",
    "line_tree",
    "single_level_scheduling_stopping_time",
    "open_line_stopping_time",
]


@dataclass(frozen=True)
class _Completion:
    """Internal event: the server at ``node`` finishes a customer at ``time``."""

    time: float
    node: int

    def __lt__(self, other: "_Completion") -> bool:
        return (self.time, self.node) < (other.time, other.node)


class TreeQueueNetwork:
    """``Q^tree_n``: work-conserving exponential servers on a rooted tree.

    Parameters
    ----------
    tree:
        The rooted tree (parent map).  The root's "parent" is the outside
        world: customers served at the root leave the system.
    service_rate:
        ``μ`` of every server (for geometric service, the per-timeslot success
        probability ``p``).
    initial_customers:
        Mapping node → number of customers initially queued there.  Nodes not
        listed start empty.
    service:
        ``"exponential"`` (the paper's Q^tree, default) or ``"geometric"`` —
        the raw timeslot model of the gossip reduction before Lemma 2 of [2]
        replaces it with the stochastically slower exponential server.
    """

    def __init__(
        self,
        tree: SpanningTree,
        service_rate: float,
        initial_customers: Mapping[int, int],
        *,
        service: str = "exponential",
    ) -> None:
        if service_rate <= 0:
            raise SimulationError(f"service rate must be positive, got {service_rate}")
        if service not in ("exponential", "geometric"):
            raise SimulationError(
                f"service must be 'exponential' or 'geometric', got {service!r}"
            )
        if service == "geometric" and service_rate > 1:
            raise SimulationError(
                "geometric service interprets service_rate as a probability; it must be <= 1"
            )
        self.service = service
        self.tree = tree
        self.service_rate = service_rate
        self.initial_customers: dict[int, int] = {}
        nodes = set(tree.nodes)
        total = 0
        for node, count in initial_customers.items():
            if node not in nodes:
                raise SimulationError(f"initial customer at unknown node {node}")
            if count < 0:
                raise SimulationError(f"negative customer count at node {node}")
            if count:
                self.initial_customers[node] = int(count)
                total += int(count)
        if total == 0:
            raise SimulationError("the network needs at least one customer")
        self.total_customers = total

    def simulate(self, rng: np.random.Generator) -> float:
        """Run one realisation; return the time the last customer leaves the root."""
        queue_length: dict[int, int] = {node: 0 for node in self.tree.nodes}
        for node, count in self.initial_customers.items():
            queue_length[node] = count
        events: list[_Completion] = []
        busy: set[int] = set()

        def start_service(node: int, now: float) -> None:
            if node in busy or queue_length[node] == 0:
                return
            busy.add(node)
            if self.service == "exponential":
                duration = float(rng.exponential(scale=1.0 / self.service_rate))
            else:
                duration = float(rng.geometric(self.service_rate))
            heapq.heappush(events, _Completion(time=now + duration, node=node))

        for node in self.tree.nodes:
            start_service(node, 0.0)

        departed = 0
        last_departure = 0.0
        while events:
            event = heapq.heappop(events)
            node = event.node
            busy.discard(node)
            queue_length[node] -= 1
            parent = self.tree.parent.get(node)
            if parent is None:
                departed += 1
                last_departure = event.time
                if departed == self.total_customers:
                    return last_departure
            else:
                queue_length[parent] += 1
                start_service(parent, event.time)
            start_service(node, event.time)
        raise SimulationError(
            "queueing simulation ended before all customers departed"
        )  # pragma: no cover - defensive

    def simulate_many(self, trials: int, rng: np.random.Generator) -> np.ndarray:
        """Run ``trials`` independent realisations and return their stopping times."""
        if trials < 1:
            raise SimulationError(f"trials must be positive, got {trials}")
        return np.array([self.simulate(rng) for _ in range(trials)], dtype=float)


def line_tree(length: int) -> SpanningTree:
    """A line of ``length`` queues as a tree: node 0 is the root, node i's parent is i-1."""
    if length < 1:
        raise SimulationError(f"line length must be positive, got {length}")
    parent = {index: index - 1 for index in range(1, length)}
    return SpanningTree(root=0, parent=parent)


def single_level_scheduling_stopping_time(
    tree: SpanningTree,
    service_rate: float,
    initial_customers: Mapping[int, int],
    rng: np.random.Generator,
) -> float:
    """Stopping time of ``Q̂^tree_n``: only one server active per tree level.

    This is the modified scheduling of Definition 5 in the appendix.  Because
    at most one customer is in service per level at any time, the system
    behaves exactly like the collapsed line ``Q^line`` (Lemma 5); simulating it
    as a line of ``depth + 1`` queues whose initial content is the per-level
    customer count is therefore faithful, and is how we implement it.
    """
    depth = tree.depth
    per_level: dict[int, int] = {level: 0 for level in range(depth + 1)}
    for node, count in initial_customers.items():
        per_level[tree.depth_of(node)] += int(count)
    line = line_tree(depth + 1)
    network = TreeQueueNetwork(
        line,
        service_rate,
        {level: count for level, count in per_level.items() if count > 0},
    )
    return network.simulate(rng)


def open_line_stopping_time(
    customers: int,
    line_length: int,
    service_rate: float,
    rng: np.random.Generator,
    *,
    arrival_rate: float | None = None,
) -> float:
    """Stopping time of the open Jackson line of Lemma 7.

    All ``customers`` start outside the system and enter the farthest queue as
    a Poisson process of rate ``λ = μ / 2`` (by default); each then traverses
    ``line_length`` M/M/1 queues.  The returned value is the time at which the
    last customer leaves the first queue — the quantity bounded by
    ``O((k + l_max + log n) / μ)`` in Lemma 7.

    The simulation feeds each queue's departure process as the next queue's
    arrival process using the FCFS recursion, which is exact for a tandem line
    with unlimited buffers.
    """
    if customers < 1:
        raise SimulationError(f"customers must be positive, got {customers}")
    if line_length < 1:
        raise SimulationError(f"line_length must be positive, got {line_length}")
    if service_rate <= 0:
        raise SimulationError(f"service rate must be positive, got {service_rate}")
    lam = service_rate / 2.0 if arrival_rate is None else arrival_rate
    if lam <= 0:
        raise SimulationError(f"arrival rate must be positive, got {lam}")
    interarrivals = rng.exponential(scale=1.0 / lam, size=customers)
    arrivals = np.cumsum(interarrivals)
    for _ in range(line_length):
        services = exponential_service_times(customers, service_rate, rng)
        arrivals = departure_times(arrivals, services)
    return float(arrivals[-1])
