"""Empirical stochastic-dominance checks.

The proof of Theorem 2 rests on a chain of stochastic orderings between
queueing systems (Definition 4: ``X ⪯ Y`` iff ``Pr(X ≤ t) ≥ Pr(Y ≤ t)`` for
all ``t``).  We cannot verify the ordering exactly from finite samples, but we
can check that the empirical CDFs respect it up to a statistical tolerance —
that is what the property tests and the Theorem 2 benchmark do.
"""

from __future__ import annotations

import numpy as np

from ..errors import AnalysisError

__all__ = [
    "empirical_cdf",
    "dominance_violation",
    "empirically_dominates",
    "mean_ordering_holds",
]


def empirical_cdf(samples: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Empirical CDF of ``samples`` evaluated at ``points``."""
    samples = np.sort(np.asarray(samples, dtype=float))
    points = np.asarray(points, dtype=float)
    if samples.size == 0:
        raise AnalysisError("empirical_cdf requires at least one sample")
    return np.searchsorted(samples, points, side="right") / samples.size


def dominance_violation(smaller: np.ndarray, larger: np.ndarray) -> float:
    """Maximum violation of ``F_smaller(t) >= F_larger(t)`` over pooled sample points.

    A value of 0 means the empirical CDFs are consistent with
    ``smaller ⪯ larger`` everywhere; positive values measure the worst gap
    (comparable to a one-sided Kolmogorov–Smirnov statistic).
    """
    smaller = np.asarray(smaller, dtype=float)
    larger = np.asarray(larger, dtype=float)
    if smaller.size == 0 or larger.size == 0:
        raise AnalysisError("both sample sets must be non-empty")
    points = np.union1d(smaller, larger)
    cdf_small = empirical_cdf(smaller, points)
    cdf_large = empirical_cdf(larger, points)
    return float(np.max(cdf_large - cdf_small))


def empirically_dominates(
    smaller: np.ndarray, larger: np.ndarray, *, tolerance: float = 0.1
) -> bool:
    """``True`` if the samples are consistent with ``smaller ⪯ larger``.

    ``tolerance`` absorbs sampling noise; with a few hundred samples per side
    a tolerance of about ``sqrt(ln(2/δ) / n)`` gives a one-sided KS-style test
    at confidence ``1 - δ``.
    """
    if tolerance < 0:
        raise AnalysisError(f"tolerance must be non-negative, got {tolerance}")
    return dominance_violation(smaller, larger) <= tolerance


def mean_ordering_holds(
    smaller: np.ndarray, larger: np.ndarray, *, slack: float = 0.0
) -> bool:
    """Weaker check implied by stochastic dominance: ``E[smaller] <= E[larger] + slack``."""
    smaller = np.asarray(smaller, dtype=float)
    larger = np.asarray(larger, dtype=float)
    if smaller.size == 0 or larger.size == 0:
        raise AnalysisError("both sample sets must be non-empty")
    return float(np.mean(smaller)) <= float(np.mean(larger)) + slack
