"""Queueing-theory substrate used by the paper's proofs (Theorems 1 and 2)."""

from .dominance import (
    dominance_violation,
    empirical_cdf,
    empirically_dominates,
    mean_ordering_holds,
)
from .jackson import (
    equilibrium_queue_length_distribution,
    expected_sojourn_time,
    lemma7_stopping_time_bound,
    sample_equilibrium_queue_length,
    sum_exponentials_tail_bound,
    theorem2_stopping_time_bound,
    utilisation,
)
from .mm1 import (
    MM1Queue,
    departure_times,
    exponential_service_times,
    geometric_service_times,
)
from .network import (
    TreeQueueNetwork,
    line_tree,
    open_line_stopping_time,
    single_level_scheduling_stopping_time,
)
from .reduction import (
    QueueingReduction,
    ReductionPrediction,
    service_probability,
    worst_case_service_probability,
)

__all__ = [
    "dominance_violation",
    "empirical_cdf",
    "empirically_dominates",
    "mean_ordering_holds",
    "equilibrium_queue_length_distribution",
    "expected_sojourn_time",
    "lemma7_stopping_time_bound",
    "sample_equilibrium_queue_length",
    "sum_exponentials_tail_bound",
    "theorem2_stopping_time_bound",
    "utilisation",
    "MM1Queue",
    "departure_times",
    "exponential_service_times",
    "geometric_service_times",
    "TreeQueueNetwork",
    "line_tree",
    "open_line_stopping_time",
    "single_level_scheduling_stopping_time",
    "QueueingReduction",
    "ReductionPrediction",
    "service_probability",
    "worst_case_service_probability",
]
