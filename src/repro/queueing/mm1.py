"""Single-queue primitives used by the queueing reduction.

The appendix of the paper analyses gossip through networks of queues with a
single exponential server each (rate ``μ``).  This module provides the basic
building blocks:

* :func:`departure_times` — the FCFS recursion ``d_i = max(a_i, d_{i-1}) + X_i``
  illustrated in the paper's Figure 2, where ``X_i ~ Exp(μ)``;
* :func:`exponential_service_times` and :func:`geometric_service_times` — the
  two service-time models the paper switches between (Lemma 2 of [2] lets the
  geometric timeslot process be replaced by a stochastically slower
  exponential one);
* :class:`MM1Queue` — a tiny M/M/1 simulator used by tests of Lemma 8 (the
  sojourn time of an M/M/1 queue in equilibrium is ``Exp(μ - λ)``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError

__all__ = [
    "exponential_service_times",
    "geometric_service_times",
    "departure_times",
    "MM1Queue",
]


def exponential_service_times(count: int, mu: float, rng: np.random.Generator) -> np.ndarray:
    """Draw ``count`` i.i.d. ``Exp(mu)`` service times."""
    if mu <= 0:
        raise SimulationError(f"service rate mu must be positive, got {mu}")
    if count < 0:
        raise SimulationError(f"count must be non-negative, got {count}")
    return rng.exponential(scale=1.0 / mu, size=count)


def geometric_service_times(count: int, p: float, rng: np.random.Generator) -> np.ndarray:
    """Draw ``count`` i.i.d. geometric service times (number of timeslots, support ≥ 1).

    This is the "raw" service model of the gossip reduction: a helpful packet
    crosses a given edge in a given timeslot with probability ``p``, so the
    number of timeslots until it does is ``Geom(p)``.
    """
    if not 0 < p <= 1:
        raise SimulationError(f"success probability p must lie in (0, 1], got {p}")
    if count < 0:
        raise SimulationError(f"count must be non-negative, got {count}")
    return rng.geometric(p, size=count).astype(float)


def departure_times(
    arrivals: np.ndarray, service_times: np.ndarray
) -> np.ndarray:
    """FCFS departure times from a single-server queue.

    Implements ``d_i = max(a_i, d_{i-1}) + X_i`` (the relation shown in the
    appendix, "Later arrivals yield later departures").  ``arrivals`` must be
    sorted non-decreasingly.
    """
    arrivals = np.asarray(arrivals, dtype=float)
    service_times = np.asarray(service_times, dtype=float)
    if arrivals.shape != service_times.shape:
        raise SimulationError(
            f"arrivals and service_times must have the same shape, "
            f"got {arrivals.shape} vs {service_times.shape}"
        )
    if arrivals.size and np.any(np.diff(arrivals) < 0):
        raise SimulationError("arrival times must be sorted non-decreasingly")
    departures = np.empty_like(arrivals)
    previous = 0.0
    for index, (arrival, service) in enumerate(zip(arrivals, service_times)):
        start = max(arrival, previous) if index > 0 else arrival
        previous = start + service
        departures[index] = previous
    return departures


@dataclass
class MM1Queue:
    """A minimal M/M/1 queue simulator (Poisson arrivals, exponential service).

    Used by tests to check Lemma 8: in equilibrium, the time a customer spends
    in the system (waiting plus service) is exponential with rate ``μ - λ``.
    """

    arrival_rate: float
    service_rate: float

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0 or self.service_rate <= 0:
            raise SimulationError("arrival and service rates must be positive")
        if self.arrival_rate >= self.service_rate:
            raise SimulationError(
                "M/M/1 requires arrival_rate < service_rate for stability "
                f"(got λ={self.arrival_rate}, μ={self.service_rate})"
            )

    @property
    def utilisation(self) -> float:
        """``ρ = λ / μ``."""
        return self.arrival_rate / self.service_rate

    def expected_sojourn_time(self) -> float:
        """``E[T] = 1 / (μ - λ)`` (Lemma 8)."""
        return 1.0 / (self.service_rate - self.arrival_rate)

    def simulate_sojourn_times(
        self, customers: int, rng: np.random.Generator, *, warmup: int = 200
    ) -> np.ndarray:
        """Simulate the queue and return the sojourn times of ``customers`` customers.

        The first ``warmup`` customers are discarded so the measured times are
        taken (approximately) in equilibrium.
        """
        if customers < 1:
            raise SimulationError(f"customers must be positive, got {customers}")
        total = customers + warmup
        interarrivals = rng.exponential(scale=1.0 / self.arrival_rate, size=total)
        arrivals = np.cumsum(interarrivals)
        services = exponential_service_times(total, self.service_rate, rng)
        departures = departure_times(arrivals, services)
        sojourns = departures - arrivals
        return sojourns[warmup:]
