"""Jackson-network facts used in the proof of Theorem 2 (Lemmas 7–9).

The final step of the proof takes the line of queues with all ``k`` customers
at the far end, re-injects the customers from outside as a Poisson process of
rate ``λ = μ/2`` and pads every queue with equilibrium "dummy" customers.
Jackson's theorem then makes the queues independent M/M/1 queues with
utilisation ``ρ = 1/2``, Lemma 8 gives the per-queue sojourn time
``Exp(μ − λ)``, and Lemma 9 (a Chernoff bound for sums of exponentials) turns
the expectations into a with-high-probability bound.

This module provides those closed forms so tests and benchmarks can check the
simulated networks against them.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import SimulationError

__all__ = [
    "utilisation",
    "equilibrium_queue_length_distribution",
    "sample_equilibrium_queue_length",
    "expected_sojourn_time",
    "sum_exponentials_tail_bound",
    "theorem2_stopping_time_bound",
    "lemma7_stopping_time_bound",
]


def utilisation(arrival_rate: float, service_rate: float) -> float:
    """``ρ = λ / μ`` with the stability check ``ρ < 1``."""
    if arrival_rate <= 0 or service_rate <= 0:
        raise SimulationError("rates must be positive")
    rho = arrival_rate / service_rate
    if rho >= 1:
        raise SimulationError(f"unstable queue: ρ = {rho:.3f} >= 1")
    return rho


def equilibrium_queue_length_distribution(rho: float, max_length: int) -> np.ndarray:
    """P(queue length = i) for i = 0..max_length of an M/M/1 in equilibrium.

    The stationary distribution is geometric: ``P(L = i) = (1 - ρ) ρ^i``.
    The returned vector is truncated (not renormalised); the tail mass beyond
    ``max_length`` is ``ρ^(max_length + 1)``.
    """
    if not 0 < rho < 1:
        raise SimulationError(f"rho must lie in (0, 1), got {rho}")
    lengths = np.arange(max_length + 1)
    return (1 - rho) * rho**lengths


def sample_equilibrium_queue_length(rho: float, rng: np.random.Generator, size: int = 1) -> np.ndarray:
    """Sample stationary M/M/1 queue lengths (geometric with success ``1 - ρ``).

    These are the "dummy customers" added to each queue in the proof of
    Lemma 7 to start the system in equilibrium.
    """
    if not 0 < rho < 1:
        raise SimulationError(f"rho must lie in (0, 1), got {rho}")
    # numpy's geometric counts trials until first success (support >= 1);
    # the stationary queue length has support >= 0.
    return rng.geometric(1 - rho, size=size) - 1


def expected_sojourn_time(arrival_rate: float, service_rate: float) -> float:
    """Lemma 8: the equilibrium sojourn time of an M/M/1 queue is ``Exp(μ - λ)``."""
    utilisation(arrival_rate, service_rate)
    return 1.0 / (service_rate - arrival_rate)


def sum_exponentials_tail_bound(count: int, alpha: float) -> float:
    """Lemma 9: ``Pr(Y < α E[Y]) > 1 - (2 e^{-α/2})^n`` for a sum of ``n`` i.i.d. exponentials.

    Returns the lower bound on the probability (may be negative for small
    ``α``; callers interested in a guarantee should require ``α > 2 ln 2``).
    """
    if count < 1:
        raise SimulationError(f"count must be positive, got {count}")
    if alpha <= 1:
        raise SimulationError(f"alpha must exceed 1, got {alpha}")
    return 1.0 - (2.0 * math.exp(-alpha / 2.0)) ** count


def lemma7_stopping_time_bound(k: int, line_length: int, n: int, mu: float) -> float:
    """The explicit constant version of Lemma 7: ``(4k + 4 l_max + 16 ln n) / μ``.

    This holds with probability at least ``1 - 2/n²``.
    """
    if min(k, line_length, n) < 1 or mu <= 0:
        raise SimulationError("k, line_length, n must be >= 1 and mu > 0")
    return (4.0 * k + 4.0 * line_length + 16.0 * math.log(max(n, 2))) / mu


def theorem2_stopping_time_bound(k: int, depth: int, n: int, mu: float) -> float:
    """Theorem 2: ``t(Q^tree_n) = O((k + l_max + log n) / μ)`` — explicit-constant form.

    We reuse Lemma 7's constants since the tree is stochastically dominated by
    the all-customers-at-the-end line.
    """
    return lemma7_stopping_time_bound(k, max(depth, 1), n, mu)
