"""The gossip → queueing reduction of Theorem 1 (Figure 1 of the paper).

Theorem 1 bounds uniform algebraic gossip by:

1. fixing an arbitrary target node ``v`` and taking a BFS shortest-path tree
   ``T_n`` rooted at it (depth ``l_max ≤ D``),
2. treating helpful messages flowing towards ``v`` as customers in a
   feed-forward queueing network ``Q^tree_n`` with one exponential server per
   node, whose rate is the worst-case probability that a helpful packet
   crosses an edge towards the parent in one timeslot:
   ``p = (1 - 1/q) / (n Δ) ≥ 1 / (2 n Δ)`` in the asynchronous model
   (``(1 - 1/q) / Δ ≥ 1 / (2 Δ)`` per round in the synchronous model), and
3. applying Theorem 2 to bound the time until all ``k`` customers reach the
   root, then a union bound over all target nodes.

This module makes each step executable so the reduction itself can be
validated: the predicted stopping time (analytic and Monte-Carlo versions of
the queueing system) must upper-bound the measured stopping time of the real
gossip simulation on the same graph — that is experiment E7 in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..core.config import TimeModel
from ..errors import SimulationError
from ..graphs.properties import diameter as graph_diameter
from ..graphs.properties import max_degree as graph_max_degree
from ..graphs.spanning_tree import SpanningTree, bfs_spanning_tree
from .jackson import theorem2_stopping_time_bound
from .network import TreeQueueNetwork

__all__ = [
    "service_probability",
    "worst_case_service_probability",
    "QueueingReduction",
]


def service_probability(q: int, degree_factor: int) -> float:
    """``(1 - 1/q) / degree_factor``: probability a helpful packet crosses an edge.

    ``degree_factor`` is ``n Δ`` per timeslot in the asynchronous model and
    ``Δ`` per round in the synchronous model (Theorem 1's proof), or ``n`` /
    ``1`` respectively when the partner is fixed (Lemma 1, used by TAG).
    """
    if q < 2:
        raise SimulationError(f"field size q must be at least 2, got {q}")
    if degree_factor < 1:
        raise SimulationError(f"degree_factor must be positive, got {degree_factor}")
    return (1.0 - 1.0 / q) / degree_factor


def worst_case_service_probability(degree_factor: int) -> float:
    """The paper's worst case ``q = 2``: ``p = 1 / (2 · degree_factor)``."""
    return service_probability(2, degree_factor)


@dataclass(frozen=True)
class ReductionPrediction:
    """Output of the reduction for one target node (or the union bound over all)."""

    #: Service rate used for the queueing system (per timeslot or per round).
    service_rate: float
    #: Depth of the BFS tree (``l_max``).
    tree_depth: int
    #: Closed-form bound of Theorem 2, in the same time unit as ``service_rate``.
    analytic_bound: float
    #: Monte-Carlo estimate (95th percentile) of the queueing stopping time,
    #: ``None`` when simulation was not requested.
    simulated_whp: float | None


class QueueingReduction:
    """Builds the queueing system of Theorem 1 for a given graph and ``k``.

    Parameters
    ----------
    graph:
        The gossip communication graph ``G_n``.
    k:
        Number of messages to disseminate.
    q:
        RLNC field size (only enters through ``1 - 1/q``).
    time_model:
        Synchronous or asynchronous; selects the per-round versus per-timeslot
        service probability.
    fixed_partner:
        ``True`` for the Lemma 1 variant (algebraic gossip on a tree with the
        partner fixed to the parent), which removes the ``Δ`` factor.
    """

    def __init__(
        self,
        graph: nx.Graph,
        k: int,
        q: int = 2,
        time_model: TimeModel = TimeModel.ASYNCHRONOUS,
        *,
        fixed_partner: bool = False,
    ) -> None:
        if k < 1:
            raise SimulationError(f"k must be positive, got {k}")
        self.graph = graph
        self.k = k
        self.q = q
        self.time_model = time_model
        self.fixed_partner = fixed_partner
        self.n = graph.number_of_nodes()
        self.max_degree = graph_max_degree(graph)
        self.diameter = graph_diameter(graph)

    # ------------------------------------------------------------------
    # Reduction pieces
    # ------------------------------------------------------------------
    def bfs_tree(self, root: int) -> SpanningTree:
        """Step 1: the BFS shortest-path tree rooted at the target node."""
        return bfs_spanning_tree(self.graph, root)

    def service_rate(self) -> float:
        """Step 2: the worst-case service probability ``p`` (used as rate ``μ = p``)."""
        degree_factor = 1 if self.fixed_partner else self.max_degree
        if self.time_model is TimeModel.ASYNCHRONOUS:
            degree_factor *= self.n
        return service_probability(self.q, degree_factor)

    def customer_placement(
        self, tree: SpanningTree, message_nodes: dict[int, int] | None = None
    ) -> dict[int, int]:
        """Initial customers: one per message, at the node holding that message.

        With ``message_nodes=None`` the ``k`` customers are placed at the
        nodes farthest from the root (the worst case the theorem allows:
        "initially distributed arbitrarily").
        """
        if message_nodes is not None:
            placement: dict[int, int] = {}
            for node, count in message_nodes.items():
                if node not in set(tree.nodes):
                    raise SimulationError(f"message placed at unknown node {node}")
                if node == tree.root:
                    continue  # messages already at the target need no transport
                placement[node] = placement.get(node, 0) + int(count)
            if not placement:
                placement = {tree.nodes[-1]: 1}
            return placement
        ordered = sorted(tree.parent.keys(), key=tree.depth_of, reverse=True)
        placement = {}
        remaining = self.k
        for node in ordered:
            if remaining == 0:
                break
            placement[node] = placement.get(node, 0) + 1
            remaining -= 1
        if remaining > 0 and ordered:
            placement[ordered[0]] += remaining
        return placement

    # ------------------------------------------------------------------
    # Predictions
    # ------------------------------------------------------------------
    def predict_for_root(
        self,
        root: int,
        rng: np.random.Generator | None = None,
        *,
        trials: int = 0,
        message_nodes: dict[int, int] | None = None,
    ) -> ReductionPrediction:
        """Steps 1–3 for a single target node ``v = root``."""
        tree = self.bfs_tree(root)
        mu = self.service_rate()
        analytic = theorem2_stopping_time_bound(self.k, max(tree.depth, 1), self.n, mu)
        simulated: float | None = None
        if trials > 0:
            if rng is None:
                raise SimulationError("Monte-Carlo prediction requires an rng")
            network = TreeQueueNetwork(
                tree, mu, self.customer_placement(tree, message_nodes)
            )
            samples = network.simulate_many(trials, rng)
            simulated = float(np.quantile(samples, 0.95))
        return ReductionPrediction(
            service_rate=mu,
            tree_depth=tree.depth,
            analytic_bound=analytic,
            simulated_whp=simulated,
        )

    def predicted_rounds_upper_bound(self) -> float:
        """The final bound of Theorem 1 in *rounds*: ``O((k + log n + D) Δ)`` (or
        ``O(k + log n + l_max)`` with a fixed partner, Lemma 1).

        The conversion uses the paper's accounting: the Theorem 2 bound is in
        timeslots for the asynchronous model (divide by ``n`` for rounds) and
        directly in rounds for the synchronous model.
        """
        mu = self.service_rate()
        bound = theorem2_stopping_time_bound(self.k, max(self.diameter, 1), self.n, mu)
        if self.time_model is TimeModel.ASYNCHRONOUS:
            return bound / self.n
        return bound

    def describe(self) -> str:
        """Human-readable summary used by the queueing-reduction example."""
        mu = self.service_rate()
        return (
            f"Reduction on n={self.n}, Δ={self.max_degree}, D={self.diameter}, "
            f"k={self.k}, q={self.q}, {self.time_model.value}, "
            f"{'fixed partner' if self.fixed_partner else 'uniform partner'}: "
            f"service rate μ={mu:.6f}, predicted rounds ≤ "
            f"{self.predicted_rounds_upper_bound():.1f} (with explicit constants; "
            f"the theorem states the same bound up to constants: "
            f"O((k + log n + D)·Δ) = O(({self.k} + {math.ceil(math.log(self.n))} + "
            f"{self.diameter})·{self.max_degree}))"
        )
