"""Structural graph properties appearing in the paper's bounds.

The upper bound of Theorem 1 is ``O((k + log n + D) Δ)`` — it needs the
diameter ``D`` and the maximum degree ``Δ``.  Lemma 2 bounds the sum of
degrees along any shortest path by ``3n`` (used by the round-robin broadcast
analysis, Theorem 5).  Claim 1 states that constant-degree graphs have
``D = Ω(log n)``.  Section 6 and the comparison with Haeupler's bounds use
conductance, spectral gap and *weak conductance* ``Φ_c``.

This module computes all of those quantities (the weak conductance via the
documented surrogate described in DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations

import networkx as nx
import numpy as np

from ..errors import TopologyError

__all__ = [
    "GraphProfile",
    "profile_graph",
    "diameter",
    "max_degree",
    "min_degree",
    "is_constant_degree_family",
    "shortest_path_degree_sum",
    "max_shortest_path_degree_sum",
    "cut_conductance",
    "graph_conductance",
    "spectral_gap",
    "weak_conductance",
    "min_cut_gamma",
]


def _require_connected(graph: nx.Graph) -> None:
    if graph.number_of_nodes() == 0:
        raise TopologyError("graph has no nodes")
    if not nx.is_connected(graph):
        raise TopologyError("graph must be connected")


def diameter(graph: nx.Graph) -> int:
    """Graph diameter ``D`` (longest shortest path)."""
    _require_connected(graph)
    return int(nx.diameter(graph))


def max_degree(graph: nx.Graph) -> int:
    """Maximum degree ``Δ``."""
    if graph.number_of_nodes() == 0:
        raise TopologyError("graph has no nodes")
    return int(max(degree for _, degree in graph.degree()))


def min_degree(graph: nx.Graph) -> int:
    """Minimum degree."""
    if graph.number_of_nodes() == 0:
        raise TopologyError("graph has no nodes")
    return int(min(degree for _, degree in graph.degree()))


def is_constant_degree_family(max_degree_value: int, threshold: int = 8) -> bool:
    """Heuristic check used by experiment selection: ``Δ`` below a fixed constant.

    "Constant maximum degree" is a property of a graph *family*, not a single
    graph; when sweeping a family we treat any Δ bounded by ``threshold``
    (independent of n) as constant-degree.
    """
    return max_degree_value <= threshold


def shortest_path_degree_sum(graph: nx.Graph, source: int, target: int) -> int:
    """Sum of the degrees of the nodes along one shortest ``source → target`` path.

    Lemma 2 of the paper proves this is at most ``3n`` for every pair, which
    drives the ``O(n)`` bound on round-robin broadcast (Theorem 5).
    """
    _require_connected(graph)
    path = nx.shortest_path(graph, source, target)
    return int(sum(graph.degree(node) for node in path))


def max_shortest_path_degree_sum(graph: nx.Graph, source: int | None = None) -> int:
    """Maximum over targets of :func:`shortest_path_degree_sum` from ``source``.

    With ``source=None`` the maximum is additionally taken over all sources
    (exact but quadratic; fine for the graph sizes the simulations use).
    """
    _require_connected(graph)
    nodes = list(graph.nodes())
    sources = nodes if source is None else [source]
    best = 0
    for s in sources:
        lengths, paths = nx.single_source_dijkstra(graph, s, weight=None)
        for target, path in paths.items():
            total = sum(graph.degree(node) for node in path)
            best = max(best, int(total))
    return best


def cut_conductance(graph: nx.Graph, subset: set[int]) -> float:
    """Conductance ``Φ(S)`` of a single cut ``(S, V \\ S)``.

    ``Φ(S) = |E(S, V\\S)| / min(vol(S), vol(V\\S))`` where ``vol`` is the sum
    of degrees.  Raises if the cut is trivial.
    """
    nodes = set(graph.nodes())
    subset = set(subset)
    if not subset or subset == nodes:
        raise TopologyError("cut must be a proper non-empty subset of the nodes")
    complement = nodes - subset
    crossing = sum(1 for u, v in graph.edges() if (u in subset) != (v in subset))
    volume_s = sum(graph.degree(node) for node in subset)
    volume_c = sum(graph.degree(node) for node in complement)
    denominator = min(volume_s, volume_c)
    if denominator == 0:
        return 0.0
    return crossing / denominator


def graph_conductance(graph: nx.Graph, *, exact_limit: int = 14) -> float:
    """Conductance ``Φ(G) = min over cuts of Φ(S)``.

    Exact enumeration is exponential, so it is only attempted for graphs with
    at most ``exact_limit`` nodes; larger graphs fall back to the spectral
    (Cheeger) estimate ``λ₂ / 2 <= Φ <= sqrt(2 λ₂)`` and return the Fiedler
    based lower estimate ``λ₂ / 2``, which is the quantity the bound
    comparisons need (an order-of-magnitude proxy, documented in DESIGN.md).
    """
    _require_connected(graph)
    n = graph.number_of_nodes()
    if n <= exact_limit:
        nodes = list(graph.nodes())
        best = math.inf
        for size in range(1, n // 2 + 1):
            for subset in combinations(nodes, size):
                best = min(best, cut_conductance(graph, set(subset)))
        return float(best)
    return spectral_gap(graph) / 2.0


def spectral_gap(graph: nx.Graph) -> float:
    """Second-smallest eigenvalue of the normalised Laplacian (``λ₂``)."""
    _require_connected(graph)
    laplacian = nx.normalized_laplacian_matrix(graph).toarray()
    eigenvalues = np.linalg.eigvalsh(laplacian)
    eigenvalues.sort()
    return float(max(eigenvalues[1], 0.0))


def weak_conductance(graph: nx.Graph, c: int) -> float:
    """Surrogate for the weak conductance ``Φ_c(G)`` of Censor-Hillel & Shachnai.

    The exact definition (a maximin over, for every node, subsets containing
    it of at least ``n / c`` nodes) is intractable to evaluate directly.  The
    surrogate partitions the graph into at most ``c`` communities with greedy
    modularity maximisation and returns the minimum *internal* conductance of
    a community, computed on the induced subgraph.  For the graph families the
    paper discusses this matches the intended behaviour:

    * cliques and expanders → ``Θ(1)``,
    * the barbell with ``c >= 2`` → ``Θ(1)`` (each clique is a community),
    * the line with any constant ``c`` → ``Θ(1/n)``.
    """
    _require_connected(graph)
    if c < 1:
        raise TopologyError(f"weak conductance parameter c must be >= 1, got {c}")
    if c == 1:
        return graph_conductance(graph)
    communities = nx.algorithms.community.greedy_modularity_communities(
        graph, cutoff=1, best_n=min(c, graph.number_of_nodes())
    )
    worst = math.inf
    for community in communities:
        community = set(community)
        if len(community) <= 1:
            continue
        induced = graph.subgraph(community).copy()
        if not nx.is_connected(induced):
            # A disconnected community has zero internal conductance; this
            # surrogate treats it as the worst case.
            return 0.0
        worst = min(worst, graph_conductance(induced))
    if worst is math.inf:
        return graph_conductance(graph)
    return float(worst)


def min_cut_gamma(graph: nx.Graph) -> float:
    """Haeupler's min-cut measure ``γ`` used by the Table 2 comparison.

    For the uniform gossip model Haeupler's ``γ`` is (up to constants) the
    minimum over cuts of the probability mass of edges crossing the cut,
    ``min_S sum_{(u,v) across S} (1/(n d_u) + 1/(n d_v))``.  We evaluate it
    exactly for small graphs and via the global minimum edge cut scaled by the
    typical degree for larger ones (documented proxy, Table 2 only needs the
    order of magnitude).
    """
    _require_connected(graph)
    n = graph.number_of_nodes()

    def cut_probability(subset: set[int]) -> float:
        total = 0.0
        for u, v in graph.edges():
            if (u in subset) != (v in subset):
                total += 1.0 / (n * graph.degree(u)) + 1.0 / (n * graph.degree(v))
        return total

    if n <= 14:
        nodes = list(graph.nodes())
        best = math.inf
        for size in range(1, n // 2 + 1):
            for subset in combinations(nodes, size):
                best = min(best, cut_probability(set(subset)))
        return float(best)
    # Larger graphs: use the sparsest of (a) the global min edge cut and
    # (b) the spectral cut, both evaluated through cut_probability.
    cut_edges = nx.minimum_edge_cut(graph)
    # Reconstruct one side of that cut.
    pruned = graph.copy()
    pruned.remove_edges_from(cut_edges)
    component = next(nx.connected_components(pruned))
    return float(cut_probability(set(component)))


@dataclass(frozen=True)
class GraphProfile:
    """Summary of every structural quantity the bounds need, for one graph."""

    n: int
    edges: int
    diameter: int
    max_degree: int
    min_degree: int
    conductance: float
    spectral_gap: float
    max_path_degree_sum: int

    def describe(self) -> str:
        return (
            f"n={self.n}, |E|={self.edges}, D={self.diameter}, Δ={self.max_degree}, "
            f"δ={self.min_degree}, Φ≈{self.conductance:.4f}, λ₂≈{self.spectral_gap:.4f}"
        )


def profile_graph(graph: nx.Graph, *, include_path_degree_sum: bool = False) -> GraphProfile:
    """Compute a :class:`GraphProfile` for ``graph``.

    ``include_path_degree_sum`` is off by default because the exact maximum is
    quadratic in ``n``; experiments that need Lemma 2's quantity opt in.
    """
    _require_connected(graph)
    return GraphProfile(
        n=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        diameter=diameter(graph),
        max_degree=max_degree(graph),
        min_degree=min_degree(graph),
        conductance=graph_conductance(graph),
        spectral_gap=spectral_gap(graph),
        max_path_degree_sum=(
            max_shortest_path_degree_sum(graph, source=0) if include_path_degree_sum else 0
        ),
    )
