"""Graph topology generators used throughout the paper.

Every generator returns a connected, undirected :class:`networkx.Graph` whose
nodes are consecutive integers ``0 .. n-1``.  The families cover everything
the paper mentions explicitly:

* constant-maximum-degree graphs where uniform algebraic gossip is order
  optimal (Theorem 3): line, ring, 2-D grid, torus, binary tree, bounded-degree
  random regular graphs, hypercube-like constructions;
* the complete graph (Deb et al.'s original setting);
* the **barbell graph** — two cliques joined by a single edge — which is the
  worst case for uniform algebraic gossip (Ω(n²) rounds, Section 1.1) but has
  large weak conductance, so TAG + IS is fast on it (Section 6);
* generalisations used by the weak-conductance experiments: the dumbbell
  (cliques joined by a path) and the clique chain (``c`` cliques in a row);
* random graphs (Erdős–Rényi, random regular) for robustness experiments.
"""

from __future__ import annotations

import math
import weakref
from collections import OrderedDict
from typing import Callable, TypeVar

import networkx as nx
import numpy as np

from ..errors import TopologyError
from .csr import CSRGraph

#: Non-builder exports; every ``@register_topology``-decorated builder is
#: appended automatically, so ``__all__`` and :data:`TOPOLOGY_BUILDERS` can
#: never drift from the generators actually defined in this module.
__all__ = [
    "two_dimensional_side",
    "TOPOLOGY_BUILDERS",
    "register_topology",
    "build_topology",
    "topology_cache_key",
    "neighbor_lists",
    "csr_adjacency",
]

#: Registry mapping a topology name to its builder.  Populated exclusively by
#: :func:`register_topology`; experiment definitions, scenario specs and
#: benchmark parameterisations refer to topologies by these names.
TOPOLOGY_BUILDERS: dict[str, Callable[..., nx.Graph]] = {}

_Builder = TypeVar("_Builder", bound=Callable[..., nx.Graph])


def register_topology(name: str) -> Callable[[_Builder], _Builder]:
    """Register a topology builder under ``name`` (and export it).

    Every generator in this module carries this decorator; it is also the
    extension point for user-defined families::

        @register_topology("my_mesh")
        def my_mesh_graph(n: int) -> nx.Graph: ...

    Builders must return a connected, undirected graph whose nodes are the
    consecutive integers ``0 .. n-1`` (``tests/test_graphs_topologies.py``
    asserts this for every registered entry).
    """

    def decorate(builder: _Builder) -> _Builder:
        if name in TOPOLOGY_BUILDERS:
            raise TopologyError(f"topology {name!r} is already registered")
        TOPOLOGY_BUILDERS[name] = builder
        if builder.__name__ not in __all__:
            __all__.append(builder.__name__)
        return builder

    return decorate


# Memoized adjacency.  Trial runners reuse one graph object across every
# trial of a sweep, so the sorted neighbour lists (and the CSR form the
# event-driven engine walks) are built once per graph instead of once per
# trial.  Two cache tiers serve this:
#
# * a *keyed* LRU, indexed by the (name, n, kwargs) fingerprint
#   :func:`build_topology` stamps on every graph it returns.  Because the key
#   is value-like, the graph-free CSR pipeline (`build_csr_topology`) and the
#   networkx pipeline share entries — whichever materialises first, the other
#   reuses its arrays.  The capacity bound keeps large-n arrays from pinning
#   memory across sweeps over many topologies.
# * the per-instance WeakKeyDictionary fallback for unstamped graphs (built
#   directly, not through `build_topology`).  The (nodes, edges) shape guard
#   protects both tiers against in-place mutation.
_KEYED_CACHE_CAPACITY = 8
_KEYED_CSR: "OrderedDict[tuple, tuple]" = OrderedDict()
_KEYED_NEIGHBORS: "OrderedDict[tuple, tuple]" = OrderedDict()
_NEIGHBOR_CACHE: "weakref.WeakKeyDictionary[nx.Graph, tuple]" = (
    weakref.WeakKeyDictionary()
)
_CSR_CACHE: "weakref.WeakKeyDictionary[nx.Graph, tuple]" = weakref.WeakKeyDictionary()


def topology_cache_key(name: str, n: int, kwargs: dict) -> tuple:
    """Value-identity of one ``build_topology``/``build_csr_topology`` call.

    Hashable and deterministic: ``(name, n, sorted kwarg items)``.  Equal keys
    mean "the same graph down to the last edge" (builders are seed-derived
    deterministic functions of exactly these arguments), which is what lets
    the adjacency caches serve both materialization pipelines.
    """
    return (name, int(n), tuple(sorted(kwargs.items())))


def _keyed_cache_get(cache: "OrderedDict[tuple, tuple]", key: tuple):
    entry = cache.get(key)
    if entry is not None:
        cache.move_to_end(key)
    return entry


def _keyed_cache_put(cache: "OrderedDict[tuple, tuple]", key: tuple, entry: tuple) -> None:
    cache[key] = entry
    cache.move_to_end(key)
    while len(cache) > _KEYED_CACHE_CAPACITY:
        cache.popitem(last=False)


def neighbor_lists(graph: nx.Graph) -> dict[int, tuple[int, ...]]:
    """Sorted neighbour tuple per node, memoized.

    This is the neighbour ordering every partner selector draws against
    (``tuple(sorted(graph.neighbors(node)))``), so consumers share one
    construction per graph rather than rebuilding adjacency per trial.
    Graphs stamped by :func:`build_topology` share entries by value key;
    unstamped instances fall back to the per-instance cache.  Callers must
    treat the returned mapping as immutable.
    """
    shape = (graph.number_of_nodes(), graph.number_of_edges())
    key = graph.graph.get("topology_cache_key")
    if key is not None:
        entry = _keyed_cache_get(_KEYED_NEIGHBORS, key)
        if entry is not None and entry[0] == shape:
            return entry[1]
    cached = _NEIGHBOR_CACHE.get(graph)
    if cached is not None and cached[0] == shape:
        return cached[1]
    lists = {node: tuple(sorted(graph.neighbors(node))) for node in graph.nodes()}
    _NEIGHBOR_CACHE[graph] = (shape, lists)
    if key is not None:
        _keyed_cache_put(_KEYED_NEIGHBORS, key, (shape, lists))
    return lists


def csr_adjacency(graph) -> tuple[np.ndarray, np.ndarray]:
    """Compressed-sparse-row adjacency in node-*position* space, memoized.

    Returns ``(indptr, indices)``: the neighbours of the node at position
    ``p`` of ``sorted(graph.nodes())`` are ``indices[indptr[p]:indptr[p+1]]``
    (themselves positions, in ascending node order — the same ordering
    :func:`neighbor_lists` exposes).  Both arrays are read-only; this is the
    O(E) structure the event-driven engine walks instead of an n×n matrix.

    A :class:`~repro.graphs.csr.CSRGraph` *is* this structure already and is
    returned as-is; stamped networkx graphs share entries with the graph-free
    pipeline through the keyed cache.
    """
    if isinstance(graph, CSRGraph):
        return graph.indptr, graph.indices
    shape = (graph.number_of_nodes(), graph.number_of_edges())
    key = graph.graph.get("topology_cache_key")
    if key is not None:
        entry = _keyed_cache_get(_KEYED_CSR, key)
        if entry is not None and entry[0] == shape:
            return entry[1]
    cached = _CSR_CACHE.get(graph)
    if cached is not None and cached[0] == shape:
        return cached[1]
    lists = neighbor_lists(graph)
    nodes = sorted(lists)
    pos = {node: index for index, node in enumerate(nodes)}
    degrees = np.fromiter((len(lists[node]) for node in nodes), dtype=np.int64,
                          count=len(nodes))
    indptr = np.zeros(len(nodes) + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    indices = np.fromiter(
        (pos[neighbor] for node in nodes for neighbor in lists[node]),
        dtype=np.int64,
        count=int(indptr[-1]),
    )
    indptr.setflags(write=False)
    indices.setflags(write=False)
    _CSR_CACHE[graph] = (shape, (indptr, indices))
    if key is not None:
        _keyed_cache_put(_KEYED_CSR, key, (shape, (indptr, indices)))
    return indptr, indices


def _relabel_consecutive(graph: nx.Graph) -> nx.Graph:
    """Relabel nodes to ``0 .. n-1`` preserving adjacency."""
    mapping = {node: index for index, node in enumerate(sorted(graph.nodes()))}
    return nx.relabel_nodes(graph, mapping, copy=True)


def _check_size(n: int, minimum: int = 2) -> None:
    if n < minimum:
        raise TopologyError(f"topology requires at least {minimum} nodes, got {n}")


@register_topology("line")
def line_graph(n: int) -> nx.Graph:
    """Path graph on ``n`` nodes: maximum degree 2, diameter ``n - 1``."""
    _check_size(n)
    return nx.path_graph(n)


@register_topology("ring")
def ring_graph(n: int) -> nx.Graph:
    """Cycle on ``n`` nodes: maximum degree 2, diameter ``floor(n / 2)``."""
    _check_size(n, minimum=3)
    return nx.cycle_graph(n)


def two_dimensional_side(n: int) -> int:
    """Side length of the largest square grid with at most ``n`` nodes."""
    return max(2, int(math.isqrt(n)))


@register_topology("grid")
def grid_graph(n: int) -> nx.Graph:
    """Two-dimensional square grid with approximately ``n`` nodes.

    The actual node count is ``side ** 2`` where ``side = floor(sqrt(n))``;
    maximum degree 4 and diameter ``2 (side - 1) = Θ(sqrt n)``.
    """
    _check_size(n, minimum=4)
    side = two_dimensional_side(n)
    graph = nx.grid_2d_graph(side, side)
    return _relabel_consecutive(graph)


@register_topology("torus")
def torus_graph(n: int) -> nx.Graph:
    """Two-dimensional torus (grid with wraparound): 4-regular."""
    _check_size(n, minimum=9)
    side = two_dimensional_side(n)
    graph = nx.grid_2d_graph(side, side, periodic=True)
    return _relabel_consecutive(graph)


@register_topology("complete")
def complete_graph(n: int) -> nx.Graph:
    """Complete graph ``K_n``: diameter 1, maximum degree ``n - 1``."""
    _check_size(n)
    return nx.complete_graph(n)


@register_topology("star")
def star_graph(n: int) -> nx.Graph:
    """Star: one hub connected to ``n - 1`` leaves (diameter 2, Δ = n - 1)."""
    _check_size(n)
    return nx.star_graph(n - 1)


@register_topology("binary_tree")
def binary_tree_graph(n: int) -> nx.Graph:
    """Complete-ish binary tree on exactly ``n`` nodes.

    Node ``i`` has children ``2i + 1`` and ``2i + 2`` when they exist, so the
    maximum degree is 3 and the depth is ``Θ(log n)``.
    """
    _check_size(n)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for node in range(n):
        for child in (2 * node + 1, 2 * node + 2):
            if child < n:
                graph.add_edge(node, child)
    return graph


@register_topology("hypercube")
def hypercube_graph(n: int) -> nx.Graph:
    """Boolean hypercube with ``2 ** round(log2 n)`` nodes (degree = log2 n)."""
    _check_size(n, minimum=4)
    dimension = max(2, int(round(math.log2(n))))
    graph = nx.hypercube_graph(dimension)
    return _relabel_consecutive(graph)


@register_topology("barbell")
def barbell_graph(n: int) -> nx.Graph:
    """The paper's barbell: two cliques of ``n // 2`` nodes joined by one edge.

    This is the canonical "bad" topology for uniform algebraic gossip (Ω(n²)
    rounds for all-to-all, Section 1.1) and the canonical "good" topology for
    the IS protocol (large weak conductance, Section 6).
    """
    _check_size(n, minimum=4)
    half = n // 2
    if half < 2:
        raise TopologyError(f"barbell graph requires at least 4 nodes, got {n}")
    graph = nx.Graph()
    left = list(range(half))
    right = list(range(half, 2 * half))
    for clique in (left, right):
        for i, u in enumerate(clique):
            for v in clique[i + 1 :]:
                graph.add_edge(u, v)
    graph.add_edge(left[-1], right[0])
    # If n is odd, attach the leftover node to the left clique so |V| == n.
    if 2 * half < n:
        extra = 2 * half
        for u in left:
            graph.add_edge(extra, u)
    return graph


@register_topology("dumbbell")
def dumbbell_graph(n: int, path_length: int = 2) -> nx.Graph:
    """Two cliques connected by a path of ``path_length`` intermediate nodes."""
    _check_size(n, minimum=6)
    if path_length < 0:
        raise TopologyError(f"path_length must be non-negative, got {path_length}")
    clique_size = (n - path_length) // 2
    if clique_size < 2:
        raise TopologyError(
            f"dumbbell with n={n}, path_length={path_length} leaves cliques too small"
        )
    graph = nx.Graph()
    left = list(range(clique_size))
    path = list(range(clique_size, clique_size + path_length))
    right = list(range(clique_size + path_length, 2 * clique_size + path_length))
    for clique in (left, right):
        for i, u in enumerate(clique):
            for v in clique[i + 1 :]:
                graph.add_edge(u, v)
    chain = [left[-1], *path, right[0]]
    for u, v in zip(chain, chain[1:]):
        graph.add_edge(u, v)
    # Attach any leftover nodes (from integer division) to the left clique.
    next_node = 2 * clique_size + path_length
    while next_node < n:
        for u in left:
            graph.add_edge(next_node, u)
        next_node += 1
    return graph


@register_topology("clique_chain")
def clique_chain_graph(n: int, cliques: int = 4) -> nx.Graph:
    """``cliques`` equal cliques arranged in a chain, consecutive ones sharing one edge.

    Generalises the barbell (``cliques = 2``).  Its weak conductance for
    ``c >= cliques`` is a constant while its (ordinary) conductance is
    ``O(1/n)``, which is exactly the regime Theorem 7 targets.
    """
    _check_size(n, minimum=2 * cliques)
    if cliques < 2:
        raise TopologyError(f"clique_chain_graph needs at least 2 cliques, got {cliques}")
    size = n // cliques
    if size < 2:
        raise TopologyError(
            f"clique_chain_graph with n={n}, cliques={cliques} leaves cliques too small"
        )
    graph = nx.Graph()
    groups: list[list[int]] = []
    next_node = 0
    for index in range(cliques):
        count = size + (1 if index < n - size * cliques else 0)
        group = list(range(next_node, next_node + count))
        next_node += count
        for i, u in enumerate(group):
            for v in group[i + 1 :]:
                graph.add_edge(u, v)
        groups.append(group)
    for left, right in zip(groups, groups[1:]):
        graph.add_edge(left[-1], right[0])
    return graph


@register_topology("lollipop")
def lollipop_graph(n: int) -> nx.Graph:
    """Lollipop: a clique of ``n // 2`` nodes with a path of ``n - n//2`` nodes attached.

    A classic slow-mixing graph — the clique traps a random walk while the
    path stretches the diameter — used in robustness sweeps alongside the
    barbell.
    """
    _check_size(n, minimum=6)
    clique_size = n // 2
    path_size = n - clique_size
    graph = nx.lollipop_graph(clique_size, path_size)
    return _relabel_consecutive(graph)


@register_topology("caterpillar")
def caterpillar_graph(n: int, legs_per_spine: int = 2) -> nx.Graph:
    """Caterpillar: a spine path where every spine node carries pendant leaves.

    Constant maximum degree (``legs_per_spine + 2``) with diameter Θ(n), so it
    belongs to the Theorem 3 family but stresses the many-leaves case where
    most nodes have degree 1.
    """
    _check_size(n, minimum=4)
    if legs_per_spine < 1:
        raise TopologyError(f"legs_per_spine must be positive, got {legs_per_spine}")
    graph = nx.Graph()
    spine_length = max(2, n // (legs_per_spine + 1))
    for spine in range(spine_length - 1):
        graph.add_edge(spine, spine + 1)
    next_node = spine_length
    spine = 0
    while next_node < n:
        graph.add_edge(spine % spine_length, next_node)
        next_node += 1
        spine += 1
    return graph


@register_topology("small_world")
def small_world_graph(n: int, neighbours: int = 4, rewire_probability: float = 0.1,
                      seed: int = 0) -> nx.Graph:
    """Connected Watts–Strogatz small-world graph.

    Near-constant degree with logarithmic diameter — a realistic "good"
    topology to contrast with the engineered worst cases.
    """
    _check_size(n, minimum=8)
    if neighbours < 2 or neighbours >= n:
        raise TopologyError(f"neighbours must lie in [2, n), got {neighbours}")
    if not 0.0 <= rewire_probability <= 1.0:
        raise TopologyError(
            f"rewire_probability must lie in [0, 1], got {rewire_probability}"
        )
    graph = nx.connected_watts_strogatz_graph(
        n, neighbours, rewire_probability, tries=200, seed=seed
    )
    return _relabel_consecutive(graph)


@register_topology("star_of_cliques")
def star_of_cliques_graph(n: int, cliques: int = 4) -> nx.Graph:
    """``cliques`` equal cliques all attached to one central hub node.

    Like the clique chain this has constant weak conductance but, unlike it,
    every inter-clique path goes through the single hub — the most extreme
    bottleneck-star the IS experiments use.
    """
    _check_size(n, minimum=2 * cliques + 1)
    if cliques < 2:
        raise TopologyError(f"star_of_cliques_graph needs at least 2 cliques, got {cliques}")
    graph = nx.Graph()
    hub = 0
    members = n - 1
    size = members // cliques
    if size < 2:
        raise TopologyError(
            f"star_of_cliques_graph with n={n}, cliques={cliques} leaves cliques too small"
        )
    next_node = 1
    for index in range(cliques):
        count = size + (1 if index < members - size * cliques else 0)
        group = list(range(next_node, next_node + count))
        next_node += count
        for i, u in enumerate(group):
            for v in group[i + 1 :]:
                graph.add_edge(u, v)
        graph.add_edge(hub, group[0])
    return graph


@register_topology("random_regular")
def random_regular_graph(n: int, degree: int = 3, seed: int = 0) -> nx.Graph:
    """Connected random ``degree``-regular graph (constant maximum degree)."""
    _check_size(n, minimum=degree + 1)
    if degree < 2:
        raise TopologyError(f"degree must be at least 2, got {degree}")
    if (n * degree) % 2 != 0:
        n += 1  # a d-regular graph needs n*d even
    rng = np.random.default_rng(seed)
    for attempt in range(100):
        graph = nx.random_regular_graph(degree, n, seed=int(rng.integers(0, 2**31)))
        if nx.is_connected(graph):
            return _relabel_consecutive(graph)
    raise TopologyError(
        f"failed to sample a connected {degree}-regular graph on {n} nodes"
    )  # pragma: no cover - overwhelmingly unlikely


@register_topology("erdos_renyi")
def erdos_renyi_graph(n: int, average_degree: float = 6.0, seed: int = 0) -> nx.Graph:
    """Connected Erdős–Rényi graph ``G(n, p)`` with ``p = average_degree / n``."""
    _check_size(n)
    p = min(1.0, max(average_degree, 2.0 * math.log(max(n, 2))) / n)
    rng = np.random.default_rng(seed)
    for attempt in range(100):
        graph = nx.fast_gnp_random_graph(n, p, seed=int(rng.integers(0, 2**31)))
        if nx.is_connected(graph):
            return _relabel_consecutive(graph)
        p = min(1.0, p * 1.2)
    raise TopologyError(f"failed to sample a connected G({n}, p) graph")  # pragma: no cover


@register_topology("erdos_renyi_logn")
def erdos_renyi_logn_graph(n: int, c: float = 2.0, seed: int = 0) -> nx.Graph:
    """Connected ``G(n, p)`` at the connectivity threshold: ``p = c·log n / n``.

    The sparse regime the event-driven engine targets: average degree
    ``c·log n`` keeps the edge count ``O(n log n)`` while ``c > 1`` keeps the
    graph connected with high probability (retries with a gently inflated
    ``p`` cover the rest).  Sampling derives deterministically from ``seed``,
    so equal ``(n, c, seed)`` always yields the same graph — what keeps
    scenario fingerprints stable.
    """
    _check_size(n, minimum=4)
    if c <= 1.0:
        raise TopologyError(
            f"c must exceed 1 (the connectivity threshold of G(n, c log n / n)), got {c}"
        )
    p = min(1.0, c * math.log(n) / n)
    rng = np.random.default_rng(seed)
    for attempt in range(100):
        graph = nx.fast_gnp_random_graph(n, p, seed=int(rng.integers(0, 2**31)))
        if nx.is_connected(graph):
            return _relabel_consecutive(graph)
        p = min(1.0, p * 1.2)
    raise TopologyError(
        f"failed to sample a connected G({n}, {c} log n / n) graph"
    )  # pragma: no cover - overwhelmingly unlikely for c > 1


@register_topology("ring_of_cliques")
def ring_of_cliques_graph(n: int, cliques: int = 4) -> nx.Graph:
    """``cliques`` equal cliques arranged in a ring, consecutive ones sharing one edge.

    The cyclic cousin of the clique chain: with ``cliques = Θ(n / log n)``
    the graph stays sparse (``O(n log n)`` edges for clique size
    ``Θ(log n)``) while every inter-clique path crosses single-edge
    bottlenecks — a deterministic large-n stress case for the event-driven
    engine.  Entirely deterministic, so scenario fingerprints are stable by
    construction.
    """
    _check_size(n, minimum=2 * cliques)
    if cliques < 3:
        raise TopologyError(
            f"ring_of_cliques_graph needs at least 3 cliques to form a ring, got {cliques}"
        )
    size = n // cliques
    if size < 2:
        raise TopologyError(
            f"ring_of_cliques_graph with n={n}, cliques={cliques} leaves cliques too small"
        )
    graph = nx.Graph()
    groups: list[list[int]] = []
    next_node = 0
    for index in range(cliques):
        count = size + (1 if index < n - size * cliques else 0)
        group = list(range(next_node, next_node + count))
        next_node += count
        for i, u in enumerate(group):
            for v in group[i + 1 :]:
                graph.add_edge(u, v)
        groups.append(group)
    for left, right in zip(groups, groups[1:]):
        graph.add_edge(left[-1], right[0])
    graph.add_edge(groups[-1][-1], groups[0][0])
    return graph


@register_topology("expander")
def expander_graph(n: int, seed: int = 0) -> nx.Graph:
    """A constant-degree expander surrogate: a connected random 4-regular graph.

    Random regular graphs are expanders with high probability, which is all
    the conductance-sensitive experiments need.
    """
    return random_regular_graph(n, degree=4, seed=seed)


def build_topology(name: str, n: int, **kwargs) -> nx.Graph:
    """Build a topology by registry name.

    Raises
    ------
    TopologyError:
        If the name is unknown.
    """
    try:
        builder = TOPOLOGY_BUILDERS[name]
    except KeyError:
        raise TopologyError(
            f"unknown topology {name!r}; known: {sorted(TOPOLOGY_BUILDERS)}"
        ) from None
    graph = builder(n, **kwargs)
    # Stamp the value identity of this call so the adjacency caches can be
    # shared across graph instances (and with the graph-free CSR pipeline).
    graph.graph["topology_cache_key"] = topology_cache_key(name, n, kwargs)
    return graph
