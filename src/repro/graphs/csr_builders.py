"""Direct-CSR topology generators: the graph-free materialization path.

Every builder here produces a :class:`~repro.graphs.csr.CSRGraph` whose
``(indptr, indices)`` are **byte-identical** to
``csr_adjacency(networkx_builder(n, **kwargs))`` for the same arguments —
same validation errors, same seed-derived retry loops, same sampled edges.
The networkx builders in :mod:`repro.graphs.topologies` stay the reference;
``tests/test_csr_pipeline.py`` asserts the equivalence for every family
registered here across sizes and seeds.

The point is scale: at n = 10^5 the networkx object behind a scenario costs
~10 s and most of ~500 MiB peak RSS, while the event-driven engine only reads
the CSR arrays.  Emitting those arrays directly makes n = 10^6 materialise in
seconds within a few hundred MiB.

The random families replicate the exact sampling algorithms of networkx
(Batagelj–Brandes for ``G(n, p)``, Steger–Wormald pairing for random regular
graphs, Watts–Strogatz rewiring) against the same ``random.Random`` streams,
because byte-identity per seed is the contract that lets both pipelines share
one scenario fingerprint and one result store.
"""

from __future__ import annotations

import math
import random
from array import array
from collections import defaultdict
from typing import Callable, TypeVar

import numpy as np

from ..errors import TopologyError
from .csr import CSRGraph, csr_from_edges
from .topologies import (
    TOPOLOGY_BUILDERS,
    _check_size,
    _keyed_cache_get,
    _keyed_cache_put,
    _KEYED_CSR,
    topology_cache_key,
    two_dimensional_side,
)

__all__ = [
    "CSR_BUILDERS",
    "register_csr_topology",
    "has_csr_builder",
    "build_csr_topology",
]

#: Registry mapping a topology name to its direct-CSR builder.  Strictly a
#: subset of :data:`~repro.graphs.topologies.TOPOLOGY_BUILDERS`: a direct
#: builder is an optimisation of an existing networkx reference, never a new
#: family of its own.
CSR_BUILDERS: dict[str, Callable[..., CSRGraph]] = {}

_Builder = TypeVar("_Builder", bound=Callable[..., CSRGraph])


def register_csr_topology(name: str) -> Callable[[_Builder], _Builder]:
    """Register a direct-CSR builder shadowing the networkx reference ``name``.

    The networkx builder must already exist — the direct path is only ever a
    byte-identical accelerated twin, so registering a CSR builder without its
    reference is a :class:`~repro.errors.TopologyError`.
    """

    def decorate(builder: _Builder) -> _Builder:
        if name not in TOPOLOGY_BUILDERS:
            raise TopologyError(
                f"cannot register CSR builder {name!r}: no networkx reference "
                f"builder of that name (register_topology first)"
            )
        if name in CSR_BUILDERS:
            raise TopologyError(f"CSR topology {name!r} is already registered")
        CSR_BUILDERS[name] = builder
        return builder

    return decorate


def has_csr_builder(name: str) -> bool:
    """Whether ``name`` has a direct-CSR builder (i.e. can skip networkx)."""
    return name in CSR_BUILDERS


def build_csr_topology(
    name: str, n: int, *, use_cache: bool = True, **kwargs
) -> CSRGraph:
    """Build a topology by registry name straight to CSR, bypassing networkx.

    Consults the same keyed adjacency cache as
    :func:`~repro.graphs.topologies.csr_adjacency`, so the two pipelines share
    one construction per ``(name, n, kwargs)`` no matter which ran first.
    Pass ``use_cache=False`` to force a cold build (the stats CLI uses this to
    report honest materialise timings).

    Raises
    ------
    TopologyError:
        If the name is unknown, or known but not yet converted to the
        direct-CSR path.
    """
    builder = CSR_BUILDERS.get(name)
    if builder is None:
        if name not in TOPOLOGY_BUILDERS:
            raise TopologyError(
                f"unknown topology {name!r}; known: {sorted(TOPOLOGY_BUILDERS)}"
            )
        raise TopologyError(
            f"topology {name!r} has no direct-CSR builder (families converted "
            f"so far: {sorted(CSR_BUILDERS)}); build it through "
            f"build_topology + csr_adjacency instead"
        )
    key = topology_cache_key(name, n, kwargs)
    if use_cache:
        entry = _keyed_cache_get(_KEYED_CSR, key)
        if entry is not None:
            indptr, indices = entry[1]
            return CSRGraph(len(indptr) - 1, indptr, indices)
    graph = builder(n, **kwargs)
    if use_cache:
        shape = (graph.number_of_nodes(), graph.number_of_edges())
        _keyed_cache_put(_KEYED_CSR, key, (shape, (graph.indptr, graph.indices)))
    return graph


# ----------------------------------------------------------------------
# Deterministic families: vectorised edge-list emission.
# ----------------------------------------------------------------------


@register_csr_topology("line")
def line_csr(n: int) -> CSRGraph:
    """Direct-CSR twin of :func:`~repro.graphs.topologies.line_graph`."""
    _check_size(n)
    left = np.arange(n - 1, dtype=np.int64)
    return csr_from_edges(n, left, left + 1)


@register_csr_topology("ring")
def ring_csr(n: int) -> CSRGraph:
    """Direct-CSR twin of :func:`~repro.graphs.topologies.ring_graph`."""
    _check_size(n, minimum=3)
    nodes = np.arange(n, dtype=np.int64)
    return csr_from_edges(n, nodes, np.roll(nodes, -1))


@register_csr_topology("grid")
def grid_csr(n: int) -> CSRGraph:
    """Direct-CSR twin of :func:`~repro.graphs.topologies.grid_graph`."""
    _check_size(n, minimum=4)
    side = two_dimensional_side(n)
    ids = np.arange(side * side, dtype=np.int64).reshape(side, side)
    sources = np.concatenate([ids[:, :-1].ravel(), ids[:-1, :].ravel()])
    targets = np.concatenate([ids[:, 1:].ravel(), ids[1:, :].ravel()])
    return csr_from_edges(side * side, sources, targets)


@register_csr_topology("torus")
def torus_csr(n: int) -> CSRGraph:
    """Direct-CSR twin of :func:`~repro.graphs.topologies.torus_graph`."""
    _check_size(n, minimum=9)
    side = two_dimensional_side(n)
    ids = np.arange(side * side, dtype=np.int64).reshape(side, side)
    flat = ids.ravel()
    # side >= 3, so the wraparound neighbours are distinct from the inner
    # ones and every undirected edge is emitted exactly once.
    sources = np.concatenate([flat, flat])
    targets = np.concatenate(
        [np.roll(ids, -1, axis=1).ravel(), np.roll(ids, -1, axis=0).ravel()]
    )
    return csr_from_edges(side * side, sources, targets)


@register_csr_topology("ring_of_cliques")
def ring_of_cliques_csr(n: int, cliques: int = 4) -> CSRGraph:
    """Direct-CSR twin of :func:`~repro.graphs.topologies.ring_of_cliques_graph`."""
    _check_size(n, minimum=2 * cliques)
    if cliques < 3:
        raise TopologyError(
            f"ring_of_cliques_graph needs at least 3 cliques to form a ring, got {cliques}"
        )
    size = n // cliques
    if size < 2:
        raise TopologyError(
            f"ring_of_cliques_graph with n={n}, cliques={cliques} leaves cliques too small"
        )
    counts = np.full(cliques, size, dtype=np.int64)
    counts[: n - size * cliques] += 1
    offsets = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts)])
    triu: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    sources: list[np.ndarray] = []
    targets: list[np.ndarray] = []
    for index in range(cliques):
        count = int(counts[index])
        if count not in triu:
            rows, cols = np.triu_indices(count, k=1)
            triu[count] = (rows.astype(np.int64), cols.astype(np.int64))
        rows, cols = triu[count]
        sources.append(rows + offsets[index])
        targets.append(cols + offsets[index])
    firsts = offsets[:-1]
    lasts = offsets[1:] - 1
    sources.append(lasts[:-1])
    targets.append(firsts[1:])
    sources.append(lasts[-1:])
    targets.append(firsts[:1])
    return csr_from_edges(n, np.concatenate(sources), np.concatenate(targets))


# ----------------------------------------------------------------------
# Random families: exact replicas of the networkx sampling algorithms fed by
# the same random.Random streams the wrappers derive from their seeds.
# ----------------------------------------------------------------------


def _fast_gnp_edges(n: int, p: float, seed: random.Random) -> CSRGraph:
    """Batagelj–Brandes ``G(n, p)`` sampler, stream-identical to
    ``nx.fast_gnp_random_graph``; edges land in compact int64 arrays."""
    if p >= 1.0:
        # fast_gnp delegates to gnp_random_graph, which returns the complete
        # graph without consuming any draws.
        rows, cols = np.triu_indices(n, k=1)
        return csr_from_edges(n, rows.astype(np.int64), cols.astype(np.int64))
    sources = array("q")
    targets = array("q")
    lp = math.log(1.0 - p)
    log = math.log
    draw = seed.random
    v = 1
    w = -1
    while v < n:
        lr = log(1.0 - draw())
        w = w + 1 + int(lr / lp)
        while w >= v and v < n:
            w = w - v
            v = v + 1
        if v < n:
            sources.append(v)
            targets.append(w)
    return csr_from_edges(
        n, np.frombuffer(sources, dtype=np.int64), np.frombuffer(targets, dtype=np.int64)
    )


@register_csr_topology("erdos_renyi_logn")
def erdos_renyi_logn_csr(n: int, c: float = 2.0, seed: int = 0) -> CSRGraph:
    """Direct-CSR twin of :func:`~repro.graphs.topologies.erdos_renyi_logn_graph`."""
    _check_size(n, minimum=4)
    if c <= 1.0:
        raise TopologyError(
            f"c must exceed 1 (the connectivity threshold of G(n, c log n / n)), got {c}"
        )
    p = min(1.0, c * math.log(n) / n)
    rng = np.random.default_rng(seed)
    for attempt in range(100):
        graph = _fast_gnp_edges(n, p, random.Random(int(rng.integers(0, 2**31))))
        if graph.is_connected():
            return graph
        p = min(1.0, p * 1.2)
    raise TopologyError(
        f"failed to sample a connected G({n}, {c} log n / n) graph"
    )  # pragma: no cover - overwhelmingly unlikely for c > 1


def _random_regular_edges(d: int, n: int, seed: random.Random) -> set[tuple[int, int]]:
    """Steger–Wormald pairing, stream-identical to ``nx.random_regular_graph``."""

    def _suitable(edges, potential_edges):
        if not potential_edges:
            return True
        for s1 in potential_edges:
            for s2 in potential_edges:
                if s1 == s2:
                    break
                if s1 > s2:
                    s1, s2 = s2, s1
                if (s1, s2) not in edges:
                    return True
        return False

    def _try_creation():
        edges = set()
        stubs = list(range(n)) * d
        while stubs:
            potential_edges = defaultdict(lambda: 0)
            seed.shuffle(stubs)
            stubiter = iter(stubs)
            for s1, s2 in zip(stubiter, stubiter):
                if s1 > s2:
                    s1, s2 = s2, s1
                if s1 != s2 and ((s1, s2) not in edges):
                    edges.add((s1, s2))
                else:
                    potential_edges[s1] += 1
                    potential_edges[s2] += 1
            if not _suitable(edges, potential_edges):
                return None
            stubs = [
                node
                for node, potential in potential_edges.items()
                for _ in range(potential)
            ]
        return edges

    edges = _try_creation()
    while edges is None:
        edges = _try_creation()
    return edges


def _regular_csr(n: int, degree: int, seed: int, failure: str) -> CSRGraph:
    rng = np.random.default_rng(seed)
    for attempt in range(100):
        edges = _random_regular_edges(degree, n, random.Random(int(rng.integers(0, 2**31))))
        sources = np.fromiter((u for u, _ in edges), dtype=np.int64, count=len(edges))
        targets = np.fromiter((v for _, v in edges), dtype=np.int64, count=len(edges))
        graph = csr_from_edges(n, sources, targets)
        if graph.is_connected():
            return graph
    raise TopologyError(failure)  # pragma: no cover - overwhelmingly unlikely


@register_csr_topology("random_regular")
def random_regular_csr(n: int, degree: int = 3, seed: int = 0) -> CSRGraph:
    """Direct-CSR twin of :func:`~repro.graphs.topologies.random_regular_graph`."""
    _check_size(n, minimum=degree + 1)
    if degree < 2:
        raise TopologyError(f"degree must be at least 2, got {degree}")
    if (n * degree) % 2 != 0:
        n += 1  # a d-regular graph needs n*d even
    return _regular_csr(
        n, degree, seed,
        f"failed to sample a connected {degree}-regular graph on {n} nodes",
    )


@register_csr_topology("expander")
def expander_csr(n: int, seed: int = 0) -> CSRGraph:
    """Direct-CSR twin of :func:`~repro.graphs.topologies.expander_graph`."""
    return random_regular_csr(n, degree=4, seed=seed)


def _watts_strogatz_adjacency(
    n: int, k: int, p: float, seed: random.Random
) -> list[set[int]]:
    """Watts–Strogatz lattice + rewiring, stream-identical to
    ``nx.watts_strogatz_graph`` (the wrapper guarantees ``2 <= k < n``)."""
    adjacency: list[set[int]] = [set() for _ in range(n)]
    nodes = list(range(n))
    for j in range(1, k // 2 + 1):
        targets = nodes[j:] + nodes[0:j]
        for u, w in zip(nodes, targets):
            adjacency[u].add(w)
            adjacency[w].add(u)
    for j in range(1, k // 2 + 1):
        targets = nodes[j:] + nodes[0:j]
        for u, v in zip(nodes, targets):
            if seed.random() < p:
                w = seed.choice(nodes)
                while w == u or w in adjacency[u]:
                    w = seed.choice(nodes)
                    if len(adjacency[u]) >= n - 1:
                        break  # skip this rewiring
                else:
                    # The lattice edge (u, v) is always still present here:
                    # distinct lattice edges are distinct pairs (offsets j and
                    # n - j cannot both be <= k // 2 < n / 2) and rewiring only
                    # ever removes the edge currently being processed.
                    adjacency[u].remove(v)
                    adjacency[v].remove(u)
                    adjacency[u].add(w)
                    adjacency[w].add(u)
    return adjacency


def _csr_from_adjacency_sets(adjacency: list[set[int]]) -> CSRGraph:
    n = len(adjacency)
    degrees = np.fromiter((len(nbrs) for nbrs in adjacency), dtype=np.int64, count=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    indices = np.fromiter(
        (w for nbrs in adjacency for w in sorted(nbrs)),
        dtype=np.int64,
        count=int(indptr[-1]),
    )
    return CSRGraph(n, indptr, indices)


@register_csr_topology("small_world")
def small_world_csr(
    n: int, neighbours: int = 4, rewire_probability: float = 0.1, seed: int = 0
) -> CSRGraph:
    """Direct-CSR twin of :func:`~repro.graphs.topologies.small_world_graph`."""
    _check_size(n, minimum=8)
    if neighbours < 2 or neighbours >= n:
        raise TopologyError(f"neighbours must lie in [2, n), got {neighbours}")
    if not 0.0 <= rewire_probability <= 1.0:
        raise TopologyError(
            f"rewire_probability must lie in [0, 1], got {rewire_probability}"
        )
    # connected_watts_strogatz_graph shares one random.Random across tries.
    sampler = random.Random(seed)
    for attempt in range(200):
        adjacency = _watts_strogatz_adjacency(n, neighbours, rewire_probability, sampler)
        graph = _csr_from_adjacency_sets(adjacency)
        if graph.is_connected():
            return graph
    raise TopologyError(
        f"failed to sample a connected small-world graph on {n} nodes in 200 tries"
    )  # pragma: no cover - overwhelmingly unlikely
